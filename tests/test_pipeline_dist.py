"""Distributed sweep executor: queue protocol semantics, worker
failure/retry (a genuinely killed worker process), resume, and
aggregation parity between serial and sharded execution."""

import json
import multiprocessing
import os
import time

import pytest

from repro.metrics import bd_rate_table, curves_from_reports
from repro.pipeline import Pipeline, run_many
from repro.pipeline.dist import (
    DirectoryJobQueue,
    MemoryJobQueue,
    SweepRunner,
    active_segments,
    job_id_for_spec,
    run_worker,
    verify_result_checksum,
)
from repro.pipeline.registry import register_codec, unregister_codec
from repro.codec import ClassicalCodecConfig

SCENE = {"height": 32, "width": 48, "frames": 2}
GRID = dict(
    codecs=["classical", "ctvc"],
    codec_configs=[
        {"qp": 8.0, "qstep": 8.0, "channels": 8},
        {"qp": 16.0, "qstep": 16.0, "channels": 8},
    ],
    scenes=[SCENE],
)


def _spec(qp=8.0):
    return Pipeline("classical", {"qp": qp}, scene=SCENE).to_dict()


def _claim_and_die(queue_dir, lease_seconds):
    """Worker that dies mid-job: claims, never acks, hard-exits."""
    queue = DirectoryJobQueue(queue_dir)
    job = queue.claim("doomed-worker", lease_seconds=lease_seconds)
    assert job is not None
    os._exit(1)


@pytest.mark.parametrize("make_queue", [
    lambda tmp: MemoryJobQueue(max_attempts=2),
    lambda tmp: DirectoryJobQueue(tmp / "q", max_attempts=2),
], ids=["memory", "directory"])
class TestQueueProtocol:
    def test_submit_claim_ack_cycle(self, tmp_path, make_queue):
        queue = make_queue(tmp_path)
        job_id = queue.submit({"x": 1}, job_id="job-a")
        assert queue.stats().pending == 1
        job = queue.claim("w1", lease_seconds=30.0)
        assert job.job_id == job_id and job.spec == {"x": 1}
        assert job.attempts == 0
        assert queue.stats().claimed == 1
        assert queue.claim("w2", lease_seconds=30.0) is None
        queue.ack(job_id, {"ok": True})
        stats = queue.stats()
        assert (stats.pending, stats.claimed, stats.done) == (0, 0, 1)
        assert queue.results() == {job_id: {"ok": True}}

    def test_submit_is_idempotent(self, tmp_path, make_queue):
        queue = make_queue(tmp_path)
        queue.submit({"x": 1}, job_id="dup")
        queue.submit({"x": 2}, job_id="dup")  # ignored: id already known
        assert queue.stats().pending == 1
        job = queue.claim("w", lease_seconds=30.0)
        assert job.spec == {"x": 1}
        queue.ack("dup", {})
        queue.submit({"x": 3}, job_id="dup")  # done is terminal too
        assert queue.stats().pending == 0

    def test_fail_requeues_then_dead_letters(self, tmp_path, make_queue):
        queue = make_queue(tmp_path)  # max_attempts=2
        queue.submit({"x": 1}, job_id="flaky")
        job = queue.claim("w", lease_seconds=30.0)
        queue.fail(job.job_id, "boom 1")
        assert queue.stats().pending == 1  # first failure: retried
        job = queue.claim("w", lease_seconds=30.0)
        assert job.attempts == 1
        queue.fail(job.job_id, "boom 2")
        stats = queue.stats()
        assert (stats.pending, stats.failed) == (0, 1)
        assert "boom 2" in queue.failures()["flaky"]

    def test_lease_expiry_requeues(self, tmp_path, make_queue):
        queue = make_queue(tmp_path)
        queue.submit({"x": 1}, job_id="leased")
        assert queue.claim("w1", lease_seconds=0.05) is not None
        assert queue.reap_expired() == []  # lease still live
        time.sleep(0.08)
        assert queue.reap_expired() == ["leased"]
        job = queue.claim("w2", lease_seconds=30.0)
        assert job.job_id == "leased" and job.attempts == 1

    def test_expiry_exhaustion_dead_letters(self, tmp_path, make_queue):
        queue = make_queue(tmp_path)  # max_attempts=2
        queue.submit({"x": 1}, job_id="lost")
        for _ in range(2):
            if queue.claim("w", lease_seconds=0.01) is not None:
                time.sleep(0.03)
                queue.reap_expired()
        stats = queue.stats()
        assert (stats.pending, stats.claimed, stats.failed) == (0, 0, 1)
        assert "lease expired" in queue.failures()["lost"]

    def test_claim_batch_pops_in_order_under_one_lease(
        self, tmp_path, make_queue
    ):
        queue = make_queue(tmp_path)
        for index in range(5):
            queue.submit({"x": index}, job_id=f"job-{index}")
        bundle = queue.claim_batch("w1", lease_seconds=30.0, limit=3)
        assert [job.spec["x"] for job in bundle] == [0, 1, 2]
        stats = queue.stats()
        assert (stats.pending, stats.claimed) == (2, 3)
        # a limit past the queue depth returns what's left, not an error
        rest = queue.claim_batch("w2", lease_seconds=30.0, limit=10)
        assert [job.spec["x"] for job in rest] == [3, 4]
        # drained: an empty bundle, same contract as claim() -> None
        assert queue.claim_batch("w3", lease_seconds=30.0, limit=2) == []
        for job in bundle + rest:
            queue.ack(job.job_id, {"ok": True})
        assert queue.stats().done == 5

    def test_claim_batch_limit_one_equals_claim(self, tmp_path, make_queue):
        queue = make_queue(tmp_path)
        queue.submit({"x": 1}, job_id="solo")
        (job,) = queue.claim_batch("w1", lease_seconds=30.0, limit=1)
        assert job.job_id == "solo" and job.attempts == 0
        assert queue.claim("w2", lease_seconds=30.0) is None

    def test_claim_batch_rejects_nonpositive_limit(
        self, tmp_path, make_queue
    ):
        queue = make_queue(tmp_path)
        with pytest.raises(ValueError, match="limit"):
            queue.claim_batch("w", lease_seconds=30.0, limit=0)

    def test_partially_acked_bundle_requeues_only_the_remainder(
        self, tmp_path, make_queue
    ):
        """The mid-bundle lease contract: acks are per-job, so a worker
        that dies after finishing job k of N strands only the unacked
        N-k — reaped together when the bundle's shared lease expires,
        with nothing lost and nothing duplicated."""
        queue = make_queue(tmp_path)  # max_attempts=2
        for index in range(3):
            queue.submit({"x": index}, job_id=f"job-{index}")
        bundle = queue.claim_batch("doomed", lease_seconds=0.05, limit=3)
        assert len(bundle) == 3
        queue.ack(bundle[0].job_id, {"ok": True}, worker_id="doomed")
        # ...worker dies here; the shared lease expires for the rest
        time.sleep(0.08)
        assert sorted(queue.reap_expired()) == ["job-1", "job-2"]
        stats = queue.stats()
        assert (stats.pending, stats.claimed, stats.done) == (2, 0, 1)
        retry = queue.claim_batch("survivor", lease_seconds=30.0, limit=3)
        assert [job.job_id for job in retry] == ["job-1", "job-2"]
        assert all(job.attempts == 1 for job in retry)
        for job in retry:
            queue.ack(job.job_id, {"ok": True}, worker_id="survivor")
        assert queue.stats().done == 3
        assert set(queue.results()) == {"job-0", "job-1", "job-2"}


class TestDirectoryQueue:
    def test_state_survives_reattach(self, tmp_path):
        root = tmp_path / "q"
        queue = DirectoryJobQueue(root)
        queue.submit({"x": 1}, job_id="persist")
        queue.claim("w1", lease_seconds=30.0)
        queue.ack("persist", {"bpp": 1.0})
        # a fresh instance (fresh process, resumed sweep) sees the result
        again = DirectoryJobQueue(root)
        assert again.results() == {"persist": {"bpp": 1.0}}
        assert again.stats().done == 1

    def test_concurrent_claim_single_winner(self, tmp_path):
        queue = DirectoryJobQueue(tmp_path / "q")
        queue.submit({"x": 1}, job_id="contested")
        a = queue.claim("w1", lease_seconds=30.0)
        b = queue.claim("w2", lease_seconds=30.0)
        assert (a is None) != (b is None)  # exactly one winner

    def test_junk_file_in_claimed_is_skipped_with_warning(
        self, tmp_path, caplog
    ):
        """A malformed filename in claimed/ (crashed writer, stray
        editor file) must not crash claim/reap scans — skip + warn,
        and real jobs keep flowing."""
        import logging

        queue = DirectoryJobQueue(tmp_path / "q")
        queue.submit({"x": 1}, job_id="good")
        job = queue.claim("w1", lease_seconds=0.01)
        assert job is not None
        # plant junk alongside the legitimate lease
        claimed_dir = tmp_path / "q" / "claimed"
        (claimed_dir / "not-a-lease.json").write_text("{}")
        (claimed_dir / "good.abc.def.json").write_text("{}")
        time.sleep(0.03)
        with caplog.at_level(logging.WARNING, "repro.pipeline.dist.queues"):
            assert queue.reap_expired() == ["good"]  # junk skipped
            rejob = queue.claim("w2", lease_seconds=30.0)
        assert rejob.job_id == "good" and rejob.attempts == 1
        assert any("malformed" in r.message for r in caplog.records)
        # one-time warning: a second scan stays quiet
        count = len(caplog.records)
        queue.reap_expired()
        assert len(caplog.records) == count
        queue.ack("good", {"ok": True}, worker_id="w2")
        assert queue.results() == {"good": {"ok": True}}

    def test_junk_file_in_pending_is_skipped_with_warning(
        self, tmp_path, caplog
    ):
        import logging

        queue = DirectoryJobQueue(tmp_path / "q")
        (tmp_path / "q" / "pending" / "nonsense.json").write_text("{}")
        queue.submit({"x": 1}, job_id="real")
        with caplog.at_level(logging.WARNING, "repro.pipeline.dist.queues"):
            job = queue.claim("w1", lease_seconds=30.0)
        assert job is not None and job.job_id == "real"
        assert any("malformed" in r.message for r in caplog.records)

    def test_late_ack_after_expiry_still_lands(self, tmp_path):
        # Straggler semantics: the job re-runs elsewhere, but the slow
        # worker's eventual ack must not be lost or crash.
        queue = DirectoryJobQueue(tmp_path / "q", max_attempts=3)
        queue.submit({"x": 1}, job_id="slow")
        job = queue.claim("w1", lease_seconds=0.01)
        time.sleep(0.03)
        queue.reap_expired()
        job2 = queue.claim("w2", lease_seconds=30.0)
        queue.ack(job2.job_id, {"from": "w2"})
        queue.ack(job.job_id, {"from": "w1"})  # straggler returns
        assert queue.stats().done == 1


class TestHeartbeat:
    def test_worker_emits_structured_heartbeats(self):
        queue = MemoryJobQueue(max_attempts=2)
        queue.submit({"x": 1}, job_id="00000-ok")
        queue.submit({"x": 2}, job_id="00001-boom")
        beats = []

        def execute(job):
            if "boom" in job.job_id:
                raise RuntimeError("injected")
            return {"ok": True}

        completed = run_worker(
            queue, "hb-worker", lease_seconds=30.0, execute=execute,
            on_heartbeat=beats.append,
        )
        assert completed == 1
        # startup beat + one per outcome (1 ack + max_attempts fails)
        assert len(beats) == 4
        first, last = beats[0], beats[-1]
        assert first.worker_id == "hb-worker"
        assert (first.completed, first.failed, first.last_job_id) == (0, 0, None)
        assert last.worker_id == "hb-worker"
        assert last.completed == 1 and last.failed == 2
        assert last.last_job_id == "00001-boom"
        doc = last.to_dict()
        assert {
            "worker_id": "hb-worker", "completed": 1, "failed": 2,
            "last_job_id": "00001-boom",
        }.items() <= doc.items()
        # observability rides the same beat: a build stamp and a
        # metrics snapshot; the span tail only when tracing is on
        import repro

        assert doc["version"] == repro.__version__
        counters = doc["metrics"]["counters"]
        assert "repro_jobs_completed_total" in counters
        assert "repro_jobs_failed_total" in counters
        assert "spans" not in doc  # tracing off: optionals are omitted

    def test_unused_optionals_stay_off_the_wire(self):
        from repro.pipeline.dist.worker import Heartbeat

        doc = Heartbeat(
            worker_id="w", completed=0, failed=0, last_job_id=None
        ).to_dict()
        assert doc == {
            "worker_id": "w", "completed": 0, "failed": 0,
            "last_job_id": None,
        }

    def test_default_is_no_heartbeat_callback(self):
        queue = MemoryJobQueue()
        queue.submit({"x": 1}, job_id="quiet")
        completed = run_worker(
            queue, "w", lease_seconds=30.0,
            execute=lambda job: {"ok": True},
        )
        assert completed == 1


class TestProgressCallback:
    """``QueueRunner.run(progress)``: the callback fires with live
    queue stats while the sweep runs, never after it returns."""

    GRID_SMALL = dict(
        codecs=["classical"],
        codec_configs=[{"qp": 8.0}, {"qp": 16.0}],
        scenes=[SCENE],
    )

    def test_serial_run_reports_final_stats(self):
        calls = []
        result = SweepRunner(workers=0, **self.GRID_SMALL).run(calls.append)
        assert result.ok
        assert calls, "progress never fired"
        last = calls[-1]
        assert (last.pending, last.claimed) == (0, 0)
        assert last.done == 2 and last.failed == 0

    def test_done_count_is_monotone_and_totals_conserve(self):
        calls = []
        runner = SweepRunner(workers=2, **self.GRID_SMALL)
        result = runner.run(calls.append, poll_seconds=0.01)
        assert result.ok
        done = [stats.done for stats in calls]
        assert done == sorted(done), "done count went backwards"
        total = len(runner.job_ids)
        for stats in calls:
            assert stats.pending + stats.claimed + stats.done + stats.failed \
                == total
        assert done[-1] == total

    def test_not_called_after_run_returns(self):
        calls = []
        SweepRunner(workers=2, **self.GRID_SMALL).run(
            calls.append, poll_seconds=0.01
        )
        seen = len(calls)
        time.sleep(0.2)  # any straggler worker/poll thread would land here
        assert len(calls) == seen

    def test_progress_failures_reflect_dead_letters(self):
        queue = MemoryJobQueue(max_attempts=1)
        queue.submit(_spec(8.0), job_id="00000-ok")
        queue.submit({"kind": "encode", "broken": True}, job_id="00001-bad")
        calls = []
        run_worker(queue, "w", lease_seconds=30.0)
        # drive the runner loop over the pre-loaded queue
        runner = SweepRunner(workers=0, queue=queue, **self.GRID_SMALL)
        runner.job_ids = ["00000-ok", "00001-bad"]
        runner.specs = [_spec(8.0), {"kind": "encode", "broken": True}]
        runner.run(calls.append)
        assert calls[-1].failed == 1 and calls[-1].done >= 1


class TestWorkerDeath:
    def test_killed_worker_lease_expires_and_job_reruns(self, tmp_path):
        """Kill a worker mid-job; the job must still complete correctly."""
        root = str(tmp_path / "q")
        queue = DirectoryJobQueue(root, max_attempts=3)
        for index, qp in enumerate((8.0, 16.0)):
            spec = _spec(qp)
            queue.submit(spec, job_id=job_id_for_spec(index, spec))

        context = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        victim = context.Process(target=_claim_and_die, args=(root, 0.2))
        victim.start()
        victim.join(timeout=30)
        assert victim.exitcode == 1
        assert queue.stats().claimed == 1  # the orphaned lease

        deadline = time.time() + 10
        while not queue.reap_expired():
            assert time.time() < deadline, "lease never expired"
            time.sleep(0.02)
        stats = queue.stats()
        assert (stats.pending, stats.claimed) == (2, 0)

        completed = run_worker(queue, "survivor", lease_seconds=60.0)
        assert completed == 2
        results = queue.results()
        assert len(results) == 2
        # the re-run job's report equals a clean serial run (jobs are
        # pure functions of their spec, so the retry changes nothing)
        serial = {r.codec_config["qp"]: r for r in run_many(
            [Pipeline("classical", {"qp": qp}, scene=SCENE)
             for qp in (8.0, 16.0)]
        )}
        for result in results.values():
            # acked results carry their own CRC32; verify and strip it
            result, checksum_ok = verify_result_checksum(result)
            assert checksum_ok
            expected = serial[result["codec_config"]["qp"]].to_dict()
            for volatile in ("encode_seconds", "decode_seconds"):
                result.pop(volatile), expected.pop(volatile)
            assert result == expected

    def test_serial_run_recovers_stale_claimed_job(self, tmp_path):
        # Regression: a sweep killed mid-job leaves a file in claimed/;
        # a workers=0 re-run must reap that lease itself, not hang.
        root = str(tmp_path / "q")
        queue = DirectoryJobQueue(root, max_attempts=3)
        spec = _spec(8.0)
        queue.submit(spec, job_id=job_id_for_spec(0, spec))
        assert queue.claim("dead-run", lease_seconds=0.05) is not None
        time.sleep(0.08)  # lease orphaned and expired

        runner = SweepRunner([spec], queue_dir=root, workers=0)
        result = runner.run()
        assert result.ok and len(result.reports) == 1

    def test_sweep_runner_survives_induced_death(self, tmp_path):
        """Full-stack: SweepRunner completes a grid despite a worker
        that claims a job and dies before acking."""
        root = str(tmp_path / "q")
        runner = SweepRunner(
            codecs=["classical"],
            codec_configs=[{"qp": 8.0}, {"qp": 16.0}, {"qp": 32.0}],
            scenes=[SCENE],
            queue_dir=root,
            workers=2,
            lease_seconds=0.3,
        )
        runner.submit()
        context = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        victim = context.Process(target=_claim_and_die, args=(root, 0.3))
        victim.start()
        victim.join(timeout=30)
        assert victim.exitcode == 1

        result = runner.run()
        assert result.ok, result.failures
        assert len(result.reports) == 3
        assert [r.codec_config["qp"] for r in result.reports] == [
            8.0, 16.0, 32.0,
        ]


class TestBundledWorker:
    def test_bundled_worker_completes_everything_in_order(self):
        queue = MemoryJobQueue()
        for index in range(5):
            queue.submit({"x": index}, job_id=f"{index:05d}-j")
        seen = []

        def execute(job):
            seen.append(job.spec["x"])
            return {"ok": True}

        completed = run_worker(
            queue, "w", lease_seconds=30.0, bundle=2, execute=execute
        )
        assert completed == 5
        assert seen == [0, 1, 2, 3, 4]
        assert queue.stats().done == 5

    def test_bundle_claim_is_capped_by_max_jobs(self):
        queue = MemoryJobQueue()
        for index in range(5):
            queue.submit({"x": index}, job_id=f"{index:05d}-j")
        completed = run_worker(
            queue, "w", lease_seconds=30.0, bundle=4, max_jobs=2,
            execute=lambda job: {"ok": True},
        )
        assert completed == 2
        # the worker never over-claimed: the rest are still pending,
        # not stranded under its lease
        stats = queue.stats()
        assert (stats.pending, stats.claimed, stats.done) == (3, 0, 2)

    def test_failures_inside_a_bundle_do_not_sink_its_siblings(self):
        queue = MemoryJobQueue(max_attempts=1)
        queue.submit({"boom": False}, job_id="00000-fine")
        queue.submit({"boom": True}, job_id="00001-bad")
        queue.submit({"boom": False}, job_id="00002-fine")

        def execute(job):
            if job.spec["boom"]:
                raise RuntimeError("injected")
            return {"ok": True}

        completed = run_worker(
            queue, "w", lease_seconds=30.0, bundle=3, execute=execute
        )
        assert completed == 2
        assert set(queue.results()) == {"00000-fine", "00002-fine"}
        assert "injected" in queue.failures()["00001-bad"]


class TestSharedFrameHygiene:
    GRID = dict(
        codecs=["classical"],
        codec_configs=[{"qp": 8.0}, {"qp": 16.0}],
        scenes=[SCENE],
    )

    def _timeless(self, report):
        doc = report.to_dict()
        for volatile in ("encode_seconds", "decode_seconds"):
            doc.pop(volatile)
        return doc

    def test_sweep_unlinks_every_segment_after_drain(self, tmp_path):
        assert active_segments() == []
        runner = SweepRunner(
            **self.GRID, queue_dir=tmp_path / "q", workers=2,
            bundle=2, share_frames=True,
        )
        result = runner.run(poll_seconds=0.02)
        assert result.ok, result.failures
        assert active_segments() == []

    def test_segments_reclaimed_even_when_a_worker_is_killed(self, tmp_path):
        root = str(tmp_path / "q")
        runner = SweepRunner(
            **self.GRID, queue_dir=root, workers=2,
            lease_seconds=0.3, share_frames=True,
        )
        runner.submit()
        assert runner._shm_names  # frames actually went out via shm
        context = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        victim = context.Process(target=_claim_and_die, args=(root, 0.3))
        victim.start()
        victim.join(timeout=30)
        assert victim.exitcode == 1
        result = runner.run(poll_seconds=0.02)
        assert result.ok, result.failures
        assert active_segments() == []

    def test_stale_segments_fall_back_to_identical_results(self, tmp_path):
        """Workers that cannot attach (the segments are gone — a
        resumed run, or an HTTP worker on another host) re-synthesize
        frames and produce byte-identical reports."""
        serial = SweepRunner(**self.GRID, workers=0).run()
        runner = SweepRunner(
            **self.GRID, queue_dir=tmp_path / "q", workers=2,
            share_frames=True,
        )
        runner.submit()
        # yank every segment before any worker starts: all the queued
        # descriptors are now stale
        assert runner.release_shared_frames() > 0
        result = runner.run(poll_seconds=0.02)
        assert result.ok, result.failures
        assert [self._timeless(r) for r in result.reports] == [
            self._timeless(r) for r in serial.reports
        ]
        assert active_segments() == []

    def test_http_workers_fall_back_to_identical_results(self):
        from repro.pipeline.dist import HttpJobQueue, QueueServer

        serial = SweepRunner(**self.GRID, workers=0).run()
        with QueueServer(MemoryJobQueue()) as server:
            runner = SweepRunner(
                **self.GRID, queue=HttpJobQueue(server.url), workers=2,
                lease_seconds=60.0, share_frames=True,
            )
            runner.submit()
            assert runner.release_shared_frames() > 0  # all stale now
            result = runner.run(poll_seconds=0.02)
        assert result.ok, result.failures
        assert [self._timeless(r) for r in result.reports] == [
            self._timeless(r) for r in serial.reports
        ]
        assert active_segments() == []


class TestAggregationParity:
    def test_out_of_order_results_match_serial_curves(self):
        serial_reports = run_many(**GRID)
        serial_curves = curves_from_reports(serial_reports)

        runner = SweepRunner(**GRID, workers=3, anchor="classical")
        result = runner.run()
        assert result.ok, result.failures

        # Byte-identical aggregation regardless of completion order.
        def canon(curves):
            return json.dumps(
                [{"codec": c, "scene": s, **curve.to_dict()}
                 for (c, s), curve in sorted(curves.items())],
                sort_keys=True,
            )

        assert canon(result.curves) == canon(serial_curves)
        assert result.bd_rate == bd_rate_table(serial_curves, "classical")

    def test_run_many_queue_backend_matches_inline(self):
        inline = run_many(**GRID)
        queued = run_many(**GRID, backend="queue", workers=2)
        assert len(queued) == len(inline) == 4
        for a, b in zip(inline, queued):
            a_dict, b_dict = a.to_dict(), b.to_dict()
            for key in ("encode_seconds", "decode_seconds"):
                a_dict.pop(key), b_dict.pop(key)
            assert a_dict == b_dict

    def test_directory_queue_backend_matches_inline(self, tmp_path):
        inline = run_many(codecs=["classical"],
                          codec_configs=[{"qp": 8.0}, {"qp": 16.0}],
                          scenes=[SCENE])
        queued = run_many(codecs=["classical"],
                          codec_configs=[{"qp": 8.0}, {"qp": 16.0}],
                          scenes=[SCENE],
                          backend="queue", workers=2,
                          queue_dir=str(tmp_path / "q"))
        for a, b in zip(inline, queued):
            a_dict, b_dict = a.to_dict(), b.to_dict()
            for key in ("encode_seconds", "decode_seconds"):
                a_dict.pop(key), b_dict.pop(key)
            assert a_dict == b_dict


class TestResume:
    def test_second_run_reuses_done_results(self, tmp_path):
        root = str(tmp_path / "q")
        kwargs = dict(
            codecs=["classical"],
            codec_configs=[{"qp": 8.0}, {"qp": 16.0}],
            scenes=[SCENE],
            queue_dir=root,
            workers=0,
        )
        first = SweepRunner(**kwargs)
        result1 = first.run()
        assert result1.ok

        resumed = SweepRunner(**kwargs)
        resumed.submit()
        # identical grid -> identical content-derived ids -> nothing new
        assert resumed.queue.stats().pending == 0
        result2 = resumed.run()
        assert json.dumps(
            [c.to_dict() for _, c in sorted(result2.curves.items())],
            sort_keys=True,
        ) == json.dumps(
            [c.to_dict() for _, c in sorted(result1.curves.items())],
            sort_keys=True,
        )

    def test_job_ids_are_deterministic_and_ordered(self):
        spec_a, spec_b = _spec(8.0), _spec(16.0)
        assert job_id_for_spec(0, spec_a) == job_id_for_spec(0, spec_a)
        assert job_id_for_spec(0, spec_a) != job_id_for_spec(0, spec_b)
        assert job_id_for_spec(0, spec_a) < job_id_for_spec(1, spec_a)


class TestFailureTolerance:
    def test_broken_codec_dead_letters_without_sinking_sweep(self):
        class _BoomCodec:
            config = ClassicalCodecConfig()

            def __init__(self, config):
                self.config = config

            def encode_sequence(self, frames):
                raise RuntimeError("injected encode failure")

            def decode_sequence(self, stream):
                raise RuntimeError("injected decode failure")

            def open_encoder(self):
                raise RuntimeError("injected session failure")

            def open_decoder(self, header=None, version=2):
                raise RuntimeError("injected session failure")

        register_codec("boom", _BoomCodec, ClassicalCodecConfig,
                       "always fails", overwrite=True)
        try:
            runner = SweepRunner(
                codecs=["classical", "boom"],
                codec_configs=[{"qp": 8.0}],
                scenes=[SCENE],
                workers=2,
                max_attempts=2,
            )
            result = runner.run()
        finally:
            unregister_codec("boom")
        assert not result.ok
        assert len(result.reports) == 1  # classical still aggregated
        assert result.reports[0].codec == "classical"
        assert len(result.failures) == 1
        assert "injected encode failure" in next(iter(result.failures.values()))

    def test_run_many_queue_backend_raises_on_failures(self):
        # spec validates fine; execution fails — run_many's contract is
        # all-or-error, so the queue backend must raise, not truncate
        class _Boom:
            config = ClassicalCodecConfig()

            def __init__(self, config):
                self.config = config

            def encode_sequence(self, frames):
                raise RuntimeError("nope")

            def decode_sequence(self, stream):
                raise RuntimeError("nope")

            def open_encoder(self):
                raise RuntimeError("nope")

            def open_decoder(self, header=None, version=2):
                raise RuntimeError("nope")

        register_codec("boom2", _Boom, ClassicalCodecConfig, overwrite=True)
        try:
            with pytest.raises(RuntimeError, match="failed after retries"):
                run_many(
                    codecs=["boom2"], scenes=[SCENE],
                    backend="queue", workers=1, max_attempts=2,
                )
        finally:
            unregister_codec("boom2")


class TestGridValidation:
    def test_unknown_codec_fails_before_any_execution(self):
        with pytest.raises(ValueError, match="unknown codec name"):
            run_many(codecs=["nosuch", "classical"], scenes=[SCENE])

    def test_unknown_codec_fails_before_pool_spawn(self):
        # the point of the fix: one clear error, not a worker traceback
        with pytest.raises(ValueError, match="nosuch.*available"):
            run_many(codecs=["nosuch"], scenes=[SCENE], processes=2)

    def test_unknown_codec_fails_before_queue_submit(self, tmp_path):
        with pytest.raises(ValueError, match="unknown codec name"):
            run_many(
                codecs=["nosuch"], scenes=[SCENE],
                backend="queue", queue_dir=str(tmp_path / "q"),
            )
        assert not (tmp_path / "q").exists()  # nothing was even created

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown run_many backend"):
            run_many(codecs=["classical"], scenes=[SCENE], backend="carrier-pigeon")

    def test_explicit_pool_backend_without_processes_still_pools(self):
        # an explicitly requested pool must not silently run serial
        inline = run_many(codecs=["classical"], codec_configs=[{"qp": 8.0}],
                          scenes=[SCENE])
        pooled = run_many(codecs=["classical"], codec_configs=[{"qp": 8.0}],
                          scenes=[SCENE], backend="pool")
        assert pooled[0].bpp == inline[0].bpp
        assert pooled[0].mean_psnr == inline[0].mean_psnr
