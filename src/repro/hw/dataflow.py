"""Heterogeneous layer chaining dataflow (Section IV-B-2, Fig. 7).

Two models live here:

* :func:`compare_traffic` — off-chip (DRAM) traffic of the decoder
  under the baseline layer-by-layer dataflow versus the chaining
  dataflow, per decoder module: the reproduction of Fig. 9(b).
  Chained layers (``LayerSpec.chain_id``) stream intermediates through
  the Input Buffer, so only the chain's first input and last output
  cross external memory.  The DCC is an island — DfConv's data-
  dependent gather defeats row chaining and amplifies reference
  fetches.

* :class:`InputBufferScheduler` — the bank-level runtime schedule of
  Fig. 7(b): rows of the chain's feature maps (A -> conv -> B -> conv
  -> C -> deconv -> D) rotate through the 10 single-row banks, a bank
  being overwritten only once every future consumer of its row has
  fired.  The scheduler records the full trace and checks the liveness
  invariant, and its counters quantify how many DRAM row transfers the
  chain elides.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.layerspec import LayerGraph, LayerSpec

from .arch import NVCAConfig

__all__ = [
    "ModuleTraffic",
    "TrafficReport",
    "compare_traffic",
    "ChainLayer",
    "ScheduleStep",
    "InputBufferScheduler",
]


# ---------------------------------------------------------------------------
# Fig. 9(b): off-chip traffic accounting
# ---------------------------------------------------------------------------


def _weight_traffic_bytes(layer: LayerSpec, config: NVCAConfig) -> float:
    """DRAM bytes to load one layer's weights (compressed when the
    fast-sparse path applies: non-zero transform weights + indices)."""
    elements = layer.weight_elements()
    if elements == 0:
        return 0.0
    if layer.fast_supported:
        density = 1.0 - config.rho
        # Transform-domain expansion: k*k spatial taps become mu*mu
        # transform positions (16 for F23 from 9; 64 for T3 from 16).
        expansion = (16.0 / 9.0) if layer.kind == "conv" else (64.0 / 16.0)
        index_bits = 4 if layer.kind == "conv" else 6
        stored = elements * expansion * density
        return stored * (config.weight_bits + index_bits) / 8.0
    return elements * config.weight_bytes


def _activation_bytes(elements: int, config: NVCAConfig) -> float:
    return elements * config.activation_bytes


def _layer_baseline_traffic(layer: LayerSpec, config: NVCAConfig) -> float:
    """Layer-by-layer dataflow: inputs from DRAM, outputs to DRAM."""
    if layer.kind in ("pool", "eltwise"):
        return 0.0  # streams through the producing layer's pipeline
    weights = _weight_traffic_bytes(layer, config)
    if layer.kind == "dfconv":
        amp = config.dfconv_gather_amplification
        reference = _activation_bytes(layer.input_elements(), config) * amp
        offsets = _activation_bytes(
            2 * 2 * layer.kernel * layer.kernel * layer.out_h * layer.out_w, config
        )
        out = _activation_bytes(layer.output_elements(), config)
        return reference + offsets + out + weights
    inp = _activation_bytes(layer.input_elements(), config)
    out = _activation_bytes(layer.output_elements(), config)
    return inp + out + weights


def _chain_traffic(chain: list[LayerSpec], config: NVCAConfig) -> float:
    """Chained dataflow: one input read, one output write, all weights."""
    kernel_layers = [l for l in chain if l.kind not in ("pool", "eltwise")]
    if not kernel_layers:
        return 0.0
    weights = sum(_weight_traffic_bytes(l, config) for l in kernel_layers)
    inp = _activation_bytes(chain[0].input_elements(), config)
    out = _activation_bytes(chain[-1].output_elements(), config)
    return inp + out + weights


@dataclass(frozen=True)
class ModuleTraffic:
    """Off-chip traffic of one decoder module under both dataflows."""

    module: str
    baseline_bytes: float
    chained_bytes: float

    @property
    def reduction(self) -> float:
        """Fractional traffic saved by chaining (the Fig. 9(b) labels)."""
        if self.baseline_bytes == 0:
            return 0.0
        return 1.0 - self.chained_bytes / self.baseline_bytes


@dataclass
class TrafficReport:
    """Fig. 9(b): per-module and overall DRAM traffic comparison."""

    graph_name: str
    modules: list[ModuleTraffic] = field(default_factory=list)

    @property
    def baseline_total(self) -> float:
        return sum(m.baseline_bytes for m in self.modules)

    @property
    def chained_total(self) -> float:
        return sum(m.chained_bytes for m in self.modules)

    @property
    def overall_reduction(self) -> float:
        if self.baseline_total == 0:
            return 0.0
        return 1.0 - self.chained_total / self.baseline_total

    def by_module(self, module: str) -> ModuleTraffic:
        for entry in self.modules:
            if entry.module == module:
                return entry
        raise KeyError(module)

    def __str__(self) -> str:
        return (
            f"TrafficReport({self.graph_name}: "
            f"{self.baseline_total / 1e9:.3f} GB -> "
            f"{self.chained_total / 1e9:.3f} GB, "
            f"-{self.overall_reduction:.1%})"
        )


def compare_traffic(graph: LayerGraph, config: NVCAConfig | None = None) -> TrafficReport:
    """Baseline versus chaining DRAM traffic for a decoder graph."""
    config = config or NVCAConfig()
    report = TrafficReport(graph_name=graph.name)
    for module in graph.modules():
        layers = graph.by_module(module)
        baseline = sum(_layer_baseline_traffic(l, config) for l in layers)

        chained = 0.0
        chains: dict[int, list[LayerSpec]] = {}
        for layer in layers:
            if layer.chain_id >= 0:
                chains.setdefault(layer.chain_id, []).append(layer)
            else:
                chained += _layer_baseline_traffic(layer, config)
        for chain in chains.values():
            chained += _chain_traffic(chain, config)

        report.modules.append(
            ModuleTraffic(
                module=module, baseline_bytes=baseline, chained_bytes=chained
            )
        )
    return report


# ---------------------------------------------------------------------------
# Fig. 7(b): Input Buffer bank scheduling
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ChainLayer:
    """One stage of a heterogeneous chain for the bank scheduler.

    ``rows_per_step`` — rows this stage emits per firing (the fast
    algorithm's output tile height: 2 for F(2x2,3x3), 6 for T3);
    ``window`` — input rows one firing consumes (4 for the conv tile,
    5 for the deconv tile); ``step`` — how far the input window
    advances between firings (2 for the conv, 3 for the deconv).
    """

    name: str
    rows_per_step: int
    window: int
    step: int

    @classmethod
    def conv3x3(cls, name: str) -> "ChainLayer":
        return cls(name=name, rows_per_step=2, window=4, step=2)

    @classmethod
    def deconv4x4_s2(cls, name: str) -> "ChainLayer":
        return cls(name=name, rows_per_step=6, window=5, step=3)


@dataclass
class ScheduleStep:
    """One time step of the Fig. 7(b) schedule."""

    index: int
    fired_layer: str
    #: rows written this step as (feature_map, row_index, bank)
    writes: list[tuple[str, int, int]] = field(default_factory=list)


class InputBufferScheduler:
    """Bank-level simulation of one heterogeneous chain (Fig. 7(b)).

    Feature maps are named like the figure: "A" is the chain input
    (rows fetched from DRAM), intermediate maps take successive
    letters, and the final stage's output streams to the Output Buffer
    without occupying banks.

    The scheduler fires the deepest ready stage first (consuming
    buffered rows as soon as possible frees banks earliest), fetches
    chain-input rows on demand, and only ever overwrites banks whose
    row has no remaining consumer — the liveness invariant
    ``assert_no_live_overwrite`` that the test suite checks.
    """

    def __init__(self, layers: list[ChainLayer], num_banks: int = 10):
        if not layers:
            raise ValueError("chain needs at least one layer")
        self.layers = layers
        self.num_banks = num_banks
        #: feature-map names: input "A", then one per layer.
        self.map_names = [chr(ord("A") + i) for i in range(len(layers) + 1)]
        self._reset()

    def _reset(self) -> None:
        self.banks: list[tuple[str, int] | None] = [None] * self.num_banks
        #: rows produced so far per feature map.
        self.produced = {name: 0 for name in self.map_names}
        #: firings completed per layer.
        self.firings = [0] * len(self.layers)
        self.steps: list[ScheduleStep] = []
        self.dram_row_fetches = 0
        self.onchip_rows_reused = 0
        self.live_overwrites = 0

    # -- liveness -------------------------------------------------------
    def _row_is_live(self, map_name: str, row: int) -> bool:
        """A row is live while some future firing of its consumer needs
        it: firing f of the consumer reads source rows
        [f*step, f*step + window), and firings only move forward, so a
        row below the next window base is dead."""
        level = self.map_names.index(map_name)
        if level == len(self.layers):
            return False  # final output never buffered
        consumer = self.layers[level]
        return row >= self.firings[level] * consumer.step

    def _find_bank(self, map_name: str, row: int) -> int:
        """Paper policy: home bank = row % num_banks, else any dead bank."""
        home = row % self.num_banks
        candidates = [home] + [
            b for b in range(self.num_banks) if b != home
        ]
        for bank in candidates:
            occupant = self.banks[bank]
            if occupant is None or not self._row_is_live(*occupant):
                if occupant is not None and self._row_is_live(*occupant):
                    self.live_overwrites += 1
                return bank
        # No dead bank: forced overwrite (flagged as a violation).
        self.live_overwrites += 1
        return home

    def _buffered_rows(self, map_name: str) -> set[int]:
        return {
            occupant[1]
            for occupant in self.banks
            if occupant is not None and occupant[0] == map_name
        }

    # -- execution ---------------------------------------------------------
    def _fire(self, level: int, step_record: ScheduleStep) -> None:
        layer = self.layers[level]
        out_map = self.map_names[level + 1]
        firing = self.firings[level]
        self.firings[level] += 1
        if level + 1 == len(self.layers):
            # Final stage streams to the Output Buffer.
            self.produced[out_map] += layer.rows_per_step
            step_record.fired_layer = layer.name
            return
        for offset in range(layer.rows_per_step):
            row = firing * layer.rows_per_step + offset
            bank = self._find_bank(out_map, row)
            self.banks[bank] = (out_map, row)
            self.produced[out_map] = max(self.produced[out_map], row + 1)
            step_record.writes.append((out_map, row, bank))
            self.onchip_rows_reused += 1
        step_record.fired_layer = layer.name

    def _fetch_input_rows(self, count: int, step_record: ScheduleStep) -> None:
        for _ in range(count):
            row = self.produced["A"]
            bank = self._find_bank("A", row)
            self.banks[bank] = ("A", row)
            self.produced["A"] = row + 1
            self.dram_row_fetches += 1
            step_record.writes.append(("A", row, bank))

    def run(self, output_row_groups: int) -> list[ScheduleStep]:
        """Schedule until the final stage has fired ``output_row_groups``
        times; returns the step trace."""
        self._reset()
        final = len(self.layers) - 1
        guard = 0
        while self.firings[final] < output_row_groups:
            guard += 1
            if guard > 100000:
                raise RuntimeError("scheduler failed to make progress")
            record = ScheduleStep(index=len(self.steps), fired_layer="")
            # Fire the deepest ready stage.
            fired = False
            for level in range(final, -1, -1):
                source = self.map_names[level]
                layer = self.layers[level]
                firing = self.firings[level]
                needed = range(
                    firing * layer.step, firing * layer.step + layer.window
                )
                buffered = self._buffered_rows(source)
                if all(row in buffered for row in needed):
                    self._fire(level, record)
                    fired = True
                    break
            if not fired:
                # Stage 0 starved: fetch the next chain-input row.
                self._fetch_input_rows(1, record)
                record.fired_layer = "fetch"
            self.steps.append(record)
        return self.steps

    # -- reporting -------------------------------------------------------------
    def assert_no_live_overwrite(self) -> bool:
        return self.live_overwrites == 0

    def bank_occupancy(self) -> list[str]:
        return [
            "-" if occupant is None else f"{occupant[0]}{occupant[1]}"
            for occupant in self.banks
        ]

    def summary(self) -> dict:
        return {
            "steps": len(self.steps),
            "dram_row_fetches": self.dram_row_fetches,
            "onchip_rows_reused": self.onchip_rows_reused,
            "live_overwrites": self.live_overwrites,
            "final_rows": self.produced[self.map_names[-1]],
        }
