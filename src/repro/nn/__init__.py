"""A from-scratch NumPy deep-learning substrate (inference-grade).

Replaces PyTorch for this offline reproduction: convolutions,
deconvolutions, deformable convolutions, shifted-window attention,
residual blocks, pooling, and fixed-point quantization — everything
CTVC-Net (Fig. 2 of the paper) is assembled from.
"""

from . import functional
from .attention import SwinAttention, window_merge, window_partition
from .deform import DeformConv2d, deform_conv2d
from .init import (
    dct2_kernel_bank,
    dct_matrix,
    he_normal,
    identity_conv_weight,
    orthonormal_analysis_weight,
    orthonormal_synthesis_weight,
    xavier_uniform,
)
from .layers import (
    Conv2d,
    ConvTranspose2d,
    Identity,
    LeakyReLU,
    MaxPool2d,
    Module,
    ModuleList,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
)
from .quant import QuantReport, QuantSpec, quantize_network
from .resblock import ResBlock

__all__ = [
    "Conv2d",
    "ConvTranspose2d",
    "DeformConv2d",
    "Identity",
    "LeakyReLU",
    "MaxPool2d",
    "Module",
    "ModuleList",
    "Parameter",
    "QuantReport",
    "QuantSpec",
    "ReLU",
    "ResBlock",
    "Sequential",
    "Sigmoid",
    "SwinAttention",
    "dct2_kernel_bank",
    "dct_matrix",
    "deform_conv2d",
    "functional",
    "he_normal",
    "identity_conv_weight",
    "orthonormal_analysis_weight",
    "orthonormal_synthesis_weight",
    "quantize_network",
    "window_merge",
    "window_partition",
    "xavier_uniform",
]
