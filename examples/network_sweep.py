#!/usr/bin/env python
"""RD sweep over the network transport, with an autoscaled fleet.

Stands up an in-process :class:`QueueServer` (the same JSON-over-HTTP
daemon behind ``repro serve``) over an in-memory queue, points a
:class:`SweepRunner` at it through :class:`HttpJobQueue` so two worker
*processes* pull encode jobs over loopback HTTP, and asserts the
aggregated RD curves and BD-rate table are byte-identical to the
serial in-process run.  A second act drains a DSE grid with an
:class:`Autoscaler` sizing the fleet from live queue depth instead of
a fixed ``--workers`` count.

Run: PYTHONPATH=src python examples/network_sweep.py
"""

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.pipeline import SweepRunner, dse_grid, normalize_spec  # noqa: E402
from repro.pipeline.dist import (  # noqa: E402
    Autoscaler,
    HttpJobQueue,
    MemoryJobQueue,
    QueueServer,
    job_id_for_spec,
    spawn_http_worker,
)

SCENE = {"height": 32, "width": 48, "frames": 2}
GRID = dict(
    codecs=["classical", "ctvc"],
    codec_configs=[{"qp": 8, "qstep": 8, "channels": 8}],
    scenes=[{"seed": 0, **SCENE}, {"seed": 1, **SCENE}],
)


def canon(result) -> str:
    """Stable aggregates only — per-report wall-clock timings vary."""
    payload = result.to_dict()
    stable = {
        key: payload[key]
        for key in ("curves", "bd_rate", "jobs", "completed", "failed")
    }
    return json.dumps(stable, sort_keys=True)


def run_sweep_over_http() -> None:
    print("=== Act 1: RD sweep, serial vs 2 HTTP worker processes ===")
    serial = SweepRunner(**GRID, workers=0, anchor="classical").run()
    assert serial.ok, serial.failures

    with QueueServer(MemoryJobQueue(), port=0) as server:
        print(f"queue server listening on {server.url}")
        networked = SweepRunner(
            **GRID,
            queue=HttpJobQueue(server.url),
            workers=2,
            anchor="classical",
        ).run()
    assert networked.ok, networked.failures
    assert canon(serial) == canon(networked), (
        "HTTP-worker sweep must aggregate byte-identically to serial"
    )
    print(f"backend parity: serial == HTTP x{networked.workers} "
          f"({len(networked.reports)} jobs, byte-identical)\n")
    print(serial.render())


def run_autoscaled_dse() -> None:
    print("\n=== Act 2: DSE grid drained by an autoscaled HTTP fleet ===")
    specs = [
        normalize_spec(spec)
        for spec in dse_grid("geometry", values=((6, 6), (12, 12), (18, 18)))
    ]
    queue = MemoryJobQueue()
    with QueueServer(queue, port=0) as server:
        for index, spec in enumerate(specs):
            queue.submit(spec, job_id=job_id_for_spec(index, spec))
        scaler = Autoscaler(
            queue=HttpJobQueue(server.url),
            spawn=lambda: spawn_http_worker(server.url, lease_seconds=30.0),
            min_workers=0,
            max_workers=2,
            backlog_per_worker=2,
            cooldown_seconds=0.0,
        )
        def drained() -> bool:
            stats = queue.stats()
            return stats.done + stats.failed >= len(specs)

        scaler.run(poll_seconds=0.1, should_stop=drained)
        stats = queue.stats()
    assert stats.done == len(specs), stats
    print(f"fleet drained {stats.done} design points "
          f"(peak {scaler.desired_workers(pending=len(specs), claimed=0)} "
          f"workers, scaled back to 0 when idle)")


def main() -> int:
    run_sweep_over_http()
    run_autoscaled_dse()
    return 0


if __name__ == "__main__":
    sys.exit(main())
