"""Color-space conversion and raw YUV frame I/O.

HD video reaching the paper's decoder is "RGB or YUV format ... encoded
bitstreams" (Section I).  This module provides BT.601 full-range
RGB<->YCbCr conversion, 4:2:0 chroma subsampling, and raw planar .yuv
file I/O so synthetic sequences can be stored and replayed exactly like
the public corpora the paper uses.

Frames are float64 in [0, 255] with shape (3, H, W) channel-first,
matching the rest of the code base.

File I/O streams: :func:`write_yuv420` accepts any frame iterable (a
generator, a decoder session's output, a list) and writes as it goes;
:func:`read_yuv420` returns a lazy :class:`YUV420Reader` — a sequence
view over the file that decodes one frame per access — so files of
arbitrary length feed streaming codec sessions without ever loading
into memory.
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator

import numpy as np

__all__ = [
    "YUV420Reader",
    "rgb_to_ycbcr",
    "ycbcr_to_rgb",
    "subsample_420",
    "upsample_420",
    "write_yuv420",
    "read_yuv420",
]

# BT.601 full-range matrix (the JPEG/JFIF convention).
_RGB_TO_YCBCR = np.array(
    [
        [0.299, 0.587, 0.114],
        [-0.168736, -0.331264, 0.5],
        [0.5, -0.418688, -0.081312],
    ]
)
_YCBCR_TO_RGB = np.linalg.inv(_RGB_TO_YCBCR)


def rgb_to_ycbcr(rgb: np.ndarray) -> np.ndarray:
    """Convert a (3, H, W) RGB frame in [0, 255] to YCbCr in [0, 255]."""
    rgb = np.asarray(rgb, dtype=np.float64)
    if rgb.ndim != 3 or rgb.shape[0] != 3:
        raise ValueError(f"expected (3, H, W), got {rgb.shape}")
    flat = rgb.reshape(3, -1)
    ycc = _RGB_TO_YCBCR @ flat
    ycc[1:] += 128.0
    return ycc.reshape(rgb.shape)


def ycbcr_to_rgb(ycc: np.ndarray) -> np.ndarray:
    """Inverse of :func:`rgb_to_ycbcr`; output clipped to [0, 255]."""
    ycc = np.asarray(ycc, dtype=np.float64)
    if ycc.ndim != 3 or ycc.shape[0] != 3:
        raise ValueError(f"expected (3, H, W), got {ycc.shape}")
    shifted = ycc.reshape(3, -1).copy()
    shifted[1:] -= 128.0
    rgb = _YCBCR_TO_RGB @ shifted
    return np.clip(rgb.reshape(ycc.shape), 0.0, 255.0)


def subsample_420(ycc: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split a YCbCr frame into (Y, Cb, Cr) planes with 4:2:0 chroma.

    Chroma is box-filtered 2x2 then decimated; H and W must be even.
    """
    _, h, w = ycc.shape
    if h % 2 or w % 2:
        raise ValueError(f"4:2:0 needs even dimensions, got {h}x{w}")
    y = ycc[0]
    chroma = []
    for c in (1, 2):
        plane = ycc[c]
        pooled = 0.25 * (
            plane[0::2, 0::2]
            + plane[1::2, 0::2]
            + plane[0::2, 1::2]
            + plane[1::2, 1::2]
        )
        chroma.append(pooled)
    return y, chroma[0], chroma[1]


def upsample_420(y: np.ndarray, cb: np.ndarray, cr: np.ndarray) -> np.ndarray:
    """Rebuild a (3, H, W) YCbCr frame from 4:2:0 planes (nearest)."""
    h, w = y.shape
    out = np.empty((3, h, w), dtype=np.float64)
    out[0] = y
    for idx, plane in ((1, cb), (2, cr)):
        out[idx] = np.repeat(np.repeat(plane, 2, axis=0), 2, axis=1)[:h, :w]
    return out


def write_yuv420(path: str, frames: Iterable[np.ndarray]) -> int:
    """Write RGB frames to a raw planar YUV 4:2:0 8-bit file.

    ``frames`` may be any iterable — a list, a generator, a streaming
    decoder's output — and is consumed one frame at a time, so
    sequences of arbitrary length stream to disk in O(1) frame memory.
    Returns the number of bytes written.
    """
    total = 0
    with open(path, "wb") as handle:
        for frame in frames:
            y, cb, cr = subsample_420(rgb_to_ycbcr(frame))
            for plane in (y, cb, cr):
                data = np.clip(np.round(plane), 0, 255).astype(np.uint8).tobytes()
                handle.write(data)
                total += len(data)
    return total


def _frame_from_raw(raw: np.ndarray, height: int, width: int) -> np.ndarray:
    y = raw[: height * width].reshape(height, width).astype(np.float64)
    offset = height * width
    quarter = (height // 2) * (width // 2)
    cb = raw[offset : offset + quarter].reshape(height // 2, width // 2)
    cr = raw[offset + quarter :].reshape(height // 2, width // 2)
    ycc = upsample_420(y, cb.astype(np.float64), cr.astype(np.float64))
    return ycbcr_to_rgb(ycc)


class YUV420Reader:
    """Lazy sequence view over a raw planar YUV 4:2:0 8-bit file.

    Quacks like the list :func:`read_yuv420` used to return —
    ``len()``, indexing (including negative indices and slices), and
    iteration all work — but decodes one frame per access instead of
    materializing the file, so iterating an hour of video holds one
    frame at a time.  Iteration streams through a single sequential
    file handle; random access seeks per frame.
    """

    def __init__(self, path: str, height: int, width: int):
        if height % 2 or width % 2:
            raise ValueError("4:2:0 needs even dimensions")
        size = os.path.getsize(path)
        self._frame_bytes = height * width + 2 * (height // 2) * (width // 2)
        if size % self._frame_bytes:
            raise ValueError(
                f"file size {size} is not a multiple of frame size "
                f"{self._frame_bytes}"
            )
        self.path = path
        self.height = height
        self.width = width
        self.num_frames = size // self._frame_bytes

    def __len__(self) -> int:
        return self.num_frames

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(self.num_frames))]
        if index < 0:
            index += self.num_frames
        if not 0 <= index < self.num_frames:
            raise IndexError(f"frame {index} out of range [0, {self.num_frames})")
        with open(self.path, "rb") as handle:
            handle.seek(index * self._frame_bytes)
            raw = np.frombuffer(handle.read(self._frame_bytes), dtype=np.uint8)
        return _frame_from_raw(raw, self.height, self.width)

    def __iter__(self) -> Iterator[np.ndarray]:
        with open(self.path, "rb") as handle:
            for _ in range(self.num_frames):
                raw = np.frombuffer(handle.read(self._frame_bytes), dtype=np.uint8)
                yield _frame_from_raw(raw, self.height, self.width)


def read_yuv420(path: str, height: int, width: int) -> YUV420Reader:
    """Open a raw planar YUV 4:2:0 8-bit file as a lazy frame sequence.

    Returns a :class:`YUV420Reader`: list-compatible (``len``, index,
    iterate) but O(1) memory — frames decode from disk on access.
    """
    return YUV420Reader(path, height, width)
