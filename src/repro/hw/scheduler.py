"""Maps a decoder layer graph onto the NVCA cores.

Every :class:`repro.core.layerspec.LayerSpec` is assigned to a core:
conv/deconv (and encoder-side attention, via the direct fallback) run
on the SFTC; dfconv runs on the DCC; pooling and element-wise ops are
folded into the streaming pipeline at zero marginal cycles.  Cores
process the graph in dependency order, so the frame latency is the sum
of per-layer occupancies — the conservative (non-overlapped) schedule
the paper's serialized module dataflow implies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.layerspec import LayerGraph, LayerSpec

from .arch import NVCAConfig
from .dcc import DCCLayerCost, dcc_layer_cost
from .sftc import SFTCLayerCost, sftc_layer_cost

__all__ = ["LayerSchedule", "GraphSchedule", "schedule_graph"]


@dataclass(frozen=True)
class LayerSchedule:
    """One layer's placement and cost."""

    layer: LayerSpec
    core: str  # "sftc", "dcc", or "stream"
    cycles: int
    cost: SFTCLayerCost | DCCLayerCost | None


@dataclass
class GraphSchedule:
    """The full mapping of a graph onto the accelerator."""

    graph: LayerGraph
    config: NVCAConfig
    layers: list[LayerSchedule] = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        return sum(entry.cycles for entry in self.layers)

    def core_cycles(self, core: str) -> int:
        return sum(entry.cycles for entry in self.layers if entry.core == core)

    def module_cycles(self, module: str) -> int:
        return sum(
            entry.cycles for entry in self.layers if entry.layer.module == module
        )

    def sftc_sparse_mults(self) -> int:
        return sum(
            entry.cost.sparse_mults
            for entry in self.layers
            if entry.core == "sftc" and entry.cost is not None
        )

    def sftc_provisioned_mult_cycles(self) -> int:
        return sum(
            entry.cost.provisioned_mult_cycles
            for entry in self.layers
            if entry.core == "sftc" and entry.cost is not None
        )

    def direct_macs(self) -> int:
        return self.graph.total_macs()

    def by_core(self, core: str) -> list[LayerSchedule]:
        return [entry for entry in self.layers if entry.core == core]


def _attention_as_direct(layer: LayerSpec, config: NVCAConfig) -> SFTCLayerCost:
    """Attention layers (encoder-side) run as direct GEMMs on the SCU
    multipliers."""
    macs = layer.macs()
    cycles = -(-macs // config.total_multipliers) + config.pipeline_depth
    return SFTCLayerCost(
        layer_name=layer.name,
        mode="direct",
        spatial_tiles=0,
        slots=0,
        cycles=cycles,
        sparse_mults=macs,
        fast_mults=macs,
        direct_macs=macs,
        provisioned_mult_cycles=cycles * config.total_multipliers,
    )


def schedule_graph(graph: LayerGraph, config: NVCAConfig) -> GraphSchedule:
    """Assign every layer to a core and compute its cycle cost."""
    schedule = GraphSchedule(graph=graph, config=config)
    for layer in graph:
        if layer.kind in ("conv", "deconv"):
            cost = sftc_layer_cost(layer, config)
            schedule.layers.append(
                LayerSchedule(layer=layer, core="sftc", cycles=cost.cycles, cost=cost)
            )
        elif layer.kind == "dfconv":
            cost = dcc_layer_cost(layer, config)
            schedule.layers.append(
                LayerSchedule(layer=layer, core="dcc", cycles=cost.cycles, cost=cost)
            )
        elif layer.kind == "attention":
            cost = _attention_as_direct(layer, config)
            schedule.layers.append(
                LayerSchedule(layer=layer, core="sftc", cycles=cost.cycles, cost=cost)
            )
        else:  # pool / eltwise stream through
            schedule.layers.append(
                LayerSchedule(layer=layer, core="stream", cycles=0, cost=None)
            )
    return schedule
