"""Importance factor matrix Q for transform-domain pruning (Eq. 6-7).

Each transform-domain weight ``E[i, j]`` of ``E = G W G^T`` contributes
to every output pixel through the inverse transform ``A^T ( · ) A`` and
interacts with the input through ``B^T X B``.  Pruning on magnitude
alone ignores those propagation gains, so the paper scales magnitudes
with

    Q[i, j] = sqrt( sum_{c,d,q,v} H[c,d,i,j,q,v]^2 ),
    H[c,d,i,j,q,v] = A[i,c] * A[j,d] * B[q,i] * B[v,j]

(indices: c,d over the m output positions, q,v over the p input
positions, i,j over the mu transform positions).  Because H factorizes,
Q also has the closed form

    Q[i, j] = (||A[i,:]|| * ||B[:,i]||) * (||A[j,:]|| * ||B[:,j]||)

— a rank-one matrix.  Both forms are implemented; the test suite checks
they agree, and the closed form is what production code uses.
"""

from __future__ import annotations

import numpy as np

from .transforms import TransformSpec

__all__ = ["importance_tensor_h", "importance_matrix", "importance_matrix_naive"]


def importance_tensor_h(spec: TransformSpec) -> np.ndarray:
    """The full H tensor of Eq. (7), shape (m, m, mu, mu, p, p).

    Exponential in nothing but still large; intended for tests and
    inspection, not the hot path.
    """
    a = spec.a  # (mu, m)
    b = spec.b  # (p, mu)
    return np.einsum("ic,jd,qi,vj->cdijqv", a, a, b, b)


def importance_matrix_naive(spec: TransformSpec) -> np.ndarray:
    """Q via the literal Eq. (6) sum over the H tensor."""
    h = importance_tensor_h(spec)
    return np.sqrt(np.einsum("cdijqv->ij", h**2))


def importance_matrix(spec: TransformSpec) -> np.ndarray:
    """Q via the closed-form factorization (fast path).

    ``q_i = ||A[i, :]||_2 * ||B[:, i]||_2`` and ``Q = q q^T``.
    """
    a_row_norms = np.linalg.norm(spec.a, axis=1)  # (mu,)
    b_col_norms = np.linalg.norm(spec.b, axis=0)  # (mu,)
    q = a_row_norms * b_col_norms
    return np.outer(q, q)
