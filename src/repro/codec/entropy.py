"""Entropy coding: pluggable backends + discretized priors.

The NVC literature the paper builds on (DVC, FVC, DCVC) quantizes
auto-encoder latents and entropy-codes them under a factorized prior.
This module provides the real thing — no estimated-bits shortcuts —
behind a pluggable **entropy backend** seam:

* :class:`EntropyBackend` — the protocol every coder implements: a
  *segment list* (one ``(symbols, SymbolModel)`` pair per contiguous
  run of same-model symbols) in, one byte payload out, and the exact
  inverse on decode.  Backends live in a string-keyed registry
  (:func:`register_entropy_backend` / :func:`get_entropy_backend`),
  mirroring the codec registry in :mod:`repro.pipeline.registry`.
* ``"cacm"`` — the classic CACM'87 integer arithmetic coder
  (:class:`ArithmeticEncoder` / :class:`ArithmeticDecoder`, 32-bit
  registers, pending-bit handling).  Bit I/O is vectorized through
  ``np.packbits``/``np.unpackbits`` but the symbol loop is scalar:
  this is the paper-exact correctness reference.
* ``"rans"`` — the fast path: a vectorized N-lane interleaved rANS
  coder in :mod:`repro.codec.rans`, batching all lane work through
  NumPy so the Python loop runs ``ceil(count / lanes)`` times instead
  of once per symbol.  This is the default backend of both codecs.

Which backend produced a bitstream is recorded in the
:class:`~repro.codec.bitstream.SequenceBitstream` header (format
version 2), so decoders always pick the right one regardless of their
own configuration.

Probability models:

* :class:`SymbolModel` — static cumulative-frequency tables (shared by
  both backends; the rANS table/LUT view is cached per instance).
* :class:`LaplacianModel` — a discretized zero-mean Laplacian over a
  symmetric integer support, the standard factorized latent prior; its
  scale is the only side information a decoder needs.
  :func:`cached_laplacian` / :func:`cached_uniform_model` memoize
  model construction on ``(scale_bits, support)`` so per-channel
  models are built once, not once per frame.

Rates reported anywhere in the evaluation harness come from actual
encoded byte counts, with ``estimate_bits`` (ideal Shannon cost)
available to cross-check coder efficiency.

This registry is one of the three pluggable seams mapped in
``docs/architecture.md``; the header field that pins a stream to its
backend is specified in ``docs/bitstream.md``.
"""

from __future__ import annotations

import functools
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from .bitstream import f16_from_bits

__all__ = [
    "ArithmeticEncoder",
    "ArithmeticDecoder",
    "CacmBackend",
    "EntropyBackend",
    "EntropyBackendError",
    "SymbolModel",
    "LaplacianModel",
    "available_entropy_backends",
    "cached_laplacian",
    "cached_uniform_model",
    "encode_symbols",
    "decode_symbols",
    "estimate_bits",
    "get_entropy_backend",
    "register_entropy_backend",
    "unregister_entropy_backend",
]

_PRECISION = 32
_WHOLE = 1 << _PRECISION
_HALF = _WHOLE >> 1
_QUARTER = _WHOLE >> 2
_MAX_TOTAL = 1 << 16  # keeps span * total within 64-bit headroom

#: rANS probability resolution: every model is re-quantized to integer
#: frequencies summing to exactly 2**14 (same resolution
#: ``SymbolModel.from_pmf`` uses), which makes the rANS slot arithmetic
#: pure shifts/masks and keeps the state within 2**46.
RANS_PRECISION = 14


class SymbolModel:
    """Static frequency table over an alphabet of n symbols.

    Frequencies are positive integers; cumulative sums drive both the
    encoder and decoder.  ``total`` must stay below 2**16 so the
    arithmetic coder's renormalization cannot underflow.
    """

    def __init__(self, frequencies: np.ndarray):
        freqs = np.asarray(frequencies, dtype=np.int64)
        if freqs.ndim != 1 or freqs.size < 1:
            raise ValueError("frequencies must be a 1-D non-empty array")
        if np.any(freqs <= 0):
            raise ValueError("all frequencies must be positive")
        if int(freqs.sum()) >= _MAX_TOTAL:
            # Rescale, preserving positivity.
            scale = (_MAX_TOTAL - freqs.size - 1) / float(freqs.sum())
            freqs = np.maximum(1, (freqs * scale).astype(np.int64))
        self.freqs = freqs
        self.cum = np.concatenate([[0], np.cumsum(freqs)])
        self.total = int(self.cum[-1])
        self._rans_table: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    @property
    def num_symbols(self) -> int:
        """Alphabet size (symbols are the integers ``0..num_symbols-1``)."""
        return int(self.freqs.size)

    def interval(self, symbol: int) -> tuple[int, int]:
        """Cumulative-frequency interval ``[low, high)`` of a symbol —
        the sub-range the arithmetic coder narrows to."""
        return int(self.cum[symbol]), int(self.cum[symbol + 1])

    def probabilities(self) -> np.ndarray:
        """Normalized symbol probabilities (used by :func:`estimate_bits`)."""
        return self.freqs / self.total

    def rans_table(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Frequencies re-quantized to total 2**RANS_PRECISION.

        Returns ``(freqs, cums, slots)`` — uint64 per-symbol frequency
        and cumulative arrays plus the int32 slot->symbol lookup table
        of length 2**RANS_PRECISION that replaces per-symbol
        ``searchsorted`` on the decoder side.  Deterministic (largest
        remainder apportionment), so encoder and decoder derive
        identical tables from identical side information.  Cached per
        instance; combined with :func:`cached_laplacian` the table is
        built once per distinct model, not once per frame.
        """
        if self._rans_table is None:
            target = 1 << RANS_PRECISION
            if self.freqs.size > target:
                raise ValueError(
                    f"alphabet of {self.freqs.size} symbols cannot be "
                    f"represented at rANS precision {RANS_PRECISION} "
                    f"(max {target} symbols); use the 'cacm' backend"
                )
            scaled = self.freqs * (target / self.total)
            base = np.maximum(1, np.floor(scaled).astype(np.int64))
            diff = target - int(base.sum())
            if diff > 0:
                # Hand out the remainder to the largest fractional parts
                # (stable order, so ties resolve identically everywhere).
                order = np.argsort(base - scaled, kind="stable")
                base[order[:diff]] += 1
            while diff < 0:
                # Flooring can overshoot only via the >=1 clamp; claw
                # back from the largest frequencies, never below 1.
                order = np.argsort(-base, kind="stable")
                for index in order:
                    if diff == 0:
                        break
                    if base[index] > 1:
                        base[index] -= 1
                        diff += 1
            freqs = base.astype(np.uint64)
            cums = np.concatenate([[0], np.cumsum(base)]).astype(np.uint64)
            slots = np.repeat(
                np.arange(base.size, dtype=np.int32), base
            )
            self._rans_table = (freqs, cums[:-1], slots)
        return self._rans_table

    @classmethod
    def from_pmf(cls, pmf: np.ndarray, precision_total: int = 1 << 14) -> "SymbolModel":
        """Quantize a probability mass function to integer frequencies."""
        pmf = np.asarray(pmf, dtype=np.float64)
        if np.any(pmf < 0) or pmf.sum() <= 0:
            raise ValueError("pmf must be non-negative with positive mass")
        freqs = np.maximum(1, np.round(pmf / pmf.sum() * precision_total)).astype(
            np.int64
        )
        return cls(freqs)


class ArithmeticEncoder:
    """Integer arithmetic encoder (Witten-Neal-Cleary construction)."""

    def __init__(self):
        self._low = 0
        self._high = _WHOLE - 1
        self._pending = 0
        self._bits: list[int] = []
        self._finished = False

    def _emit(self, bit: int) -> None:
        self._bits.append(bit)
        inverse = 1 - bit
        for _ in range(self._pending):
            self._bits.append(inverse)
        self._pending = 0

    def encode(self, symbol: int, model: SymbolModel) -> None:
        """Narrow the coding interval to ``symbol``'s sub-range,
        emitting renormalization bits as the range tightens."""
        if self._finished:
            raise RuntimeError("encoder already finished")
        lo, hi = model.interval(symbol)
        span = self._high - self._low + 1
        self._high = self._low + span * hi // model.total - 1
        self._low = self._low + span * lo // model.total
        while True:
            if self._high < _HALF:
                self._emit(0)
            elif self._low >= _HALF:
                self._emit(1)
                self._low -= _HALF
                self._high -= _HALF
            elif self._low >= _QUARTER and self._high < 3 * _QUARTER:
                self._pending += 1
                self._low -= _QUARTER
                self._high -= _QUARTER
            else:
                break
            self._low <<= 1
            self._high = (self._high << 1) | 1

    def finish(self) -> bytes:
        """Flush and return the encoded payload.

        Bit packing is vectorized: ``np.packbits`` consumes the whole
        bit list at once (MSB-first, zero-padded to a byte boundary —
        byte-identical to packing the bits one at a time).
        """
        if not self._finished:
            self._pending += 1
            self._emit(0 if self._low < _QUARTER else 1)
            self._finished = True
        if not self._bits:
            return b""
        return np.packbits(np.asarray(self._bits, dtype=np.uint8)).tobytes()


class ArithmeticDecoder:
    """Mirror of :class:`ArithmeticEncoder` over a byte payload."""

    def __init__(self, data: bytes):
        # Vectorized unpacking (the inverse of np.packbits in finish);
        # a plain list makes the per-bit reads cheap Python indexing.
        self._bits = (
            np.unpackbits(np.frombuffer(data, dtype=np.uint8)).tolist()
            if data
            else []
        )
        self._pos = 0
        self._low = 0
        self._high = _WHOLE - 1
        self._value = 0
        for _ in range(_PRECISION):
            self._value = (self._value << 1) | self._next_bit()

    def _next_bit(self) -> int:
        if self._pos < len(self._bits):
            bit = self._bits[self._pos]
            self._pos += 1
            return bit
        return 0  # zero-padding past the payload is part of the scheme

    def decode(self, model: SymbolModel) -> int:
        """Next symbol under ``model`` — the exact inverse of
        :meth:`ArithmeticEncoder.encode` given the same model sequence."""
        span = self._high - self._low + 1
        scaled = ((self._value - self._low + 1) * model.total - 1) // span
        symbol = int(np.searchsorted(model.cum, scaled, side="right") - 1)
        lo, hi = model.interval(symbol)
        self._high = self._low + span * hi // model.total - 1
        self._low = self._low + span * lo // model.total
        while True:
            if self._high < _HALF:
                pass
            elif self._low >= _HALF:
                self._low -= _HALF
                self._high -= _HALF
                self._value -= _HALF
            elif self._low >= _QUARTER and self._high < 3 * _QUARTER:
                self._low -= _QUARTER
                self._high -= _QUARTER
                self._value -= _QUARTER
            else:
                break
            self._low <<= 1
            self._high = (self._high << 1) | 1
            self._value = (self._value << 1) | self._next_bit()
        return symbol


class LaplacianModel:
    """Discretized zero-mean Laplacian over integers [-support, support].

    ``p(q) = integral over [q - 0.5, q + 0.5]`` of the Laplace density
    with scale ``b``, with tails folded into the extreme symbols — the
    factorized prior used for quantized latents.  Values outside the
    support are clipped by the caller before encoding.
    """

    def __init__(self, scale: float, support: int):
        if scale <= 0:
            raise ValueError("scale must be positive")
        if support < 1:
            raise ValueError("support must be >= 1")
        self.scale = float(scale)
        self.support = int(support)
        q = np.arange(-support, support + 1, dtype=np.float64)
        upper = self._cdf(q + 0.5)
        lower = self._cdf(q - 0.5)
        pmf = upper - lower
        pmf[0] += self._cdf(-support - 0.5)
        pmf[-1] += 1.0 - self._cdf(support + 0.5)
        self.pmf = pmf / pmf.sum()
        self.model = SymbolModel.from_pmf(self.pmf)

    def _cdf(self, x: np.ndarray) -> np.ndarray:
        # Exponents clipped: exp(-746) underflows to 0.0 exactly, which
        # is the correct tail limit, so clipping loses nothing.
        z = np.clip(np.asarray(x, dtype=np.float64) / self.scale, -745.0, 745.0)
        return np.where(
            z < 0,
            0.5 * np.exp(np.minimum(z, 0.0)),
            1.0 - 0.5 * np.exp(np.minimum(-z, 0.0)),
        )

    def symbol_of(self, value: int) -> int:
        return int(np.clip(value, -self.support, self.support)) + self.support

    def value_of(self, symbol: int) -> int:
        return symbol - self.support

    @staticmethod
    def fit_scale(values: np.ndarray) -> float:
        """Laplacian MLE: scale = mean absolute value (floored)."""
        return max(float(np.mean(np.abs(values))), 1e-3)


@functools.lru_cache(maxsize=256)
def cached_laplacian(scale_bits: int, support: int) -> LaplacianModel:
    """Memoized :class:`LaplacianModel` keyed on its wire representation.

    ``scale_bits`` is the f16 bit pattern that travels as side
    information, so encoder and decoder hit the same cache entry and
    derive bit-identical tables.  The 1e-3 scale floor matches what
    both codecs applied when building models inline.
    """
    return LaplacianModel(max(f16_from_bits(scale_bits), 1e-3), support)


@functools.lru_cache(maxsize=64)
def cached_uniform_model(num_symbols: int) -> SymbolModel:
    """Memoized uniform model (used for motion-vector coding)."""
    return SymbolModel(np.ones(num_symbols, dtype=np.int64))


# -- backend protocol + registry --------------------------------------------


class EntropyBackendError(ValueError):
    """Registration conflict or unknown-backend lookup."""


@runtime_checkable
class EntropyBackend(Protocol):
    """What the codecs require of an entropy coder.

    A *segment* is a maximal run of symbols coded under one static
    :class:`SymbolModel`; a chunk payload codes an ordered list of
    segments.  ``decode_segments`` is the exact inverse of
    ``encode_segments`` given the same (count, model) spec list —
    byte-exact round-trips are property-tested for every registered
    backend.  Payload layout is backend-specific; the bitstream header
    records which backend wrote a stream.
    """

    name: str

    def encode_segments(
        self, segments: Sequence[tuple[np.ndarray, SymbolModel]]
    ) -> bytes:
        ...

    def decode_segments(
        self, data: bytes, segments: Sequence[tuple[int, SymbolModel]]
    ) -> list[np.ndarray]:
        ...


class CacmBackend:
    """The CACM'87 arithmetic coder behind the backend seam.

    Symbols are still coded one at a time (this is the paper-exact
    reference; the fast path is ``"rans"``), but segments arrive with
    symbol mapping already vectorized by the caller and the bit I/O is
    array-packed, so it is usable on non-trivial payloads.
    """

    name = "cacm"

    def encode_segments(
        self, segments: Sequence[tuple[np.ndarray, SymbolModel]]
    ) -> bytes:
        encoder = ArithmeticEncoder()
        encode = encoder.encode
        for symbols, model in segments:
            for symbol in np.asarray(symbols, dtype=np.int64).ravel().tolist():
                encode(symbol, model)
        return encoder.finish()

    def decode_segments(
        self, data: bytes, segments: Sequence[tuple[int, SymbolModel]]
    ) -> list[np.ndarray]:
        decoder = ArithmeticDecoder(data)
        decode = decoder.decode
        out: list[np.ndarray] = []
        for count, model in segments:
            values = np.empty(int(count), dtype=np.int64)
            for index in range(int(count)):
                values[index] = decode(model)
            out.append(values)
        return out


_BACKENDS: dict[str, EntropyBackend] = {}


def register_entropy_backend(
    name: str, backend: EntropyBackend, *, overwrite: bool = False
) -> EntropyBackend:
    """Register an entropy backend instance under ``name``.

    Mirrors :func:`repro.pipeline.registry.register_codec`:
    re-registering an existing name raises unless ``overwrite=True``.
    """
    if not name or not isinstance(name, str):
        raise EntropyBackendError(
            f"backend name must be a non-empty string, got {name!r}"
        )
    if name in _BACKENDS and not overwrite:
        raise EntropyBackendError(
            f"entropy backend {name!r} is already registered; "
            "pass overwrite=True to replace it"
        )
    _BACKENDS[name] = backend
    return backend


def unregister_entropy_backend(name: str) -> None:
    """Remove a registration (mainly for tests and plugin teardown)."""
    _BACKENDS.pop(name, None)


def available_entropy_backends() -> list[str]:
    """Sorted names of every registered backend."""
    _ensure_builtin_backends()
    return sorted(_BACKENDS)


def get_entropy_backend(name: str) -> EntropyBackend:
    """Look up a backend, with a helpful unknown-name error."""
    _ensure_builtin_backends()
    try:
        return _BACKENDS[name]
    except KeyError:
        raise EntropyBackendError(
            f"unknown entropy backend {name!r}; "
            f"available: {', '.join(sorted(_BACKENDS))}"
        ) from None


def _ensure_builtin_backends() -> None:
    # The rANS module registers itself on import; importing it lazily
    # here keeps `repro.codec.entropy` usable standalone while making
    # "rans" resolvable wherever the registry is consulted.  Built-ins
    # also self-heal after unregister_entropy_backend (the import is a
    # cached no-op the second time, so re-register explicitly).
    if "cacm" not in _BACKENDS:
        _BACKENDS["cacm"] = CacmBackend()
    if "rans" not in _BACKENDS:
        from . import rans

        if "rans" not in _BACKENDS:
            _BACKENDS["rans"] = rans.RansBackend()


register_entropy_backend("cacm", CacmBackend())


# -- convenience single-model helpers ---------------------------------------


def encode_symbols(
    symbols: np.ndarray,
    model: SymbolModel,
    backend: EntropyBackend | str = "cacm",
) -> bytes:
    """Encode an integer symbol array under one static model."""
    if isinstance(backend, str):
        backend = get_entropy_backend(backend)
    return backend.encode_segments(
        [(np.asarray(symbols, dtype=np.int64).ravel(), model)]
    )


def decode_symbols(
    data: bytes,
    count: int,
    model: SymbolModel,
    backend: EntropyBackend | str = "cacm",
) -> np.ndarray:
    """Decode ``count`` symbols; exact inverse of :func:`encode_symbols`."""
    if isinstance(backend, str):
        backend = get_entropy_backend(backend)
    return backend.decode_segments(data, [(count, model)])[0]


def estimate_bits(symbols: np.ndarray, model: SymbolModel) -> float:
    """Ideal Shannon cost of a symbol stream under the model, in bits."""
    probs = model.probabilities()
    syms = np.asarray(symbols, dtype=np.int64).ravel()
    return float(np.sum(-np.log2(probs[syms])))
