"""Tests for transform-domain pruning (Eq. 8-9)."""

import numpy as np
import pytest

from repro.core import (
    PAPER_F23,
    PAPER_T3_64,
    prune_transform_weights,
    sparsity_of_mask,
)


@pytest.fixture
def rng():
    return np.random.default_rng(31)


class TestBalancedPruning:
    @pytest.mark.parametrize("rho", [0.0, 0.25, 0.5, 0.75])
    def test_exact_sparsity(self, rng, rho):
        w = rng.standard_normal((6, 5, 3, 3))
        pruned = prune_transform_weights(w, PAPER_F23, rho=rho, mode="balanced")
        keep = round((1 - rho) * 16)
        assert np.all(pruned.nonzeros_per_patch() == keep)
        assert pruned.achieved_sparsity == pytest.approx(1 - keep / 16)

    def test_deconv_sparsity(self, rng):
        w = rng.standard_normal((4, 3, 4, 4))
        pruned = prune_transform_weights(w, PAPER_T3_64, rho=0.5, mode="balanced")
        assert np.all(pruned.nonzeros_per_patch() == 32)
        assert pruned.achieved_sparsity == pytest.approx(0.5)

    def test_mask_is_binary(self, rng):
        w = rng.standard_normal((2, 2, 3, 3))
        pruned = prune_transform_weights(w, PAPER_F23, rho=0.5)
        assert set(np.unique(pruned.mask)) <= {0.0, 1.0}

    def test_values_respect_mask(self, rng):
        w = rng.standard_normal((2, 2, 3, 3))
        pruned = prune_transform_weights(w, PAPER_F23, rho=0.5)
        assert np.all(pruned.values[pruned.mask == 0] == 0.0)
        transformed = PAPER_F23.transform_kernel_2d(w)
        kept = pruned.mask == 1
        assert np.allclose(pruned.values[kept], transformed[kept])

    def test_keeps_highest_scores(self, rng):
        """Within each patch the survivors are exactly the top Q^2 E^2."""
        from repro.core import importance_matrix

        w = rng.standard_normal((1, 1, 3, 3))
        pruned = prune_transform_weights(w, PAPER_F23, rho=0.5)
        e = PAPER_F23.transform_kernel_2d(w)[0, 0]
        q = importance_matrix(PAPER_F23)
        scores = (q**2 * e**2).ravel()
        kept = pruned.mask[0, 0].ravel() > 0
        assert scores[kept].min() >= scores[~kept].max() - 1e-12


class TestGlobalPruning:
    @pytest.mark.parametrize("rho", [0.25, 0.5, 0.75])
    def test_exact_overall_sparsity(self, rng, rho):
        w = rng.standard_normal((8, 7, 3, 3))
        pruned = prune_transform_weights(w, PAPER_F23, rho=rho, mode="global")
        assert pruned.achieved_sparsity == pytest.approx(rho, abs=1e-9)

    def test_threshold_recorded(self, rng):
        w = rng.standard_normal((4, 4, 3, 3))
        pruned = prune_transform_weights(w, PAPER_F23, rho=0.5, mode="global")
        assert np.isfinite(pruned.threshold)

    def test_threshold_semantics(self, rng):
        """Eq. (8): kept entries score above zeta, pruned at or below."""
        from repro.core import importance_matrix

        w = rng.standard_normal((3, 3, 3, 3))
        pruned = prune_transform_weights(w, PAPER_F23, rho=0.5, mode="global")
        q = importance_matrix(PAPER_F23)
        scores = (q**2) * (PAPER_F23.transform_kernel_2d(w) ** 2)
        assert scores[pruned.mask > 0].min() >= pruned.threshold
        assert scores[pruned.mask == 0].max() <= pruned.threshold

    def test_rho_zero_keeps_all(self, rng):
        w = rng.standard_normal((2, 2, 3, 3))
        pruned = prune_transform_weights(w, PAPER_F23, rho=0.0, mode="global")
        assert pruned.achieved_sparsity == 0.0


class TestValidation:
    def test_bad_rho(self, rng):
        w = rng.standard_normal((2, 2, 3, 3))
        with pytest.raises(ValueError):
            prune_transform_weights(w, PAPER_F23, rho=1.0)
        with pytest.raises(ValueError):
            prune_transform_weights(w, PAPER_F23, rho=-0.1)

    def test_bad_mode(self, rng):
        w = rng.standard_normal((2, 2, 3, 3))
        with pytest.raises(ValueError):
            prune_transform_weights(w, PAPER_F23, rho=0.5, mode="magnitude")

    def test_kernel_size_mismatch(self, rng):
        w = rng.standard_normal((2, 2, 5, 5))
        with pytest.raises(ValueError):
            prune_transform_weights(w, PAPER_F23, rho=0.5)

    def test_sparsity_of_mask(self):
        mask = np.array([1.0, 0.0, 0.0, 1.0])
        assert sparsity_of_mask(mask) == pytest.approx(0.5)
