"""Streaming codec sessions: frame-at-a-time encode and decode.

The batch API (``encode_sequence(list) -> SequenceBitstream``) holds
every frame and every packet in memory and emits nothing until the
whole clip is done — fine for the paper's short clips, structurally
wrong for long sequences.  This module is the per-frame state machine
underneath both codecs:

* :class:`EncoderSession` — ``push(frame) -> list[FramePacket]``
  yields coded packets as frames arrive; ``flush()`` drains whatever a
  (future, lookahead-buffering) codec still holds.  ``header`` is the
  stream header, available once the first frame fixed the geometry.
* :class:`DecoderSession` — ``push(packet)`` consumes packets in
  stream order; ``pull() -> frame | None`` hands back reconstructions
  as they become available.

:class:`GopEncoderSession` / :class:`GopDecoderSession` implement the
I/P GOP structure shared by ``CTVCNet`` and ``ClassicalCodec``: the
intra/inter reference handling that used to live inside the monolithic
``encode_sequence`` loops moves into session state (``_reference``,
``_index``), and the batch methods are now thin wrappers over these
sessions — so streaming and batch are bit-identical by construction.

Sessions pair with the incremental container
(:class:`~repro.codec.bitstream.StreamWriter` /
:class:`~repro.codec.bitstream.StreamReader`; byte layout in
``docs/bitstream.md``) so a long sequence encodes file-to-file in O(1)
frame memory:

>>> with open("clip.nvca", "wb") as out:          # doctest: +SKIP
...     session = codec.open_encoder()
...     writer = None
...     for frame in source:
...         for packet in session.push(frame):
...             if writer is None:
...                 writer = StreamWriter(out, session.header)
...             writer.write_packet(packet)
...     for packet in session.flush():
...         writer.write_packet(packet)
...     writer.finalize()
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.obs import tracing as _obs
from repro.obs.metrics import get_registry as _obs_registry

from .bitstream import FramePacket

__all__ = [
    "DecoderSession",
    "EncoderSession",
    "GopDecoderSession",
    "GopEncoderSession",
    "SessionError",
]


class SessionError(RuntimeError):
    """Misuse of a streaming session (pushing after close, reading the
    header before the first frame, streaming an unstreamable codec)."""


class EncoderSession:
    """Frame-at-a-time encoder: feed frames, receive coded packets.

    Subclasses implement :meth:`push`; codecs that buffer lookahead
    frames also override :meth:`flush`.  The session is a context
    manager; leaving the ``with`` block closes it (``close`` does not
    flush — drain explicitly so no packet is silently dropped).
    """

    def __init__(self) -> None:
        self._header: dict | None = None
        self._closed = False

    @property
    def header(self) -> dict:
        """The stream header.  Geometry comes from the first frame, so
        this raises until the first :meth:`push`."""
        if self._header is None:
            raise SessionError(
                "stream header is not known until the first frame is pushed"
            )
        return self._header

    def push(self, frame: np.ndarray) -> list[FramePacket]:
        """Code one frame; returns the packets it produced (possibly
        none for a buffering codec, possibly several after a stall)."""
        raise NotImplementedError

    def flush(self) -> list[FramePacket]:
        """Drain any buffered frames at end of stream (default: none)."""
        self._check_open()
        return []

    def encode_iter(self, frames: Iterable[np.ndarray]) -> Iterator[FramePacket]:
        """Convenience: push every frame, then flush, yielding packets
        as they appear.  O(1) frame memory when ``frames`` is lazy."""
        for frame in frames:
            yield from self.push(frame)
        yield from self.flush()

    def close(self) -> None:
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise SessionError("session is closed")

    def __enter__(self) -> "EncoderSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class DecoderSession:
    """Packet-at-a-time decoder: feed packets, pull reconstructions.

    ``push`` consumes one :class:`FramePacket` in stream order;
    ``pull`` returns the next decoded frame, or ``None`` when no frame
    is ready yet (a buffering codec may need several packets per
    frame).  Decoded frames queue internally, so push/pull cadence is
    up to the caller.
    """

    def __init__(self) -> None:
        self._ready: deque[np.ndarray] = deque()
        self._closed = False

    def push(self, packet: FramePacket) -> None:
        """Consume one packet in stream order; decoded frames surface
        through :meth:`pull` (possibly not until later packets)."""
        raise NotImplementedError

    def pull(self) -> np.ndarray | None:
        """Next decoded frame in display order, or ``None`` if none is
        ready."""
        return self._ready.popleft() if self._ready else None

    def flush(self) -> list[np.ndarray]:
        """Drain every frame still queued at end of stream."""
        out = list(self._ready)
        self._ready.clear()
        return out

    def decode_iter(self, packets: Iterable[FramePacket]) -> Iterator[np.ndarray]:
        """Convenience: push every packet, yielding frames as they
        become available.  O(1) frame memory when ``packets`` is lazy."""
        for packet in packets:
            self.push(packet)
            frame = self.pull()
            while frame is not None:
                yield frame
                frame = self.pull()
        yield from self.flush()

    def close(self) -> None:
        self._closed = True
        self._ready.clear()

    def _check_open(self) -> None:
        if self._closed:
            raise SessionError("session is closed")

    def __enter__(self) -> "DecoderSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class GopEncoderSession(EncoderSession):
    """The I/P GOP state machine both built-in codecs share.

    ``intra(frame)`` and ``inter(frame, reference)`` return
    ``(packet, reconstruction)``; the reconstruction becomes the next
    reference (the closed loop).  Every GOP boundary re-keys with an
    I-frame.  One packet out per frame in — no lookahead.

    ``rate_control`` hooks a
    :class:`~repro.codec.rate_control.RateController` into the loop:
    before each frame the session asks it for a QP (``frame_qp``) and
    applies it through ``apply_qp`` (the codec's per-frame QP setter);
    after each frame it feeds back the coded size (``observe``) and the
    budget ledger.  A non-adaptive controller (``"cqp"``) is bypassed
    entirely — no ``apply_qp``, no ledger, no ``observe`` — so its
    packets are byte-identical to running with no controller at all and
    the encode costs the same.
    """

    def __init__(
        self,
        *,
        intra: Callable[[np.ndarray], tuple[FramePacket, np.ndarray]],
        inter: Callable[[np.ndarray, np.ndarray], tuple[FramePacket, np.ndarray]],
        gop: int,
        make_header: Callable[[np.ndarray], dict],
        rate_control=None,
        apply_qp: Callable[[float], None] | None = None,
    ):
        super().__init__()
        self._intra = intra
        self._inter = inter
        self._gop = gop
        self._make_header = make_header
        self._reference: np.ndarray | None = None
        self._index = 0
        self._rate_control = rate_control
        self._apply_qp = apply_qp
        self._budget = rate_control.new_state() if rate_control else None
        if rate_control is not None and rate_control.adaptive and apply_qp is None:
            raise SessionError(
                "an adaptive rate controller needs an apply_qp hook"
            )

    @property
    def budget(self):
        """The :class:`~repro.codec.rate_control.BudgetState` ledger
        (``None`` when no rate controller is attached)."""
        return self._budget

    def push(self, frame: np.ndarray) -> list[FramePacket]:
        self._check_open()
        if self._header is None:
            self._header = self._make_header(frame)
        frame_type = (
            "I" if self._index % self._gop == 0 or self._reference is None
            else "P"
        )
        rc = self._rate_control
        adaptive = rc is not None and rc.adaptive
        qp = None
        if adaptive:
            qp = rc.frame_qp(frame_type, self._budget)
            self._apply_qp(qp)
        # Observability rides the same bypass idiom as rate control:
        # disabled, span() returns a shared no-op and nothing below
        # reads a clock; timing never touches packet bytes either way.
        with _obs.span("encode.frame", frame_type=frame_type,
                       index=self._index):
            if frame_type == "I":
                packet, self._reference = self._intra(frame)
            else:
                packet, self._reference = self._inter(frame, self._reference)
        if _obs.enabled():
            _obs_registry().counter(
                "repro_frames_encoded_total", "frames coded by GOP sessions"
            ).inc(frame_type=frame_type)
        self._index += 1
        if adaptive:
            # charging the ledger costs one extra serialize per packet,
            # so the non-adaptive path skips the whole feedback loop —
            # nothing would ever read the budget it maintains.
            bits = 8 * len(packet.serialize())
            self._budget.record(frame_type, bits)
            rc.observe(frame_type, qp, bits)
        return [packet]


class GopDecoderSession(DecoderSession):
    """Decoder side of the GOP state machine: I-frames reset the
    reference, P-frames predict from the previous reconstruction."""

    def __init__(
        self,
        *,
        intra: Callable[[FramePacket], np.ndarray],
        inter: Callable[[FramePacket, np.ndarray], np.ndarray],
    ):
        super().__init__()
        self._intra = intra
        self._inter = inter
        self._reference: np.ndarray | None = None

    def push(self, packet: FramePacket) -> None:
        self._check_open()
        if packet.frame_type == "I":
            self._reference = self._intra(packet)
        else:
            if self._reference is None:
                raise ValueError("P-frame before any I-frame")
            self._reference = self._inter(packet, self._reference)
        self._ready.append(self._reference)
