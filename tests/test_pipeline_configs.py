"""Config serialization: dict/JSON round-trips and validation errors."""

import json

import pytest

from repro.codec import ClassicalCodecConfig, CTVCConfig
from repro.hw import NVCAConfig
from repro.hw.arch import BufferSpec
from repro.pipeline import CONFIG_TYPES, ConfigError, load_config
from repro.video import SceneConfig

ALL_CONFIGS = [
    CTVCConfig(channels=8, qstep=16.0, intra_qp=12.0),
    ClassicalCodecConfig(qp=24.0, half_pel=True),
    NVCAConfig(rho=0.25, input_buffer=BufferSpec("input", 128.0, banks=8)),
    SceneConfig(height=64, width=96, pan_velocity=(0.1, -2.5)),
]


class TestRoundTrips:
    @pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: type(c).__name__)
    def test_dict_round_trip(self, config):
        restored = type(config).from_dict(config.to_dict())
        assert restored == config

    @pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: type(c).__name__)
    def test_json_round_trip(self, config):
        text = config.to_json()
        json.loads(text)  # genuinely valid JSON
        assert type(config).from_json(text) == config

    @pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: type(c).__name__)
    def test_to_dict_is_json_types_only(self, config):
        # A second dump after a parse round-trip must be identical —
        # i.e. nothing non-JSON (tuples, numpy, dataclasses) leaks out.
        once = json.loads(config.to_json())
        assert json.loads(json.dumps(once)) == once

    def test_defaults_round_trip(self):
        for cls in (CTVCConfig, ClassicalCodecConfig, NVCAConfig, SceneConfig):
            assert cls.from_dict(cls().to_dict()) == cls()

    def test_partial_dict_uses_defaults(self):
        cfg = CTVCConfig.from_dict({"channels": 4})
        assert cfg.channels == 4
        assert cfg.qstep == CTVCConfig().qstep

    def test_tuple_coercion(self):
        cfg = SceneConfig.from_dict({"pan_velocity": [1, 2]})
        assert cfg.pan_velocity == (1.0, 2.0)

    def test_nested_buffer_spec(self):
        data = NVCAConfig().to_dict()
        data["weight_buffer"]["kbytes"] = 128.0
        cfg = NVCAConfig.from_dict(data)
        assert isinstance(cfg.weight_buffer, BufferSpec)
        assert cfg.weight_buffer.kbytes == 128.0

    def test_optional_none_round_trip(self):
        cfg = CTVCConfig(intra_qp=None)
        assert CTVCConfig.from_dict(cfg.to_dict()).intra_qp is None

    def test_replace(self):
        cfg = CTVCConfig().replace(qstep=32.0)
        assert cfg.qstep == 32.0
        assert cfg.channels == CTVCConfig().channels


class TestValidation:
    def test_unknown_field_names_valid_fields(self):
        with pytest.raises(ConfigError, match="unknown field.*chanels"):
            CTVCConfig.from_dict({"chanels": 3})
        with pytest.raises(ConfigError, match="valid fields"):
            SceneConfig.from_dict({"hieght": 1})

    def test_wrong_type_names_field(self):
        with pytest.raises(ConfigError, match="CTVCConfig.channels"):
            CTVCConfig.from_dict({"channels": "twelve"})

    def test_tuple_arity_checked(self):
        with pytest.raises(ConfigError, match="pan_velocity"):
            SceneConfig.from_dict({"pan_velocity": [1.0, 2.0, 3.0]})

    def test_domain_validation_propagates(self):
        with pytest.raises(ConfigError, match="rho"):
            NVCAConfig.from_dict({"rho": 1.5})

    def test_invalid_json_text(self):
        with pytest.raises(ConfigError, match="invalid JSON"):
            CTVCConfig.from_json("{not json")

    def test_non_mapping_rejected(self):
        with pytest.raises(ConfigError, match="mapping"):
            CTVCConfig.from_dict([1, 2, 3])


class TestLoadConfig:
    def test_type_discriminator(self):
        for name, cls in CONFIG_TYPES.items():
            cfg = load_config({"type": name})
            assert isinstance(cfg, cls)

    def test_written_back_document_loads(self):
        cfg = CTVCConfig(channels=8)
        doc = {"type": "ctvc", **cfg.to_dict()}
        assert load_config(doc) == cfg

    def test_missing_type(self):
        with pytest.raises(ConfigError, match="'type'"):
            load_config({"channels": 8})

    def test_unknown_type(self):
        with pytest.raises(ConfigError, match="unknown config type"):
            load_config({"type": "av1"})
