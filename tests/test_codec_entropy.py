"""Tests for the arithmetic coder and probability models."""

import numpy as np
import pytest

from repro.codec import (
    ArithmeticDecoder,
    ArithmeticEncoder,
    LaplacianModel,
    SymbolModel,
    decode_symbols,
    encode_symbols,
    estimate_bits,
)


@pytest.fixture
def rng():
    return np.random.default_rng(71)


class TestSymbolModel:
    def test_basic_intervals(self):
        model = SymbolModel(np.array([1, 2, 3]))
        assert model.total == 6
        assert model.interval(0) == (0, 1)
        assert model.interval(1) == (1, 3)
        assert model.interval(2) == (3, 6)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            SymbolModel(np.array([1, 0, 2]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            SymbolModel(np.array([]))

    def test_large_totals_rescaled(self):
        model = SymbolModel(np.full(10, 10**9))
        assert model.total < 1 << 16
        assert np.all(model.freqs > 0)

    def test_from_pmf(self):
        model = SymbolModel.from_pmf(np.array([0.5, 0.25, 0.25]))
        probs = model.probabilities()
        assert probs[0] == pytest.approx(0.5, abs=0.01)

    def test_from_pmf_rejects_negative(self):
        with pytest.raises(ValueError):
            SymbolModel.from_pmf(np.array([0.5, -0.1]))

    def test_pmf_zero_gets_nonzero_freq(self):
        model = SymbolModel.from_pmf(np.array([1.0, 0.0, 0.0]))
        assert np.all(model.freqs > 0)  # decodability guarantee


class TestArithmeticCoder:
    def test_roundtrip_uniform(self, rng):
        model = SymbolModel(np.ones(16, dtype=np.int64))
        symbols = rng.integers(0, 16, size=2000)
        data = encode_symbols(symbols, model)
        assert np.array_equal(decode_symbols(data, len(symbols), model), symbols)

    def test_roundtrip_skewed(self, rng):
        model = SymbolModel(np.array([1000, 10, 5, 2, 1]))
        symbols = rng.choice(5, size=3000, p=model.probabilities())
        data = encode_symbols(symbols, model)
        assert np.array_equal(decode_symbols(data, len(symbols), model), symbols)

    def test_compression_near_entropy(self, rng):
        model = SymbolModel(np.array([100, 50, 25, 12, 6, 3, 2, 1]))
        symbols = rng.choice(8, size=8000, p=model.probabilities())
        data = encode_symbols(symbols, model)
        ideal = estimate_bits(symbols, model)
        actual = 8 * len(data)
        assert actual >= ideal - 8  # cannot beat entropy
        assert actual <= ideal * 1.01 + 64  # within 1% + slack

    def test_skewed_beats_uniform_coding(self, rng):
        model = SymbolModel(np.array([1000, 1, 1, 1]))
        symbols = np.zeros(5000, dtype=np.int64)
        data = encode_symbols(symbols, model)
        assert 8 * len(data) < 0.05 * len(symbols) * 2  # << 2 bits/sym

    def test_single_symbol_stream(self):
        model = SymbolModel(np.array([3, 1]))
        data = encode_symbols(np.array([0]), model)
        assert decode_symbols(data, 1, model)[0] == 0

    def test_empty_stream(self):
        model = SymbolModel(np.array([1, 1]))
        encoder = ArithmeticEncoder()
        data = encoder.finish()
        assert isinstance(data, bytes)

    def test_encoder_finish_idempotent_guard(self):
        encoder = ArithmeticEncoder()
        model = SymbolModel(np.array([1, 1]))
        encoder.encode(0, model)
        encoder.finish()
        with pytest.raises(RuntimeError):
            encoder.encode(1, model)

    def test_packbits_finish_matches_reference_packing(self, rng):
        """finish() packs via np.packbits; byte-identical to packing the
        bit list manually (MSB first, zero padding)."""
        model = SymbolModel(np.array([7, 3, 2, 1]))
        symbols = rng.choice(4, size=257, p=model.probabilities())
        encoder = ArithmeticEncoder()
        for symbol in symbols:
            encoder.encode(int(symbol), model)
        # reference packing of the same pending-flushed bit list
        reference = ArithmeticEncoder()
        for symbol in symbols:
            reference.encode(int(symbol), model)
        reference._pending += 1
        reference._emit(0 if reference._low < (1 << 30) else 1)
        reference._finished = True
        bits = reference._bits
        padded = bits + [0] * ((-len(bits)) % 8)
        expected = bytearray()
        for i in range(0, len(padded), 8):
            byte = 0
            for bit in padded[i : i + 8]:
                byte = (byte << 1) | bit
            expected.append(byte)
        assert encoder.finish() == bytes(expected)

    def test_decode_symbols_preallocated_dtype(self, rng):
        model = SymbolModel(np.array([5, 3, 2]))
        symbols = rng.choice(3, size=64, p=model.probabilities())
        out = decode_symbols(encode_symbols(symbols, model), 64, model)
        assert out.dtype == np.int64
        assert np.array_equal(out, symbols)

    def test_encode_symbols_backend_parameter(self, rng):
        model = SymbolModel(np.array([9, 4, 2, 1]))
        symbols = rng.choice(4, size=500, p=model.probabilities())
        for backend in ("cacm", "rans"):
            data = encode_symbols(symbols, model, backend=backend)
            out = decode_symbols(data, 500, model, backend=backend)
            assert np.array_equal(out, symbols)

    def test_decoder_streaming_interface(self, rng):
        model = SymbolModel(np.array([5, 3, 2]))
        symbols = rng.choice(3, size=100, p=model.probabilities())
        data = encode_symbols(symbols, model)
        decoder = ArithmeticDecoder(data)
        out = [decoder.decode(model) for _ in range(100)]
        assert np.array_equal(out, symbols)

    def test_two_models_interleaved(self, rng):
        """Streams may switch models mid-sequence (the codecs do)."""
        model_a = SymbolModel(np.array([10, 1]))
        model_b = SymbolModel(np.array([1, 1, 1, 1]))
        encoder = ArithmeticEncoder()
        syms_a = rng.integers(0, 2, 50)
        syms_b = rng.integers(0, 4, 50)
        for a, b in zip(syms_a, syms_b):
            encoder.encode(int(a), model_a)
            encoder.encode(int(b), model_b)
        decoder = ArithmeticDecoder(encoder.finish())
        for a, b in zip(syms_a, syms_b):
            assert decoder.decode(model_a) == a
            assert decoder.decode(model_b) == b


class TestLaplacianModel:
    def test_pmf_sums_to_one(self):
        model = LaplacianModel(scale=2.0, support=16)
        assert model.pmf.sum() == pytest.approx(1.0)

    def test_pmf_symmetric_and_peaked(self):
        model = LaplacianModel(scale=3.0, support=8)
        assert np.allclose(model.pmf, model.pmf[::-1])
        assert np.argmax(model.pmf) == 8  # zero symbol

    def test_symbol_value_roundtrip(self):
        model = LaplacianModel(scale=1.0, support=4)
        for value in range(-4, 5):
            assert model.value_of(model.symbol_of(value)) == value

    def test_out_of_range_clipped(self):
        model = LaplacianModel(scale=1.0, support=4)
        assert model.value_of(model.symbol_of(100)) == 4

    def test_smaller_scale_more_peaked(self):
        narrow = LaplacianModel(scale=0.5, support=8)
        wide = LaplacianModel(scale=4.0, support=8)
        assert narrow.pmf[8] > wide.pmf[8]

    def test_fit_scale(self, rng):
        samples = rng.laplace(0, 3.0, 20000)
        assert LaplacianModel.fit_scale(samples) == pytest.approx(3.0, rel=0.05)

    def test_fit_scale_floor(self):
        assert LaplacianModel.fit_scale(np.zeros(10)) >= 1e-3

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LaplacianModel(scale=0.0, support=4)
        with pytest.raises(ValueError):
            LaplacianModel(scale=1.0, support=0)

    def test_extreme_scale_no_overflow(self):
        """Tiny scales must not overflow exp (regression for the
        classical codec's near-empty bands)."""
        model = LaplacianModel(scale=1e-3, support=255)
        assert np.isfinite(model.pmf).all()

    def test_coding_laplacian_data(self, rng):
        model = LaplacianModel(scale=2.0, support=32)
        values = np.clip(np.round(rng.laplace(0, 2.0, 4000)), -32, 32).astype(int)
        symbols = np.array([model.symbol_of(v) for v in values])
        data = encode_symbols(symbols, model.model)
        decoded = decode_symbols(data, len(symbols), model.model)
        recovered = np.array([model.value_of(s) for s in decoded])
        assert np.array_equal(recovered, values)
        # Laplacian-coded rate must beat the uniform 6-bit bound.
        assert 8 * len(data) < len(values) * 6
