"""Pipeline facade: numerical parity with the pre-redesign CLI path,
report serialization, and batch execution (including the process pool).
"""

import numpy as np
import pytest

from repro.codec import (
    ClassicalCodec,
    ClassicalCodecConfig,
    CTVCConfig,
    CTVCNet,
    SequenceBitstream,
)
from repro.metrics import psnr
from repro.pipeline import EncodeReport, Pipeline, analyze_hardware, run_many
from repro.video import SceneConfig, generate_sequence

SCENE = {"height": 48, "width": 64, "frames": 2}


def legacy_encode(codec_name: str, height: int, width: int, frames: int):
    """The pre-facade ``python -m repro encode`` computation, verbatim."""
    clip = generate_sequence(SceneConfig(height=height, width=width, frames=frames))
    if codec_name == "ctvc":
        net = CTVCNet(CTVCConfig(channels=8, qstep=8.0))
        stream = net.encode_sequence(clip)
        decoded = net.decode_sequence(SequenceBitstream.parse(stream.serialize()))
    else:
        codec = ClassicalCodec(ClassicalCodecConfig(qp=8.0))
        stream = codec.encode_sequence(clip)
        decoded = codec.decode_sequence(SequenceBitstream.parse(stream.serialize()))
    bpp = stream.bits_per_pixel(height, width)
    quality = float(np.mean([psnr(a, b) for a, b in zip(clip, decoded)]))
    return bpp, quality


class TestParity:
    @pytest.mark.parametrize("codec", ["ctvc", "classical"])
    def test_run_matches_legacy_cli(self, codec):
        config = {"channels": 8, "qstep": 8.0} if codec == "ctvc" else {"qp": 8.0}
        report = Pipeline(codec, config, scene=SCENE).run()
        legacy_bpp, legacy_psnr = legacy_encode(codec, **SCENE)
        assert report.bpp == pytest.approx(legacy_bpp, abs=1e-6)
        assert report.mean_psnr == pytest.approx(legacy_psnr, abs=1e-6)

    def test_report_shape(self):
        report = Pipeline("ctvc", {"channels": 8}, scene=SCENE).run()
        assert report.codec == "ctvc"
        assert report.frames == SCENE["frames"]
        assert (report.height, report.width) == (SCENE["height"], SCENE["width"])
        assert len(report.psnr_per_frame) == SCENE["frames"]
        assert report.stream_bytes > 0
        assert report.encode_seconds > 0 and report.decode_seconds > 0

    def test_msssim_optional(self):
        report = Pipeline(
            "classical", scene=SCENE, compute_msssim=True
        ).run()
        assert 0.0 < report.mean_msssim <= 1.0
        assert len(report.msssim_per_frame) == SCENE["frames"]


class TestSerialization:
    def test_pipeline_spec_round_trip(self):
        pipe = Pipeline("classical", {"qp": 16.0}, scene=SCENE, compute_msssim=True)
        assert Pipeline.from_dict(pipe.to_dict()).to_dict() == pipe.to_dict()

    def test_report_dict_round_trip(self):
        report = Pipeline("classical", scene=SCENE).run()
        restored = EncodeReport.from_dict(report.to_dict())
        assert restored.to_dict() == report.to_dict()
        assert restored.render() == report.render()

    def test_render_is_legacy_format(self):
        report = Pipeline("classical", scene=SCENE).run()
        assert report.render() == (
            f"classical: 2 frames @ 64x48, {report.bpp:.3f} bpp, "
            f"{report.mean_psnr:.2f} dB PSNR"
        )

    def test_unknown_spec_field(self):
        with pytest.raises(Exception, match="unknown field"):
            Pipeline.from_dict({"codex": "ctvc"})


class TestSession:
    def test_intermediates_exposed(self):
        session = Pipeline("classical", scene=SCENE).session()
        session.encode()
        assert isinstance(session.stream, SequenceBitstream)
        assert isinstance(session.payload, bytes)
        report = session.report()  # triggers decode lazily
        assert len(session.decoded) == SCENE["frames"]
        assert report.stream_bytes == len(session.payload)


class TestRunMany:
    def test_grid_2x2(self):
        reports = run_many(
            codecs=["ctvc", "classical"],
            codec_configs=[{"gop": 8}, {"gop": 4}],
            scenes=[SCENE],
        )
        assert len(reports) == 4
        assert [r.codec for r in reports] == [
            "ctvc", "ctvc", "classical", "classical",
        ]
        assert all(isinstance(r, EncodeReport) for r in reports)

    def test_process_pool_matches_inline(self):
        kwargs = dict(
            codecs=["ctvc", "classical"],
            codec_configs=[{"gop": 8}, {"gop": 4}],
            scenes=[SCENE],
        )
        inline = run_many(**kwargs)
        pooled = run_many(**kwargs, processes=2)
        assert len(pooled) == 4
        for a, b in zip(inline, pooled):
            a_dict, b_dict = a.to_dict(), b.to_dict()
            # timings legitimately differ across processes
            for key in ("encode_seconds", "decode_seconds"):
                a_dict.pop(key), b_dict.pop(key)
            assert a_dict == b_dict

    def test_explicit_jobs(self):
        jobs = [
            Pipeline("classical", {"qp": q}, scene=SCENE) for q in (8.0, 32.0)
        ]
        reports = run_many(jobs)
        assert reports[0].bpp > reports[1].bpp  # finer QP spends more bits

    def test_jobs_or_grid_required(self):
        with pytest.raises(ValueError, match="jobs=.*or a codecs"):
            run_many()

    def test_grid_spans_heterogeneous_configs(self):
        # qstep only exists on CTVC, qp only on classical: keys a codec's
        # config class lacks are skipped, the rest applied.
        reports = run_many(
            codecs=["ctvc", "classical"],
            codec_configs=[{"qstep": 32.0, "qp": 32.0, "channels": 8}],
            scenes=[SCENE],
        )
        assert reports[0].codec_config["qstep"] == 32.0
        assert "qp" not in reports[0].codec_config
        assert reports[1].codec_config["qp"] == 32.0
        assert "qstep" not in reports[1].codec_config

    def test_explicit_jobs_reject_compute_msssim(self):
        jobs = [Pipeline("classical", scene=SCENE)]
        with pytest.raises(ValueError, match="set it on each Pipeline"):
            run_many(jobs, compute_msssim=True)


class TestHardware:
    def test_analyze_hardware_report(self):
        report = analyze_hardware(288, 512)
        assert report.fps > 0
        assert 0.0 < report.traffic_reduction < 1.0
        assert report.total_mgates > 0
        data = report.to_dict()
        assert data["per_module_cycles"]
        assert "FPS" in report.render() or "fps" in report.render().lower()

    def test_pipeline_attaches_hardware(self):
        report = Pipeline("ctvc", {"channels": 8}, scene=SCENE, hardware=True).run()
        assert report.hardware is not None
        assert report.hardware.height == SCENE["height"]
        restored = EncodeReport.from_dict(report.to_dict())
        assert restored.hardware.to_dict() == report.hardware.to_dict()
