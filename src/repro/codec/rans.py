"""Vectorized N-lane interleaved rANS entropy backend (the fast path).

Asymmetric numeral systems (Duda, 2014) re-express arithmetic coding as
integer state transitions, which production NVC stacks (the
DCVC/CompressAI lineage referenced in PAPERS.md) exploit to batch
entropy coding.  This module implements the interleaved construction:

* one 64-bit rANS state per *lane*, up to :data:`DEFAULT_LANES` lanes
  held in a single NumPy ``uint64`` array;
* symbol position ``i`` belongs to lane ``i % lanes``, so each Python
  loop iteration retires ``lanes`` symbols with every step (renormalize,
  transition, emit) expressed as vectorized array ops — the loop runs
  ``ceil(count / lanes)`` times instead of once per symbol;
* probabilities come from ``SymbolModel.rans_table()``: frequencies
  re-quantized to total ``2**RANS_PRECISION`` so the slot arithmetic is
  shifts and masks, and a precomputed slot->symbol lookup table replaces
  the decoder's per-symbol ``searchsorted``;
* encoding walks the stream *in reverse* (rANS is LIFO) emitting 16-bit
  words, which are order-reversed at flush so the decoder reads forward;
* multi-model chunks (per-channel latent models, per-band DCT models)
  are coded as one interleaved stream with per-position tables — a
  single set of lane states per chunk payload keeps the flush overhead
  independent of the number of segments.

State invariants (all enforced by construction, property-tested in
``tests/test_codec_rans.py``): with ``M = 2**RANS_PRECISION``,
``L = M << 16``, states live in ``[L, L << 16)`` (< 2**46, comfortably
inside uint64), encode renormalization emits at most one 16-bit word
per symbol per lane, and decode refills mirror emissions exactly.

Payload layout::

    u8 lanes | u32 word-count | lanes * 6-byte final states (LE) |
    word-count * u16 stream words (LE)

The lane count adapts to the payload (``count // MIN_SYMBOLS_PER_LANE``
clamped to [1, DEFAULT_LANES]) so tiny side-info segments don't pay a
32-lane state flush.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .entropy import (
    RANS_PRECISION,
    SymbolModel,
    register_entropy_backend,
)

__all__ = ["DEFAULT_LANES", "MIN_SYMBOLS_PER_LANE", "RansBackend"]

DEFAULT_LANES = 32
#: below this many symbols per lane the 6-byte-per-lane state flush
#: dominates the payload, so the lane count shrinks (down to plain
#: single-lane rANS).  64 symbols/lane balances flush overhead on the
#: small per-latent chunks against Python-loop row count; payloads of
#: 2048+ symbols run fully 32-lane parallel.
MIN_SYMBOLS_PER_LANE = 64

_M = np.uint64(1 << RANS_PRECISION)
_MASK = np.uint64((1 << RANS_PRECISION) - 1)
_PREC = np.uint64(RANS_PRECISION)
_L = np.uint64(1 << (RANS_PRECISION + 16))  # lower state bound M << 16
_SHIFT16 = np.uint64(16)
_SHIFT32 = np.uint64(32)
_WORD_MASK = np.uint64(0xFFFF)


def _lane_count(count: int, max_lanes: int) -> int:
    return max(1, min(max_lanes, count // MIN_SYMBOLS_PER_LANE))


def _pack_states(states: np.ndarray) -> bytes:
    """Serialize lane states as 6-byte little-endian integers
    (states < 2**46, so the top two bytes are always zero)."""
    raw = states.astype("<u8").view(np.uint8).reshape(-1, 8)
    return raw[:, :6].tobytes()


def _unpack_states(blob: bytes, lanes: int) -> np.ndarray:
    raw = np.frombuffer(blob, dtype=np.uint8).reshape(lanes, 6)
    full = np.zeros((lanes, 8), dtype=np.uint8)
    full[:, :6] = raw
    return full.view("<u8").ravel().astype(np.uint64)


class RansBackend:
    """Interleaved multi-lane rANS over ``SymbolModel`` tables."""

    name = "rans"

    def __init__(self, lanes: int = DEFAULT_LANES):
        if not 1 <= lanes <= 255:
            raise ValueError(f"lanes must be in [1, 255], got {lanes}")
        self.lanes = lanes

    # -- encode ---------------------------------------------------------
    def encode_segments(
        self, segments: Sequence[tuple[np.ndarray, SymbolModel]]
    ) -> bytes:
        freqs_parts: list[np.ndarray] = []
        cums_parts: list[np.ndarray] = []
        for symbols, model in segments:
            syms = np.asarray(symbols, dtype=np.int64).ravel()
            if syms.size == 0:
                continue
            tab_freqs, tab_cums, _ = model.rans_table()
            freqs_parts.append(tab_freqs[syms])
            cums_parts.append(tab_cums[syms])
        if not freqs_parts:
            return b""
        freqs = np.concatenate(freqs_parts)
        cums = np.concatenate(cums_parts)
        count = int(freqs.size)
        lanes = _lane_count(count, self.lanes)

        rows = -(-count // lanes)
        pad = rows * lanes - count
        if pad:
            # Tail positions never touch the states: the last row is
            # processed with sliced views of width `rem` below.
            freqs = np.concatenate([freqs, np.zeros(pad, dtype=np.uint64)])
            cums = np.concatenate([cums, np.zeros(pad, dtype=np.uint64)])
        freqs = freqs.reshape(rows, lanes)
        cums = cums.reshape(rows, lanes)
        rem = count - (rows - 1) * lanes  # active lanes in the last row

        states = np.full(lanes, _L, dtype=np.uint64)
        emitted: list[np.ndarray] = []
        for row in range(rows - 1, -1, -1):
            active = rem if row == rows - 1 else lanes
            lane_states = states[:active]
            f = freqs[row, :active]
            c = cums[row, :active]
            overflow = lane_states >= (f << _SHIFT32)
            if overflow.any():
                # Emit in descending lane order: the final global
                # reversal then hands the decoder rows ascending with
                # lanes ascending inside each row.
                emitted.append(
                    (lane_states[overflow] & _WORD_MASK).astype(np.uint16)[::-1]
                )
                lane_states[overflow] >>= _SHIFT16
            div, mod = np.divmod(lane_states, f)
            states[:active] = (div << _PREC) + c + mod

        if emitted:
            # Emission order was (last row .. first row, lanes descending
            # within each row); one global reversal yields the decoder's
            # reading order (first row .. last row, lanes ascending).
            words = np.concatenate(emitted)[::-1]
        else:
            words = np.empty(0, dtype=np.uint16)
        header = bytes([lanes]) + int(words.size).to_bytes(4, "little")
        return header + _pack_states(states) + words.astype("<u2").tobytes()

    # -- decode ---------------------------------------------------------
    def decode_segments(
        self, data: bytes, segments: Sequence[tuple[int, SymbolModel]]
    ) -> list[np.ndarray]:
        counts = [int(count) for count, _ in segments]
        total = sum(counts)
        if total == 0:
            return [np.empty(0, dtype=np.int64) for _ in segments]
        if len(data) < 5:
            raise ValueError("truncated rANS payload (missing header)")
        lanes = data[0]
        nwords = int.from_bytes(data[1:5], "little")
        offset = 5 + 6 * lanes
        if len(data) < offset + 2 * nwords:
            raise ValueError("truncated rANS payload")
        states = _unpack_states(data[5:offset], lanes)
        words = np.frombuffer(
            data, dtype="<u2", count=nwords, offset=offset
        ).astype(np.uint64)

        # Per-position table views: which model's LUT/freq/cum row each
        # position uses.  Segment tables are stacked once per call (the
        # tables themselves are cached on the models).
        seg_models = [model for count, model in segments if count > 0]
        seg_counts = [count for count in counts if count > 0]
        tables = [model.rans_table() for model in seg_models]
        slot_luts = np.concatenate([tab[2].astype(np.int64) for tab in tables])
        lut_sizes = [tab[2].size for tab in tables]
        lut_offsets = np.concatenate([[0], np.cumsum(lut_sizes)])[:-1]
        freq_flat = np.concatenate([tab[0] for tab in tables])
        cum_flat = np.concatenate([tab[1] for tab in tables])
        sym_sizes = [tab[0].size for tab in tables]
        sym_offsets = np.concatenate([[0], np.cumsum(sym_sizes)])[:-1]

        seg_ids = np.repeat(np.arange(len(seg_counts)), seg_counts)
        pos_lut_off = lut_offsets[seg_ids].astype(np.int64)
        pos_sym_off = sym_offsets[seg_ids].astype(np.int64)

        rows = -(-total // lanes)
        pad = rows * lanes - total
        if pad:
            pos_lut_off = np.concatenate([pos_lut_off, np.zeros(pad, np.int64)])
            pos_sym_off = np.concatenate([pos_sym_off, np.zeros(pad, np.int64)])
        pos_lut_off = pos_lut_off.reshape(rows, lanes)
        pos_sym_off = pos_sym_off.reshape(rows, lanes)
        rem = total - (rows - 1) * lanes

        out = np.empty(rows * lanes, dtype=np.int64).reshape(rows, lanes)
        wpos = 0
        for row in range(rows):
            active = rem if row == rows - 1 else lanes
            lane_states = states[:active]
            slots = lane_states & _MASK
            syms = slot_luts[pos_lut_off[row, :active] + slots.astype(np.int64)]
            base = pos_sym_off[row, :active] + syms
            f = freq_flat[base]
            c = cum_flat[base]
            lane_states = f * (lane_states >> _PREC) + slots - c
            refill = lane_states < _L
            if refill.any():
                need = int(refill.sum())
                lane_states[refill] = (lane_states[refill] << _SHIFT16) | words[
                    wpos : wpos + need
                ]
                wpos += need
            states[:active] = lane_states
            out[row, :active] = syms

        flat = out.ravel()[:total]
        result: list[np.ndarray] = []
        start = 0
        for count in counts:
            result.append(flat[start : start + count].copy())
            start += count
        return result


register_entropy_backend("rans", RansBackend())
