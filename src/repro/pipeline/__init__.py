"""``repro.pipeline`` — the package's composable front door.

Three layers, designed to be scripted, queued, and sharded:

* **registry** — ``register_codec`` / ``create_codec`` /
  ``available_codecs``: codecs are named plugins behind the
  :class:`VideoCodec` protocol (``"ctvc"`` and ``"classical"``
  register at import).
* **configs** — every config class serializes (``to_dict`` /
  ``from_dict`` / JSON) with validation, so jobs travel as documents.
* **facade** — :class:`Pipeline` composes source → codec →
  bitstream round-trip → metrics → optional NVCA hardware analysis
  into one ``run()`` returning typed :class:`EncodeReport` /
  :class:`HardwareReport`; :func:`run_many` sweeps (codec, config,
  scene) grids, optionally on a process pool.
"""

from .configs import CONFIG_TYPES, ConfigError, load_config
from .facade import EncodeSession, Pipeline, analyze_hardware, run_many
from .registry import (
    CodecRegistryError,
    CodecSpec,
    VideoCodec,
    available_codecs,
    codec_spec,
    create_codec,
    register_codec,
    unregister_codec,
)
from .reports import EncodeReport, HardwareReport

__all__ = [
    "CONFIG_TYPES",
    "CodecRegistryError",
    "CodecSpec",
    "ConfigError",
    "EncodeReport",
    "EncodeSession",
    "HardwareReport",
    "Pipeline",
    "VideoCodec",
    "analyze_hardware",
    "available_codecs",
    "codec_spec",
    "create_codec",
    "load_config",
    "register_codec",
    "run_many",
    "unregister_codec",
]
