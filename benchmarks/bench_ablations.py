"""Ablation benchmarks: sparsity sweep, dataflow, attention, simulator.

Run: pytest benchmarks/bench_ablations.py --benchmark-only -s
"""

import pytest

from repro.codec import decoder_graph
from repro.eval import (
    attention_ablation,
    dataflow_ablation,
    fast_algorithm_ablation,
    render_sparsity_sweep,
    sparsity_sweep,
)
from repro.hw import NVCAConfig, simulate_graph


def test_sparsity_sweep(benchmark):
    """Quality vs hardware cost across rho (the design-space ablation)."""
    points = benchmark.pedantic(
        sparsity_sweep,
        kwargs={"rhos": (0.0, 0.25, 0.5, 0.75)},
        rounds=1,
        iterations=1,
    )
    print("\n" + render_sparsity_sweep(points))
    # Quality decreases (weakly) with sparsity; hardware cost shrinks.
    assert points[0].psnr_db >= points[-1].psnr_db - 0.2
    assert points[0].gate_count_m > points[-1].gate_count_m
    # At the paper's rho = 0.5, quality loss vs dense is tiny.
    rho50 = next(p for p in points if p.rho == 0.5)
    assert points[0].psnr_db - rho50.psnr_db < 0.5


def test_dataflow_ablation(benchmark):
    result = benchmark(dataflow_ablation)
    print(
        f"\nchaining: {result['baseline_gb']:.3f} GB -> "
        f"{result['chained_gb']:.3f} GB (-{result['reduction']:.1%}); "
        f"DRAM energy {result['baseline_dram_mj']:.1f} -> "
        f"{result['chained_dram_mj']:.1f} mJ/frame"
    )
    assert result["reduction"] > 0.3


def test_fast_algorithm_ablation(benchmark):
    result = benchmark(fast_algorithm_ablation)
    print(
        f"\nfast reduction {result['fast_reduction']:.2f}x, "
        f"sparse reduction {result['sparse_reduction']:.2f}x"
    )
    assert result["sparse_reduction"] == pytest.approx(4.5, abs=0.2)


def test_attention_ablation(benchmark):
    result = benchmark.pedantic(attention_ablation, rounds=1, iterations=1)
    print(
        f"\nSwin-AM workload: {result['swin_am_total_gmacs']:.1f} GMACs "
        f"(attention proper: {result['swinatten_gmacs']:.1f}); "
        f"measured PSNR with/without: {result['psnr_with_attention']:.2f} / "
        f"{result['psnr_without_attention']:.2f} dB"
    )
    # Untrained Swin-AM is near-identity by design: effect bounded.
    assert abs(
        result["psnr_with_attention"] - result["psnr_without_attention"]
    ) < 0.5


def test_simulator_vs_analytical(benchmark):
    """The paper's simulator-vs-RTL cross-check, inverted."""
    graph = decoder_graph(1080, 1920, 36)
    result = benchmark.pedantic(
        simulate_graph, args=(graph, NVCAConfig()), rounds=1, iterations=1
    )
    print(
        f"\nsimulated {result.cycles} vs analytical "
        f"{result.analytical_cycles} cycles (mismatch {result.mismatch:.2%})"
    )
    assert result.mismatch < 0.05


def test_tile_size_exploration(benchmark):
    """Why F(2x2,3x3)? Bigger tiles multiply less but break the A12
    datapath (extension ablation)."""
    from repro.eval import tile_size_exploration

    results = benchmark(tile_size_exploration)
    print("\ntile         mu^2  speedup  A12 SNR (dB)")
    for r in results:
        print(f"{r['tile']:12s} {r['mu2']:4d}  {r['speedup']:6.2f}  {r['fxp_snr_db']:8.1f}")
    f23 = next(r for r in results if r["m"] == 2)
    assert f23["fxp_snr_db"] > 40.0


def test_resolution_sweep(benchmark):
    """540p -> 4K scaling of the fixed silicon (extension ablation)."""
    from repro.eval import render_table, resolution_sweep

    results = benchmark(resolution_sweep)
    rows = [
        [r["resolution"], r["gmacs"], r["fps"], r["frame_ms"], r["dram_gb"]]
        for r in results
    ]
    print(
        "\n"
        + render_table(
            ["resolution", "GMACs", "FPS", "ms/frame", "DRAM GB"], rows
        )
    )
    by_res = {r["resolution"]: r for r in results}
    assert by_res["1920x1080"]["fps"] > 24.0
