"""The paper's primary contribution: fast-algorithm-based sparsity.

Eq. (1)-(9) of the paper: united Winograd/FTA transforms, the
importance-factor matrix Q, transform-domain pruning, compressed sparse
weights, full-feature-map sparse fast conv/deconv execution, and the
co-design orchestration that ties the algorithm to the NVCA hardware
model.
"""

from .codesign import CodesignReport, NVCACodesign
from .importance import importance_matrix, importance_matrix_naive, importance_tensor_h
from .layerspec import LayerGraph, LayerSpec
from .ops import (
    SparseExecutor,
    extract_tiles,
    fast_conv2d,
    fast_deconv2d,
    multiplications,
    spec_for_layer,
)
from .pruning import PrunedKernel, prune_transform_weights, sparsity_of_mask
from .sparse import CompressedKernel, compress_kernel
from .strategy import (
    LayerSparsityInfo,
    SparseStrategy,
    SparsityReport,
    compressed_kernels,
    pruned_kernels,
)
from .transforms import (
    DEFAULT_POINTS,
    PAPER_F23,
    PAPER_T3_64,
    TransformSpec,
    cook_toom_conv,
    fta_deconv,
)

__all__ = [
    "DEFAULT_POINTS",
    "PAPER_F23",
    "PAPER_T3_64",
    "CodesignReport",
    "CompressedKernel",
    "LayerGraph",
    "LayerSparsityInfo",
    "LayerSpec",
    "NVCACodesign",
    "PrunedKernel",
    "SparseExecutor",
    "SparseStrategy",
    "SparsityReport",
    "TransformSpec",
    "compress_kernel",
    "compressed_kernels",
    "cook_toom_conv",
    "extract_tiles",
    "fast_conv2d",
    "fast_deconv2d",
    "fta_deconv",
    "importance_matrix",
    "importance_matrix_naive",
    "importance_tensor_h",
    "multiplications",
    "prune_transform_weights",
    "pruned_kernels",
    "spec_for_layer",
    "sparsity_of_mask",
]
