#!/usr/bin/env python
"""Distributed design-space exploration with Pareto-front parity.

Builds one geometry x sparsity cross-product grid of NVCA design
points (``dse_point_spec`` — custom grids are just spec lists), runs
it on two execution backends — serial in-process and a 2-thread work
queue — asserts the aggregated points *and* the Pareto front are
byte-identical, then prints the frontier table a designer would use
to pick the paper's Pif = Pof = 12 / rho = 50% operating point.

Run: PYTHONPATH=src python examples/dse_pareto.py
"""

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.hw import NVCAConfig  # noqa: E402
from repro.pipeline import DSERunner, dse_point_spec  # noqa: E402

HEIGHT, WIDTH = 540, 960  # quarter-HD keeps the walkthrough fast
GEOMETRIES = ((6, 6), (12, 12), (18, 18))
RHOS = (0.0, 0.5)


def build_grid() -> list[dict]:
    """Geometry x sparsity cross product as 'dse-point' job specs."""
    specs = []
    for pif, pof in GEOMETRIES:
        for rho in RHOS:
            config = NVCAConfig(pif=pif, pof=pof, rho=rho)
            specs.append(
                dse_point_spec(
                    config,
                    label=f"{pif}x{pof}@rho={rho:.2f}",
                    height=HEIGHT,
                    width=WIDTH,
                )
            )
    return specs


def canon(result) -> str:
    payload = result.to_dict()
    for volatile in ("elapsed_seconds", "workers"):
        payload.pop(volatile)
    return json.dumps(payload, sort_keys=True)


def main() -> int:
    grid = build_grid()
    print(f"=== DSE grid: {len(GEOMETRIES)} geometries x {len(RHOS)} "
          f"sparsity levels @ {WIDTH}x{HEIGHT} ===")

    serial = DSERunner(grid, workers=0).run()
    threads = DSERunner(grid, workers=2).run()
    assert serial.ok and threads.ok, (serial.failures, threads.failures)
    assert canon(serial) == canon(threads), (
        "serial and queued DSE sweeps must aggregate byte-identically"
    )
    assert [p.label for p in serial.pareto] == [
        p.label for p in threads.pareto
    ]
    print(f"backend parity: serial == {threads.workers}-thread queue "
          f"({len(serial.points)} points, byte-identical)\n")

    print("=== All design points (* = Pareto-optimal) ===")
    print(serial.render())

    print("\n=== Frontier (maximize FPS + GOPS/W) ===")
    for point in serial.pareto:
        print(f"  {point.label:>15s}: {point.fps:7.1f} FPS  "
              f"{point.energy_efficiency:7.0f} GOPS/W  "
              f"{point.gate_count_m:5.2f} Mgates")
    return 0


if __name__ == "__main__":
    sys.exit(main())
