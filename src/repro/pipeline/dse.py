"""Distributed design-space exploration over the task-typed queue seam.

:mod:`repro.hw.dse` evaluates NVCA design points inline; this module
makes those same points shardable.  A DSE grid is a list of
``"dse-point"`` job specs (:func:`dse_grid` / :func:`dse_point_spec`
build them, validated up front through :mod:`repro.pipeline.tasks`),
:class:`DSERunner` runs them on any
:class:`~repro.pipeline.dist.JobQueue` — serial, thread workers, or
worker processes sharing a queue directory, with ``--resume`` — and
aggregates into a :class:`DSEResult`: the
:class:`~repro.hw.DesignPoint` table in submission order plus its
:func:`~repro.hw.pareto_front`, byte-identical between serial and any
worker count (the same determinism contract RD sweeps pin).

Front doors: ``repro dse`` on the CLI, and
``run_many(jobs=dse_grid(...))`` for mixed batches.  See
``docs/hardware.md``.

>>> from repro.pipeline import dse_grid
>>> [spec["label"] for spec in dse_grid("sparsity", values=(0.0, 0.5))]
['rho=0.00', 'rho=0.50']
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.hw import DesignPoint, pareto_front
from repro.hw.dse import DEFAULT_FREQUENCIES, DEFAULT_GEOMETRIES, DEFAULT_RHOS

from .dist.sweep import QueueRunner
from .tasks import normalize_spec, spec_kind

__all__ = [
    "DSE_GRIDS",
    "DSEResult",
    "DSERunner",
    "dse_grid",
    "dse_point_spec",
]

#: grid axis name -> (config field, default values, label formatter).
DSE_GRIDS = {
    "geometry": DEFAULT_GEOMETRIES,
    "sparsity": DEFAULT_RHOS,
    "frequency": DEFAULT_FREQUENCIES,
}


def dse_point_spec(
    config,
    *,
    label: str | None = None,
    height: int = 1080,
    width: int = 1920,
    platform: str = "nvca",
) -> dict:
    """One validated ``"dse-point"`` job spec.

    ``config`` is an :class:`~repro.hw.NVCAConfig` (or its dict form);
    the spec comes back canonicalized through the task registry, so a
    bad platform name or config field fails here, on the submitting
    side.
    """
    spec = {
        "kind": "dse-point",
        "platform": platform,
        "config": config if isinstance(config, dict) else config.to_dict(),
        "height": height,
        "width": width,
    }
    if label is not None:
        spec["label"] = label
    return normalize_spec(spec)


def dse_grid(
    grid: str = "geometry",
    *,
    values=None,
    base=None,
    height: int = 1080,
    width: int = 1920,
    platform: str = "nvca",
) -> list[dict]:
    """Build the job specs of one DSE axis sweep.

    ``grid`` picks the axis — ``"geometry"`` ((pif, pof) pairs),
    ``"sparsity"`` (rho values), or ``"frequency"`` (MHz values) —
    with ``values`` overriding the axis's default bracket around the
    paper's operating point.  ``base`` is the config every point
    perturbs (defaults to the paper's Pif=Pof=12 / rho=50% / 400 MHz).
    Labels match the inline :mod:`repro.hw.dse` sweeps exactly, so the
    queue-executed points are drop-in comparable.
    """
    from repro.hw import NVCAConfig

    from .platforms import platform_entry

    config_cls = platform_entry(platform).config_cls
    if not (isinstance(config_cls, type) and issubclass(config_cls, NVCAConfig)):
        # same refusal _normalize_dse_point gives, raised before any
        # axis perturbation so it cannot degrade into a TypeError
        raise ValueError(
            f"platform {platform!r} is a fixed reference platform with "
            "no design space; DSE needs a modeled platform ('nvca')"
        )
    if isinstance(base, dict):
        base = config_cls.from_dict(base)
    base = base or config_cls()
    if grid not in DSE_GRIDS:
        raise ValueError(
            f"unknown DSE grid {grid!r}; available: "
            f"{', '.join(sorted(DSE_GRIDS))}"
        )
    values = tuple(values) if values is not None else DSE_GRIDS[grid]
    points = []
    for value in values:
        if grid == "geometry":
            pif, pof = value
            config = dataclasses.replace(base, pif=int(pif), pof=int(pof))
            label = f"{int(pif)}x{int(pof)}"
        elif grid == "sparsity":
            config = dataclasses.replace(base, rho=float(value))
            label = f"rho={float(value):.2f}"
        else:  # frequency
            config = dataclasses.replace(base, frequency_mhz=float(value))
            label = f"{float(value):g}MHz"
        points.append(
            dse_point_spec(
                config, label=label, height=height, width=width,
                platform=platform,
            )
        )
    return points


@dataclass
class DSEResult:
    """Aggregated outcome of one DSE sweep.

    ``points`` hold the completed design points in submission order
    (failures are absent — see ``failures``); ``pareto`` is the
    non-dominated subset under ``objectives``.  Both depend only on
    the job specs, so they compare byte-identically across worker
    counts; ``elapsed_seconds`` does not.
    """

    job_ids: list[str]
    points: list[DesignPoint]
    failures: dict[str, str]
    pareto: list[DesignPoint]
    objectives: tuple[str, ...]
    elapsed_seconds: float
    workers: int

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        """JSON document (the ``repro dse --json`` payload)."""
        return {
            "jobs": len(self.job_ids),
            "completed": len(self.points),
            "failed": dict(self.failures),
            "workers": self.workers,
            "elapsed_seconds": self.elapsed_seconds,
            "objectives": list(self.objectives),
            "points": [point.to_dict() for point in self.points],
            "pareto": [point.to_dict() for point in self.pareto],
        }

    def render(self, *, pareto_only: bool = False) -> str:
        """Human summary: the design-point table with the frontier
        marked (``*``), or just the frontier with ``pareto_only``."""
        lines = [
            f"dse: {len(self.job_ids)} points, {len(self.points)} completed, "
            f"{len(self.failures)} failed in {self.elapsed_seconds:.1f}s "
            f"({self.workers} workers)"
        ]
        on_front = {id(point) for point in self.pareto}
        shown = self.pareto if pareto_only else self.points
        for point in shown:
            marker = "*" if id(point) in on_front else " "
            lines.append(f" {marker}{point.render()}")
        lines.append(
            f"pareto front ({' + '.join(self.objectives)}): "
            f"{', '.join(p.label for p in self.pareto) or '(empty)'}"
        )
        for job_id, error in sorted(self.failures.items()):
            lines.append(f"  FAILED {job_id}: {error.strip().splitlines()[-1]}")
        return "\n".join(lines)


class DSERunner(QueueRunner):
    """Run ``"dse-point"`` job specs on a queue and aggregate the
    frontier.

    ``specs`` is what :func:`dse_grid`/:func:`dse_point_spec` build
    (raw dicts are accepted and validated here — same up-front
    name/field checking as encode grids).  Execution semantics
    (``workers``/``queue_dir``/``lease_seconds``/resume-by-
    resubmission) are :class:`~repro.pipeline.dist.QueueRunner`'s:
    ``workers=0`` drains serially, a ``queue_dir`` shards across
    processes and survives restarts.  Aggregation is deterministic in
    the spec list alone, so serial and sharded runs produce
    byte-identical :class:`DSEResult` tables and Pareto fronts.
    """

    def __init__(
        self,
        specs,
        *,
        objectives: tuple[str, ...] = ("fps", "energy_efficiency"),
        queue=None,
        queue_dir=None,
        workers: int = 2,
        lease_seconds: float = 120.0,
        max_attempts: int = 3,
        bundle: int | str = 1,
    ):
        normalized = []
        for spec in specs:
            if not isinstance(spec, dict):
                raise TypeError(
                    f"DSERunner specs must be dicts, got {type(spec).__name__}"
                )
            if spec_kind(spec) != "dse-point":
                raise ValueError(
                    f"DSERunner runs 'dse-point' jobs only, got kind "
                    f"{spec_kind(spec)!r} (use SweepRunner for mixed sweeps)"
                )
            normalized.append(normalize_spec(spec))
        point_fields = {f.name for f in dataclasses.fields(DesignPoint)}
        bad = sorted(set(objectives) - point_fields)
        if bad:
            raise ValueError(
                f"unknown DSE objective(s) {', '.join(bad)}; "
                f"DesignPoint fields: {', '.join(sorted(point_fields))}"
            )
        super().__init__(
            normalized,
            queue=queue,
            queue_dir=queue_dir,
            workers=workers,
            lease_seconds=lease_seconds,
            max_attempts=max_attempts,
            bundle=bundle,
        )
        self.objectives = tuple(objectives)

    def _aggregate(self, results, failures, elapsed) -> DSEResult:
        points = self._hydrated_reports(results)
        return DSEResult(
            job_ids=list(self.job_ids),
            points=points,
            failures=failures,
            pareto=pareto_front(points, self.objectives),
            objectives=self.objectives,
            elapsed_seconds=elapsed,
            workers=self.workers,
        )
