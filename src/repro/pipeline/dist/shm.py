"""Shared-memory frame transport for local worker fleets.

Synthetic scenes are deterministic, so a worker *can* always re-render
its frames from the scene config — but on a sweep where every job
shares a handful of scenes, that means re-synthesizing (or re-pickling)
the same buffers once per job.  This module moves the frames through
:mod:`multiprocessing.shared_memory` instead: the runner renders each
distinct scene once, publishes it as one segment, and annotates job
specs with a ``frames_shm`` descriptor::

    {"name": "psm_...", "shape": [n, c, h, w], "dtype": "float64"}

A local process worker attaches the segment, copies the frames out,
and closes it (copy-out keeps the segment read-only in effect and lets
the runner unlink it without coordinating with workers).  A worker that
*cannot* attach — an HTTP worker on another host, or a resumed run
whose segments are gone — silently falls back to re-synthesizing from
the scene config, which produces byte-identical frames.  That is why
the descriptor is a **transport annotation**, never part of job
identity: :func:`repro.pipeline.tasks.strip_transport_fields` removes
it before hashing, so job ids (and ``--resume``) are independent of
how frames travel.

Segment lifecycle is strictly runner-owned: :func:`publish_frames` at
submit time, :func:`unlink_segments` in the runner's ``finally`` — so
segments are reclaimed even when workers were killed mid-job.  Every
create is tracked in a process-local registry
(:func:`active_segments`), which is how the hygiene tests prove no
sweep leaks a segment.
"""

from __future__ import annotations

import threading
from multiprocessing import shared_memory

import numpy as np

__all__ = [
    "active_segments",
    "attach_frames",
    "publish_frames",
    "unlink_segments",
]

#: name -> SharedMemory handle for every segment this process created
#: and has not yet unlinked.
_CREATED: dict[str, shared_memory.SharedMemory] = {}
_LOCK = threading.Lock()


def publish_frames(frames: list[np.ndarray]) -> dict:
    """Create one shared segment holding ``frames``; return its
    ``frames_shm`` descriptor.

    The frames are stacked into one contiguous array, so they must
    share a shape and dtype (scene frames always do).  The segment is
    registered in the process-local ledger until
    :func:`unlink_segments` reclaims it.
    """
    if not frames:
        raise ValueError("cannot publish an empty frame list")
    stacked = np.stack(frames)
    segment = shared_memory.SharedMemory(create=True, size=stacked.nbytes)
    view = np.ndarray(stacked.shape, dtype=stacked.dtype, buffer=segment.buf)
    view[:] = stacked
    with _LOCK:
        _CREATED[segment.name] = segment
    return {
        "name": segment.name,
        "shape": [int(n) for n in stacked.shape],
        "dtype": str(stacked.dtype),
    }


def attach_frames(descriptor: dict) -> list[np.ndarray] | None:
    """Frames from a ``frames_shm`` descriptor, or ``None`` when the
    segment cannot be reached (another host, or already unlinked) —
    the caller falls back to re-synthesizing from the scene config.

    Frames are copied out and the segment closed immediately, so the
    runner may unlink at any time without worker coordination.  (All
    local workers are ``multiprocessing`` children sharing the parent's
    resource tracker, so attach/close needs no tracker workarounds.)
    """
    try:
        name = str(descriptor["name"])
        shape = tuple(int(n) for n in descriptor["shape"])
        dtype = np.dtype(str(descriptor["dtype"]))
    except (KeyError, TypeError, ValueError):
        return None  # malformed annotation: regenerate instead
    try:
        segment = shared_memory.SharedMemory(name=name)
    except (FileNotFoundError, OSError):
        return None  # unreachable segment: regenerate instead
    try:
        view = np.ndarray(shape, dtype=dtype, buffer=segment.buf)
        return [view[index].copy() for index in range(shape[0])]
    except (TypeError, ValueError):
        return None  # descriptor does not fit the segment: regenerate
    finally:
        segment.close()


def unlink_segments(names=None) -> int:
    """Unlink segments this process created; returns how many.

    With ``names=None`` every tracked segment goes (the runner's
    ``finally``); with an iterable only those go.  Unlinking is
    idempotent — a name already reclaimed (or never ours) is skipped.
    """
    with _LOCK:
        targets = list(_CREATED) if names is None else [
            str(name) for name in names if str(name) in _CREATED
        ]
        handles = [(name, _CREATED.pop(name)) for name in targets]
    reclaimed = 0
    for name, segment in handles:
        try:
            segment.close()
            segment.unlink()
            reclaimed += 1
        except (FileNotFoundError, OSError):
            pass  # already gone; the ledger entry is dropped either way
    return reclaimed


def active_segments() -> list[str]:
    """Names of segments created here and not yet unlinked (sorted) —
    the hygiene tests' leak detector."""
    with _LOCK:
        return sorted(_CREATED)
