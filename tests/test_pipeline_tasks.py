"""Task-typed job specs: kind dispatch, up-front validation, legacy
encode compatibility, and mixed-kind execution across backends."""

import pytest

from repro.hw import DesignPoint
from repro.pipeline import (
    EncodeReport,
    Pipeline,
    PlatformReport,
    TaskRegistryError,
    available_tasks,
    build_jobs,
    hydrate_result,
    normalize_spec,
    register_task,
    run_many,
    run_task,
    spec_kind,
    unregister_task,
)
from repro.serialization import ConfigError

SCENE = {"height": 32, "width": 48, "frames": 2}
RES = (270, 480)
HW_SPEC = {"kind": "hardware", "platform": "gpu-rtx3090"}
DSE_SPEC = {
    "kind": "dse-point",
    "label": "paper",
    "config": {"pif": 12, "pof": 12},
    "height": RES[0],
    "width": RES[1],
}


class TestKindDispatch:
    def test_builtin_kinds(self):
        assert available_tasks() == [
            "dse-point", "encode", "hardware", "ladder-rendition",
        ]

    def test_missing_kind_is_encode(self):
        spec = Pipeline("classical", {"qp": 8.0}, scene=SCENE).to_dict()
        assert "kind" not in spec
        assert spec_kind(spec) == "encode"
        report = hydrate_result(spec, run_task(spec))
        assert isinstance(report, EncodeReport)
        assert report.codec == "classical"

    def test_explicit_encode_kind_normalizes_to_legacy_shape(self):
        spec = Pipeline("classical", {"qp": 8.0}, scene=SCENE).to_dict()
        tagged = {**spec, "kind": "encode"}
        # canonical form drops the tag, so content-derived job ids (and
        # resume against pre-task-typing queue dirs) stay stable
        assert normalize_spec(tagged) == normalize_spec(spec) == spec

    def test_unknown_kind_lists_available(self):
        with pytest.raises(TaskRegistryError, match="encode"):
            normalize_spec({"kind": "transcode"})
        with pytest.raises(TaskRegistryError, match="transcode"):
            run_task({"kind": "transcode"})

    def test_non_string_kind_rejected(self):
        with pytest.raises(TaskRegistryError, match="string"):
            spec_kind({"kind": 3})

    def test_register_unregister_custom_kind(self):
        register_task(
            "noop",
            normalize=lambda spec: {"kind": "noop"},
            execute=lambda spec: {"ok": True},
            hydrate=lambda result: result["ok"],
        )
        try:
            assert run_task({"kind": "noop"}) == {"ok": True}
            assert hydrate_result({"kind": "noop"}, {"ok": True}) is True
            with pytest.raises(TaskRegistryError, match="already registered"):
                register_task(
                    "noop",
                    normalize=lambda s: s,
                    execute=lambda s: {},
                    hydrate=lambda r: r,
                )
        finally:
            unregister_task("noop")
        assert "noop" not in available_tasks()


class TestHardwareTask:
    def test_normalize_canonicalizes_config(self):
        spec = normalize_spec({"kind": "hardware", "platform": "nvca"})
        assert spec["config"]["pif"] == 12  # defaults materialized
        assert (spec["height"], spec["width"]) == (1080, 1920)

    def test_unknown_platform_fails_up_front(self):
        with pytest.raises(ValueError, match="available"):
            normalize_spec({"kind": "hardware", "platform": "tpu-v5"})

    def test_unknown_field_fails_up_front(self):
        with pytest.raises(ConfigError, match="unknown field"):
            normalize_spec({"kind": "hardware", "scene": SCENE})

    def test_bad_resolution_fails_up_front(self):
        with pytest.raises(ConfigError, match="height"):
            normalize_spec({"kind": "hardware", "height": 0})

    def test_execute_and_hydrate(self):
        result = run_task(HW_SPEC)
        report = hydrate_result(HW_SPEC, result)
        assert isinstance(report, PlatformReport)
        assert report.platform == "gpu-rtx3090"


class TestDsePointTask:
    def test_execute_and_hydrate(self):
        spec = normalize_spec(DSE_SPEC)
        point = hydrate_result(spec, run_task(spec))
        assert isinstance(point, DesignPoint)
        assert point.label == "paper"
        assert point.fps > 0

    def test_default_label_is_deterministic(self):
        spec = normalize_spec({"kind": "dse-point", "height": 270, "width": 480})
        assert spec["label"] == "12x12@rho=0.50@400MHz"

    def test_reference_platform_has_no_design_space(self):
        with pytest.raises(ConfigError, match="reference platform"):
            normalize_spec({"kind": "dse-point", "platform": "gpu-rtx3090"})


class TestRunManyTaskJobs:
    def test_mixed_kinds_inline(self):
        reports = run_many(
            jobs=[
                Pipeline("classical", {"qp": 8.0}, scene=SCENE),
                HW_SPEC,
                DSE_SPEC,
            ]
        )
        assert isinstance(reports[0], EncodeReport)
        assert isinstance(reports[1], PlatformReport)
        assert isinstance(reports[2], DesignPoint)

    def test_mixed_kinds_queue_matches_inline(self):
        jobs = [
            Pipeline("classical", {"qp": 8.0}, scene=SCENE).to_dict(),
            HW_SPEC,
            DSE_SPEC,
        ]
        inline = run_many(jobs)
        queued = run_many(jobs, backend="queue", workers=2)
        for a, b in zip(inline, queued):
            a_dict, b_dict = a.to_dict(), b.to_dict()
            for volatile in ("encode_seconds", "decode_seconds"):
                a_dict.pop(volatile, None), b_dict.pop(volatile, None)
            assert a_dict == b_dict

    def test_platform_grid(self):
        reports = run_many(
            platforms=["gpu-rtx3090", "cpu-i9-9900x"], resolutions=[RES]
        )
        assert [r.platform for r in reports] == ["gpu-rtx3090", "cpu-i9-9900x"]

    def test_platform_grid_skips_undefined_config_keys(self):
        # one config document can span nvca and reference platforms
        reports = run_many(
            platforms=["nvca", "alchemist"],
            platform_configs=[{"pif": 6, "pof": 6, "technology_nm": 28}],
            resolutions=[RES],
        )
        assert reports[0].hardware.nvca_config["pif"] == 6
        assert reports[1].technology_nm == 28

    def test_unknown_platform_in_grid_fails_before_execution(self):
        with pytest.raises(ValueError, match="unknown platform name"):
            run_many(platforms=["nosuch", "nvca"], resolutions=[RES])

    def test_unknown_kind_fails_before_queue_submit(self, tmp_path):
        with pytest.raises(TaskRegistryError, match="unknown task kind"):
            run_many(
                jobs=[{"kind": "transcode"}],
                backend="queue",
                queue_dir=str(tmp_path / "q"),
            )
        assert not (tmp_path / "q").exists()

    def test_codecs_and_platforms_grids_cannot_mix(self):
        with pytest.raises(ValueError, match="not\\s+both"):
            build_jobs(codecs=["classical"], platforms=["nvca"])
