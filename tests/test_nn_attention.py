"""Tests for shifted-window attention (SwinAtten)."""

import numpy as np
import pytest

from repro.nn import SwinAttention, window_merge, window_partition


@pytest.fixture
def rng():
    return np.random.default_rng(3)


class TestWindowPartition:
    def test_roundtrip_exact_multiple(self, rng):
        x = rng.standard_normal((4, 9, 12))
        tokens, padded = window_partition(x, 3)
        assert tokens.shape == (12, 9, 4)
        back = window_merge(tokens, 3, padded, (9, 12))
        assert np.array_equal(back, x)

    def test_roundtrip_with_padding(self, rng):
        x = rng.standard_normal((2, 7, 10))
        tokens, padded = window_partition(x, 3)
        assert padded == (9, 12)
        back = window_merge(tokens, 3, padded, (7, 10))
        assert np.array_equal(back, x)

    def test_window_contents(self):
        x = np.arange(16, dtype=float).reshape(1, 4, 4)
        tokens, _ = window_partition(x, 2)
        assert np.array_equal(tokens[0, :, 0], [0, 1, 4, 5])
        assert np.array_equal(tokens[1, :, 0], [2, 3, 6, 7])


class TestSwinAttention:
    def test_shape_preserved(self, rng):
        attn = SwinAttention(8, window=3, shift=0, heads=2, rng=rng)
        x = rng.standard_normal((8, 12, 12))
        assert attn(x).shape == x.shape

    def test_shape_preserved_nonmultiple(self, rng):
        attn = SwinAttention(8, window=3, shift=2, heads=4, rng=rng)
        x = rng.standard_normal((8, 10, 11))
        assert attn(x).shape == x.shape

    def test_channel_head_divisibility_enforced(self):
        with pytest.raises(ValueError):
            SwinAttention(6, window=3, heads=4)

    def test_shift_bounds_enforced(self):
        with pytest.raises(ValueError):
            SwinAttention(8, window=3, shift=3)

    def test_wrong_channels_raises(self, rng):
        attn = SwinAttention(8, rng=rng)
        with pytest.raises(ValueError):
            attn(rng.standard_normal((4, 9, 9)))

    def test_locality_without_shift(self, rng):
        """A perturbation inside one window must not leak to others."""
        attn = SwinAttention(4, window=3, shift=0, heads=2, rng=rng)
        x = rng.standard_normal((4, 9, 9))
        base = attn(x)
        bumped = x.copy()
        bumped[:, 0, 0] += 10.0  # inside window (0, 0)
        delta = np.abs(attn(bumped) - base).sum(axis=0)
        assert delta[:3, :3].sum() > 1e-6
        assert np.abs(delta[3:, :]).max() < 1e-12
        assert np.abs(delta[:3, 3:]).max() < 1e-12

    def test_shift_bridges_windows(self, rng):
        """With a cyclic shift the same perturbation crosses the
        unshifted window boundary — the cross-window connection the
        paper's consecutive Swin-AMs rely on."""
        attn = SwinAttention(4, window=3, shift=2, heads=2, rng=rng)
        x = rng.standard_normal((4, 9, 9))
        base = attn(x)
        bumped = x.copy()
        bumped[:, 2, 2] += 10.0
        delta = np.abs(attn(bumped) - base).sum(axis=0)
        assert delta[3:6, :3].sum() + delta[:3, 3:6].sum() > 1e-9

    def test_permutation_equivariance_within_window(self, rng):
        """Attention treats tokens as a set (absent position bias =0 at
        init): permuting tokens inside each window permutes outputs."""
        attn = SwinAttention(4, window=2, shift=0, heads=2, rng=rng)
        x = rng.standard_normal((4, 2, 2))
        out = attn(x)
        # Swap the two columns: a permutation of the single window.
        xs = x[:, :, ::-1].copy()
        outs = attn(xs)
        assert np.allclose(outs, out[:, :, ::-1], atol=1e-10)

    def test_macs_accounting_positive(self, rng):
        attn = SwinAttention(8, window=3, heads=2, rng=rng)
        assert attn.attention_macs(12, 12) > 0
        assert attn.attention_macs(24, 24) > attn.attention_macs(12, 12)

    def test_parameters_registered(self):
        attn = SwinAttention(8, window=3, heads=2)
        names = {name for name, _ in attn.named_parameters()}
        assert names == {"w_q", "w_k", "w_v", "w_o", "position_bias"}
