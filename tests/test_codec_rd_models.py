"""Tests for the calibrated literature RD models."""

import numpy as np
import pytest

from repro.codec import (
    DATASETS,
    LITERATURE_BDBR,
    METHODS,
    all_method_curves,
    anchor_curve,
    model_curve,
)
from repro.metrics import bd_rate


class TestAnchorCurve:
    def test_monotone_and_in_range(self):
        for dataset in DATASETS:
            for metric in ("psnr", "ms-ssim"):
                curve = anchor_curve(dataset, metric)
                assert curve.validate_monotone()
                assert curve.rates.min() > 0

    def test_psnr_axis_ranges_match_fig8(self):
        curve = anchor_curve("uvg", "psnr")
        assert curve.qualities.min() == pytest.approx(34.0)
        assert curve.qualities.max() == pytest.approx(39.5)

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            anchor_curve("kodak", "psnr")

    def test_dataset_name_normalization(self):
        a = anchor_curve("uvg-sim", "psnr")
        b = anchor_curve("uvg", "psnr")
        assert np.array_equal(a.rates, b.rates)


class TestModelCurves:
    def test_all_combinations_exist(self):
        assert len(LITERATURE_BDBR) == len(METHODS) * len(DATASETS) * 2

    def test_table1_values_recovered(self):
        """Running the real Bjøntegaard machinery over the calibrated
        curves must land within ~2% (tilt-induced) of Table I."""
        for metric in ("psnr", "ms-ssim"):
            for dataset in DATASETS:
                curves = all_method_curves(dataset, metric)
                anchor = curves["h265"]
                for method in METHODS:
                    computed = bd_rate(anchor, curves[method])
                    expected = LITERATURE_BDBR[(method, dataset, metric)]
                    assert computed == pytest.approx(expected, abs=2.0), (
                        method,
                        dataset,
                        metric,
                    )

    def test_h265_is_anchor(self):
        curves = all_method_curves("uvg", "psnr")
        assert bd_rate(curves["h265"], curves["h265"]) == pytest.approx(0.0)

    def test_paper_ordering_uvg_psnr(self):
        """Who wins: CTVC-FP < DCVC < FVC < ... < H.264 (more negative
        BDBR = better)."""
        curves = all_method_curves("uvg", "psnr")
        anchor = curves["h265"]
        scores = {m: bd_rate(anchor, curves[m]) for m in METHODS}
        assert (
            scores["ctvc-fp"]
            < scores["dcvc"]
            < scores["fvc"]
            < scores["lu-eccv20"]
            < scores["h265"]
            < scores["dvc"]
            < scores["h264"]
        )

    def test_sparse_between_fp_and_dcvc_on_uvg(self):
        """The paper's narrative: even sparse CTVC still beats DCVC on
        UVG PSNR."""
        curves = all_method_curves("uvg", "psnr")
        anchor = curves["h265"]
        assert (
            bd_rate(anchor, curves["ctvc-fp"])
            < bd_rate(anchor, curves["ctvc-sparse"])
            < bd_rate(anchor, curves["dcvc"])
        )

    def test_fp_fxp_sparse_ordering_everywhere(self):
        for metric in ("psnr", "ms-ssim"):
            for dataset in DATASETS:
                curves = all_method_curves(dataset, metric)
                anchor = curves["h265"]
                fp = bd_rate(anchor, curves["ctvc-fp"])
                fxp = bd_rate(anchor, curves["ctvc-fxp"])
                sparse = bd_rate(anchor, curves["ctvc-sparse"])
                assert fp < fxp < sparse

    def test_unknown_method(self):
        with pytest.raises(KeyError):
            model_curve("av1", "uvg", "psnr")

    def test_curves_stay_monotone(self):
        for dataset in DATASETS:
            for method in METHODS:
                assert model_curve(method, dataset, "psnr").validate_monotone()


class TestRDModelCodecInRegistry:
    """The calibrated methods sweep through the same Pipeline/run_many
    surface as the measured codecs (pseudo-codec "rd-model")."""

    SCENE = {"height": 32, "width": 48, "frames": 2}

    def test_registered(self):
        from repro.pipeline import available_codecs, codec_spec

        assert "rd-model" in available_codecs()
        assert "no bitstream" in codec_spec("rd-model").description

    def test_pipeline_reports_the_curve_point(self):
        from repro.pipeline import Pipeline

        config = {"method": "dcvc", "dataset": "uvg", "point": 1}
        report = Pipeline("rd-model", config, scene=self.SCENE).run()
        point = model_curve("dcvc", "uvg", "psnr").points[1]
        assert report.bpp == pytest.approx(point.bpp)
        assert report.mean_psnr == pytest.approx(point.quality)
        assert report.psnr_per_frame == [point.quality] * 2
        assert report.stream_bytes == round(point.bpp * 32 * 48 * 2 / 8)
        # the report round-trips like any other
        from repro.pipeline import EncodeReport

        assert EncodeReport.from_dict(report.to_dict()).to_dict() == report.to_dict()

    def test_msssim_comes_from_the_msssim_curve(self):
        from repro.pipeline import Pipeline

        report = Pipeline(
            "rd-model",
            {"method": "fvc", "dataset": "hevcb", "point": 3},
            scene=self.SCENE,
            compute_msssim=True,
        ).run()
        ms = model_curve("fvc", "hevcb", "ms-ssim").points[3]
        assert report.mean_msssim == pytest.approx(ms.quality)

    def test_run_many_sweeps_the_published_curve(self):
        from repro.pipeline import run_many

        reports = run_many(
            codecs=["rd-model"],
            codec_configs=[{"method": "h264", "point": p} for p in range(5)],
            scenes=[self.SCENE],
        )
        bpps = [r.bpp for r in reports]
        assert bpps == sorted(bpps)  # the curve sweeps low to high rate
        assert [r.codec_config["point"] for r in reports] == list(range(5))

    def test_byte_api_refuses_with_clear_error(self):
        from repro.pipeline import create_codec

        codec = create_codec("rd-model", method="h265")
        for api in (
            lambda: codec.encode_sequence([]),
            lambda: codec.decode_sequence(None),
            lambda: codec.open_encoder(),
            lambda: codec.open_decoder(),
        ):
            with pytest.raises(NotImplementedError, match="calibrated RD model"):
                api()

    def test_streaming_output_refused(self, tmp_path):
        from repro.pipeline import Pipeline
        from repro.serialization import ConfigError

        session = Pipeline("rd-model", scene=self.SCENE).session()
        with pytest.raises(ConfigError, match="no bitstream"):
            session.encode(output=str(tmp_path / "x.bin"))

    def test_config_validation(self):
        from repro.codec import RDModelConfig
        from repro.serialization import ConfigError

        with pytest.raises((ValueError, ConfigError)):
            RDModelConfig(method="av1")
        with pytest.raises((ValueError, ConfigError)):
            RDModelConfig(point=7)
        cfg = RDModelConfig(method="dvc", dataset="mcljcv", point=4)
        assert RDModelConfig.from_dict(cfg.to_dict()) == cfg
