"""Fig. 9 — (a) decoding speed and (b) off-chip memory access.

Fig. 9(a): average 1080p decode time per frame.  The NVCA bar is
*computed* by this repository's performance model; the literature bars
are documented estimates consistent with the paper's two stated facts —
NVCA reaches 25 FPS and beats DCVC by up to 22.7x — and with the
methods' published platform measurements (GPU-class neural decoders run
hundreds of milliseconds per 1080p frame; H.265 software decoding is
fast but is a conventional codec, not a neural one).

Fig. 9(b): per-decoder-module DRAM traffic, layer-by-layer baseline
versus the heterogeneous chaining dataflow, from
:func:`repro.hw.dataflow.compare_traffic`; the paper's reduction
percentages are carried alongside for paper-vs-measured comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.codec.layergraph import decoder_graph
from repro.hw.arch import NVCAConfig
from repro.hw.dataflow import TrafficReport, compare_traffic
from repro.hw.perf import analyze_graph

from .tables import render_bars, render_table

__all__ = [
    "Fig9aResult",
    "Fig9bResult",
    "generate_fig9a",
    "generate_fig9b",
    "PAPER_FIG9B_REDUCTIONS",
]

#: Documented 1080p per-frame decode times of the comparison methods
#: (milliseconds).  H.265 is conventional software decoding; the
#: neural methods are GPU measurements from their publications' class
#: of hardware.  DCVC is pinned by the paper's "22.7x" claim against
#: NVCA's 25 FPS (40 ms x 22.7 ~ 908 ms).
LITERATURE_DECODE_MS = {
    "h265": 28.0,
    "elf-vc": 180.0,
    "fvc": 550.0,
    "vct": 730.0,
    "dcvc": 906.0,
}

#: Paper Fig. 9(b) reduction labels per module.
PAPER_FIG9B_REDUCTIONS = {
    "feature_extraction": 0.375,
    "motion_synthesis": 0.444,
    "deformable_compensation": 0.222,
    "residual_synthesis": 0.444,
    "frame_reconstruction": 0.750,
}
PAPER_FIG9B_OVERALL = 0.407


@dataclass
class Fig9aResult:
    """Decode-time comparison (Fig. 9(a))."""

    decode_ms: dict[str, float] = field(default_factory=dict)
    nvca_fps: float = 0.0

    @property
    def speedup_vs_dcvc(self) -> float:
        return self.decode_ms["dcvc"] / self.decode_ms["nvca"]

    def render(self) -> str:
        labels = list(self.decode_ms)
        values = [self.decode_ms[k] for k in labels]
        chart = render_bars(
            labels,
            values,
            title="Fig. 9(a) — average 1080p decode time (ms/frame)",
            unit=" ms",
        )
        return (
            f"{chart}\nNVCA: {self.nvca_fps:.1f} FPS; "
            f"speedup vs DCVC: {self.speedup_vs_dcvc:.1f}x (paper: up to 22.7x)"
        )


def generate_fig9a(config: NVCAConfig | None = None) -> Fig9aResult:
    """Regenerate the decode-speed comparison at 1080p."""
    config = config or NVCAConfig()
    graph = decoder_graph(1080, 1920, config.channels)
    performance = analyze_graph(graph, config)
    result = Fig9aResult()
    result.decode_ms = dict(LITERATURE_DECODE_MS)
    result.decode_ms["nvca"] = performance.frame_time_s * 1e3
    result.nvca_fps = performance.fps
    return result


@dataclass
class Fig9bResult:
    """Off-chip traffic comparison (Fig. 9(b))."""

    traffic: TrafficReport
    paper_reductions: dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        headers = [
            "Module",
            "Baseline (GB)",
            "NVCA (GB)",
            "Reduction",
            "Paper",
        ]
        rows = []
        for entry in self.traffic.modules:
            rows.append(
                [
                    entry.module,
                    entry.baseline_bytes / 1e9,
                    entry.chained_bytes / 1e9,
                    f"-{entry.reduction:.1%}",
                    f"-{self.paper_reductions.get(entry.module, 0):.1%}",
                ]
            )
        rows.append(
            [
                "overall",
                self.traffic.baseline_total / 1e9,
                self.traffic.chained_total / 1e9,
                f"-{self.traffic.overall_reduction:.1%}",
                f"-{PAPER_FIG9B_OVERALL:.1%}",
            ]
        )
        return render_table(
            headers,
            rows,
            title="Fig. 9(b) — off-chip memory access per decoder module",
            precision=3,
        )


def generate_fig9b(
    config: NVCAConfig | None = None, height: int = 1080, width: int = 1920
) -> Fig9bResult:
    """Regenerate the off-chip traffic comparison."""
    config = config or NVCAConfig()
    graph = decoder_graph(height, width, config.channels)
    return Fig9bResult(
        traffic=compare_traffic(graph, config),
        paper_reductions=dict(PAPER_FIG9B_REDUCTIONS),
    )
