"""Design-space exploration benchmark (extension beyond the paper).

Sweeps the SCU array geometry and sparsity provisioning through the
full performance/energy/area stack, printing the frontier a designer
would use to justify the paper's Pif=Pof=12, rho=50% operating point.

Run: pytest benchmarks/bench_dse.py --benchmark-only -s
"""

from repro.codec import decoder_graph
from repro.eval import render_table
from repro.hw import pareto_front, sweep_array_geometry, sweep_sparsity

_GRAPH = decoder_graph(1080, 1920, 36)


def _render(points):
    headers = ["config", "FPS", "GOPS", "power (W)", "gates (M)", "GOPS/W"]
    rows = [
        [p.label, p.fps, p.sustained_gops, p.chip_power_w, p.gate_count_m, p.energy_efficiency]
        for p in points
    ]
    return render_table(headers, rows)


def test_geometry_sweep(benchmark):
    points = benchmark(sweep_array_geometry, _GRAPH)
    print("\n" + _render(points))
    front = pareto_front(points, maximize=("fps", "energy_efficiency"))
    print("pareto (fps x GOPS/W):", [p.label for p in front])
    paper_point = next(p for p in points if p.label == "12x12")
    assert paper_point.fps > 24.0


def test_sparsity_sweep_hw(benchmark):
    points = benchmark(sweep_sparsity, _GRAPH)
    print("\n" + _render(points))
    dense = next(p for p in points if p.rho == 0.0)
    sparse = next(p for p in points if p.rho == 0.5)
    # The design argument for rho=50%: same frame rate (DCC-bound),
    # ~40% less power, ~40% fewer gates.
    assert abs(sparse.fps - dense.fps) / dense.fps < 0.05
    assert sparse.chip_power_w < 0.75 * dense.chip_power_w
    assert sparse.gate_count_m < 0.75 * dense.gate_count_m
