"""Quickstart: encode and decode video through ``repro.pipeline``.

One ``Pipeline.run()`` composes the whole stack — synthetic source,
codec (any registered name), a real serialize/parse bitstream round
trip, and rate/quality metrics — and returns a typed ``EncodeReport``.
``run_many`` sweeps (codec, config, scene) grids the same way.

Run:  python examples/quickstart.py
"""

from repro.pipeline import Pipeline, available_codecs, create_codec, run_many

SCENE = {"height": 64, "width": 96, "frames": 4, "seed": 7}


def main():
    print(f"Registered codecs: {', '.join(available_codecs())}")

    print("\nCTVC-Net (structured initialization, N=12):")
    report = Pipeline(
        "ctvc",
        {"channels": 12, "qstep": 8.0, "seed": 1},
        scene=SCENE,
        compute_msssim=True,
    ).run()
    print(f"  {report.render()}")
    print(f"  ({report.stream_bytes} bytes, as JSON: {len(report.to_dict())} fields)")

    print("\nRate control — sweep the latent quantization step (run_many):")
    reports = run_many(
        codecs=["ctvc"],
        codec_configs=[
            {"channels": 12, "qstep": q, "seed": 1} for q in (2.0, 8.0, 32.0)
        ],
        scenes=[SCENE],
        compute_msssim=True,
    )
    for rep in reports:
        print(f"  qstep={rep.codec_config['qstep']:5g}  {rep.render()}")

    print("\nClassical block-DCT codec (the H.26x stand-in):")
    reports = run_many(
        codecs=["classical"],
        codec_configs=[{"qp": q} for q in (4.0, 16.0, 64.0)],
        scenes=[SCENE],
        compute_msssim=True,
    )
    for rep in reports:
        print(f"  qp={rep.codec_config['qp']:5g}  {rep.render()}")

    print("\nDropping below the facade — create_codec gives the raw codec:")
    codec = create_codec("ctvc", channels=12, qstep=8.0, seed=1)
    print(f"  {type(codec).__name__} with config {codec.config.to_json()}")

    print(
        "\nNote: absolute RD of the untrained CTVC pipeline is not the "
        "paper's trained model (DESIGN.md §2); what carries over is the "
        "working end-to-end system and the FP/FXP/sparse behaviour "
        "(see examples/sparse_codesign.py)."
    )


if __name__ == "__main__":
    main()
