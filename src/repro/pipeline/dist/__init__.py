"""``repro.pipeline.dist`` — sharded sweep execution over work queues.

PR 1 made every :class:`~repro.pipeline.Pipeline` job a JSON document
precisely so grids could one day shard beyond a process pool; this
package is that seam made real.  Three layers, bottom up:

* :mod:`~repro.pipeline.dist.queues` — the :class:`JobQueue`
  claim/lease/ack protocol with an in-memory implementation
  (:class:`MemoryJobQueue`, thread workers) and a directory-backed one
  (:class:`DirectoryJobQueue`, atomic-rename claims; any number of
  worker processes, on one host or across hosts sharing a filesystem).
* :mod:`~repro.pipeline.dist.worker` — the worker loop
  (:func:`run_worker`) and the process/remote-host entry point
  (:func:`worker_entry`): claim spec, dispatch it by task kind through
  :func:`repro.pipeline.tasks.run_task` (encode pipelines, hardware
  analyses, and DSE points share one fleet), ack the result; failures
  are retried by whoever claims next.
* :mod:`~repro.pipeline.dist.net` — the network transport:
  :class:`QueueServer` serves any backing queue as JSON-over-HTTP (the
  ``repro serve`` daemon); :class:`HttpJobQueue` is the client
  implementing the same :class:`JobQueue` protocol over the wire, so
  runners and workers on any host that can reach the server
  participate unchanged (``repro worker --queue-url``).
* :mod:`~repro.pipeline.dist.autoscale` — :class:`Autoscaler`: grows
  and shrinks a local worker-process fleet against observed queue
  depth and lease-expiry rate.
* :mod:`~repro.pipeline.dist.sweep` — :class:`QueueRunner`: submit a
  spec list, babysit the fleet (lease reaping, crash respawns), drain
  results incrementally (verifying each result's checksum), quarantine
  poison jobs via a circuit breaker, and hand terminal payloads to an
  aggregation.  :class:`SweepRunner` folds encode reports into
  per-(codec, scene) :class:`~repro.metrics.RDCurve` objects with
  BD-rate deltas; :class:`~repro.pipeline.dse.DSERunner` folds design
  points into Pareto fronts.
* :mod:`~repro.pipeline.dist.shm` — shared-memory frame transport:
  :func:`publish_frames` / :func:`attach_frames` /
  :func:`unlink_segments` move rendered scene frames to local process
  workers through ``multiprocessing.shared_memory`` instead of
  re-synthesizing them per job; a worker that cannot attach falls back
  to regenerating byte-identical frames from the scene config.
* :mod:`~repro.pipeline.dist.chaos` — fault injection for all of the
  above: :class:`ChaosQueue` (queue-level faults: dropped/duplicated
  acks, stolen leases), :class:`ChaosTransport` (wire-level faults for
  :class:`HttpJobQueue`), :class:`CrashPlan` (kill workers at
  scheduled checkpoints via :class:`InjectedCrash`), and the
  ``"chaos-poison"`` task kind.  All seeded and budgeted, so a chaos
  run is deterministic enough to pin in CI: faults on, byte-identical
  curves out.

Front doors: ``run_many(backend="queue", ...)`` and the ``repro
serve`` / ``repro worker`` / ``repro sweep`` / ``repro dse`` CLI
subcommands.  Protocol semantics, the job-spec schema, and the HTTP
wire schema are documented in ``docs/distributed.md``.
"""

from .autoscale import Autoscaler, spawn_directory_worker, spawn_http_worker
from .chaos import (
    POISON_KIND,
    ChaosPlan,
    ChaosQueue,
    ChaosTransport,
    CrashPlan,
    InjectedCrash,
    poison_spec,
    register_poison_task,
)
from .net import HttpJobQueue, HttpQueueError, QueueServer, http_worker_entry
from .queues import DirectoryJobQueue, Job, JobQueue, MemoryJobQueue, QueueStats
from .shm import (
    active_segments,
    attach_frames,
    publish_frames,
    unlink_segments,
)
from .sweep import (
    QueueRunner,
    SweepResult,
    SweepRunner,
    auto_bundle,
    job_id_for_spec,
)
from .worker import (
    Heartbeat,
    JobTimeoutError,
    attach_result_checksum,
    default_worker_id,
    result_checksum,
    run_worker,
    verify_result_checksum,
    worker_entry,
)

__all__ = [
    "Autoscaler",
    "ChaosPlan",
    "ChaosQueue",
    "ChaosTransport",
    "CrashPlan",
    "DirectoryJobQueue",
    "Heartbeat",
    "HttpJobQueue",
    "HttpQueueError",
    "InjectedCrash",
    "Job",
    "JobQueue",
    "JobTimeoutError",
    "MemoryJobQueue",
    "POISON_KIND",
    "QueueRunner",
    "QueueServer",
    "QueueStats",
    "SweepResult",
    "SweepRunner",
    "active_segments",
    "attach_frames",
    "attach_result_checksum",
    "auto_bundle",
    "default_worker_id",
    "http_worker_entry",
    "job_id_for_spec",
    "poison_spec",
    "publish_frames",
    "register_poison_task",
    "result_checksum",
    "run_worker",
    "spawn_directory_worker",
    "spawn_http_worker",
    "unlink_segments",
    "verify_result_checksum",
    "worker_entry",
]
