"""The sweep worker loop: pop job specs, run tasks, ack results.

A worker is deliberately dumb: it claims one job at a time from a
:class:`~repro.pipeline.dist.queues.JobQueue`, dispatches the spec by
its task kind through :func:`repro.pipeline.tasks.run_task` (a spec
without a ``"kind"`` field is an encode job — every pre-task-typing
spec still runs), and acks the resulting document.  All coordination —
retries, lease recovery, result aggregation — lives in the queue and
the :class:`~repro.pipeline.dist.sweep.SweepRunner`, so the same loop
body serves every deployment shape: inline (serial execution), threads
over a :class:`~repro.pipeline.dist.queues.MemoryJobQueue`, local
processes over a :class:`~repro.pipeline.dist.queues.DirectoryJobQueue`,
or processes on other hosts pointed at a shared queue directory (run
:func:`worker_entry` there).  One fleet can drain a mixed queue —
encode sweeps, hardware analyses, and DSE grids interleave freely.

A job that raises is ``fail()``-ed with its traceback and will be
retried by whoever claims it next, up to the queue's ``max_attempts``;
the worker itself keeps going.  Workers exit when the queue is fully
drained (nothing pending *and* nothing claimed), so a straggler's
death can still be recovered by the remaining workers rather than
orphaning its lease.
"""

from __future__ import annotations

import dataclasses
import os
import socket
import time
import traceback

from .queues import DirectoryJobQueue, Job, JobQueue

__all__ = ["Heartbeat", "default_worker_id", "run_worker", "worker_entry"]


def default_worker_id() -> str:
    """``host-pid`` — unique enough to attribute leases in a shared
    queue directory."""
    return f"{socket.gethostname()}-{os.getpid()}"


@dataclasses.dataclass(frozen=True)
class Heartbeat:
    """One structured liveness report from a worker loop.

    Emitted through ``run_worker``'s ``on_heartbeat`` callback at
    startup and after every job outcome, so a fleet supervisor — the
    :class:`~repro.pipeline.dist.autoscale.Autoscaler`, or a
    :class:`~repro.pipeline.dist.net.QueueServer` reporting fleet
    liveness under ``/stats`` — can see progress without scraping
    queue state.  ``last_job_id`` is ``None`` until the first job
    finishes (either way).
    """

    worker_id: str
    completed: int
    failed: int
    last_job_id: str | None = None

    def to_dict(self) -> dict:
        """JSON-ready document (the ``/heartbeat`` wire form)."""
        return dataclasses.asdict(self)


def execute_job(job: Job) -> dict:
    """Run one job spec to its result document (the worker's unit of
    work; import deferred so queue modules stay import-light).

    Dispatch is by the spec's ``"kind"`` field via the task registry
    (:mod:`repro.pipeline.tasks`); a spec with no ``kind`` runs as an
    ``"encode"`` job, exactly as every worker before task typing did.
    """
    from repro.pipeline.tasks import run_task

    return run_task(job.spec)


def run_worker(
    queue: JobQueue,
    worker_id: str | None = None,
    *,
    lease_seconds: float = 60.0,
    poll_seconds: float = 0.05,
    max_jobs: int | None = None,
    stop_when_drained: bool = True,
    execute=execute_job,
    on_heartbeat=None,
) -> int:
    """Drain jobs from ``queue``; returns how many this worker completed.

    ``lease_seconds`` bounds how long one job may take before the
    runner assumes this worker died and requeues the job — size it well
    above the slowest expected job.  ``max_jobs`` caps the number of
    claims (useful for tests and batch-sized workers);
    ``stop_when_drained=False`` keeps the worker polling forever (a
    long-lived fleet fed by an external submitter).  ``execute`` is the
    job body, injectable for tests.

    ``on_heartbeat`` receives a :class:`Heartbeat` at startup and after
    every job outcome (ack or fail); the default is a no-op.  A raising
    callback kills the worker — wrap best-effort reporting (e.g. over a
    flaky network) in its own try/except.

    Acks carry this worker's id, so a straggler whose lease was reaped
    and whose job was re-run elsewhere gets a clean stale-ack rejection
    instead of silently double-recording the result.
    """
    if worker_id is None:
        worker_id = default_worker_id()
    completed = 0
    failed = 0
    last_job_id: str | None = None

    def beat() -> None:
        if on_heartbeat is not None:
            on_heartbeat(
                Heartbeat(
                    worker_id=worker_id,
                    completed=completed,
                    failed=failed,
                    last_job_id=last_job_id,
                )
            )

    beat()
    while max_jobs is None or completed < max_jobs:
        job = queue.claim(worker_id, lease_seconds=lease_seconds)
        if job is None:
            # Recover orphaned leases ourselves — a serial run has no
            # runner loop reaping alongside, and in a fleet this lets
            # any surviving worker pick up a dead peer's job.
            if queue.reap_expired():
                continue  # something became claimable; retry now
            stats = queue.stats()
            if stop_when_drained and stats.pending == 0 and stats.claimed == 0:
                break
            time.sleep(poll_seconds)
            continue
        try:
            result = execute(job)
        except Exception:
            queue.fail(job.job_id, traceback.format_exc())
            failed += 1
            last_job_id = job.job_id
            beat()
            continue
        if queue.ack(job.job_id, result, worker_id=worker_id):
            completed += 1
        # else: stale ack — the lease expired and someone else owns the
        # job now; drop the result and move on.
        last_job_id = job.job_id
        beat()
    return completed


def worker_entry(
    queue_dir: str,
    worker_id: str | None = None,
    *,
    max_attempts: int = 3,
    lease_seconds: float = 60.0,
    max_jobs: int | None = None,
    poll_seconds: float = 0.05,
    stop_when_drained: bool = True,
) -> int:
    """Process entry point: attach to a queue directory and work it.

    This is what :class:`~repro.pipeline.dist.sweep.SweepRunner` spawns
    locally, and what a remote host runs to join a sweep over a shared
    filesystem::

        python -c "from repro.pipeline.dist import worker_entry; \\
                   worker_entry('/mnt/shared/sweep-queue')"

    Top-level (picklable) on purpose, so it works under both the
    ``fork`` and ``spawn`` multiprocessing start methods.
    """
    queue = DirectoryJobQueue(queue_dir, max_attempts=max_attempts)
    return run_worker(
        queue,
        worker_id,
        lease_seconds=lease_seconds,
        max_jobs=max_jobs,
        poll_seconds=poll_seconds,
        stop_when_drained=stop_when_drained,
    )
