"""Codec throughput benchmarks: encode/decode of both real codecs.

Run: pytest benchmarks/bench_codec.py --benchmark-only -s

Each codec is benchmarked per entropy backend ("cacm" reference vs the
vectorized "rans" fast path).  For the standalone runner that needs no
pytest-benchmark and writes ``BENCH_codec.json``, see
``benchmarks/run_benchmarks.py``.
"""

import numpy as np
import pytest

from repro.codec import (
    ClassicalCodec,
    ClassicalCodecConfig,
    CTVCConfig,
    CTVCNet,
    SequenceBitstream,
)
from repro.metrics import psnr
from repro.video import SceneConfig, generate_sequence

_FRAMES = generate_sequence(SceneConfig(height=64, width=96, frames=3, seed=7))

BACKENDS = ("cacm", "rans")


@pytest.mark.parametrize("backend", BACKENDS)
def test_classical_encode(benchmark, backend):
    codec = ClassicalCodec(ClassicalCodecConfig(qp=8.0, entropy_backend=backend))
    stream = benchmark(codec.encode_sequence, _FRAMES)
    assert len(stream.packets) == 3


@pytest.mark.parametrize("backend", BACKENDS)
def test_classical_decode(benchmark, backend):
    codec = ClassicalCodec(ClassicalCodecConfig(qp=8.0, entropy_backend=backend))
    blob = codec.encode_sequence(_FRAMES).serialize()

    def decode():
        return codec.decode_sequence(SequenceBitstream.parse(blob))

    decoded = benchmark(decode)
    assert np.mean([psnr(a, b) for a, b in zip(_FRAMES, decoded)]) > 28.0


@pytest.mark.parametrize("backend", BACKENDS)
def test_ctvc_encode(benchmark, backend):
    net = CTVCNet(CTVCConfig(channels=12, qstep=8.0, seed=1, entropy_backend=backend))
    stream = benchmark.pedantic(
        net.encode_sequence, args=(_FRAMES,), rounds=2, iterations=1
    )
    assert len(stream.packets) == 3


@pytest.mark.parametrize("backend", BACKENDS)
def test_ctvc_decode(benchmark, backend):
    net = CTVCNet(CTVCConfig(channels=12, qstep=8.0, seed=1, entropy_backend=backend))
    blob = net.encode_sequence(_FRAMES).serialize()

    def decode():
        return net.decode_sequence(SequenceBitstream.parse(blob))

    decoded = benchmark.pedantic(decode, rounds=2, iterations=1)
    assert len(decoded) == 3


def test_ctvc_sparse_decode(benchmark):
    """Decoding with the sparse fast executors active."""
    net = CTVCNet(CTVCConfig(channels=12, qstep=8.0, seed=1))
    net.apply_sparse(rho=0.5)
    blob = net.encode_sequence(_FRAMES).serialize()

    def decode():
        return net.decode_sequence(SequenceBitstream.parse(blob))

    decoded = benchmark.pedantic(decode, rounds=2, iterations=1)
    assert len(decoded) == 3
