"""Procedural video sequence generators.

The paper evaluates on UVG, HEVC Class B, and MCL-JCV — real corpora we
cannot ship offline.  Per the substitution policy in DESIGN.md, this
module synthesizes deterministic sequences whose *statistics* (texture
energy, global motion magnitude, local object motion, film grain) are
tuned per corpus, so the codec and accelerator exercise the same code
paths: motion estimation finds real displacements, residual coding sees
realistic prediction errors, and RD curves are smooth and monotone.

A sequence is produced by sampling a camera window that pans across a
large fractal "world" texture (global motion), compositing textured
sprites that move independently (local motion), and adding temporal
grain (noise floor that bounds achievable quality).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.serialization import SerializableConfig

__all__ = ["SceneConfig", "VideoGenerator", "generate_sequence", "iter_sequence"]


@dataclass(frozen=True)
class SceneConfig(SerializableConfig):
    """Knobs controlling the statistics of a synthetic sequence."""

    height: int = 128
    width: int = 192
    frames: int = 8
    #: Octaves of fractal value noise in the background texture.
    texture_octaves: int = 4
    #: Relative texture contrast (0..1); higher = harder to compress.
    texture_contrast: float = 0.6
    #: Global pan velocity in pixels/frame (dy, dx), sub-pixel allowed.
    pan_velocity: tuple[float, float] = (0.6, 1.3)
    #: Number of independently moving sprites.
    num_objects: int = 3
    #: Max sprite speed in pixels/frame.
    object_speed: float = 2.5
    #: Std-dev of per-frame additive grain, in 8-bit levels.
    grain_sigma: float = 1.0
    #: RNG seed — sequences are fully deterministic given the config.
    seed: int = 0


def _smooth_noise(rng: np.random.Generator, h: int, w: int, period: int) -> np.ndarray:
    """One octave of value noise: bilinear upsampling of a coarse grid."""
    gh = max(2, h // period + 2)
    gw = max(2, w // period + 2)
    grid = rng.standard_normal((gh, gw))
    ys = np.linspace(0, gh - 1.001, h)
    xs = np.linspace(0, gw - 1.001, w)
    y0 = ys.astype(int)
    x0 = xs.astype(int)
    fy = (ys - y0)[:, None]
    fx = (xs - x0)[None, :]
    tl = grid[np.ix_(y0, x0)]
    tr = grid[np.ix_(y0, x0 + 1)]
    bl = grid[np.ix_(y0 + 1, x0)]
    br = grid[np.ix_(y0 + 1, x0 + 1)]
    return (
        tl * (1 - fy) * (1 - fx)
        + tr * (1 - fy) * fx
        + bl * fy * (1 - fx)
        + br * fy * fx
    )


def _fractal_texture(
    rng: np.random.Generator, h: int, w: int, octaves: int
) -> np.ndarray:
    """Sum of value-noise octaves, normalized to zero mean, unit std."""
    out = np.zeros((h, w))
    amplitude = 1.0
    period = max(h, w) // 2
    for _ in range(octaves):
        out += amplitude * _smooth_noise(rng, h, w, max(2, period))
        amplitude *= 0.55
        period = max(2, period // 2)
    out -= out.mean()
    std = out.std()
    return out / std if std > 0 else out


def _bilinear_crop(world: np.ndarray, top: float, left: float, h: int, w: int):
    """Crop an (h, w) window at sub-pixel offset (top, left) from a plane."""
    ys = top + np.arange(h)
    xs = left + np.arange(w)
    y0 = np.floor(ys).astype(int)
    x0 = np.floor(xs).astype(int)
    fy = (ys - y0)[:, None]
    fx = (xs - x0)[None, :]
    tl = world[np.ix_(y0, x0)]
    tr = world[np.ix_(y0, x0 + 1)]
    bl = world[np.ix_(y0 + 1, x0)]
    br = world[np.ix_(y0 + 1, x0 + 1)]
    return (
        tl * (1 - fy) * (1 - fx)
        + tr * (1 - fy) * fx
        + bl * fy * (1 - fx)
        + br * fy * fx
    )


@dataclass
class _Sprite:
    texture: np.ndarray  # (3, sh, sw) RGB offsets
    mask: np.ndarray  # (sh, sw) soft alpha in [0, 1]
    position: np.ndarray  # float (y, x)
    velocity: np.ndarray  # float (dy, dx)


class VideoGenerator:
    """Deterministic synthetic sequence generator.

    >>> frames = VideoGenerator(SceneConfig(frames=4)).render()
    >>> len(frames), frames[0].shape
    (4, (3, 128, 192))
    """

    def __init__(self, config: SceneConfig):
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self._build_world()
        self._build_sprites()

    def _build_world(self) -> None:
        cfg = self.config
        total_pan_y = abs(cfg.pan_velocity[0]) * cfg.frames
        total_pan_x = abs(cfg.pan_velocity[1]) * cfg.frames
        wh = cfg.height + int(np.ceil(total_pan_y)) + 4
        ww = cfg.width + int(np.ceil(total_pan_x)) + 4
        base = _fractal_texture(self._rng, wh, ww, cfg.texture_octaves)
        # Three correlated color planes around a mid-gray operating point.
        tint = self._rng.uniform(0.7, 1.0, size=3)
        detail = [
            0.25 * _fractal_texture(self._rng, wh, ww, max(1, cfg.texture_octaves - 2))
            for _ in range(3)
        ]
        scale = 110.0 * cfg.texture_contrast
        self._world = np.stack(
            [128.0 + scale * (tint[c] * base + detail[c]) for c in range(3)]
        )
        self._world = np.clip(self._world, 0.0, 255.0)

    def _build_sprites(self) -> None:
        cfg = self.config
        self._sprites: list[_Sprite] = []
        for _ in range(cfg.num_objects):
            sh = int(self._rng.integers(cfg.height // 8, cfg.height // 3))
            sw = int(self._rng.integers(cfg.width // 8, cfg.width // 3))
            sh, sw = max(sh, 8), max(sw, 8)
            tex = _fractal_texture(self._rng, sh, sw, 3)
            color = self._rng.uniform(-60, 60, size=3)
            texture = np.stack([color[c] + 30.0 * tex for c in range(3)])
            yy, xx = np.mgrid[0:sh, 0:sw]
            cy, cx = (sh - 1) / 2.0, (sw - 1) / 2.0
            dist = ((yy - cy) / (sh / 2.0)) ** 2 + ((xx - cx) / (sw / 2.0)) ** 2
            mask = np.clip(1.2 - dist, 0.0, 1.0)
            position = np.array(
                [
                    self._rng.uniform(0, cfg.height - sh),
                    self._rng.uniform(0, cfg.width - sw),
                ]
            )
            angle = self._rng.uniform(0, 2 * np.pi)
            speed = self._rng.uniform(0.3, 1.0) * cfg.object_speed
            velocity = speed * np.array([np.sin(angle), np.cos(angle)])
            self._sprites.append(_Sprite(texture, mask, position, velocity))

    def _composite(self, frame: np.ndarray, sprite: _Sprite) -> None:
        cfg = self.config
        sh, sw = sprite.mask.shape
        top = int(round(sprite.position[0]))
        left = int(round(sprite.position[1]))
        y0, y1 = max(0, top), min(cfg.height, top + sh)
        x0, x1 = max(0, left), min(cfg.width, left + sw)
        if y0 >= y1 or x0 >= x1:
            return
        sy0, sx0 = y0 - top, x0 - left
        sub_mask = sprite.mask[sy0 : sy0 + (y1 - y0), sx0 : sx0 + (x1 - x0)]
        sub_tex = sprite.texture[:, sy0 : sy0 + (y1 - y0), sx0 : sx0 + (x1 - x0)]
        region = frame[:, y0:y1, x0:x1]
        frame[:, y0:y1, x0:x1] = region + sub_mask[None] * sub_tex

    def _bounce(self, sprite: _Sprite) -> None:
        cfg = self.config
        sh, sw = sprite.mask.shape
        sprite.position += sprite.velocity
        for axis, limit, size in ((0, cfg.height, sh), (1, cfg.width, sw)):
            if sprite.position[axis] < -size / 2 or sprite.position[axis] > (
                limit - size / 2
            ):
                sprite.velocity[axis] *= -1.0
                sprite.position[axis] += 2 * sprite.velocity[axis]

    def frames(self) -> Iterator[np.ndarray]:
        """Yield frames lazily as (3, H, W) float arrays in [0, 255].

        One frame is materialized at a time, so streaming encode
        sessions consume arbitrarily long scenes in O(1) frame memory.
        Sprite state advances as frames are consumed (the generator is
        stateful); build a fresh :class:`VideoGenerator` — or use
        :func:`iter_sequence` — for a second identical pass.
        """
        cfg = self.config
        pan = np.array([0.0, 0.0])
        start = np.array([2.0, 2.0])
        for _ in range(cfg.frames):
            top, left = start + np.maximum(pan, 0.0) - np.minimum(pan, 0.0) * 0
            top = start[0] + (pan[0] if cfg.pan_velocity[0] >= 0 else -pan[0])
            left = start[1] + (pan[1] if cfg.pan_velocity[1] >= 0 else -pan[1])
            frame = np.stack(
                [
                    _bilinear_crop(self._world[c], top, left, cfg.height, cfg.width)
                    for c in range(3)
                ]
            )
            for sprite in self._sprites:
                self._composite(frame, sprite)
                self._bounce(sprite)
            if cfg.grain_sigma > 0:
                frame = frame + self._rng.normal(
                    0.0, cfg.grain_sigma, size=frame.shape
                )
            yield np.clip(frame, 0.0, 255.0)
            pan = pan + np.abs(np.array(cfg.pan_velocity))

    def render(self) -> list[np.ndarray]:
        """Render all frames at once (materializes :meth:`frames`)."""
        return list(self.frames())


def iter_sequence(config: SceneConfig | None = None) -> Iterator[np.ndarray]:
    """Lazy frame source: a fresh generator's :meth:`frames` stream.

    Bit-identical to :func:`generate_sequence` frame by frame, without
    ever materializing the sequence.
    """
    return VideoGenerator(config or SceneConfig()).frames()


def generate_sequence(config: SceneConfig | None = None) -> list[np.ndarray]:
    """Convenience wrapper: render a sequence from a config (or defaults)."""
    return list(iter_sequence(config))
