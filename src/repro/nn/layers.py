"""Minimal module system: parameter registration and core layers.

A deliberately small subset of the torch.nn surface, sufficient for the
CTVC-Net topology in Fig. 2 of the paper: Conv2d, ConvTranspose2d
(DeConv), MaxPool2d, activations, and Sequential composition.  Modules
track their parameters and children so network-wide passes (fixed-point
quantization, transform-domain pruning, layer-graph extraction) can
traverse any model generically.

Layers expose two integration hooks used by the co-design stack:

* ``compute_backend`` — an optional callable ``(layer, x) -> y`` that
  replaces the direct kernel.  :mod:`repro.core.strategy` installs the
  sparse fast-algorithm executors here, so swapping dense / Winograd /
  sparse execution never touches network definitions.
* ``activation_quant`` — an optional :class:`repro.nn.quant.QuantSpec`
  applied to the layer output, modelling the paper's 12-bit activation
  format.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from . import functional as F
from .init import he_normal

__all__ = [
    "Parameter",
    "Module",
    "Sequential",
    "ModuleList",
    "Conv2d",
    "ConvTranspose2d",
    "MaxPool2d",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Identity",
]


class Parameter:
    """A named, mutable tensor owned by a Module."""

    def __init__(self, data: np.ndarray):
        self.data = np.asarray(data, dtype=np.float64)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    def numel(self) -> int:
        return int(self.data.size)

    def __repr__(self) -> str:
        return f"Parameter(shape={self.data.shape})"


class Module:
    """Base class: registers Parameters and sub-Modules on assignment."""

    def __init__(self):
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # -- traversal ----------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def num_parameters(self) -> int:
        return sum(p.numel() for p in self.parameters())

    # -- execution ----------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Run child modules in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self._layers = []
        for index, layer in enumerate(layers):
            setattr(self, f"layer{index}", layer)
            self._layers.append(layer)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self._layers:
            x = layer(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._layers)

    def __len__(self) -> int:
        return len(self._layers)

    def __getitem__(self, index: int) -> Module:
        return self._layers[index]


class ModuleList(Module):
    """A list of sub-modules (no implicit forward)."""

    def __init__(self, modules: list[Module] | None = None):
        super().__init__()
        self._items: list[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> None:
        setattr(self, f"item{len(self._items)}", module)
        self._items.append(module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]


class _KernelLayer(Module):
    """Shared machinery for Conv2d / ConvTranspose2d."""

    op_kind = "conv"

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int,
        padding: int,
        bias: bool,
        rng: np.random.Generator | None,
    ):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        rng = rng or np.random.default_rng(0)
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            he_normal(rng, (out_channels, in_channels, kernel_size, kernel_size), fan_in)
        )
        self.bias = Parameter(np.zeros(out_channels)) if bias else None
        #: optional callable (layer, x) -> y installed by repro.core.
        self.compute_backend: Callable | None = None
        #: optional QuantSpec applied to the output activation.
        self.activation_quant = None

    def _finish(self, out: np.ndarray) -> np.ndarray:
        if self.activation_quant is not None:
            out = self.activation_quant.fake_quant(out)
        return out


class Conv2d(_KernelLayer):
    """2-D convolution layer, ``Conv(N, k, s)`` in the paper's notation."""

    op_kind = "conv"

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int | None = None,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        if padding is None:
            padding = kernel_size // 2  # "same" for odd kernels at stride 1
        super().__init__(
            in_channels, out_channels, kernel_size, stride, padding, bias, rng
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.compute_backend is not None:
            out = self.compute_backend(self, x)
        else:
            out = F.conv2d(
                x,
                self.weight.data,
                self.bias.data if self.bias is not None else None,
                self.stride,
                self.padding,
            )
        return self._finish(out)

    def output_shape(self, in_shape: tuple[int, int, int]) -> tuple[int, int, int]:
        _, h, w = in_shape
        return (
            self.out_channels,
            F.conv_output_size(h, self.kernel_size, self.stride, self.padding),
            F.conv_output_size(w, self.kernel_size, self.stride, self.padding),
        )


class ConvTranspose2d(_KernelLayer):
    """Transposed convolution, ``DeConv(N, k, s)`` in the paper."""

    op_kind = "deconv"

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 2,
        padding: int | None = None,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        if padding is None:
            # The paper's DeConv(N, 4, 2) doubles resolution; padding 1
            # gives exactly 2x upsampling for k=4, s=2.
            padding = (kernel_size - stride) // 2
        super().__init__(
            in_channels, out_channels, kernel_size, stride, padding, bias, rng
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.compute_backend is not None:
            out = self.compute_backend(self, x)
        else:
            out = F.conv_transpose2d(
                x,
                self.weight.data,
                self.bias.data if self.bias is not None else None,
                self.stride,
                self.padding,
            )
        return self._finish(out)

    def output_shape(self, in_shape: tuple[int, int, int]) -> tuple[int, int, int]:
        _, h, w = in_shape
        return (
            self.out_channels,
            F.deconv_output_size(h, self.kernel_size, self.stride, self.padding),
            F.deconv_output_size(w, self.kernel_size, self.stride, self.padding),
        )


class MaxPool2d(Module):
    def __init__(self, kernel_size: int = 2, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.max_pool2d(x, self.kernel_size, self.stride)


class ReLU(Module):
    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.relu(x)


class LeakyReLU(Module):
    def __init__(self, slope: float = 0.1):
        super().__init__()
        self.slope = slope

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.leaky_relu(x, self.slope)


class Sigmoid(Module):
    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.sigmoid(x)


class Identity(Module):
    def forward(self, x: np.ndarray) -> np.ndarray:
        return x
