"""NVCA: a reproduction of "A Computationally Efficient Neural Video
Compression Accelerator Based on a Sparse CNN-Transformer Hybrid
Network" (Zhang, Mao, Shi, Wang - DATE 2024).

Package map
-----------
``repro.pipeline`` the composable front door: a string-keyed codec
                   registry, serializable configs, and a ``Pipeline``
                   facade producing typed encode/hardware reports.
``repro.core``     the paper's algorithmic contribution: Winograd/FTA
                   fast transforms, importance-weighted transform-domain
                   pruning, united sparse execution, co-design driver.
``repro.nn``       NumPy DNN substrate (conv/deconv/deformable/Swin
                   attention/quantization).
``repro.codec``    CTVC-Net codec, entropy coding, bitstreams, the
                   classical baseline, calibrated literature RD models.
``repro.hw``       NVCA accelerator model: SFTC/DCC, chaining dataflow,
                   performance/energy/area, pipeline simulator.
``repro.metrics``  PSNR, MS-SSIM, Bjontegaard deltas.
``repro.video``    synthetic corpora and raw-video utilities.
``repro.eval``     regenerates every table and figure.

Quick start
-----------
>>> from repro.pipeline import Pipeline, available_codecs
>>> available_codecs()
['classical', 'ctvc']
>>> report = Pipeline(
...     "ctvc", {"channels": 12, "qstep": 8.0},
...     scene={"height": 64, "width": 96, "frames": 4},
... ).run()
>>> report.bpp, report.mean_psnr        # typed EncodeReport
>>> report.to_dict()                    # JSON-ready

Sweeps fan out the same job spec, optionally over a process pool:

>>> from repro.pipeline import run_many
>>> reports = run_many(codecs=["ctvc", "classical"],
...                    scenes=[{"frames": 4}], processes=4)

Codecs are plugins — ``create_codec("ctvc", channels=12)`` builds one
directly, and ``register_codec`` adds new variants without touching
any caller.
"""

# Defined before the imports below so the build is identifiable even
# from modules imported during package initialization (e.g. the
# observability layer stamping trace files and heartbeats).
__version__ = "1.2.0"

from .codec import CTVCConfig, CTVCNet, ClassicalCodec, ClassicalCodecConfig
from .core import NVCACodesign, SparseStrategy
from .hw import NVCAConfig
from .metrics import bd_rate, ms_ssim, psnr
from .pipeline import (
    EncodeReport,
    HardwareReport,
    Pipeline,
    available_codecs,
    create_codec,
    register_codec,
    run_many,
)
from .serialization import ConfigError, SerializableConfig
from .video import SceneConfig

__all__ = [
    "CTVCConfig",
    "CTVCNet",
    "ClassicalCodec",
    "ClassicalCodecConfig",
    "ConfigError",
    "EncodeReport",
    "HardwareReport",
    "NVCACodesign",
    "NVCAConfig",
    "Pipeline",
    "SceneConfig",
    "SerializableConfig",
    "SparseStrategy",
    "available_codecs",
    "bd_rate",
    "create_codec",
    "ms_ssim",
    "psnr",
    "register_codec",
    "run_many",
    "__version__",
]
