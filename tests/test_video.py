"""Tests for synthetic video generation and YUV utilities."""

import numpy as np
import pytest

from repro.video import (
    DATASETS,
    SceneConfig,
    VideoGenerator,
    YUV420Reader,
    dataset_names,
    generate_sequence,
    iter_sequence,
    load_dataset,
    read_yuv420,
    rgb_to_ycbcr,
    subsample_420,
    upsample_420,
    write_yuv420,
    ycbcr_to_rgb,
)


class TestColorConversion:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        rgb = rng.uniform(0, 255, (3, 16, 24))
        back = ycbcr_to_rgb(rgb_to_ycbcr(rgb))
        assert np.abs(back - rgb).max() < 1e-9

    def test_gray_has_neutral_chroma(self):
        gray = np.full((3, 8, 8), 128.0)
        ycc = rgb_to_ycbcr(gray)
        assert np.allclose(ycc[0], 128.0)
        assert np.allclose(ycc[1:], 128.0)

    def test_luma_weights(self):
        red = np.zeros((3, 2, 2))
        red[0] = 255.0
        assert rgb_to_ycbcr(red)[0, 0, 0] == pytest.approx(255 * 0.299)

    def test_bad_shape_raises(self):
        with pytest.raises(ValueError):
            rgb_to_ycbcr(np.zeros((16, 16)))


class TestSubsampling:
    def test_420_shapes(self):
        ycc = np.zeros((3, 16, 24))
        y, cb, cr = subsample_420(ycc)
        assert y.shape == (16, 24)
        assert cb.shape == (8, 12)
        assert cr.shape == (8, 12)

    def test_odd_dims_rejected(self):
        with pytest.raises(ValueError):
            subsample_420(np.zeros((3, 15, 24)))

    def test_upsample_roundtrip_constant(self):
        ycc = np.full((3, 8, 8), 77.0)
        up = upsample_420(*subsample_420(ycc))
        assert np.allclose(up, 77.0)


class TestYUVFileIO:
    def test_roundtrip(self, tmp_path):
        rng = np.random.default_rng(7)
        frames = [rng.uniform(0, 255, (3, 16, 16)) for _ in range(3)]
        path = str(tmp_path / "clip.yuv")
        nbytes = write_yuv420(path, frames)
        assert nbytes == 3 * (16 * 16 + 2 * 64)
        back = read_yuv420(path, 16, 16)
        assert len(back) == 3
        # Chroma subsampling + 8-bit rounding is lossy, but luma content
        # must survive with high fidelity.
        for orig, rec in zip(frames, back):
            y_orig = rgb_to_ycbcr(orig)[0]
            y_rec = rgb_to_ycbcr(rec)[0]
            assert np.abs(y_orig - y_rec).mean() < 2.0

    def test_bad_size_rejected(self, tmp_path):
        path = tmp_path / "bad.yuv"
        path.write_bytes(b"\x00" * 100)
        with pytest.raises(ValueError):
            read_yuv420(str(path), 16, 16)

    def test_reader_is_lazy_sequence(self, tmp_path):
        rng = np.random.default_rng(3)
        frames = [rng.uniform(0, 255, (3, 16, 16)) for _ in range(4)]
        path = str(tmp_path / "clip.yuv")
        write_yuv420(path, frames)
        reader = read_yuv420(path, 16, 16)
        assert isinstance(reader, YUV420Reader)
        assert len(reader) == 4
        # random access, negative indices, slices, iteration — all the
        # list affordances, decoded one frame per access.
        assert np.array_equal(reader[1], list(reader)[1])
        assert np.array_equal(reader[-1], reader[3])
        assert [f.shape for f in reader[1:3]] == [(3, 16, 16)] * 2
        with pytest.raises(IndexError):
            reader[4]
        # two sweeps give identical frames (no consumed-iterator state)
        first = [f.copy() for f in reader]
        for a, b in zip(first, reader):
            assert np.array_equal(a, b)

    def test_write_accepts_generator(self, tmp_path):
        cfg = SceneConfig(height=16, width=16, frames=3, seed=11)
        from_list = str(tmp_path / "list.yuv")
        from_gen = str(tmp_path / "gen.yuv")
        write_yuv420(from_list, generate_sequence(cfg))
        nbytes = write_yuv420(from_gen, iter_sequence(cfg))
        assert nbytes == 3 * (16 * 16 + 2 * 64)
        assert (
            open(from_list, "rb").read() == open(from_gen, "rb").read()
        )


class TestVideoGenerator:
    def test_deterministic(self):
        cfg = SceneConfig(frames=3, seed=5)
        a = VideoGenerator(cfg).render()
        b = VideoGenerator(cfg).render()
        for fa, fb in zip(a, b):
            assert np.array_equal(fa, fb)

    def test_shapes_and_range(self):
        frames = generate_sequence(SceneConfig(height=64, width=96, frames=4))
        assert len(frames) == 4
        for frame in frames:
            assert frame.shape == (3, 64, 96)
            assert frame.min() >= 0.0
            assert frame.max() <= 255.0

    def test_temporal_coherence(self):
        # Adjacent frames must be much closer than distant frames —
        # the property motion estimation exploits.
        frames = generate_sequence(SceneConfig(frames=8, seed=3))
        adjacent = np.mean((frames[0] - frames[1]) ** 2)
        distant = np.mean((frames[0] - frames[7]) ** 2)
        assert adjacent < distant

    def test_motion_exists(self):
        frames = generate_sequence(SceneConfig(frames=2, seed=3, grain_sigma=0.0))
        assert np.mean((frames[0] - frames[1]) ** 2) > 0.1

    def test_different_seeds_differ(self):
        a = generate_sequence(SceneConfig(frames=1, seed=1))
        b = generate_sequence(SceneConfig(frames=1, seed=2))
        assert not np.array_equal(a[0], b[0])

    def test_iter_sequence_matches_generate_sequence(self):
        cfg = SceneConfig(height=32, width=48, frames=4, seed=9)
        lazy = iter_sequence(cfg)
        assert not isinstance(lazy, list)  # a true generator
        for eager, streamed in zip(generate_sequence(cfg), lazy, strict=True):
            assert np.array_equal(eager, streamed)

    def test_texture_contrast_scales_energy(self):
        low = VideoGenerator(
            SceneConfig(texture_contrast=0.2, num_objects=0, grain_sigma=0)
        ).render()[0]
        high = VideoGenerator(
            SceneConfig(texture_contrast=0.9, num_objects=0, grain_sigma=0)
        ).render()[0]
        assert high.std() > low.std()


class TestDatasets:
    def test_registry_names(self):
        assert dataset_names() == ["hevcb-sim", "mcljcv-sim", "uvg-sim"]

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            load_dataset("kodak")

    def test_specs_render(self):
        spec = load_dataset("uvg-sim")
        sequences = spec.sequences()
        assert len(sequences) == spec.num_sequences
        assert sequences[0][0].shape == (3, 128, 192)

    def test_sequences_within_dataset_differ(self):
        spec = load_dataset("hevcb-sim")
        seqs = spec.sequences()
        assert not np.array_equal(seqs[0][0], seqs[1][0])

    def test_corpora_have_distinct_motion(self):
        # MCL-JCV stand-in is configured with faster motion than UVG.
        uvg = DATASETS["uvg-sim"].base_config
        mcl = DATASETS["mcljcv-sim"].base_config
        assert mcl.object_speed > uvg.object_speed
        assert sum(abs(v) for v in mcl.pan_velocity) > sum(
            abs(v) for v in uvg.pan_velocity
        )
