"""Classical hybrid block-DCT video codec (the H.26x stand-in).

A complete, measured conventional codec: I-frames are 8x8 block-DCT
transform coded in YCbCr 4:2:0; P-frames use block-matching motion
compensation plus DCT-coded residuals; everything is entropy coded
under per-band Laplacian models — through the pluggable entropy
backend named in the config (vectorized rANS by default, CACM'87
arithmetic coding as the reference) — and packed into a real
bitstream.  The decoder reconstructs bit-exactly what the encoder's
closed loop reconstructed, whichever backend wrote the stream.

Three roles in the reproduction (DESIGN.md §2):

* the measured "conventional codec" reference point in RD experiments
  (standing in for the H.264/H.265 binaries we cannot run offline);
* the intra coder for CTVC-Net's I-frames — mirroring DVC/FVC, which
  use H.265-intra for the first frame of every GOP;
* a workload generator for decode-time comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.fft import dctn, idctn

from repro.obs.tracing import encode_stage_timer
from repro.serialization import SerializableConfig
from repro.video.yuv import rgb_to_ycbcr, subsample_420, upsample_420, ycbcr_to_rgb

from .bitstream import FramePacket, SequenceBitstream, f16_bits, f16_from_bits
from .entropy import (
    ArithmeticDecoder,
    EntropyBackend,
    LaplacianModel,
    cached_laplacian,
    cached_uniform_model,
    get_entropy_backend,
)
from .modules import block_match, dense_motion_field
from .rate_control import create_rate_controller, validate_rate_fields
from .sessions import (
    DecoderSession,
    EncoderSession,
    GopDecoderSession,
    GopEncoderSession,
)

__all__ = ["ClassicalCodecConfig", "ClassicalCodec", "zigzag_indices"]

_BLOCK = 8
#: Zigzag frequency bands sharing one Laplacian scale each:
#: DC, low AC, mid AC, high AC.
_BANDS = ((0, 1), (1, 6), (6, 21), (21, 64))


def zigzag_indices(size: int = _BLOCK) -> np.ndarray:
    """Flat indices of an (size x size) block in JPEG zigzag order."""
    order = sorted(
        range(size * size),
        key=lambda idx: (
            idx // size + idx % size,
            (idx // size if (idx // size + idx % size) % 2 else idx % size),
        ),
    )
    return np.array(order, dtype=np.int64)


_ZIGZAG = zigzag_indices(_BLOCK)


@dataclass(frozen=True)
class ClassicalCodecConfig(SerializableConfig):
    """Operating parameters of the classical codec."""

    qp: float = 8.0  # quantization step for luma DCT coefficients
    chroma_qp_scale: float = 1.6
    block_size: int = 8  # motion block size (luma pixels)
    search_range: int = 8
    gop: int = 8  # I-frame interval
    support: int = 255  # symbol support for coefficient coding
    #: refine integer motion to half-pel precision (bilinear reference
    #: interpolation), as H.264-class codecs do.
    half_pel: bool = False
    #: entropy coder for coefficients and motion ("rans" is the fast
    #: vectorized default, "cacm" the paper-exact reference).
    entropy_backend: str = "rans"
    #: rate controller name ("cqp" / "abr" / "calibrated"; see
    #: :mod:`repro.codec.rate_control`) or None for plain fixed-QP.
    rate_control: str | None = None
    #: bitrate budget in kilobits per second (needs a rate controller).
    target_kbps: float | None = None
    #: frame rate the bitrate budget is measured against.
    fps: float = 30.0

    def __post_init__(self):
        get_entropy_backend(self.entropy_backend)  # fail fast on unknown names
        validate_rate_fields(self.rate_control, self.target_kbps, self.fps)


def _pad_to_blocks(plane: np.ndarray) -> np.ndarray:
    h, w = plane.shape
    ph = (-h) % _BLOCK
    pw = (-w) % _BLOCK
    if ph or pw:
        plane = np.pad(plane, ((0, ph), (0, pw)), mode="edge")
    return plane


def _blockify(plane: np.ndarray) -> np.ndarray:
    """(H, W) -> (nblocks, 8, 8) raster order."""
    h, w = plane.shape
    nby, nbx = h // _BLOCK, w // _BLOCK
    return (
        plane.reshape(nby, _BLOCK, nbx, _BLOCK)
        .transpose(0, 2, 1, 3)
        .reshape(nby * nbx, _BLOCK, _BLOCK)
    )


def _unblockify(blocks: np.ndarray, h: int, w: int) -> np.ndarray:
    nby, nbx = h // _BLOCK, w // _BLOCK
    return (
        blocks.reshape(nby, nbx, _BLOCK, _BLOCK)
        .transpose(0, 2, 1, 3)
        .reshape(h, w)
    )


def _band_scales(coeffs: np.ndarray) -> list[int]:
    """Laplacian MLE scale per zigzag band, as f32 bit patterns
    (compact, exact side info — encoder and decoder build identical
    probability models from it)."""
    scales = []
    for lo, hi in _BANDS:
        band = coeffs[:, lo:hi]
        scales.append(f16_bits(LaplacianModel.fit_scale(band)))
    return scales


def _band_models(scale_bits: list[int], support: int) -> list[LaplacianModel]:
    return [cached_laplacian(s, support) for s in scale_bits]


class _PlaneCoder:
    """Transform coding of one plane (intra) or one residual plane.

    The symbol support adapts to the actual coefficient range and is
    carried as side information, so small quantization steps never clip
    DC coefficients.

    Since format version 2 the four zigzag bands are coded as
    contiguous per-band segments (all blocks' DC, then all low AC, ...)
    so any entropy backend codes them with vectorized symbol mapping;
    version-1 streams interleaved the bands block by block and decode
    through the ``legacy_order`` path.
    """

    def __init__(self, qstep: float, support: int, entropy: EntropyBackend):
        self.qstep = qstep
        self.max_support = support
        self.entropy = entropy

    def encode(self, plane: np.ndarray) -> tuple[bytes, dict, np.ndarray]:
        """Returns (payload, side-info meta, reconstructed plane)."""
        # None while tracing is off: each stage boundary then costs
        # one truthiness check, and no clock is ever read.
        timer = encode_stage_timer("classical")
        h, w = plane.shape
        padded = _pad_to_blocks(plane)
        blocks = _blockify(padded)
        coeffs = dctn(blocks, axes=(1, 2), norm="ortho")
        flat = coeffs.reshape(len(blocks), 64)[:, _ZIGZAG]
        if timer:
            timer.lap("transform")
        raw = np.round(flat / self.qstep)
        support = int(np.clip(np.max(np.abs(raw)), 16, 4 * self.max_support))
        quantized = np.clip(raw, -support, support).astype(np.int64)

        scales = _band_scales(quantized)
        models = _band_models(scales, support)
        if timer:
            timer.lap("quantize")
        segments = [
            (quantized[:, lo:hi].ravel() + support, model.model)
            for (lo, hi), model in zip(_BANDS, models)
        ]
        payload = self.entropy.encode_segments(segments)
        if timer:
            timer.lap("entropy")

        recon = self._reconstruct(quantized, padded.shape)
        meta = {"s": scales, "u": support}
        return payload, meta, recon[:h, :w]

    def decode(
        self,
        payload: bytes,
        meta: dict,
        h: int,
        w: int,
        legacy_order: bool = False,
    ) -> np.ndarray:
        ph = h + ((-h) % _BLOCK)
        pw = w + ((-w) % _BLOCK)
        nblocks = (ph // _BLOCK) * (pw // _BLOCK)
        models = _band_models(meta["s"], meta["u"])
        support = meta["u"]
        quantized = np.empty((nblocks, 64), dtype=np.int64)
        if legacy_order:
            # Version-1 layout: bands interleaved block by block, always
            # CACM-coded (the seed coder's symbol order).
            decoder = ArithmeticDecoder(payload)
            for b in range(nblocks):
                for (lo, hi), model in zip(_BANDS, models):
                    for pos in range(lo, hi):
                        quantized[b, pos] = model.value_of(
                            decoder.decode(model.model)
                        )
        else:
            specs = [
                (nblocks * (hi - lo), model.model)
                for (lo, hi), model in zip(_BANDS, models)
            ]
            bands = self.entropy.decode_segments(payload, specs)
            for (lo, hi), symbols in zip(_BANDS, bands):
                quantized[:, lo:hi] = (symbols - support).reshape(
                    nblocks, hi - lo
                )
        return self._reconstruct(quantized, (ph, pw))[:h, :w]

    def _reconstruct(self, quantized: np.ndarray, shape: tuple[int, int]):
        flat = np.zeros_like(quantized, dtype=np.float64)
        flat[:, _ZIGZAG] = quantized * self.qstep
        blocks = idctn(flat.reshape(-1, _BLOCK, _BLOCK), axes=(1, 2), norm="ortho")
        return _unblockify(blocks, *shape)


class ClassicalCodec:
    """Hybrid block codec: I/P GOP structure, 4:2:0, closed loop."""

    def __init__(self, config: ClassicalCodecConfig | None = None):
        self.config = config or ClassicalCodecConfig()
        self.entropy = get_entropy_backend(self.config.entropy_backend)
        #: per-frame QP override set by a rate controller (None = use
        #: the config QP).  f16-quantized so the value the encoder
        #: quantizes with is exactly the value the packet meta carries.
        self._frame_qp: float | None = None

    def set_frame_qp(self, qp: float | None) -> None:
        """Override the QP for subsequent frames (rate-control hook).

        ``None`` clears the override.  The value is snapped to its f16
        bit pattern so the encoder-side quantizer and the decoder-side
        reconstruction (driven by the ``"rq"`` packet meta) agree
        exactly."""
        if qp is None:
            self._frame_qp = None
        else:
            self._frame_qp = f16_from_bits(f16_bits(float(qp)))

    # -- plane helpers --------------------------------------------------
    def _planes(self, frame: np.ndarray):
        """RGB (3, H, W) -> (Y, Cb, Cr) with 4:2:0 chroma."""
        return subsample_420(rgb_to_ycbcr(frame))

    def _frame_from_planes(self, y, cb, cr) -> np.ndarray:
        return np.clip(ycbcr_to_rgb(upsample_420(y, cb, cr)), 0.0, 255.0)

    def _plane_coders(
        self,
        entropy: EntropyBackend | None = None,
        qp: float | None = None,
    ):
        cfg = self.config
        entropy = entropy or self.entropy
        if qp is None:
            qp = cfg.qp if self._frame_qp is None else self._frame_qp
        luma = _PlaneCoder(qp, cfg.support, entropy)
        chroma = _PlaneCoder(qp * cfg.chroma_qp_scale, cfg.support, entropy)
        return luma, chroma

    # -- intra ----------------------------------------------------------
    def encode_intra(self, frame: np.ndarray) -> tuple[FramePacket, np.ndarray]:
        """Code one I-frame; returns (packet, reconstruction)."""
        y, cb, cr = self._planes(frame)
        luma_coder, chroma_coder = self._plane_coders()
        packet = FramePacket(frame_type="I")
        recon_planes = []
        metas = []
        for name, plane, coder in (
            ("y", y - 128.0, luma_coder),
            ("cb", cb - 128.0, chroma_coder),
            ("cr", cr - 128.0, chroma_coder),
        ):
            payload, side, recon = coder.encode(plane)
            packet.add_chunk(name, payload)
            metas.append({"p": name, "sd": side, "hw": list(plane.shape)})
            recon_planes.append(recon + 128.0)
        packet.meta["P"] = metas
        if self._frame_qp is not None:
            packet.meta["rq"] = f16_bits(self._frame_qp)
        recon = self._frame_from_planes(*recon_planes)
        return packet, recon

    def decode_intra(
        self,
        packet: FramePacket,
        *,
        entropy: EntropyBackend | None = None,
        legacy_order: bool = False,
    ) -> np.ndarray:
        luma_coder, chroma_coder = self._plane_coders(
            entropy, qp=self._packet_qp(packet)
        )
        planes = []
        for meta in packet.meta["P"]:
            coder = luma_coder if meta["p"] == "y" else chroma_coder
            h, w = meta["hw"]
            plane = coder.decode(
                packet.chunks[meta["p"]], meta["sd"], h, w, legacy_order
            )
            planes.append(plane + 128.0)
        return self._frame_from_planes(*planes)

    def _packet_qp(self, packet: FramePacket) -> float:
        """QP one packet was coded with: the per-frame override a
        rate-controlled stream carries in packet meta (``"rq"``, an f16
        bit pattern) when present, the config QP otherwise.  Decode
        always passes this explicitly so it follows the stream, never
        this instance's encoder-side override state."""
        rq = packet.meta.get("rq")
        return self.config.qp if rq is None else f16_from_bits(rq)

    # -- inter ----------------------------------------------------------
    @property
    def _mv_max_abs(self) -> int:
        """Largest motion magnitude in coded units (half-pel units when
        half-pel refinement is on)."""
        cfg = self.config
        return 2 * cfg.search_range + 1 if cfg.half_pel else cfg.search_range

    def _encode_motion(self, mv: np.ndarray) -> tuple[bytes, dict]:
        max_abs = self._mv_max_abs
        model = cached_uniform_model(2 * max_abs + 1)
        payload = self.entropy.encode_segments([(mv.ravel() + max_abs, model)])
        return payload, {"mvs": list(mv.shape), "hp": int(self.config.half_pel)}

    def _decode_motion(
        self, payload: bytes, meta: dict, entropy: EntropyBackend | None = None
    ) -> np.ndarray:
        entropy = entropy or self.entropy
        max_abs = self._mv_max_abs
        model = cached_uniform_model(2 * max_abs + 1)
        shape = tuple(meta["mvs"])
        count = int(np.prod(shape))
        flat = entropy.decode_segments(payload, [(count, model)])[0] - max_abs
        return flat.reshape(shape)

    def _predict_plane(
        self, ref: np.ndarray, mv: np.ndarray, h: int, w: int, chroma: bool
    ) -> np.ndarray:
        """Motion-compensated prediction of one plane from coded MVs."""
        cfg = self.config
        if cfg.half_pel:
            block = cfg.block_size // (2 if chroma else 1)
            dense = dense_motion_field(mv, h, w, block).astype(np.float64)
            if chroma:
                dense *= 0.5  # luma half-pel -> chroma quarter-pel
            return self._warp_half(ref, dense)
        scale = 2 if chroma else 1
        dense = dense_motion_field(mv // scale, h, w, cfg.block_size // scale)
        return self._warp(ref, dense)

    @staticmethod
    def _warp(plane: np.ndarray, dense_mv: np.ndarray) -> np.ndarray:
        """Integer motion-compensated prediction with edge clamping."""
        h, w = plane.shape
        ys = np.clip(np.arange(h)[:, None] + dense_mv[0], 0, h - 1).astype(int)
        xs = np.clip(np.arange(w)[None, :] + dense_mv[1], 0, w - 1).astype(int)
        return plane[ys, xs]

    @staticmethod
    def _warp_half(plane: np.ndarray, dense_mv_half: np.ndarray) -> np.ndarray:
        """Half-pel motion compensation: ``dense_mv_half`` is in
        half-pixel units; fractional positions bilinearly interpolate."""
        h, w = plane.shape
        ys = np.clip(np.arange(h)[:, None] + dense_mv_half[0] / 2.0, 0, h - 1)
        xs = np.clip(np.arange(w)[None, :] + dense_mv_half[1] / 2.0, 0, w - 1)
        y0 = np.floor(ys).astype(int)
        x0 = np.floor(xs).astype(int)
        y1 = np.minimum(y0 + 1, h - 1)
        x1 = np.minimum(x0 + 1, w - 1)
        fy = ys - y0
        fx = xs - x0
        return (
            plane[y0, x0] * (1 - fy) * (1 - fx)
            + plane[y0, x1] * (1 - fy) * fx
            + plane[y1, x0] * fy * (1 - fx)
            + plane[y1, x1] * fy * fx
        )

    def _refine_half_pel(
        self, cur: np.ndarray, ref: np.ndarray, int_mv: np.ndarray
    ) -> np.ndarray:
        """Half-pel refinement around the integer block-match result.

        For each of the 9 sub-pel candidates the whole plane is warped
        once (integer mv + candidate), then per-block SADs pick the
        best offset.  Returns motion in half-pel units.
        """
        cfg = self.config
        bs = cfg.block_size
        h, w = cur.shape
        nby, nbx = int_mv.shape[1], int_mv.shape[2]
        hc, wc = nby * bs, nbx * bs
        base_half = 2 * int_mv
        best = np.full((nby, nbx), np.inf)
        best_mv = base_half.copy()
        dense_base = dense_motion_field(base_half, h, w, bs)
        for sub_y in (-1, 0, 1):
            for sub_x in (-1, 0, 1):
                candidate = dense_base.copy()
                candidate[0] += sub_y
                candidate[1] += sub_x
                predicted = self._warp_half(ref, candidate)
                diff = np.abs(cur[:hc, :wc] - predicted[:hc, :wc])
                sad = diff.reshape(nby, bs, nbx, bs).sum(axis=(1, 3))
                better = sad < best
                best = np.where(better, sad, best)
                best_mv[0] = np.where(better, base_half[0] + sub_y, best_mv[0])
                best_mv[1] = np.where(better, base_half[1] + sub_x, best_mv[1])
        return best_mv

    def encode_inter(
        self, frame: np.ndarray, reference: np.ndarray
    ) -> tuple[FramePacket, np.ndarray]:
        """Code one P-frame against the decoded reference."""
        cfg = self.config
        y, cb, cr = self._planes(frame)
        ry, rcb, rcr = self._planes(reference)
        mv = block_match(y, ry, cfg.block_size, cfg.search_range)
        if cfg.half_pel:
            mv = self._refine_half_pel(y, ry, mv)
        packet = FramePacket(frame_type="P")
        mv_payload, mv_meta = self._encode_motion(mv)
        packet.add_chunk("mv", mv_payload)
        packet.meta.update(mv_meta)

        luma_coder, chroma_coder = self._plane_coders()
        recon_planes = []
        metas = []
        for name, plane, ref, coder, chroma in (
            ("y", y, ry, luma_coder, False),
            ("cb", cb, rcb, chroma_coder, True),
            ("cr", cr, rcr, chroma_coder, True),
        ):
            h, w = plane.shape
            prediction = self._predict_plane(ref, mv, h, w, chroma)
            payload, side, residual_recon = coder.encode(plane - prediction)
            packet.add_chunk(name, payload)
            metas.append({"p": name, "sd": side, "hw": [h, w]})
            recon_planes.append(
                np.clip(prediction + residual_recon, 0.0, 255.0)
            )
        packet.meta["P"] = metas
        if self._frame_qp is not None:
            packet.meta["rq"] = f16_bits(self._frame_qp)
        recon = self._frame_from_planes(*recon_planes)
        return packet, recon

    def decode_inter(
        self,
        packet: FramePacket,
        reference: np.ndarray,
        *,
        entropy: EntropyBackend | None = None,
        legacy_order: bool = False,
    ) -> np.ndarray:
        if bool(packet.meta.get("hp", 0)) != self.config.half_pel:
            raise ValueError(
                "bitstream motion precision does not match codec config"
            )
        ry, rcb, rcr = self._planes(reference)
        mv = self._decode_motion(packet.chunks["mv"], packet.meta, entropy)
        luma_coder, chroma_coder = self._plane_coders(
            entropy, qp=self._packet_qp(packet)
        )
        planes = []
        for meta, ref, coder, chroma in zip(
            packet.meta["P"],
            (ry, rcb, rcr),
            (luma_coder, chroma_coder, chroma_coder),
            (False, True, True),
        ):
            h, w = meta["hw"]
            prediction = self._predict_plane(ref, mv, h, w, chroma)
            residual = coder.decode(
                packet.chunks[meta["p"]], meta["sd"], h, w, legacy_order
            )
            planes.append(np.clip(prediction + residual, 0.0, 255.0))
        return self._frame_from_planes(*planes)

    # -- streaming sessions ----------------------------------------------
    def open_encoder(self) -> EncoderSession:
        """Streaming encoder: ``push(frame)`` yields packets as frames
        arrive (see :mod:`repro.codec.sessions`)."""

        cfg = self.config

        def make_header(frame: np.ndarray) -> dict:
            _, h, w = frame.shape
            header = {
                "codec": "classical-dct",
                "height": h,
                "width": w,
                "qp": cfg.qp,
                "gop": cfg.gop,
                "entropy": self.entropy.name,
                "rate_control": cfg.rate_control or "cqp",
            }
            if cfg.target_kbps is not None:
                header["target_kbps"] = cfg.target_kbps
                header["fps"] = cfg.fps
            return header

        self.set_frame_qp(None)  # a fresh session starts at the config QP
        controller = None
        if cfg.rate_control is not None:
            controller = create_rate_controller(
                cfg.rate_control,
                base_qp=cfg.qp,
                target_kbps=cfg.target_kbps,
                fps=cfg.fps,
            )
        return GopEncoderSession(
            intra=self.encode_intra,
            inter=self.encode_inter,
            gop=cfg.gop,
            make_header=make_header,
            rate_control=controller,
            apply_qp=self.set_frame_qp,
        )

    def open_decoder(
        self, header: dict | None = None, version: int = 2
    ) -> DecoderSession:
        """Streaming decoder honouring the backend the stream header
        names; version-1 streams use the legacy CACM layout.  Without a
        header the session trusts this codec's configured backend."""
        if header is None:
            entropy = self.entropy
        else:
            entropy = get_entropy_backend(header.get("entropy", "cacm"))
        legacy_order = version == 1
        return GopDecoderSession(
            intra=lambda packet: self.decode_intra(
                packet, entropy=entropy, legacy_order=legacy_order
            ),
            inter=lambda packet, reference: self.decode_inter(
                packet, reference, entropy=entropy, legacy_order=legacy_order
            ),
        )

    # -- sequence (thin wrappers over the sessions) ----------------------
    def encode_sequence(self, frames: list[np.ndarray]) -> SequenceBitstream:
        session = self.open_encoder()
        packets = list(session.encode_iter(frames))
        if not packets:
            raise ValueError("no frames to encode")
        stream = SequenceBitstream(header=session.header)
        for packet in packets:
            stream.add_packet(packet)
        return stream

    def decode_sequence(self, stream: SequenceBitstream) -> list[np.ndarray]:
        session = self.open_decoder(stream.header, version=stream.version)
        return list(session.decode_iter(stream.packets))
