#!/usr/bin/env python
"""Standalone performance benchmarks: codecs, entropy backends, kernels.

No pytest-benchmark required — run directly and get a JSON report::

    PYTHONPATH=src python benchmarks/run_benchmarks.py            # full
    PYTHONPATH=src python benchmarks/run_benchmarks.py --smoke    # CI
    PYTHONPATH=src python benchmarks/run_benchmarks.py -o out.json

Measures, on the bench_codec scene (64x96, 3 frames, seed 7):

* **codecs** — end-to-end encode/decode wall time of ``CTVCNet`` and
  ``ClassicalCodec`` per entropy backend, plus a ``seed`` row that
  times a faithful replica of the pre-backend coder (per-symbol
  ``symbol_of`` calls, per-bit Python list I/O, per-frame model
  rebuilds — the seed commit's hot loops) so speedups are tracked
  against a fixed reference.  Reconstructions are asserted identical
  across backends (the entropy stage is lossless) and round-trips are
  byte-exact.
* **entropy** — symbols/sec of each backend on a long Laplacian
  stream, round-trip verified.
* **kernels** — conv2d / conv_transpose2d / bilinear warp /
  block-match / 8x8 DCT timings of the NumPy substrate.
* **container** — the integrity tax: write/read wall time of the same
  packet list through the version-3 (CRC-free) and version-4
  (header + per-packet CRC32) stream containers, with the byte
  overhead asserted to be exactly ``4 * (1 + num_packets)``.
* **rate_control** — the rate-control tax: end-to-end encode CPU time
  of the classical codec with ``rate_control="cqp"`` vs no controller
  (the non-adaptive path must be effectively free — CI asserts under
  2%), the one-off ``calibrate_tables`` probe-encode cost, and
  per-frame ``frame_qp``+``observe`` microseconds for the adaptive
  controllers.
* **sweep** — grid throughput (jobs/s) of ``run_many`` per execution
  backend on a fixed 24-job classical RD grid: a cold standalone
  invocation (``inline`` — what every fleetless sweep pays), the
  warm in-process loop (``inline_warm``), thread workers over the
  in-memory queue, per-job-claim process workers (``cold_spawn``),
  and bundled/warm/shared-frame process and HTTP workers.  Tracks
  whether the distributed transport beats the standalone baseline
  (``x_vs_inline``) and how close it sits to the warm serial floor
  (``x_vs_inline_warm``).
* **hardware** — hardware-analysis throughput (design points/s) of a
  fixed NVCA geometry grid: the inline ``repro.hw.dse`` sweep vs the
  same points through the task-typed work queue (``DSERunner``,
  2 thread workers), with Pareto fronts asserted identical.  Tracks
  the queue's per-point dispatch cost on sub-millisecond analytic
  jobs.

The report lands in ``BENCH_codec.json`` (override with ``-o``): one
entry per benchmark with per-stage milliseconds, plus speedup ratios
(``x_vs_seed``, ``x_vs_cacm``) per codec.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time

import numpy as np

from repro.codec import (
    ArithmeticDecoder,
    ClassicalCodec,
    ClassicalCodecConfig,
    CTVCConfig,
    CTVCNet,
    LaplacianModel,
    SequenceBitstream,
    cached_laplacian,
    estimate_bits,
    get_entropy_backend,
    register_entropy_backend,
    unregister_entropy_backend,
)
from repro.codec.entropy import ArithmeticEncoder
from repro.metrics import psnr
from repro.video import SceneConfig, generate_sequence

#: the canonical bench_codec scene (matches benchmarks/bench_codec.py).
BENCH_SCENE = dict(height=64, width=96, frames=3, seed=7)


class SeedCoderBackend:
    """Replica of the seed commit's entropy hot path, for baselines.

    Reproduces what PR-1-era ``CTVCNet``/``ClassicalCodec`` did per
    symbol — a ``LaplacianModel.symbol_of``-style ``np.clip`` call, a
    per-symbol arithmetic-coder step over per-bit Python lists, model
    tables rebuilt instead of cached — so ``run_benchmarks.py`` can
    keep measuring "vs the seed coder" after the seed code itself is
    gone.  Output is byte-identical to the ``cacm`` backend.
    """

    name = "seed"

    class _BitListEncoder(ArithmeticEncoder):
        def finish(self) -> bytes:
            if not self._finished:
                self._pending += 1
                self._emit(0 if self._low < 1 << 30 else 1)
                self._finished = True
            bits = self._bits
            padded = bits + [0] * ((-len(bits)) % 8)
            out = bytearray()
            for i in range(0, len(padded), 8):
                byte = 0
                for bit in padded[i : i + 8]:
                    byte = (byte << 1) | bit
                out.append(byte)
            return bytes(out)

    class _BitListDecoder(ArithmeticDecoder):
        def __init__(self, data: bytes):
            bits = []
            for byte in data:
                for shift in range(7, -1, -1):
                    bits.append((byte >> shift) & 1)
            self._bits = bits
            self._pos = 0
            self._low = 0
            self._high = (1 << 32) - 1
            self._value = 0
            for _ in range(32):
                self._value = (self._value << 1) | self._next_bit()

    def _rebuild(self, model):
        # The seed rebuilt probability tables from side info per frame;
        # charge an equivalent table construction to this baseline.
        from repro.codec.entropy import SymbolModel

        return SymbolModel(model.freqs.copy())

    def encode_segments(self, segments) -> bytes:
        encoder = self._BitListEncoder()
        for symbols, model in segments:
            rebuilt = self._rebuild(model)
            n = rebuilt.num_symbols
            for value in np.asarray(symbols, dtype=np.int64).ravel():
                # per-symbol clip, as LaplacianModel.symbol_of did
                symbol = int(np.clip(value, 0, n - 1))
                encoder.encode(symbol, rebuilt)
        return encoder.finish()

    def decode_segments(self, data: bytes, segments) -> list:
        decoder = self._BitListDecoder(data)
        out = []
        for count, model in segments:
            rebuilt = self._rebuild(model)
            out.append(
                np.array(
                    [decoder.decode(rebuilt) for _ in range(int(count))],
                    dtype=np.int64,
                )
            )
        return out


def _time(fn, repeats: int):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_codecs(frames, repeats: int, backends) -> dict:
    configs = {
        "ctvc": lambda be: CTVCNet(
            CTVCConfig(channels=12, qstep=8.0, seed=1, entropy_backend=be)
        ),
        "classical": lambda be: ClassicalCodec(
            ClassicalCodecConfig(qp=8.0, entropy_backend=be)
        ),
    }
    report: dict = {}
    for codec_name, make in configs.items():
        rows = {}
        reference_frames = None
        for backend in backends:
            codec = make(backend)
            encode_s, stream = _time(lambda: codec.encode_sequence(frames), repeats)
            payload = stream.serialize()
            decode_s, decoded = _time(
                lambda: codec.decode_sequence(SequenceBitstream.parse(payload)),
                repeats,
            )
            # Entropy coding is lossless: every backend must reproduce
            # the exact same reconstruction.
            if reference_frames is None:
                reference_frames = decoded
            else:
                for a, b in zip(reference_frames, decoded):
                    assert np.array_equal(a, b), (
                        f"{codec_name}/{backend}: reconstruction mismatch"
                    )
            rows[backend] = {
                "encode_ms": encode_s * 1e3,
                "decode_ms": decode_s * 1e3,
                "total_ms": (encode_s + decode_s) * 1e3,
                "stream_bytes": len(payload),
                "mean_psnr_db": float(
                    np.mean([psnr(a, b) for a, b in zip(frames, decoded)])
                ),
            }
        for backend in backends:
            if backend == "seed":
                continue
            row = rows[backend]
            if "seed" in rows:
                row["x_vs_seed"] = rows["seed"]["total_ms"] / row["total_ms"]
            if "cacm" in rows and backend != "cacm":
                row["x_vs_cacm"] = rows["cacm"]["total_ms"] / row["total_ms"]
        report[codec_name] = rows
    return report


def bench_entropy(num_symbols: int, repeats: int, backends) -> dict:
    rng = np.random.default_rng(3)
    model = LaplacianModel(scale=2.0, support=64)
    values = np.clip(
        np.round(rng.laplace(0, 2.0, num_symbols)), -64, 64
    ).astype(np.int64) + 64
    ideal = estimate_bits(values, model.model)
    report = {"num_symbols": num_symbols, "ideal_bits": ideal}
    for name in backends:
        backend = get_entropy_backend(name)
        if name == "seed" and num_symbols > 50_000:
            # the per-bit baseline is ~6 us/symbol; keep its slot short
            # and scale the throughput numbers from a 50k subset.
            sub = values[:50_000]
            encode_s, blob = _time(
                lambda: backend.encode_segments([(sub, model.model)]), 1
            )
            decode_s, decoded = _time(
                lambda: backend.decode_segments(blob, [(len(sub), model.model)]), 1
            )
            assert np.array_equal(decoded[0], sub)
            report[name] = {
                "encode_msym_per_s": len(sub) / encode_s / 1e6,
                "decode_msym_per_s": len(sub) / decode_s / 1e6,
                "subset_symbols": len(sub),
            }
            continue
        encode_s, blob = _time(
            lambda: backend.encode_segments([(values, model.model)]), repeats
        )
        decode_s, decoded = _time(
            lambda: backend.decode_segments(blob, [(num_symbols, model.model)]),
            repeats,
        )
        assert np.array_equal(decoded[0], values), f"{name}: round-trip mismatch"
        report[name] = {
            "encode_ms": encode_s * 1e3,
            "decode_ms": decode_s * 1e3,
            "encode_msym_per_s": num_symbols / encode_s / 1e6,
            "decode_msym_per_s": num_symbols / decode_s / 1e6,
            "bits": 8 * len(blob),
            "overhead_vs_ideal": 8 * len(blob) / ideal - 1.0,
        }
    return report


def bench_kernels(repeats: int) -> dict:
    from scipy.fft import dctn

    from repro.nn import functional as F
    from repro.nn.deform import deform_conv2d

    rng = np.random.default_rng(11)
    x = rng.standard_normal((24, 32, 48))
    w33 = rng.standard_normal((24, 24, 3, 3))
    w44 = rng.standard_normal((24, 24, 4, 4))
    offsets = rng.standard_normal((36, 32, 48)) * 0.5
    dfw = rng.standard_normal((24, 24, 3, 3)) * 0.1
    luma = rng.standard_normal((64, 96)) * 40 + 128
    blocks = rng.standard_normal((96, 8, 8))

    cases = {
        "conv2d_3x3_s1": lambda: F.conv2d(x, w33, padding=1),
        "conv_transpose2d_4x4_s2": lambda: F.conv_transpose2d(
            x, w44, stride=2, padding=1
        ),
        "deform_conv2d_3x3_g2": lambda: deform_conv2d(
            x, offsets, dfw, groups=2
        ),
        "block_match_8x8_r4": lambda: __import__(
            "repro.codec.modules", fromlist=["block_match"]
        ).block_match(luma, np.roll(luma, 2, axis=1), 8, 4),
        "dct_8x8_x96": lambda: dctn(blocks, axes=(1, 2), norm="ortho"),
    }
    report = {}
    for name, fn in cases.items():
        seconds, _ = _time(fn, repeats)
        report[name] = {"ms": seconds * 1e3}
    return report


def bench_container(frames, repeats: int) -> dict:
    """CRC32 integrity cost: v4 (checksummed) vs v3 container I/O."""
    import io

    from repro.codec import StreamReader, StreamWriter

    codec = ClassicalCodec(ClassicalCodecConfig(qp=8.0, entropy_backend="rans"))
    stream = codec.encode_sequence(frames)
    report: dict = {"num_packets": len(stream.packets)}
    blobs: dict[int, bytes] = {}
    for version in (3, 4):

        def write(version=version):
            buffer = io.BytesIO()
            writer = StreamWriter(buffer, stream.header, version=version)
            for packet in stream.packets:
                writer.write_packet(packet)
            writer.finalize()
            return buffer.getvalue()

        write_s, blob = _time(write, repeats)
        read_s, packets = _time(
            lambda: list(StreamReader(io.BytesIO(blob))), repeats
        )
        assert [p.serialize() for p in packets] == [
            p.serialize() for p in stream.packets
        ], f"v{version}: container round-trip mismatch"
        blobs[version] = blob
        report[f"v{version}"] = {
            "write_ms": write_s * 1e3,
            "read_ms": read_s * 1e3,
            "stream_bytes": len(blob),
        }
    # v4 costs the header CRC word plus one word per packet, nothing else
    assert len(blobs[4]) == len(blobs[3]) + 4 * (1 + len(stream.packets))
    report["crc_bytes"] = len(blobs[4]) - len(blobs[3])
    report["crc_write_overhead"] = (
        report["v4"]["write_ms"] / report["v3"]["write_ms"] - 1.0
    )
    report["crc_read_overhead"] = (
        report["v4"]["read_ms"] / report["v3"]["read_ms"] - 1.0
    )
    return report


def bench_rate_control(repeats: int) -> dict:
    """The rate-control tax: cqp vs none, calibration, controller cost."""
    import statistics
    import time as _time_mod

    from repro.codec import calibrate_tables, create_rate_controller
    from repro.pipeline import create_codec
    from repro.video import SceneConfig, generate_sequence

    # a small probe scene keeps each encode ~10 ms so many paired
    # samples fit in a short wall-clock budget
    probe = generate_sequence(SceneConfig(height=32, width=48, frames=3))

    def encode(config):
        codec = create_codec("classical", config)
        return list(codec.open_encoder().encode_iter(probe))

    def cpu_seconds(config):
        start = _time_mod.process_time()
        encode(config)
        return _time_mod.process_time() - start

    # The true cqp tax (the session's per-frame adaptive check) is far
    # below machine noise, so a naive back-to-back wall-clock A/B would
    # report whatever the scheduler was doing.  Three defenses: CPU
    # time instead of wall time (preemption doesn't bill the victim),
    # ABBA ordering within pairs (cancels warm-cache position bias),
    # and comparing low percentiles over many samples (load spikes
    # inflate the tail, not the clean runs; the exact minimum is a
    # single-sample statistic and still too jumpy).
    base_cfg = {"qp": 8.0}
    cqp_cfg = {"qp": 8.0, "rate_control": "cqp"}
    encode(base_cfg)
    encode(cqp_cfg)

    def p10(samples):
        return sorted(samples)[len(samples) // 10]

    def one_batch():
        base_times, cqp_times = [], []
        for index in range(max(20 * repeats, 60)):
            if index % 2 == 0:
                base_s, cqp_s = cpu_seconds(base_cfg), cpu_seconds(cqp_cfg)
            else:
                cqp_s, base_s = cpu_seconds(cqp_cfg), cpu_seconds(base_cfg)
            base_times.append(base_s)
            cqp_times.append(cqp_s)
        return base_times, cqp_times

    # co-tenant load can only inflate a batch's estimate, so keep the
    # best of up to three batches (stop early once clearly in bounds)
    best = None
    for _ in range(3):
        base_times, cqp_times = one_batch()
        estimate = (
            statistics.median(base_times),
            statistics.median(cqp_times),
            p10(cqp_times) / p10(base_times) - 1.0,
        )
        if best is None or estimate[2] < best[2]:
            best = estimate
        if best[2] < 0.01:
            break
    report: dict = {
        "baseline_encode_ms": best[0] * 1e3,
        "cqp_encode_ms": best[1] * 1e3,
        "cqp_overhead": best[2],
    }

    calibration_s, tables = _time(
        lambda: calibrate_tables("classical", qps=(4.0, 8.0, 16.0, 32.0)), 1
    )
    assert sorted(tables) == ["I", "P"]
    report["calibration_seconds"] = calibration_s

    steps = 2000
    for name in ("abr", "calibrated"):
        rc = create_rate_controller(name, base_qp=8.0, target_kbps=100.0)
        state = rc.new_state()

        def drive(rc=rc, state=state):
            for index in range(steps):
                frame_type = "I" if index % 8 == 0 else "P"
                qp = rc.frame_qp(frame_type, state)
                state.record(frame_type, 4000)
                rc.observe(frame_type, qp, 4000)

        seconds, _ = _time(drive, 1)
        report[name] = {"us_per_frame": seconds / steps * 1e6}
    return report


def bench_observability(repeats: int) -> dict:
    """The observability tax: encode with tracing (spans + per-stage
    timers) on vs off, byte-identity of the instrumented stream, and
    the raw cost of one metric update."""
    import statistics
    import time as _time_mod

    from repro.obs import (
        MetricsRegistry,
        enable,
        get_recorder,
        span,
    )
    from repro.pipeline import create_codec
    from repro.video import SceneConfig, generate_sequence

    # same probe scene as bench_rate_control: ~10 ms encodes, so many
    # paired samples fit in a short wall-clock budget
    probe = generate_sequence(SceneConfig(height=32, width=48, frames=3))

    def encode():
        codec = create_codec("classical", {"qp": 8.0})
        return list(codec.open_encoder().encode_iter(probe))

    # instrumentation must never change the stream
    enable(False)
    plain = [p.serialize() for p in encode()]
    enable(True)
    traced = [p.serialize() for p in encode()]
    enable(False)
    get_recorder().clear()
    assert traced == plain, "tracing changed encoded bytes"

    def cpu_seconds(traced_run: bool):
        enable(traced_run)
        try:
            start = _time_mod.process_time()
            encode()
            return _time_mod.process_time() - start
        finally:
            enable(False)

    # Same defenses as the cqp A/B (the effect is below machine
    # noise): CPU time, ABBA pair ordering, low percentiles over many
    # samples, best of up to three batches.
    cpu_seconds(False)
    cpu_seconds(True)

    def p10(samples):
        return sorted(samples)[len(samples) // 10]

    def one_batch():
        off_times, on_times = [], []
        for index in range(max(20 * repeats, 60)):
            if index % 2 == 0:
                off_s, on_s = cpu_seconds(False), cpu_seconds(True)
            else:
                on_s, off_s = cpu_seconds(True), cpu_seconds(False)
            off_times.append(off_s)
            on_times.append(on_s)
        return off_times, on_times

    best = None
    for _ in range(3):
        off_times, on_times = one_batch()
        estimate = (
            statistics.median(off_times),
            statistics.median(on_times),
            p10(on_times) / p10(off_times) - 1.0,
        )
        if best is None or estimate[2] < best[2]:
            best = estimate
        if best[2] < 0.01:
            break
    get_recorder().clear()
    report: dict = {
        "baseline_encode_ms": best[0] * 1e3,
        "traced_encode_ms": best[1] * 1e3,
        "traced_overhead": best[2],
        "byte_identical": True,  # asserted above
    }

    # raw instrument costs (the always-on budget): one counter inc,
    # one histogram observation, one disabled-span entry/exit
    updates = 200_000
    registry = MetricsRegistry()
    counter = registry.counter("bench_counter")
    start = _time_mod.process_time()
    for _ in range(updates):
        counter.inc(kind="encode")
    report["counter_inc_us"] = (
        (_time_mod.process_time() - start) / updates * 1e6
    )
    histogram = registry.histogram("bench_histogram")
    start = _time_mod.process_time()
    for _ in range(updates):
        histogram.observe(0.01, kind="encode")
    report["histogram_observe_us"] = (
        (_time_mod.process_time() - start) / updates * 1e6
    )
    start = _time_mod.process_time()
    for _ in range(updates):
        with span("bench"):
            pass
    report["disabled_span_us"] = (
        (_time_mod.process_time() - start) / updates * 1e6
    )
    return report


def bench_sweep(repeats: int) -> dict:
    """Sweep-executor throughput on a fixed 24-job classical grid.

    The ``inline`` row is the cost of serving the sweep without a
    fleet: a fresh interpreter runs the same grid through
    ``run_many`` and pays the imports, codec construction, and scene
    synthesis that every standalone invocation pays.  That is the
    baseline the warm-worker fleet amortizes away, and the one the
    ``x_vs_inline`` ratios are taken against.  ``inline_warm`` keeps
    the steady-state lower bound — the same loop in an already-warm
    process — so the warm/cold split is recorded, not hidden.

    Every distributed row runs the bundled/warm/shared-frames
    transport (``bundle`` sized by :func:`auto_bundle`); the
    ``cold_spawn`` row keeps the pre-bundling baseline — per-job
    claims, no shared frames — so the transport win stays measured.
    The ``context`` entries record the runner-process WorkerContext
    hit/miss split where the workers share it.
    """
    import os
    import subprocess
    import tempfile
    from pathlib import Path

    import repro
    from repro.pipeline import SweepRunner, run_many
    from repro.pipeline.dist import auto_bundle
    from repro.pipeline.tasks import get_worker_context, reset_worker_context

    grid = dict(
        codecs=["classical"],
        codec_configs=[
            {"qp": qp} for qp in (4.0, 8.0, 12.0, 16.0, 24.0, 32.0)
        ],
        scenes=[
            dict(height=32, width=48, frames=2, seed=seed)
            for seed in range(4)
        ],
    )
    num_jobs = 24
    bundle = auto_bundle(num_jobs, 2)
    report: dict = {"num_jobs": num_jobs, "bundle": bundle}

    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src_dir, env.get("PYTHONPATH")) if p
    )
    script = (
        "from repro.pipeline import run_many\n"
        f"reports = run_many(**{grid!r})\n"
        f"assert len(reports) == {num_jobs}\n"
    )

    def run_inline_invocation():
        subprocess.run(
            [sys.executable, "-c", script], check=True, env=env
        )

    serial_s, _ = _time(run_inline_invocation, repeats)
    report["inline"] = {
        "seconds": serial_s,
        "jobs_per_s": num_jobs / serial_s,
        "cold_start": True,
    }

    reset_worker_context()
    warm_s, _ = _time(lambda: run_many(**grid), repeats)
    report["inline_warm"] = {
        "seconds": warm_s,
        "jobs_per_s": num_jobs / warm_s,
        "context": get_worker_context().stats(),
    }

    reset_worker_context()
    threads_s, result = _time(
        lambda: SweepRunner(**grid, workers=2, bundle=bundle).run(), repeats
    )
    assert result.ok and len(result.reports) == num_jobs
    report["queue_threads_x2"] = {
        "seconds": threads_s,
        "jobs_per_s": num_jobs / threads_s,
        "x_vs_inline": serial_s / threads_s,
        "x_vs_inline_warm": warm_s / threads_s,
        "bundle": bundle,
        "context": get_worker_context().stats(),
    }

    def run_cold_queue():
        # the pre-bundling transport: one claim round-trip per job,
        # frames re-synthesized in every worker
        with tempfile.TemporaryDirectory() as root:
            return SweepRunner(
                **grid, queue_dir=root, workers=2,
                bundle=1, share_frames=False,
            ).run()

    cold_s, result = _time(run_cold_queue, repeats)
    assert result.ok and len(result.reports) == num_jobs
    report["cold_spawn"] = {
        "seconds": cold_s,
        "jobs_per_s": num_jobs / cold_s,
        "x_vs_inline": serial_s / cold_s,
        "bundle": 1,
        "share_frames": False,
    }

    def run_dir_queue():
        with tempfile.TemporaryDirectory() as root:
            return SweepRunner(
                **grid, queue_dir=root, workers=2, bundle=bundle
            ).run()

    procs_s, result = _time(run_dir_queue, repeats)
    assert result.ok and len(result.reports) == num_jobs
    report["queue_processes_x2"] = {
        "seconds": procs_s,
        "jobs_per_s": num_jobs / procs_s,
        "x_vs_inline": serial_s / procs_s,
        "x_vs_inline_warm": warm_s / procs_s,
        "x_vs_cold_spawn": cold_s / procs_s,
        "bundle": bundle,
        "share_frames": True,
    }

    def run_http_queue():
        from repro.pipeline.dist import HttpJobQueue, MemoryJobQueue, QueueServer

        with QueueServer(MemoryJobQueue(), port=0) as server:
            return SweepRunner(
                **grid, queue=HttpJobQueue(server.url), workers=2,
                bundle=bundle,
            ).run()

    http_s, result = _time(run_http_queue, repeats)
    assert result.ok and len(result.reports) == num_jobs
    report["queue_http_x2"] = {
        "seconds": http_s,
        "jobs_per_s": num_jobs / http_s,
        "x_vs_inline": serial_s / http_s,
        "x_vs_processes": procs_s / http_s,
        "bundle": bundle,
        "share_frames": True,
    }
    return report


def bench_hardware(repeats: int) -> dict:
    """Hardware-analysis throughput on a fixed NVCA geometry grid."""
    from repro.codec import decoder_graph
    from repro.hw import NVCAConfig, pareto_front, sweep_array_geometry
    from repro.pipeline import DSERunner, dse_grid

    height, width = 270, 480
    geometries = ((6, 6), (12, 6), (12, 12), (18, 12), (18, 18))
    num_points = len(geometries)
    graph = decoder_graph(height, width, NVCAConfig().channels)

    inline_s, inline_points = _time(
        lambda: sweep_array_geometry(graph, geometries), repeats
    )
    specs = dse_grid("geometry", values=geometries, height=height, width=width)
    queue_s, result = _time(lambda: DSERunner(specs, workers=2).run(), repeats)
    assert result.ok and len(result.points) == num_points
    # same points, same frontier: the queue may cost time, never answers
    assert [p.to_dict() for p in result.points] == [
        p.to_dict() for p in inline_points
    ]
    assert [p.label for p in result.pareto] == [
        p.label for p in pareto_front(inline_points)
    ]
    return {
        "num_points": num_points,
        "inline": {
            "seconds": inline_s,
            "points_per_s": num_points / inline_s,
        },
        "queue_threads_x2": {
            "seconds": queue_s,
            "points_per_s": num_points / queue_s,
            "x_vs_inline": inline_s / queue_s,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-o", "--output", default="BENCH_codec.json", help="report path"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI mode: fewer repeats, shorter entropy stream, no seed row",
    )
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--skip-seed",
        action="store_true",
        help="skip the slow seed-coder baseline rows",
    )
    args = parser.parse_args(argv)

    repeats = args.repeats or (1 if args.smoke else 3)
    # 100k symbols keeps even smoke runs long enough that the rANS
    # state flush stays well under the 1% overhead budget.
    entropy_symbols = 100_000 if args.smoke else 400_000
    with_seed = not (args.smoke or args.skip_seed)

    register_entropy_backend("seed", SeedCoderBackend(), overwrite=True)
    try:
        codec_backends = (["seed"] if with_seed else []) + ["cacm", "rans"]
        entropy_backends = (["seed"] if with_seed else []) + ["cacm", "rans"]

        frames = generate_sequence(SceneConfig(**BENCH_SCENE))
        cached_laplacian.cache_clear()

        print("== codecs (bench_codec scene: 64x96x3) ==", flush=True)
        codecs = bench_codecs(frames, repeats, codec_backends)
        for codec_name, rows in codecs.items():
            for backend, row in rows.items():
                extra = "".join(
                    f"  {k}={row[k]:.2f}" for k in ("x_vs_seed", "x_vs_cacm") if k in row
                )
                print(
                    f"  {codec_name:10s} {backend:5s} enc {row['encode_ms']:8.1f}ms "
                    f"dec {row['decode_ms']:8.1f}ms  {row['stream_bytes']:6d}B "
                    f"psnr {row['mean_psnr_db']:.2f}dB{extra}"
                )

        print(f"== entropy backends ({entropy_symbols} Laplacian symbols) ==")
        entropy = bench_entropy(entropy_symbols, repeats, entropy_backends)
        for name in entropy_backends:
            row = entropy[name]
            overhead = (
                f"  overhead {100 * row['overhead_vs_ideal']:.2f}%"
                if "overhead_vs_ideal" in row
                else ""
            )
            print(
                f"  {name:5s} enc {row['encode_msym_per_s']:7.2f} Msym/s "
                f"dec {row['decode_msym_per_s']:7.2f} Msym/s{overhead}"
            )

        print("== kernels ==")
        kernels = bench_kernels(repeats)
        for name, row in kernels.items():
            print(f"  {name:24s} {row['ms']:8.3f} ms")

        print("== container integrity (v4 CRC32 vs v3) ==")
        container = bench_container(frames, repeats)
        for version in ("v3", "v4"):
            row = container[version]
            print(
                f"  {version:4s} write {row['write_ms']:7.2f} ms  "
                f"read {row['read_ms']:7.2f} ms  {row['stream_bytes']:6d}B"
            )
        print(
            f"  crc tax: +{container['crc_bytes']}B, "
            f"write {100 * container['crc_write_overhead']:+.1f}%, "
            f"read {100 * container['crc_read_overhead']:+.1f}%"
        )

        print("== rate control (classical codec, 32x48x3 probe scene) ==")
        rate_control = bench_rate_control(repeats)
        print(
            f"  cqp vs none: {rate_control['baseline_encode_ms']:.1f} ms -> "
            f"{rate_control['cqp_encode_ms']:.1f} ms "
            f"({100 * rate_control['cqp_overhead']:+.2f}%)"
        )
        print(
            f"  calibrate_tables(classical)   "
            f"{rate_control['calibration_seconds'] * 1e3:8.1f} ms"
        )
        for name in ("abr", "calibrated"):
            print(
                f"  {name:10s} controller step "
                f"{rate_control[name]['us_per_frame']:8.2f} us/frame"
            )

        print("== observability (tracing on vs off, 32x48x3 probe scene) ==")
        observability = bench_observability(repeats)
        print(
            f"  traced vs off: {observability['baseline_encode_ms']:.1f} ms"
            f" -> {observability['traced_encode_ms']:.1f} ms "
            f"({100 * observability['traced_overhead']:+.2f}%), "
            f"streams byte-identical"
        )
        print(
            f"  counter inc {observability['counter_inc_us']:.3f} us  "
            f"histogram observe {observability['histogram_observe_us']:.3f}"
            f" us  disabled span {observability['disabled_span_us']:.3f} us"
        )

        print(
            "== sweep executor (24-job classical grid, "
            "bundled + warm + shared frames) =="
        )
        sweep = bench_sweep(repeats)
        for backend in (
            "inline",
            "inline_warm",
            "queue_threads_x2",
            "cold_spawn",
            "queue_processes_x2",
            "queue_http_x2",
        ):
            row = sweep[backend]
            extra = (
                f"  x_vs_inline={row['x_vs_inline']:.2f}"
                if "x_vs_inline" in row
                else ""
            )
            print(
                f"  {backend:20s} {row['seconds'] * 1e3:8.1f} ms "
                f"{row['jobs_per_s']:6.1f} jobs/s{extra}"
            )

        print("== hardware analysis (5-point NVCA geometry grid) ==")
        hardware = bench_hardware(repeats)
        for backend in ("inline", "queue_threads_x2"):
            row = hardware[backend]
            extra = (
                f"  x_vs_inline={row['x_vs_inline']:.2f}"
                if "x_vs_inline" in row
                else ""
            )
            print(
                f"  {backend:20s} {row['seconds'] * 1e3:8.1f} ms "
                f"{row['points_per_s']:6.1f} points/s{extra}"
            )
    finally:
        unregister_entropy_backend("seed")

    report = {
        "scene": BENCH_SCENE,
        "repeats": repeats,
        "smoke": args.smoke,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "codecs": codecs,
        "entropy": entropy,
        "kernels": kernels,
        "container": container,
        "rate_control": rate_control,
        "observability": observability,
        "sweep": sweep,
        "hardware": hardware,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"report written to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
