"""The sweep worker loop: pop job specs, run tasks, ack results.

A worker is deliberately dumb: it claims a job — or, with
``bundle=N``, up to N jobs under one lease — at a time from a
:class:`~repro.pipeline.dist.queues.JobQueue`, dispatches the spec by
its task kind through :func:`repro.pipeline.tasks.run_task` (a spec
without a ``"kind"`` field is an encode job — every pre-task-typing
spec still runs), and acks the resulting document.  All coordination —
retries, lease recovery, result aggregation — lives in the queue and
the :class:`~repro.pipeline.dist.sweep.SweepRunner`, so the same loop
body serves every deployment shape: inline (serial execution), threads
over a :class:`~repro.pipeline.dist.queues.MemoryJobQueue`, local
processes over a :class:`~repro.pipeline.dist.queues.DirectoryJobQueue`,
or processes on other hosts pointed at a shared queue directory (run
:func:`worker_entry` there).  One fleet can drain a mixed queue —
encode sweeps, hardware analyses, and DSE grids interleave freely.

A job that raises is ``fail()``-ed with its traceback and will be
retried by whoever claims it next, up to the queue's ``max_attempts``;
the worker itself keeps going.  Workers exit when the queue is fully
drained (nothing pending *and* nothing claimed), so a straggler's
death can still be recovered by the remaining workers rather than
orphaning its lease.

Hardening seams (all opt-in, all default-off):

* **watchdog** — ``job_timeout_seconds`` bounds one job's wall clock;
  a job that blows the budget is failed with a
  :class:`JobTimeoutError` traceback instead of silently eating the
  whole lease (and then the next lease, and the next).
* **result checksums** — every acked result document carries a CRC32
  of its canonical JSON (:func:`attach_result_checksum`); the runner
  verifies and strips it on drain, so a result corrupted in transit
  or at rest is caught before it poisons an aggregation.
* **checkpoints** — ``checkpoint(stage, job)`` fires at
  ``"after-claim"``, ``"mid-encode"`` (inside the execution
  envelope), ``"before-ack"``, ``"after-ack"``, and — when bundling —
  ``"mid-bundle"`` (after job *k* of a bundle finished, before job
  *k+1* starts; the job passed is the one just finished).  This is the
  fault-injection seam: a
  :class:`~repro.pipeline.dist.chaos.CrashPlan` raises
  :class:`~repro.pipeline.dist.chaos.InjectedCrash` (a
  ``BaseException``, deliberately *not* caught by the job-failure
  handler below) at a scheduled checkpoint to simulate a worker dying
  at exactly that point in the claim/execute/ack cycle.
"""

from __future__ import annotations

import dataclasses
import json
import os
import socket
import threading
import time
import traceback
import zlib

from repro.obs.metrics import get_registry
from repro.obs.tracing import drain_spans, set_job_id, span

from .queues import DirectoryJobQueue, Job, JobQueue

__all__ = [
    "Heartbeat",
    "JobTimeoutError",
    "attach_result_checksum",
    "default_worker_id",
    "result_checksum",
    "run_worker",
    "verify_result_checksum",
    "worker_entry",
]

#: key under which a result document carries its own CRC32.
_CHECKSUM_KEY = "_crc32"


class JobTimeoutError(RuntimeError):
    """A job blew its per-job wall-clock budget (the watchdog fired)."""


def default_worker_id() -> str:
    """``host-pid`` — unique enough to attribute leases in a shared
    queue directory."""
    return f"{socket.gethostname()}-{os.getpid()}"


# -- result integrity -------------------------------------------------------
def result_checksum(doc: dict) -> int:
    """CRC32 of a result document's canonical JSON (checksum field
    excluded), so both sides of any transport agree on the bytes."""
    payload = {k: v for k, v in doc.items() if k != _CHECKSUM_KEY}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(canonical.encode("utf-8"))


def attach_result_checksum(doc: dict) -> dict:
    """Copy of ``doc`` carrying its own CRC32 under ``"_crc32"``."""
    return {**doc, _CHECKSUM_KEY: result_checksum(doc)}


def verify_result_checksum(doc: dict) -> tuple[dict, bool]:
    """``(payload, ok)``: the document with its checksum stripped, and
    whether the checksum matched.  A document without a checksum — a
    pre-integrity worker's, or a hand-written one — verifies trivially
    (there is nothing to check against)."""
    if _CHECKSUM_KEY not in doc:
        return dict(doc), True
    payload = {k: v for k, v in doc.items() if k != _CHECKSUM_KEY}
    return payload, int(doc[_CHECKSUM_KEY]) == result_checksum(payload)


@dataclasses.dataclass(frozen=True)
class Heartbeat:
    """One structured liveness report from a worker loop.

    Emitted through ``run_worker``'s ``on_heartbeat`` callback at
    startup and after every job outcome, so a fleet supervisor — the
    :class:`~repro.pipeline.dist.autoscale.Autoscaler`, or a
    :class:`~repro.pipeline.dist.net.QueueServer` reporting fleet
    liveness under ``/stats`` — can see progress without scraping
    queue state.  ``last_job_id`` is ``None`` until the first job
    finishes (either way).

    Observability rides the same wire: ``metrics`` is a
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` of the
    worker's registry, ``spans`` the flight-recorder records since the
    previous beat (only when tracing is on), ``version`` the build
    that produced them.  All three are optional — an old worker's
    heartbeat without them is still valid, and :meth:`to_dict` omits
    the ones left ``None`` so the pre-observability wire form is
    byte-for-byte unchanged when unused.
    """

    worker_id: str
    completed: int
    failed: int
    last_job_id: str | None = None
    version: str | None = None
    metrics: dict | None = None
    spans: list | None = None

    def to_dict(self) -> dict:
        """JSON-ready document (the ``/heartbeat`` wire form)."""
        doc = dataclasses.asdict(self)
        for optional in ("version", "metrics", "spans"):
            if doc[optional] is None:
                del doc[optional]
        return doc


def execute_job(job: Job) -> dict:
    """Run one job spec to its result document (the worker's unit of
    work; import deferred so queue modules stay import-light).

    Dispatch is by the spec's ``"kind"`` field via the task registry
    (:mod:`repro.pipeline.tasks`); a spec with no ``kind`` runs as an
    ``"encode"`` job, exactly as every worker before task typing did.
    """
    from repro.pipeline.tasks import run_task

    return run_task(job.spec)


def _execute_with_watchdog(execute, job: Job, timeout_seconds: float):
    """Run ``execute(job)`` on a watched thread; raise
    :class:`JobTimeoutError` if it outlives ``timeout_seconds``.

    The hung thread is daemonic and abandoned — Python cannot safely
    kill it — so its (eventual) result is discarded: by the time it
    finishes, the job has been failed and possibly re-leased, and a
    late ack would be rejected as stale anyway.
    """
    outcome: dict = {}

    def body() -> None:
        try:
            outcome["result"] = execute(job)
        except BaseException as exc:  # relayed to the worker thread
            outcome["error"] = exc

    thread = threading.Thread(
        target=body, name=f"watchdog-{job.job_id}", daemon=True
    )
    thread.start()
    thread.join(timeout_seconds)
    if thread.is_alive():
        raise JobTimeoutError(
            f"watchdog: job {job.job_id} exceeded its {timeout_seconds}s "
            "wall-clock budget (worker abandoned it; the lease machinery "
            "owns any re-run)"
        )
    if "error" in outcome:
        raise outcome["error"]
    return outcome["result"]


def _claim_bundle(
    queue: JobQueue, worker_id: str, lease_seconds: float, want: int
) -> list[Job]:
    """Claim up to ``want`` jobs — one queue round-trip when the queue
    supports bundling, a plain single claim otherwise (a custom queue
    predating ``claim_batch`` keeps working, just unamortized)."""
    if want > 1 and hasattr(queue, "claim_batch"):
        return list(
            queue.claim_batch(
                worker_id, lease_seconds=lease_seconds, limit=want
            )
        )
    job = queue.claim(worker_id, lease_seconds=lease_seconds)
    return [] if job is None else [job]


def run_worker(
    queue: JobQueue,
    worker_id: str | None = None,
    *,
    lease_seconds: float = 60.0,
    poll_seconds: float = 0.05,
    max_jobs: int | None = None,
    stop_when_drained: bool = True,
    execute=execute_job,
    on_heartbeat=None,
    checkpoint=None,
    job_timeout_seconds: float | None = None,
    bundle: int = 1,
) -> int:
    """Drain jobs from ``queue``; returns how many this worker completed.

    ``lease_seconds`` bounds how long one job may take before the
    runner assumes this worker died and requeues the job — size it well
    above the slowest expected job.  ``max_jobs`` caps the number of
    claims (useful for tests and batch-sized workers);
    ``stop_when_drained=False`` keeps the worker polling forever (a
    long-lived fleet fed by an external submitter).  ``execute`` is the
    job body, injectable for tests.

    ``job_timeout_seconds`` arms the per-job watchdog: a job still
    running after that many wall-clock seconds is failed with a
    :class:`JobTimeoutError` traceback and the worker moves on, instead
    of a hung job silently consuming lease after lease.  Size it below
    ``lease_seconds`` so the failure is recorded by *this* worker
    rather than by lease expiry.

    ``on_heartbeat`` receives a :class:`Heartbeat` at startup and after
    every job outcome (ack or fail); the default is a no-op.  A raising
    callback kills the worker — wrap best-effort reporting (e.g. over a
    flaky network) in its own try/except.

    ``checkpoint(stage, job)`` is the fault-injection seam (see the
    module docstring for the stages); ``None`` costs nothing.

    ``bundle=N`` claims up to N jobs per queue round-trip (one lease
    deadline for the whole bundle — size ``lease_seconds`` for the
    *bundle's* wall clock, not one job's).  Acks stay per-job, so a
    worker dying after acking job *k* of N strands only the unacked
    remainder, recovered by lease expiry like any dead worker's claim.
    On a queue without ``claim_batch`` the worker degrades to single
    claims.

    Acks carry this worker's id, so a straggler whose lease was reaped
    and whose job was re-run elsewhere gets a clean stale-ack rejection
    instead of silently double-recording the result.  Every acked
    result carries a CRC32 of its canonical JSON (stripped and
    verified runner-side), so transport or at-rest corruption is
    detected before aggregation.
    """
    if worker_id is None:
        worker_id = default_worker_id()
    if bundle < 1:
        raise ValueError(f"bundle must be >= 1, got {bundle}")
    completed = 0
    failed = 0
    last_job_id: str | None = None
    registry = get_registry()

    def beat() -> None:
        if on_heartbeat is not None:
            import repro

            fresh_spans = drain_spans()
            on_heartbeat(
                Heartbeat(
                    worker_id=worker_id,
                    completed=completed,
                    failed=failed,
                    last_job_id=last_job_id,
                    version=getattr(repro, "__version__", None),
                    metrics=registry.snapshot(),
                    spans=fresh_spans or None,
                )
            )

    beat()
    while max_jobs is None or completed < max_jobs:
        # Never claim past the max_jobs cap: a bundle claimed but not
        # run would strand its jobs until lease expiry for no reason.
        want = (
            bundle
            if max_jobs is None
            else max(1, min(bundle, max_jobs - completed))
        )
        jobs = _claim_bundle(queue, worker_id, lease_seconds, want)
        registry.counter(
            "repro_worker_claims_total", "claim round-trips by outcome"
        ).inc(outcome="claimed" if jobs else "empty")
        if not jobs:
            # Recover orphaned leases ourselves — a serial run has no
            # runner loop reaping alongside, and in a fleet this lets
            # any surviving worker pick up a dead peer's job.
            if queue.reap_expired():
                continue  # something became claimable; retry now
            stats = queue.stats()
            if stop_when_drained and stats.pending == 0 and stats.claimed == 0:
                break
            time.sleep(poll_seconds)
            continue
        for position, job in enumerate(jobs):
            kind = str(job.spec.get("kind") or "encode")
            if checkpoint is not None:
                checkpoint("after-claim", job)
            set_job_id(job.job_id)
            job_t0 = time.perf_counter()
            try:
                if checkpoint is not None:
                    checkpoint("mid-encode", job)
                with span("worker.execute", kind=kind):
                    if job_timeout_seconds is None:
                        result = execute(job)
                    else:
                        result = _execute_with_watchdog(
                            execute, job, job_timeout_seconds
                        )
            except Exception:
                set_job_id(None)
                queue.fail(job.job_id, traceback.format_exc())
                registry.counter(
                    "repro_jobs_failed_total", "jobs failed with a traceback"
                ).inc(kind=kind)
                failed += 1
                last_job_id = job.job_id
                beat()
            else:
                set_job_id(None)
                registry.histogram(
                    "repro_job_seconds", "claim-to-ack execution time per job"
                ).observe(time.perf_counter() - job_t0, kind=kind)
                result = attach_result_checksum(result)
                if checkpoint is not None:
                    checkpoint("before-ack", job)
                if queue.ack(job.job_id, result, worker_id=worker_id):
                    completed += 1
                    registry.counter(
                        "repro_jobs_completed_total", "jobs acked and accepted"
                    ).inc(kind=kind)
                else:
                    # Stale ack — the lease expired and someone else
                    # owns the job now; drop the result and move on.
                    registry.counter(
                        "repro_acks_rejected_total",
                        "acks rejected as stale (lease was reaped)",
                    ).inc(kind=kind)
                if checkpoint is not None:
                    checkpoint("after-ack", job)
                last_job_id = job.job_id
                beat()
            if checkpoint is not None and position + 1 < len(jobs):
                # The crash-mid-bundle seam: this worker just finished
                # job k of N and still holds N-k claimed jobs.
                checkpoint("mid-bundle", job)
    return completed


def worker_entry(
    queue_dir: str,
    worker_id: str | None = None,
    *,
    max_attempts: int = 3,
    lease_seconds: float = 60.0,
    max_jobs: int | None = None,
    poll_seconds: float = 0.05,
    stop_when_drained: bool = True,
    job_timeout_seconds: float | None = None,
    bundle: int = 1,
) -> int:
    """Process entry point: attach to a queue directory and work it.

    This is what :class:`~repro.pipeline.dist.sweep.SweepRunner` spawns
    locally, and what a remote host runs to join a sweep over a shared
    filesystem::

        python -c "from repro.pipeline.dist import worker_entry; \\
                   worker_entry('/mnt/shared/sweep-queue')"

    Top-level (picklable) on purpose, so it works under both the
    ``fork`` and ``spawn`` multiprocessing start methods.
    """
    queue = DirectoryJobQueue(queue_dir, max_attempts=max_attempts)
    return run_worker(
        queue,
        worker_id,
        lease_seconds=lease_seconds,
        max_jobs=max_jobs,
        poll_seconds=poll_seconds,
        stop_when_drained=stop_when_drained,
        job_timeout_seconds=job_timeout_seconds,
        bundle=bundle,
    )
