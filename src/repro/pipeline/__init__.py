"""``repro.pipeline`` — the package's composable front door.

Three layers, designed to be scripted, queued, and sharded:

* **registry** — ``register_codec`` / ``create_codec`` /
  ``available_codecs``: codecs are named plugins behind the
  :class:`VideoCodec` protocol (``"ctvc"`` and ``"classical"``
  register at import).
* **configs** — every config class serializes (``to_dict`` /
  ``from_dict`` / JSON) with validation, so jobs travel as documents.
* **facade** — :class:`Pipeline` composes source → codec →
  bitstream round-trip → metrics → optional NVCA hardware analysis
  into one ``run()`` returning typed :class:`EncodeReport` /
  :class:`HardwareReport`; :func:`run_many` sweeps (codec, config,
  scene) grids inline, on a process pool, or — via
  ``backend="queue"`` — on the work-queue execution layer.
* **dist** — sharded sweep execution (:mod:`repro.pipeline.dist`):
  a claim/lease/ack :class:`~repro.pipeline.dist.JobQueue` (in-memory
  or directory-backed, so workers can live in other processes or on
  other hosts sharing a filesystem), the worker loop, and
  :class:`~repro.pipeline.dist.SweepRunner`, which tolerates worker
  death mid-job and aggregates results into
  :class:`~repro.metrics.RDCurve` objects with BD-rate deltas.
  Surfaced on the CLI as ``repro sweep``; see ``docs/distributed.md``.

Codecs stream: the :class:`VideoCodec` protocol includes
``open_encoder()``/``open_decoder()`` frame-at-a-time sessions
(:mod:`repro.codec.sessions`), and the facade's
``session().run(output=..., progress=...)`` writes the incremental
version-3 container with O(1) frame memory.  The registered
``rd-model`` pseudo-codec sweeps calibrated literature RD curves
through this same surface (simulated reports — it has no bitstream).

Entropy backends plug in one layer below: both built-in codec configs
carry an ``entropy_backend`` field (``"rans"`` fast path by default,
``"cacm"`` paper-exact reference — see
:func:`available_entropy_backends`), it serializes with the rest of the
job document, and the chosen backend is recorded in every bitstream
header so decode always follows the stream, not the local config.
"""

from repro.codec import available_entropy_backends

from .configs import CONFIG_TYPES, ConfigError, load_config
from .facade import (
    EncodeSession,
    Pipeline,
    analyze_hardware,
    build_jobs,
    run_many,
)
from .dist import SweepResult, SweepRunner
from .registry import (
    CodecRegistryError,
    CodecSpec,
    VideoCodec,
    available_codecs,
    codec_spec,
    create_codec,
    register_codec,
    unregister_codec,
)
from .reports import EncodeReport, HardwareReport

__all__ = [
    "CONFIG_TYPES",
    "CodecRegistryError",
    "CodecSpec",
    "ConfigError",
    "EncodeReport",
    "EncodeSession",
    "HardwareReport",
    "Pipeline",
    "SweepResult",
    "SweepRunner",
    "VideoCodec",
    "analyze_hardware",
    "available_codecs",
    "available_entropy_backends",
    "build_jobs",
    "codec_spec",
    "create_codec",
    "load_config",
    "register_codec",
    "run_many",
    "unregister_codec",
]
