"""Transform matrices for fast convolution and fast deconvolution.

The paper expresses both operations with one formula (Eq. 1):

    V = A^T [ (G W G^T) ⊙ (B^T X B) ] A

where A, B, G are small constant matrices.  This module provides

* the paper's exact published matrices — Eq. (2)-(3) for the Winograd
  convolution ``F(2x2, 3x3)`` and Eq. (4)-(5) for the FTA deconvolution
  ``T3(6x6, 4x4)`` — as verified constants, and
* general constructors: :func:`cook_toom_conv` builds ``F(m, k)`` from
  interpolation points (Lavin & Gray's Winograd construction), and
  :func:`fta_deconv` builds ``Tr(m x m, k x k)`` for any order ``r`` and
  stride ``s`` by stacking per-phase Winograd transforms of the stride-
  decomposed sub-kernels — the construction of Mao et al. (FTA-GAN)
  that the paper adopts.

All 1-D matrices use the convention of Eq. (1): for an input tile
``x`` (length p) and kernel ``g`` (length k),

    y = A^T [ (G g) ⊙ (B^T x) ]            (length m)

with transform-domain size mu (= rows of G = rows of B^T).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

import numpy as np

__all__ = [
    "TransformSpec",
    "cook_toom_conv",
    "fta_deconv",
    "PAPER_F23",
    "PAPER_T3_64",
    "DEFAULT_POINTS",
]

#: Interpolation points used in order by the Cook-Toom constructor;
#: small magnitudes keep the transforms well conditioned.
DEFAULT_POINTS: tuple[Fraction, ...] = (
    Fraction(0),
    Fraction(1),
    Fraction(-1),
    Fraction(2),
    Fraction(-2),
    Fraction(1, 2),
    Fraction(-1, 2),
    Fraction(4),
    Fraction(-4),
)


@dataclass(frozen=True)
class TransformSpec:
    """The (A, B, G) triple and geometry of one fast algorithm.

    Attributes
    ----------
    kind:    "conv" (Winograd) or "deconv" (FTA).
    m:       output tile size (per axis).
    k:       kernel size (per axis).
    p:       input tile size (per axis).
    mu:      transform-domain size (per axis); mu*mu multiplications
             per 2-D tile.
    stride:  deconv upsampling stride (1 for conv).
    a, b, g: matrices with A (mu x m), B (p x mu), G (mu x k) so that
             y = A^T [(G w) ⊙ (B^T x)].
    input_step:   input-tile advance between adjacent tiles.
    output_offset: index of the first produced output sample in the
             un-cropped ("full") operator output — 0 for conv on a
             padded input, k-1 for the FTA deconv.
    """

    kind: str
    m: int
    k: int
    p: int
    mu: int
    stride: int
    a: np.ndarray = field(repr=False)
    b: np.ndarray = field(repr=False)
    g: np.ndarray = field(repr=False)
    input_step: int = 0
    output_offset: int = 0

    def __post_init__(self) -> None:
        if self.a.shape != (self.mu, self.m):
            raise ValueError(f"A shape {self.a.shape}, expected {(self.mu, self.m)}")
        if self.b.shape != (self.p, self.mu):
            raise ValueError(f"B shape {self.b.shape}, expected {(self.p, self.mu)}")
        if self.g.shape != (self.mu, self.k):
            raise ValueError(f"G shape {self.g.shape}, expected {(self.mu, self.k)}")

    # -- 1-D reference execution (used by tests and by the 2-D kernels)
    def transform_input_1d(self, x: np.ndarray) -> np.ndarray:
        return self.b.T @ x

    def transform_kernel_1d(self, g: np.ndarray) -> np.ndarray:
        return self.g @ g

    def apply_1d(self, x: np.ndarray, g: np.ndarray) -> np.ndarray:
        """y = A^T [(G g) ⊙ (B^T x)] for 1-D tiles."""
        return self.a.T @ (self.transform_kernel_1d(g) * self.transform_input_1d(x))

    # -- 2-D tile execution -------------------------------------------
    def transform_input_2d(self, x: np.ndarray) -> np.ndarray:
        """B^T X B for one (p, p) tile (or batched (..., p, p))."""
        return np.einsum("ip,...pq,qj->...ij", self.b.T, x, self.b)

    def transform_kernel_2d(self, w: np.ndarray) -> np.ndarray:
        """G W G^T for one (k, k) kernel (or batched (..., k, k))."""
        return np.einsum("ik,...kl,jl->...ij", self.g, w, self.g)

    def inverse_transform_2d(self, u: np.ndarray) -> np.ndarray:
        """A^T U A for one (mu, mu) product (or batched)."""
        return np.einsum("mi,...ij,jn->...mn", self.a.T, u, self.a)

    def apply_2d(self, x: np.ndarray, w: np.ndarray) -> np.ndarray:
        """Full Eq. (1) on a single tile pair."""
        return self.inverse_transform_2d(
            self.transform_kernel_2d(w) * self.transform_input_2d(x)
        )

    # -- accounting ----------------------------------------------------
    @property
    def multiplications_per_tile(self) -> int:
        """Hadamard multiplications for one dense 2-D tile (mu*mu)."""
        return self.mu * self.mu

    def direct_multiplications_per_tile(self) -> int:
        """Multiplications a direct implementation needs for the same
        m x m output tile."""
        if self.kind == "conv":
            return self.m * self.m * self.k * self.k
        # Deconv: each output touches ceil(k/s)^2 kernel taps.
        taps = -(-self.k // self.stride)
        return self.m * self.m * taps * taps

    @property
    def speedup(self) -> float:
        """Dense multiplication reduction of the fast algorithm."""
        return self.direct_multiplications_per_tile() / self.multiplications_per_tile


def _fraction_matrix_to_float(rows: list[list[Fraction]]) -> np.ndarray:
    return np.array([[float(v) for v in row] for row in rows], dtype=np.float64)


def _vandermonde(points: list[Fraction], width: int) -> list[list[Fraction]]:
    """Rows evaluate a degree-(width-1) polynomial at each point, with a
    final "infinity" row selecting the leading coefficient."""
    rows = [[point**exp for exp in range(width)] for point in points]
    rows.append([Fraction(1) if exp == width - 1 else Fraction(0) for exp in range(width)])
    return rows


def _invert_fraction_matrix(rows: list[list[Fraction]]) -> list[list[Fraction]]:
    """Exact Gauss-Jordan inversion over the rationals."""
    n = len(rows)
    aug = [list(row) + [Fraction(int(i == j)) for j in range(n)] for i, row in enumerate(rows)]
    for col in range(n):
        pivot = next((r for r in range(col, n) if aug[r][col] != 0), None)
        if pivot is None:
            raise ValueError("singular evaluation matrix (duplicate points?)")
        aug[col], aug[pivot] = aug[pivot], aug[col]
        inv_p = Fraction(1) / aug[col][col]
        aug[col] = [v * inv_p for v in aug[col]]
        for r in range(n):
            if r != col and aug[r][col] != 0:
                factor = aug[r][col]
                aug[r] = [a - factor * b for a, b in zip(aug[r], aug[col])]
    return [row[n:] for row in aug]


def cook_toom_conv(m: int, k: int, points: tuple[Fraction, ...] | None = None) -> TransformSpec:
    """Construct Winograd ``F(m, k)`` transforms from interpolation points.

    Derivation: valid convolution is the transpose of polynomial
    multiplication, so with the evaluation matrix V over ``m + k - 2``
    finite points plus infinity, ``A`` and ``G`` evaluate the operands
    and ``B^T = V^{-T}`` plays interpolation's adjoint:
    ``y = A^T [(G g) ⊙ (B^T d)]``.  Exact rational arithmetic keeps the
    matrices free of rounding error.
    """
    if m < 1 or k < 1:
        raise ValueError("m and k must be >= 1")
    alpha = m + k - 1
    n_finite = alpha - 1
    pool = points or DEFAULT_POINTS
    if n_finite > len(pool):
        raise ValueError(
            f"F({m},{k}) needs {n_finite} points, only {len(pool)} provided"
        )
    pts = list(pool[:n_finite])

    a_rows = _vandermonde(pts, m)  # (alpha, m)
    g_rows = _vandermonde(pts, k)  # (alpha, k)
    v_rows = _vandermonde(pts, alpha)  # (alpha, alpha) evaluation matrix
    v_inv = _invert_fraction_matrix(v_rows)
    # B^T = (V^{-1})^T  =>  B = V^{-1}
    b_rows = v_inv  # B is (p x mu) with p = mu = alpha

    return TransformSpec(
        kind="conv",
        m=m,
        k=k,
        p=alpha,
        mu=alpha,
        stride=1,
        a=_fraction_matrix_to_float(a_rows),
        b=_fraction_matrix_to_float(b_rows),
        g=_fraction_matrix_to_float(g_rows),
        input_step=m,
        output_offset=0,
    )


def fta_deconv(
    r: int, s: int, k: int, points: tuple[Fraction, ...] | None = None
) -> TransformSpec:
    """Construct the FTA fast deconvolution ``Tr(m x m, k x k)``.

    A stride-``s`` transposed convolution decomposes into ``s`` phase
    outputs ``y[s*t + phi] = sum_u x[t - u] * g[s*u + phi]`` — each an
    ordinary convolution of the input with the stride-decomposed
    sub-kernel.  Each phase is then Winograd-accelerated with
    ``F(r, ceil(k/s))`` and the phase outputs interleave into an
    ``m = r*s`` tile.  Stacking the per-phase transforms row-wise yields
    single (A, B, G) matrices so the SFTC hardware can treat conv and
    deconv uniformly.

    The produced tile corresponds to full-output indices
    ``[k-1, k-1 + r*s)``; adjacent tiles advance the input by ``r``.
    """
    if s < 1:
        raise ValueError("stride must be >= 1")
    if k < s:
        raise ValueError("kernel must be >= stride")
    ksub = -(-k // s)  # ceil
    m = r * s
    alpha = r + ksub - 1  # per-phase transform size
    mu = s * alpha
    base = cook_toom_conv(r, ksub, points)

    # Output tile = full-output indices [k-1, k-1 + r*s).
    # Phase phi produces outputs n = s*t + phi; those n fall in the tile
    # for t in [t0(phi), t0(phi) + r) with t0 = ceil((k - 1 - phi) / s).
    # Phase phi needs inputs x[t - ksub + 1 .. t], i.e. a window of
    # alpha = r + ksub - 1 samples starting at w(phi) = t0 - ksub + 1.
    t0 = [-(-(k - 1 - phi) // s) for phi in range(s)]
    w_start = [t0[phi] - ksub + 1 for phi in range(s)]
    i0 = min(w_start)
    p = max(w_start[phi] + alpha for phi in range(s)) - i0

    a = np.zeros((mu, m))
    b = np.zeros((p, mu))
    g = np.zeros((mu, k))
    for phi in range(s):
        rows = slice(phi * alpha, (phi + 1) * alpha)
        # Input windows: embed the per-phase B into the union window.
        col0 = w_start[phi] - i0
        b[col0 : col0 + alpha, rows] = base.b
        # Kernel: phase sub-kernel g_phi[u] = g[s*u + phi], reversed
        # (convolution vs the correlation the Winograd transform computes).
        select = np.zeros((ksub, k))
        for u in range(ksub):
            tap = s * (ksub - 1 - u) + phi
            if tap < k:
                select[u, tap] = 1.0
        g[rows] = base.g @ select
        # Outputs: phase phi fills tile positions s*t + phi - (k-1).
        for local_t in range(r):
            out_index = s * (t0[phi] + local_t) + phi - (k - 1)
            a[rows, out_index] = base.a[:, local_t]

    return TransformSpec(
        kind="deconv",
        m=m,
        k=k,
        p=p,
        mu=mu,
        stride=s,
        a=a,
        b=b,
        g=g,
        input_step=r,
        output_offset=k - 1,
    )


def _paper_f23() -> TransformSpec:
    """The exact matrices of Eq. (2)-(3): Winograd F(2x2, 3x3)."""
    bt = np.array(
        [
            [1, 0, -1, 0],
            [0, 1, 1, 0],
            [0, -1, 1, 0],
            [0, 1, 0, -1],
        ],
        dtype=np.float64,
    )
    g = np.array(
        [
            [1, 0, 0],
            [0.5, 0.5, 0.5],
            [0.5, -0.5, 0.5],
            [0, 0, 1],
        ],
        dtype=np.float64,
    )
    at = np.array(
        [
            [1, 1, 1, 0],
            [0, 1, -1, -1],
        ],
        dtype=np.float64,
    )
    return TransformSpec(
        kind="conv",
        m=2,
        k=3,
        p=4,
        mu=4,
        stride=1,
        a=at.T,
        b=bt.T,
        g=g,
        input_step=2,
        output_offset=0,
    )


def _paper_t3_64() -> TransformSpec:
    """The exact matrices of Eq. (4)-(5): FTA T3(6x6, 4x4), stride 2."""
    bt = np.array(
        [
            [1, 0, -1, 0, 0],
            [0, 1, 1, 0, 0],
            [0, -1, 1, 0, 0],
            [0, -1, 0, 1, 0],
            [0, 1, 0, -1, 0],
            [0, 0, 1, 1, 0],
            [0, 0, -1, 1, 0],
            [0, 0, -1, 0, 1],
        ],
        dtype=np.float64,
    )
    g = np.array(
        [
            [0, 0, 0, 1],
            [0, 0.5, 0, 0.5],
            [0, -0.5, 0, 0.5],
            [0, 1, 0, 0],
            [0, 0, 1, 0],
            [0.5, 0, 0.5, 0],
            [-0.5, 0, 0.5, 0],
            [1, 0, 0, 0],
        ],
        dtype=np.float64,
    )
    at = np.array(
        [
            [1, 1, 1, 0, 0, 0, 0, 0],
            [0, 0, 0, 0, 1, 1, 1, 0],
            [0, 1, -1, 0, 0, 0, 0, 0],
            [0, 0, 0, 0, 0, 1, -1, 0],
            [0, 1, 1, 1, 0, 0, 0, 0],
            [0, 0, 0, 0, 0, 1, 1, 1],
        ],
        dtype=np.float64,
    )
    return TransformSpec(
        kind="deconv",
        m=6,
        k=4,
        p=5,
        mu=8,
        stride=2,
        a=at.T,
        b=bt.T,
        g=g,
        input_step=3,
        output_offset=3,
    )


#: Eq. (2)-(3): the paper's F(2x2, 3x3) — 16 multiplications for a 2x2
#: output tile of a 3x3 convolution (vs 36 direct).
PAPER_F23: TransformSpec = _paper_f23()

#: Eq. (4)-(5): the paper's T3(6x6, 4x4) stride-2 fast deconvolution —
#: 64 multiplications for a 6x6 output tile (vs 144 direct).
PAPER_T3_64: TransformSpec = _paper_t3_64()
