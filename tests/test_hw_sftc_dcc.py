"""Tests for the NVCA config, SFTC and DCC cycle models."""

import dataclasses

import pytest

from repro.core import LayerSpec
from repro.hw import NVCAConfig, dcc_layer_cost, sftc_layer_cost


def conv_layer(cin=36, cout=36, h=64, w=64, kernel=3, stride=1, kind="conv"):
    return LayerSpec(
        name="test",
        module="m",
        kind=kind,
        in_channels=cin,
        out_channels=cout,
        kernel=kernel,
        stride=stride,
        in_h=h,
        in_w=w,
        out_h=h * (stride if kind == "deconv" else 1) // (stride if kind == "conv" else 1),
        out_w=w * (stride if kind == "deconv" else 1) // (stride if kind == "conv" else 1),
    )


class TestNVCAConfig:
    def test_paper_operating_point(self):
        cfg = NVCAConfig()
        assert cfg.channels == 36
        assert cfg.pif == cfg.pof == 12
        assert cfg.num_scus == 144
        # "Each SCU incorporates 64*rho multipliers" at rho = 50%.
        assert cfg.multipliers_per_scu == 32
        assert cfg.total_multipliers == 4608

    def test_peak_gops(self):
        """4608 multipliers x 2 ops x 400 MHz = 3686 GOPS peak — just
        above the paper's 3525 GOPS sustained."""
        assert NVCAConfig().peak_gops == pytest.approx(3686.4)

    def test_on_chip_budget_matches_paper(self):
        assert NVCAConfig().on_chip_kbytes() == pytest.approx(373.0)

    def test_rho_validation(self):
        with pytest.raises(ValueError):
            NVCAConfig(rho=1.0)

    def test_rho_scales_multipliers(self):
        assert dataclasses.replace(NVCAConfig(), rho=0.75).multipliers_per_scu == 16
        assert dataclasses.replace(NVCAConfig(), rho=0.0).multipliers_per_scu == 64


class TestSFTCCost:
    def test_fast_conv_mode(self):
        cost = sftc_layer_cost(conv_layer(), NVCAConfig())
        assert cost.mode == "fast-conv"
        # 64x64 output in 2x2 tiles = 1024 tiles, 4 per slot = 256 slots,
        # ceil(36/12)^2 = 9 passes.
        assert cost.spatial_tiles == 1024
        assert cost.slots == 256
        assert cost.cycles == 256 * 9 + NVCAConfig().pipeline_depth

    def test_fast_deconv_mode(self):
        layer = conv_layer(kind="deconv", kernel=4, stride=2, h=32, w=32)
        cost = sftc_layer_cost(layer, NVCAConfig())
        assert cost.mode == "fast-deconv"
        # 64x64 output in 6x6 tiles: ceil(64/6)=11 per axis.
        assert cost.spatial_tiles == 121
        assert cost.slots == 121

    def test_sparse_mults_half_of_fast(self):
        cost = sftc_layer_cost(conv_layer(), NVCAConfig())
        assert cost.sparse_mults == pytest.approx(cost.fast_mults * 0.5)

    def test_fast_beats_direct_mults(self):
        cost = sftc_layer_cost(conv_layer(), NVCAConfig())
        # F(2,3): 36 -> 16 multiplications per tile (2.25x).
        assert cost.direct_macs / cost.fast_mults == pytest.approx(2.25, rel=0.01)

    def test_direct_fallback_for_strided_conv(self):
        layer = conv_layer(kernel=3, stride=2, h=64, w=64)
        cost = sftc_layer_cost(layer, NVCAConfig())
        assert cost.mode == "direct"
        assert cost.cycles >= layer.macs() // NVCAConfig().total_multipliers

    def test_utilization_bounded(self):
        for layer in (conv_layer(), conv_layer(cout=3), conv_layer(cin=3)):
            cost = sftc_layer_cost(layer, NVCAConfig())
            assert 0.0 < cost.utilization <= 1.0

    def test_channel_remainder_hurts_utilization(self):
        full = sftc_layer_cost(conv_layer(cout=36), NVCAConfig())
        ragged = sftc_layer_cost(conv_layer(cout=3), NVCAConfig())
        assert ragged.utilization < full.utilization

    def test_rejects_dfconv(self):
        layer = conv_layer(kind="dfconv")
        with pytest.raises(ValueError):
            sftc_layer_cost(layer, NVCAConfig())

    def test_effective_ops(self):
        cost = sftc_layer_cost(conv_layer(), NVCAConfig())
        assert cost.effective_ops() == 2 * cost.direct_macs


class TestDCCCost:
    def test_basic_cost(self):
        layer = conv_layer(kind="dfconv")
        cost = dcc_layer_cost(layer, NVCAConfig())
        assert cost.macs == layer.macs()
        assert cost.cycles > 0
        assert cost.interpolation_mults == 4 * 64 * 64 * 9 * 36

    def test_rejects_conv(self):
        with pytest.raises(ValueError):
            dcc_layer_cost(conv_layer(), NVCAConfig())

    def test_utilization_slows_dcc(self):
        layer = conv_layer(kind="dfconv")
        fast = dcc_layer_cost(layer, dataclasses.replace(NVCAConfig(), dcc_utilization=1.0))
        slow = dcc_layer_cost(layer, dataclasses.replace(NVCAConfig(), dcc_utilization=0.5))
        assert slow.cycles > fast.cycles
