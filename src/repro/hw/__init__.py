"""The NVCA accelerator model: SFTC, DCC, buffers, chaining dataflow,
performance/energy/area analysis, platform comparisons, and the
event-driven pipeline simulator."""

from .arch import BufferSpec, NVCAConfig
from .buffers import (
    BufferModel,
    BufferOverflowError,
    max_stripe_width,
    required_chain_rows,
    validate_chain_capacity,
)
from .area import AreaReport, GateUnits, area_report
from .dataflow import (
    ChainLayer,
    InputBufferScheduler,
    ModuleTraffic,
    ScheduleStep,
    TrafficReport,
    compare_traffic,
)
from .dcc import DCCLayerCost, dcc_layer_cost
from .dse import (
    DesignPoint,
    evaluate_point,
    pareto_front,
    sweep_array_geometry,
    sweep_frequency,
    sweep_sparsity,
)
from .energy import EnergyReport, EnergyUnits, energy_report
from .perf import PerformanceReport, analyze_graph
from .platforms import (
    ALCHEMIST,
    CPU_I9_9900X,
    GPU_RTX3090,
    REFERENCE_PLATFORMS,
    REFERENCE_PLATFORM_SPECS,
    SHAO_TCAS22,
    PlatformSpec,
    nvca_spec,
    scale_frequency,
    scale_platform,
    scale_power,
)
from .scheduler import GraphSchedule, LayerSchedule, schedule_graph
from .sftc import SFTCLayerCost, sftc_layer_cost
from .simulator import SimResult, simulate_graph, simulate_layer

__all__ = [
    "ALCHEMIST",
    "AreaReport",
    "BufferModel",
    "BufferOverflowError",
    "BufferSpec",
    "CPU_I9_9900X",
    "ChainLayer",
    "DCCLayerCost",
    "DesignPoint",
    "EnergyReport",
    "EnergyUnits",
    "GPU_RTX3090",
    "GateUnits",
    "GraphSchedule",
    "InputBufferScheduler",
    "LayerSchedule",
    "ModuleTraffic",
    "NVCAConfig",
    "PerformanceReport",
    "PlatformSpec",
    "REFERENCE_PLATFORMS",
    "REFERENCE_PLATFORM_SPECS",
    "SFTCLayerCost",
    "SHAO_TCAS22",
    "ScheduleStep",
    "SimResult",
    "TrafficReport",
    "analyze_graph",
    "area_report",
    "max_stripe_width",
    "required_chain_rows",
    "validate_chain_capacity",
    "compare_traffic",
    "dcc_layer_cost",
    "energy_report",
    "evaluate_point",
    "nvca_spec",
    "pareto_front",
    "scale_frequency",
    "scale_platform",
    "scale_power",
    "schedule_graph",
    "sftc_layer_cost",
    "simulate_graph",
    "simulate_layer",
    "sweep_array_geometry",
    "sweep_frequency",
    "sweep_sparsity",
]
