"""Tests for the on-chip buffer models and chain-capacity checks."""

import pytest

from repro.codec import decoder_graph
from repro.hw import (
    BufferModel,
    BufferOverflowError,
    BufferSpec,
    NVCAConfig,
    max_stripe_width,
    required_chain_rows,
    validate_chain_capacity,
)


@pytest.fixture
def small_buffer():
    return BufferModel(BufferSpec("test", kbytes=1.0, banks=2, word_bits=64))


def decoder_chains():
    graph = decoder_graph(1080, 1920, 36)
    chains: dict[int, list] = {}
    for layer in graph:
        if layer.chain_id >= 0:
            chains.setdefault(layer.chain_id, []).append(layer)
    return chains


class TestBufferModel:
    def test_capacity_bits(self, small_buffer):
        assert small_buffer.capacity_bits == 8192

    def test_allocate_release(self, small_buffer):
        small_buffer.allocate("tile", 4096)
        assert small_buffer.free_bits == 4096
        small_buffer.release("tile")
        assert small_buffer.free_bits == 8192
        assert small_buffer.peak_bits == 4096

    def test_overflow_raises(self, small_buffer):
        with pytest.raises(BufferOverflowError):
            small_buffer.allocate("huge", 10000)

    def test_fragmented_overflow(self, small_buffer):
        small_buffer.allocate("a", 5000)
        with pytest.raises(BufferOverflowError):
            small_buffer.allocate("b", 5000)

    def test_duplicate_name_rejected(self, small_buffer):
        small_buffer.allocate("a", 10)
        with pytest.raises(ValueError):
            small_buffer.allocate("a", 10)

    def test_negative_allocation_rejected(self, small_buffer):
        with pytest.raises(ValueError):
            small_buffer.allocate("neg", -1)

    def test_access_counting_rounds_to_words(self, small_buffer):
        small_buffer.read(65)  # 64-bit words -> 2 accesses
        small_buffer.write(64)
        assert small_buffer.reads == 2
        assert small_buffer.writes == 1

    def test_access_energy(self, small_buffer):
        small_buffer.read(64)
        small_buffer.write(64)
        assert small_buffer.access_energy_j(5.0) == pytest.approx(10e-12)

    def test_utilization(self, small_buffer):
        small_buffer.allocate("half", 4096)
        assert small_buffer.utilization() == pytest.approx(0.5)


class TestChainCapacity:
    def test_fig7a_row_requirements(self):
        """Fig. 7(a): the Conv-Conv-DeConv chain holds a 10-row window
        (A:10 via B:8 via C:5, at 2-row conv tile granularity)."""
        chains = decoder_chains()
        synthesis = next(
            c
            for c in chains.values()
            if [l.kind for l in c] == ["conv", "conv", "deconv"]
        )
        assert required_chain_rows(synthesis) == 10

    def test_resblock_chain_rows(self):
        chains = decoder_chains()
        resblock = next(
            c for c in chains.values() if [l.kind for l in c] == ["conv", "conv"]
        )
        assert required_chain_rows(resblock) == 6

    def test_empty_chain(self):
        assert required_chain_rows([]) == 0

    def test_every_decoder_chain_fits_the_input_buffer(self):
        """The configuration's stripe width must be feasible for every
        chain the traffic model assumes — otherwise Fig. 9(b)'s chained
        numbers would not be physically realizable."""
        config = NVCAConfig()
        for chain in decoder_chains().values():
            assert validate_chain_capacity(chain, config), chain[0].name

    def test_stripe_width_shrinks_with_deeper_chains(self):
        chains = decoder_chains()
        synthesis = next(
            c
            for c in chains.values()
            if [l.kind for l in c] == ["conv", "conv", "deconv"]
        )
        resblock = next(
            c for c in chains.values() if [l.kind for l in c] == ["conv", "conv"]
        )
        assert max_stripe_width(synthesis) < max_stripe_width(resblock)

    def test_tiny_buffer_rejects_chains(self):
        import dataclasses

        config = dataclasses.replace(
            NVCAConfig(), input_buffer=BufferSpec("input", 4.0, banks=10)
        )
        chains = decoder_chains()
        synthesis = next(
            c
            for c in chains.values()
            if [l.kind for l in c] == ["conv", "conv", "deconv"]
        )
        assert not validate_chain_capacity(synthesis, config)
