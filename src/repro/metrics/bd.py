"""Bjøntegaard delta metrics (BD-rate / BD-quality).

Table I of the paper reports BDBR(%) — the average bitrate difference at
equal quality between a codec and the H.265 anchor — for both PSNR and
MS-SSIM.  This module implements the Bjøntegaard calculation two ways:

* ``method="cubic"`` — the original VCEG-M33 approach: a third-order
  polynomial fit of log-rate as a function of quality, integrated in
  closed form over the overlapping quality range.
* ``method="pchip"`` — piecewise cubic Hermite interpolation, the
  numerically robust variant standardized by JCT-VC for HEVC CTC.

Both operate on :class:`repro.metrics.rd.RDCurve`; MS-SSIM curves are
mapped onto a dB-like axis first (see ``RDCurve.quality_axis_db``).
"""

from __future__ import annotations

import numpy as np
from scipy.interpolate import PchipInterpolator

from .rd import RDCurve

__all__ = ["bd_rate", "bd_quality", "bd_rate_table"]


def _prepare(curve: RDCurve) -> tuple[np.ndarray, np.ndarray]:
    """Return (quality_db, log10_rate) sorted by quality, deduplicated."""
    if len(curve) < 2:
        raise ValueError(f"curve {curve.name!r} needs >=2 points, has {len(curve)}")
    quality = curve.quality_axis_db()
    log_rate = np.log10(curve.rates)
    order = np.argsort(quality)
    quality, log_rate = quality[order], log_rate[order]
    if np.any(np.diff(quality) <= 0):
        # Strictly increasing quality is required for interpolation; nudge
        # exact ties apart rather than failing on flat synthetic curves.
        quality = quality + np.arange(len(quality)) * 1e-9
    return quality, log_rate


def _poly_integral(x: np.ndarray, y: np.ndarray, lo: float, hi: float) -> float:
    """Integrate a cubic least-squares fit of y(x) over [lo, hi]."""
    degree = min(3, len(x) - 1)
    coeffs = np.polyfit(x, y, degree)
    antideriv = np.polyint(coeffs)
    return float(np.polyval(antideriv, hi) - np.polyval(antideriv, lo))


def _pchip_integral(x: np.ndarray, y: np.ndarray, lo: float, hi: float) -> float:
    interp = PchipInterpolator(x, y)
    return float(interp.integrate(lo, hi))


def bd_rate(anchor: RDCurve, test: RDCurve, method: str = "cubic") -> float:
    """Average bitrate difference of ``test`` versus ``anchor`` in percent.

    Negative values mean the test codec needs fewer bits for the same
    quality (a saving), matching the sign convention of the paper's
    Table I where e.g. CTVC-Net(Sparse) scores -35.19 % against H.265.
    """
    if anchor.metric != test.metric:
        raise ValueError(
            f"metric mismatch: {anchor.metric!r} vs {test.metric!r}"
        )
    q_a, r_a = _prepare(anchor)
    q_t, r_t = _prepare(test)
    lo = max(q_a.min(), q_t.min())
    hi = min(q_a.max(), q_t.max())
    if hi <= lo:
        raise ValueError(
            f"curves {anchor.name!r} and {test.name!r} share no quality overlap"
        )
    if method == "cubic":
        int_a = _poly_integral(q_a, r_a, lo, hi)
        int_t = _poly_integral(q_t, r_t, lo, hi)
    elif method == "pchip":
        int_a = _pchip_integral(q_a, r_a, lo, hi)
        int_t = _pchip_integral(q_t, r_t, lo, hi)
    else:
        raise ValueError(f"unknown method {method!r}")
    avg_log_diff = (int_t - int_a) / (hi - lo)
    return float((10.0**avg_log_diff - 1.0) * 100.0)


def bd_quality(anchor: RDCurve, test: RDCurve, method: str = "cubic") -> float:
    """Average quality difference (dB axis) at equal rate.

    Positive values mean the test codec achieves higher quality at the
    same bitrate (BD-PSNR when the metric is PSNR).
    """
    if anchor.metric != test.metric:
        raise ValueError(
            f"metric mismatch: {anchor.metric!r} vs {test.metric!r}"
        )
    q_a, r_a = _prepare(anchor)
    q_t, r_t = _prepare(test)
    lo = max(r_a.min(), r_t.min())
    hi = min(r_a.max(), r_t.max())
    if hi <= lo:
        raise ValueError(
            f"curves {anchor.name!r} and {test.name!r} share no rate overlap"
        )
    # Here the fit is quality as a function of log-rate.
    order_a = np.argsort(r_a)
    order_t = np.argsort(r_t)
    ra_sorted, qa_sorted = r_a[order_a], q_a[order_a]
    rt_sorted, qt_sorted = r_t[order_t], q_t[order_t]
    if method == "cubic":
        int_a = _poly_integral(ra_sorted, qa_sorted, lo, hi)
        int_t = _poly_integral(rt_sorted, qt_sorted, lo, hi)
    elif method == "pchip":
        int_a = _pchip_integral(ra_sorted, qa_sorted, lo, hi)
        int_t = _pchip_integral(rt_sorted, qt_sorted, lo, hi)
    else:
        raise ValueError(f"unknown method {method!r}")
    return float((int_t - int_a) / (hi - lo))


def bd_rate_table(
    curves: dict[tuple[str, str], RDCurve],
    anchor: str,
    method: str = "cubic",
) -> dict[str, dict[str, float | None]]:
    """BD-rate of every codec against ``anchor``, per scene.

    ``curves`` is the ``{(codec, scene): RDCurve}`` mapping
    :func:`repro.metrics.rd.curves_from_reports` builds from a sweep.
    For each scene that has a curve for the anchor codec, every other
    codec's curve is scored with :func:`bd_rate` (negative = bits saved
    at equal quality, the paper's Table I convention).  Pairings that
    cannot be scored — fewer than two rate points, or no quality
    overlap with the anchor — map to ``None`` rather than aborting the
    table, so a sweep with one degenerate cell still reports the rest.

    Returns ``{scene: {codec: bd_rate_percent_or_None}}``.
    """
    scenes = sorted({scene for _, scene in curves})
    table: dict[str, dict[str, float | None]] = {}
    for scene in scenes:
        anchor_curve = curves.get((anchor, scene))
        if anchor_curve is None:
            continue
        row: dict[str, float | None] = {}
        for (codec, curve_scene), curve in sorted(curves.items()):
            if curve_scene != scene or codec == anchor:
                continue
            try:
                row[codec] = bd_rate(anchor_curve, curve, method=method)
            except ValueError:
                row[codec] = None
        table[scene] = row
    return table
