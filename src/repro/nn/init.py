"""Deterministic weight initializers, including structured (DCT) bases.

Training is out of scope (DESIGN.md §2): the codec must *work* without
it.  The key enabler is initializing the compression auto-encoders'
analysis/synthesis convolutions with orthonormal, DCT-derived bases so
that analysis followed by synthesis is (near-)perfect reconstruction —
the same construction that makes JPEG a codec without any learning.
Random initializers (seeded, reproducible) cover every other layer.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "he_normal",
    "xavier_uniform",
    "dct_matrix",
    "dct2_kernel_bank",
    "orthonormal_analysis_weight",
    "orthonormal_synthesis_weight",
    "identity_conv_weight",
]


def he_normal(
    rng: np.random.Generator, shape: tuple[int, ...], fan_in: int | None = None
) -> np.ndarray:
    """He/Kaiming normal init for ReLU networks."""
    if fan_in is None:
        fan_in = int(np.prod(shape[1:]))
    std = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(rng: np.random.Generator, shape: tuple[int, ...]) -> np.ndarray:
    """Glorot uniform init."""
    fan_in = int(np.prod(shape[1:]))
    fan_out = shape[0] * int(np.prod(shape[2:])) if len(shape) > 1 else shape[0]
    limit = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-limit, limit, size=shape)


def dct_matrix(n: int) -> np.ndarray:
    """The orthonormal DCT-II matrix of size n x n (rows are basis)."""
    k = np.arange(n)[:, None]
    i = np.arange(n)[None, :]
    mat = np.cos(np.pi * (2 * i + 1) * k / (2 * n))
    mat[0] *= np.sqrt(1.0 / n)
    mat[1:] *= np.sqrt(2.0 / n)
    return mat


def dct2_kernel_bank(size: int, order: str = "zigzag") -> np.ndarray:
    """All 2-D DCT basis kernels, shape (size*size, size, size).

    Kernel index 0 is the DC kernel.  ``order`` controls the sequence:
    "raster" follows (b*size + a); "zigzag" sorts by total frequency
    b + a (the JPEG convention) so truncated banks keep the lowest
    frequencies — what the structured-initialization codec relies on
    for energy compaction.  The bank is orthonormal either way:
    ``<K_i, K_j> = delta_ij``.
    """
    basis = dct_matrix(size)
    bank = np.einsum("bi,aj->baij", basis, basis).reshape(size * size, size, size)
    if order == "raster":
        return bank
    if order == "zigzag":
        keys = sorted(
            range(size * size),
            key=lambda idx: (idx // size + idx % size, idx // size, idx % size),
        )
        return bank[keys]
    raise ValueError(f"unknown order {order!r}")


def orthonormal_analysis_weight(
    out_channels: int, in_channels: int, kernel: int, stride: int
) -> np.ndarray:
    """Conv weight implementing a (sub-sampled) block-DCT analysis.

    With ``stride == kernel`` and ``out_channels == in_channels *
    kernel**2`` this is an exactly invertible transform.  The codec uses
    stride < kernel (overlapping analysis), which remains a tight frame
    in the interior, so synthesis still reconstructs well.  Output
    channel o analyzes input channel ``o % in_channels`` with DCT kernel
    ``(o // in_channels) % kernel**2``; channel counts that do not cover
    every basis simply keep the lowest-frequency kernels, a reasonable
    energy-compaction prior.
    """
    bank = dct2_kernel_bank(kernel)
    weight = np.zeros((out_channels, in_channels, kernel, kernel))
    for o in range(out_channels):
        cin = o % in_channels
        basis_index = (o // in_channels) % (kernel * kernel)
        weight[o, cin] = bank[basis_index]
    # Normalize for the stride-induced frame redundancy so that a
    # round-trip through analysis+synthesis preserves magnitude.
    redundancy = (kernel / stride) ** 2
    return weight / np.sqrt(redundancy)


def orthonormal_synthesis_weight(
    out_channels: int, in_channels: int, kernel: int, stride: int
) -> np.ndarray:
    """Transposed-conv weight adjoint to orthonormal_analysis_weight.

    Shaped (C_out, C_in, k, k) in the layer convention where C_in is the
    latent channel count.  Because the analysis bank is orthonormal, the
    adjoint (same kernels, swapped roles) acts as the inverse transform.
    """
    analysis = orthonormal_analysis_weight(in_channels, out_channels, kernel, stride)
    # analysis: (C_in_latent, C_out_pixels, k, k) -> transpose channel axes.
    return np.transpose(analysis, (1, 0, 2, 3))


def identity_conv_weight(channels: int, kernel: int) -> np.ndarray:
    """Conv weight that passes each channel through unchanged."""
    weight = np.zeros((channels, channels, kernel, kernel))
    center = kernel // 2
    for c in range(channels):
        weight[c, c, center, center] = 1.0
    return weight
