"""Decoder layer-graph extraction (the workload the NVCA accelerates).

Builds :class:`repro.core.layerspec.LayerGraph` records for CTVC-Net's
*decoder* — the red dashed box of Fig. 1 — using the paper's literal
Fig. 2 topology (Conv(N,3,1) + MaxPool feature extraction, three
ResBlocks per stack, DeConv(N,4,2) synthesis stages, DfConv(N,3,1,G=2))
at a concrete frame size, e.g. 1080p.  The five modules here are
exactly the five bars of Fig. 9(b):

    feature_extraction, motion_synthesis, deformable_compensation,
    residual_synthesis, frame_reconstruction

``encoder_graph`` additionally models the encoder-side analysis
transforms (with Swin-AM attention workload) for completeness — the
accelerator itself only runs the decoder.
"""

from __future__ import annotations

import dataclasses

from repro.core.layerspec import LayerGraph, LayerSpec

__all__ = ["decoder_graph", "encoder_graph", "synthesis_layers", "analysis_layers"]


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def _conv(name, module, cin, cout, k, s, h, w, groups=1) -> LayerSpec:
    oh = _ceil_div(h, s)
    ow = _ceil_div(w, s)
    return LayerSpec(
        name=name,
        module=module,
        kind="conv",
        in_channels=cin,
        out_channels=cout,
        kernel=k,
        stride=s,
        in_h=h,
        in_w=w,
        out_h=oh,
        out_w=ow,
        groups=groups,
    )


def _deconv(name, module, cin, cout, k, s, h, w) -> LayerSpec:
    return LayerSpec(
        name=name,
        module=module,
        kind="deconv",
        in_channels=cin,
        out_channels=cout,
        kernel=k,
        stride=s,
        in_h=h,
        in_w=w,
        out_h=h * s,
        out_w=w * s,
    )


def _resblock(name, module, channels, h, w) -> list[LayerSpec]:
    return [
        _conv(f"{name}.conv1", module, channels, channels, 3, 1, h, w),
        _conv(f"{name}.conv2", module, channels, channels, 3, 1, h, w),
    ]


def synthesis_layers(
    module: str,
    n: int,
    latent_h: int,
    latent_w: int,
    num_stages: int = 3,
    first_chain_id: int = -1,
) -> list[LayerSpec]:
    """Fig. 2(e) synthesis: (ResBlock(N,3), DeConv(N,4,2)) x 3.

    Each stage is exactly the paper's heterogeneous chain — two Convs
    followed by a DeConv — and is tagged as one when ``first_chain_id``
    is non-negative.
    """
    layers: list[LayerSpec] = []
    h, w = latent_h, latent_w
    for stage in range(num_stages):
        chain = first_chain_id + stage if first_chain_id >= 0 else -1
        stage_layers = _resblock(f"{module}.res{stage}", module, n, h, w)
        stage_layers.append(
            _deconv(f"{module}.deconv{stage}", module, n, n, 4, 2, h, w)
        )
        layers.extend(
            dataclasses.replace(layer, chain_id=chain) for layer in stage_layers
        )
        h, w = h * 2, w * 2
    return layers


def _attention(name, module, channels, window, h, w) -> LayerSpec:
    """SwinAtten workload: 4 CxC projections + windowed QK^T/AV."""
    hp = h + ((-h) % window)
    wp = w + ((-w) % window)
    tokens = hp * wp
    t = window * window
    macs = 4 * tokens * channels * channels + 2 * tokens * t * channels
    return LayerSpec(
        name=name,
        module=module,
        kind="attention",
        in_channels=channels,
        out_channels=channels,
        kernel=window,
        stride=1,
        in_h=h,
        in_w=w,
        out_h=h,
        out_w=w,
        extra_macs=int(macs),
    )


def _swin_am(name, module, channels, window, h, w) -> list[LayerSpec]:
    """Swin-AM (Fig. 3): SwinAtten + 2 ResBlocks + 1x1 conv (branch 1)
    and 3 ResBlocks (branch 2)."""
    layers = [_attention(f"{name}.attn", module, channels, window, h, w)]
    for index in range(2):
        layers.extend(_resblock(f"{name}.b1res{index}", module, channels, h, w))
    layers.append(_conv(f"{name}.mask", module, channels, channels, 1, 1, h, w))
    for index in range(3):
        layers.extend(_resblock(f"{name}.b2res{index}", module, channels, h, w))
    return layers


def analysis_layers(
    module: str, n: int, h2: int, w2: int, window: int = 3
) -> list[LayerSpec]:
    """Fig. 2(e) analysis at feature-grid input (h2, w2)."""
    c2 = 2 * n
    layers: list[LayerSpec] = []
    layers.append(_conv(f"{module}.conv1", module, n, c2, 3, 2, h2, w2))
    h4, w4 = _ceil_div(h2, 2), _ceil_div(w2, 2)
    for index in range(3):
        layers.extend(_resblock(f"{module}.res{index}", module, c2, h4, w4))
    layers.append(_conv(f"{module}.conv2", module, c2, c2, 3, 2, h4, w4))
    h8, w8 = _ceil_div(h4, 2), _ceil_div(w4, 2)
    layers.extend(_swin_am(f"{module}.swinam0", module, c2, window, h8, w8))
    layers.append(_conv(f"{module}.conv3", module, c2, c2, 3, 2, h8, w8))
    h16, w16 = _ceil_div(h8, 2), _ceil_div(w8, 2)
    layers.extend(_swin_am(f"{module}.swinam1", module, c2, window, h16, w16))
    layers.append(_conv(f"{module}.latent", module, c2, n, 3, 1, h16, w16))
    return layers


def decoder_graph(
    height: int = 1080,
    width: int = 1920,
    n: int = 36,
    num_resblocks: int = 3,
) -> LayerGraph:
    """The CTVC-Net decoder at a given frame size (paper topology).

    Module order follows the decode dataflow: the reference frame's
    features are extracted, motion and residual latents are synthesized,
    compensation predicts, and the frame is reconstructed.
    """
    graph = LayerGraph(name=f"ctvc-decoder-{width}x{height}-n{n}")
    h2, w2 = _ceil_div(height, 2), _ceil_div(width, 2)
    h16, w16 = _ceil_div(height, 16), _ceil_div(width, 16)
    next_chain = 0

    def take_chain() -> int:
        nonlocal next_chain
        chain = next_chain
        next_chain += 1
        return chain

    # 1. Feature extraction on the decoded reference frame (Fig. 2(a)).
    # The MaxPool streams in the head conv's chain; each ResBlock is a
    # two-Conv chain (its skip input stays resident in the bank window).
    head_chain = take_chain()
    graph.add(
        dataclasses.replace(
            _conv("fe.head", "feature_extraction", 3, n, 3, 1, height, width),
            chain_id=head_chain,
        )
    )
    graph.add(
        LayerSpec(
            name="fe.pool",
            module="feature_extraction",
            kind="pool",
            in_channels=n,
            out_channels=n,
            kernel=2,
            stride=2,
            in_h=height,
            in_w=width,
            out_h=h2,
            out_w=w2,
            chain_id=head_chain,
        )
    )
    for index in range(num_resblocks):
        chain = take_chain()
        for layer in _resblock(f"fe.res{index}", "feature_extraction", n, h2, w2):
            graph.add(dataclasses.replace(layer, chain_id=chain))

    # 2. Motion synthesis transform (Fig. 2(e) right): each stage is the
    # paper's canonical Conv-Conv-DeConv chain.
    for layer in synthesis_layers(
        "motion_synthesis", n, h16, w16, first_chain_id=next_chain
    ):
        graph.add(layer)
    next_chain += 3

    # 3. Deformable compensation (Fig. 2(d)).  The DCC is an island:
    # its gather defeats row chaining, so the offset conv's output and
    # the DfConv's input/output cross external memory.
    graph.add(_conv("dc.offset", "deformable_compensation", n, 36, 3, 1, h2, w2))
    graph.add(
        LayerSpec(
            name="dc.dfconv",
            module="deformable_compensation",
            kind="dfconv",
            in_channels=n,
            out_channels=n,
            kernel=3,
            stride=1,
            in_h=h2,
            in_w=w2,
            out_h=h2,
            out_w=w2,
            groups=1,  # offset groups share the full channel MACs
        )
    )
    refine_chain = take_chain()
    graph.add(
        dataclasses.replace(
            _conv("dc.refine1", "deformable_compensation", n, n, 3, 1, h2, w2),
            chain_id=refine_chain,
        )
    )
    graph.add(
        dataclasses.replace(
            _conv("dc.refine2", "deformable_compensation", n, n, 3, 1, h2, w2),
            chain_id=refine_chain,
        )
    )

    # 4. Residual synthesis transform.
    for layer in synthesis_layers(
        "residual_synthesis", n, h16, w16, first_chain_id=next_chain
    ):
        graph.add(layer)
    next_chain += 3

    # 5. Frame reconstruction (Fig. 2(b)): the final ResBlock chains
    # with the output DeConv (two Convs followed by a DeConv).
    last_chain = -1
    for index in range(num_resblocks):
        last_chain = take_chain()
        for layer in _resblock(f"fr.res{index}", "frame_reconstruction", n, h2, w2):
            graph.add(dataclasses.replace(layer, chain_id=last_chain))
    graph.add(
        dataclasses.replace(
            _deconv("fr.up", "frame_reconstruction", n, 3, 4, 2, h2, w2),
            chain_id=last_chain,
        )
    )

    return graph


def encoder_graph(
    height: int = 1080,
    width: int = 1920,
    n: int = 36,
    num_resblocks: int = 3,
    window: int = 3,
) -> LayerGraph:
    """Encoder-side additions: motion estimation + analysis transforms.

    (The encoder also runs everything in :func:`decoder_graph` for its
    closed loop; callers combine the two as needed.)
    """
    graph = LayerGraph(name=f"ctvc-encoder-{width}x{height}-n{n}")
    h2, w2 = _ceil_div(height, 2), _ceil_div(width, 2)

    # Feature extraction of the current frame.
    graph.add(_conv("fe_cur.head", "feature_extraction", 3, n, 3, 1, height, width))
    for index in range(num_resblocks):
        for layer in _resblock(f"fe_cur.res{index}", "feature_extraction", n, h2, w2):
            graph.add(layer)

    # Motion estimation (Fig. 2(c)).
    graph.add(_conv("me.conv_in", "motion_estimation", 2 * n, 2 * n, 3, 1, h2, w2))
    graph.add(_conv("me.conv_mid", "motion_estimation", 2 * n, n, 3, 1, h2, w2))
    graph.add(_conv("me.conv_out", "motion_estimation", n, n, 3, 1, h2, w2))

    # Motion + residual analysis transforms.
    for layer in analysis_layers("motion_analysis", n, h2, w2, window):
        graph.add(layer)
    for layer in analysis_layers("residual_analysis", n, h2, w2, window):
        graph.add(layer)
    return graph
