"""Command-line entry point: ``python -m repro``.

Subcommands:

* ``reproduce``  — regenerate every table and figure (the default).
* ``encode``     — encode a synthetic clip with CTVC-Net or the
                   classical codec and report rate/quality.
* ``hardware``   — print the NVCA performance/energy/area summary.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_reproduce(args) -> int:
    from repro.eval import main as eval_main

    report = eval_main(fast=not args.full)
    print(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    return 0


def _cmd_encode(args) -> int:
    from repro.codec import (
        ClassicalCodec,
        ClassicalCodecConfig,
        CTVCConfig,
        CTVCNet,
        SequenceBitstream,
    )
    from repro.metrics import psnr
    from repro.video import SceneConfig, generate_sequence

    frames = generate_sequence(
        SceneConfig(height=args.height, width=args.width, frames=args.frames)
    )
    if args.codec == "ctvc":
        net = CTVCNet(CTVCConfig(channels=args.channels, qstep=args.qp))
        stream = net.encode_sequence(frames)
        decoded = net.decode_sequence(SequenceBitstream.parse(stream.serialize()))
    else:
        codec = ClassicalCodec(ClassicalCodecConfig(qp=args.qp))
        stream = codec.encode_sequence(frames)
        decoded = codec.decode_sequence(SequenceBitstream.parse(stream.serialize()))
    bpp = stream.bits_per_pixel(args.height, args.width)
    quality = float(np.mean([psnr(a, b) for a, b in zip(frames, decoded)]))
    print(
        f"{args.codec}: {len(frames)} frames @ {args.width}x{args.height}, "
        f"{bpp:.3f} bpp, {quality:.2f} dB PSNR"
    )
    return 0


def _cmd_hardware(args) -> int:
    from repro.codec import decoder_graph
    from repro.hw import (
        NVCAConfig,
        analyze_graph,
        area_report,
        compare_traffic,
        energy_report,
    )

    config = NVCAConfig()
    graph = decoder_graph(args.height, args.width, config.channels)
    perf = analyze_graph(graph, config)
    traffic = compare_traffic(graph, config)
    energy = energy_report(perf.schedule, traffic, config=config)
    area = area_report(config)
    print(perf)
    print(energy)
    print(f"gates: {area.total_mgates:.2f} M, SRAM: {config.on_chip_kbytes():.0f} KB")
    print(
        f"chaining: {traffic.baseline_total / 1e9:.3f} -> "
        f"{traffic.chained_total / 1e9:.3f} GB/frame "
        f"(-{traffic.overall_reduction:.1%})"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command")

    rep = sub.add_parser("reproduce", help="regenerate all tables and figures")
    rep.add_argument("--full", action="store_true", help="include measured runs")
    rep.add_argument("-o", "--output", default=None)

    enc = sub.add_parser("encode", help="encode a synthetic clip")
    enc.add_argument("--codec", choices=("ctvc", "classical"), default="ctvc")
    enc.add_argument("--height", type=int, default=64)
    enc.add_argument("--width", type=int, default=96)
    enc.add_argument("--frames", type=int, default=4)
    enc.add_argument("--channels", type=int, default=12)
    enc.add_argument("--qp", type=float, default=8.0)

    hw = sub.add_parser("hardware", help="NVCA model summary")
    hw.add_argument("--height", type=int, default=1080)
    hw.add_argument("--width", type=int, default=1920)

    args = parser.parse_args(argv)
    if args.command in (None, "reproduce"):
        if args.command is None:
            args = parser.parse_args(["reproduce"])
        return _cmd_reproduce(args)
    if args.command == "encode":
        return _cmd_encode(args)
    return _cmd_hardware(args)


if __name__ == "__main__":
    sys.exit(main())
