"""Benchmark + regeneration of Table II (accelerator comparison).

Run: pytest benchmarks/bench_table2.py --benchmark-only -s
"""

import pytest

from repro.eval import PAPER_NVCA_COLUMN, generate_table2


def test_table2(benchmark):
    """Regenerate Table II; the NVCA column comes from the hardware
    models end to end (schedule -> power -> gates)."""
    result = benchmark(generate_table2)
    print("\n" + result.render())
    print("\nheadline ratios (paper: 2.4x GPU, 11.1x CPU, 8.7x [25], 2.2x eff):")
    for name, value in result.ratios.items():
        print(f"  {name:26s} {value:8.2f}x")
    paper = PAPER_NVCA_COLUMN
    assert result.nvca.throughput_gops == pytest.approx(
        paper["throughput_gops"], rel=0.05
    )
    assert result.nvca.power_w == pytest.approx(paper["power_w"], rel=0.05)
    assert result.performance.fps == pytest.approx(paper["fps_1080p"], rel=0.05)
