"""Table II — comparison with other pixel-processing accelerators.

The CPU / GPU / [25] / Alchemist columns are published constants
(:mod:`repro.hw.platforms`); the NVCA column is produced end-to-end by
this repository's models: the decoder layer graph at 1080p is scheduled
on the SFTC/DCC (throughput, FPS), the activity counts are rolled into
power, and the architecture config into gates and SRAM.  The paper's
headline ratios (2.4x / 11.1x throughput, 799.7x / 1783.9x / 2.2x
energy efficiency) are recomputed from those model outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.codec.layergraph import decoder_graph
from repro.hw.arch import NVCAConfig
from repro.hw.area import area_report
from repro.hw.dataflow import compare_traffic
from repro.hw.energy import energy_report
from repro.hw.perf import PerformanceReport, analyze_graph
from repro.hw.platforms import (
    ALCHEMIST,
    CPU_I9_9900X,
    GPU_RTX3090,
    REFERENCE_PLATFORMS,
    SHAO_TCAS22,
    PlatformSpec,
    nvca_spec,
)

from .tables import render_table

__all__ = ["Table2Result", "generate_table2", "PAPER_NVCA_COLUMN"]

#: The paper's NVCA column, for paper-vs-measured reporting.
PAPER_NVCA_COLUMN = {
    "technology_nm": 28,
    "frequency_mhz": 400.0,
    "precision": "FXP 12-16",
    "gate_count_m": 5.01,
    "on_chip_kb": 373.0,
    "power_w": 0.76,
    "throughput_gops": 3525.0,
    "energy_efficiency": 4638.2,
    "fps_1080p": 25.0,
}


@dataclass
class Table2Result:
    """Regenerated Table II with the model-derived NVCA column."""

    nvca: PlatformSpec
    performance: PerformanceReport
    references: tuple[PlatformSpec, ...] = REFERENCE_PLATFORMS
    ratios: dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        platforms = list(self.references) + [self.nvca]
        headers = ["Attribute"] + [p.name for p in platforms]
        rows = [
            ["Year"] + [p.year for p in platforms],
            ["Task"] + [p.task for p in platforms],
            ["Benchmark"] + [p.benchmark for p in platforms],
            ["Technology (nm)"] + [p.technology_nm for p in platforms],
            ["Frequency (MHz)"] + [p.frequency_mhz for p in platforms],
            ["Precision (A-W)"] + [p.precision for p in platforms],
            ["Gate Count (M)"]
            + [p.gate_count_m if p.gate_count_m is not None else "-" for p in platforms],
            ["On-Chip Memory (KB)"]
            + [p.on_chip_kb if p.on_chip_kb is not None else "-" for p in platforms],
            ["Power (W)"] + [p.power_w for p in platforms],
            ["Throughput (GOPS)"] + [p.throughput_gops for p in platforms],
            ["Energy Eff. (GOPS/W)"] + [p.energy_efficiency for p in platforms],
        ]
        return render_table(headers, rows, title="Table II — accelerator comparison")


def generate_table2(
    height: int = 1080,
    width: int = 1920,
    config: NVCAConfig | None = None,
) -> Table2Result:
    """Regenerate Table II from the hardware models at 1080p."""
    config = config or NVCAConfig()
    graph = decoder_graph(height, width, config.channels)
    performance = analyze_graph(graph, config)
    traffic = compare_traffic(graph, config)
    energy = energy_report(performance.schedule, traffic, config=config)
    area = area_report(config)

    nvca = nvca_spec(
        sustained_gops=performance.sustained_gops,
        chip_power_w=energy.chip_power_w,
        gate_count_m=area.total_mgates,
        on_chip_kb=config.on_chip_kbytes(),
        frequency_mhz=config.frequency_mhz,
    )
    result = Table2Result(nvca=nvca, performance=performance)
    result.ratios = {
        # Paper: "2.4x higher throughput and 799.7x better energy
        # efficiency than the GPU".
        "throughput_vs_gpu": nvca.throughput_gops / GPU_RTX3090.throughput_gops,
        "efficiency_vs_gpu": nvca.energy_efficiency / GPU_RTX3090.energy_efficiency,
        # "11.1x higher throughput and 1783.9x better energy efficiency
        # than the CPU".
        "throughput_vs_cpu": nvca.throughput_gops / CPU_I9_9900X.throughput_gops,
        "efficiency_vs_cpu": nvca.energy_efficiency / CPU_I9_9900X.energy_efficiency,
        # "up to 8.7x higher throughput and 2.2x better energy
        # efficiency" over [25]/[26].
        "throughput_vs_shao": nvca.throughput_gops / SHAO_TCAS22.throughput_gops,
        "efficiency_vs_shao": nvca.energy_efficiency / SHAO_TCAS22.energy_efficiency,
        "throughput_vs_alchemist": nvca.throughput_gops / ALCHEMIST.throughput_gops,
        "efficiency_vs_alchemist": nvca.energy_efficiency / ALCHEMIST.energy_efficiency,
    }
    return result
