"""Quality metrics and rate-distortion analysis (PSNR, MS-SSIM, BD-rate).

Sweep aggregation lives here too: :func:`curves_from_reports` folds the
encode reports of a ``run_many``/``repro sweep`` grid into per-(codec,
scene) :class:`RDCurve` objects and :func:`bd_rate_table` scores them
against an anchor codec — see ``docs/distributed.md``.
"""

from .bd import bd_quality, bd_rate, bd_rate_table
from .quality import MS_SSIM_WEIGHTS, ms_ssim, mse, psnr, ssim
from .rd import RDCurve, RDPoint, curves_from_reports, scene_label

__all__ = [
    "MS_SSIM_WEIGHTS",
    "RDCurve",
    "RDPoint",
    "bd_quality",
    "bd_rate",
    "bd_rate_table",
    "curves_from_reports",
    "ms_ssim",
    "mse",
    "psnr",
    "scene_label",
    "ssim",
]
