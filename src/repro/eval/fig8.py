"""Fig. 8 — rate-distortion curves (PSNR and MS-SSIM, UVG and HEVC-B).

Regenerates the four panels as named series.  Literature codecs come
from the calibrated RD models; optionally, *measured* curves from this
repository's real codecs (the classical DCT codec and the structured-
initialization CTVC pipeline) are swept over quantization parameters on
the synthetic corpora and overlaid — their absolute position differs
from the trained-network literature (documented in EXPERIMENTS.md),
but their monotone shape and the FP/FXP/sparse spacing are genuine
measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.codec.bitstream import SequenceBitstream
from repro.codec.rd_models import all_method_curves
from repro.metrics import RDCurve, ms_ssim, psnr
from repro.video import load_dataset

from .tables import render_series

__all__ = ["Fig8Panel", "measured_rd_curve", "generate_fig8"]

#: The four panels of Fig. 8.
PANELS = (
    ("uvg", "psnr"),
    ("uvg", "ms-ssim"),
    ("hevcb", "psnr"),
    ("hevcb", "ms-ssim"),
)


@dataclass
class Fig8Panel:
    """One panel: every method's RD curve on a dataset/metric."""

    dataset: str
    metric: str
    curves: dict[str, RDCurve] = field(default_factory=dict)

    def series(self) -> dict[str, list[tuple[float, float]]]:
        return {
            name: [(p.bpp, p.quality) for p in curve.points]
            for name, curve in self.curves.items()
        }

    def render(self) -> str:
        return render_series(
            self.series(),
            title=f"Fig. 8 — {self.metric.upper()} on {self.dataset}",
            y_label=self.metric,
        )

    def best_method_at_low_rate(self) -> str:
        """The method needing the fewest bits at its lowest point —
        the paper's 'lowest bit consumption at the same quality'."""
        anchor_quality = min(
            curve.points[0].quality for curve in self.curves.values()
        )
        best, best_rate = "", float("inf")
        for name, curve in self.curves.items():
            rate = np.interp(
                anchor_quality,
                curve.qualities,
                curve.rates,
                left=curve.rates[0],
                right=curve.rates[-1],
            )
            if rate < best_rate:
                best, best_rate = name, float(rate)
        return best


def measured_rd_curve(
    codec: str = "classical",
    dataset: str = "uvg-sim",
    metric: str = "psnr",
    qps: tuple[float, ...] = (4.0, 8.0, 16.0, 32.0),
    channels: int = 12,
    frames: int = 3,
    variant: str = "fp",
) -> RDCurve:
    """Sweep a real codec over quantization parameters on a synthetic
    corpus sequence; returns a measured RD curve."""
    sequence = load_dataset(dataset).sequences()[0][:frames]
    _, height, width = sequence[0].shape
    from repro.pipeline import create_codec

    curve = RDCurve(name=f"{codec}-{variant}-measured", metric=metric, dataset=dataset)
    for qp in qps:
        if codec == "classical":
            overrides = {"qp": qp}
        elif codec == "ctvc":
            overrides = {"channels": channels, "qstep": qp, "seed": 1}
        else:
            raise ValueError(
                f"measured_rd_curve knows the rate knobs of 'classical' and "
                f"'ctvc' only, got {codec!r}"
            )
        coder = create_codec(codec, **overrides)
        if variant == "fxp" and hasattr(coder, "apply_fxp"):
            coder.apply_fxp()
        elif variant == "sparse" and hasattr(coder, "apply_sparse"):
            coder.apply_sparse(rho=0.5)
        stream = coder.encode_sequence(sequence)
        decoded = coder.decode_sequence(SequenceBitstream.parse(stream.serialize()))
        bpp = stream.num_bits() / (len(sequence) * height * width)
        if metric == "psnr":
            quality = float(np.mean([psnr(a, b) for a, b in zip(sequence, decoded)]))
        else:
            quality = float(
                np.mean([ms_ssim(a, b) for a, b in zip(sequence, decoded)])
            )
        curve.add(bpp, quality)
    return curve


def generate_fig8(
    num_points: int = 5, include_measured: bool = False
) -> list[Fig8Panel]:
    """Regenerate all four Fig. 8 panels."""
    panels = []
    for dataset, metric in PANELS:
        panel = Fig8Panel(dataset=dataset, metric=metric)
        panel.curves = all_method_curves(dataset, metric, num_points)
        if include_measured:
            panel.curves["classical-meas"] = measured_rd_curve(
                "classical", f"{dataset}-sim", metric
            )
            panel.curves["ctvc-meas"] = measured_rd_curve(
                "ctvc", f"{dataset}-sim", metric
            )
        panels.append(panel)
    return panels
