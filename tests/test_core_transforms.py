"""Tests for the fast-algorithm transform matrices (Eq. 1-5)."""

import numpy as np
import pytest
from scipy.signal import correlate2d

from repro.core import PAPER_F23, PAPER_T3_64, cook_toom_conv, fta_deconv


@pytest.fixture
def rng():
    return np.random.default_rng(21)


def direct_deconv_full_1d(x, g, stride):
    n = (len(x) - 1) * stride + len(g)
    y = np.zeros(n)
    for i, xi in enumerate(x):
        y[i * stride : i * stride + len(g)] += xi * g
    return y


def direct_deconv_full_2d(x, w, stride):
    p = x.shape[0]
    k = w.shape[0]
    n = (p - 1) * stride + k
    y = np.zeros((n, n))
    for i in range(p):
        for j in range(p):
            y[i * stride : i * stride + k, j * stride : j * stride + k] += x[i, j] * w
    return y


class TestPaperMatrices:
    """The exact constants of Eq. (2)-(5)."""

    def test_f23_geometry(self):
        assert (PAPER_F23.m, PAPER_F23.k, PAPER_F23.p, PAPER_F23.mu) == (2, 3, 4, 4)
        assert PAPER_F23.stride == 1

    def test_t3_geometry(self):
        # p = ceil((k + r*s - 1)/s) = 5; mu = k + (r-1)*s = 8 (Sec. III-B).
        spec = PAPER_T3_64
        assert (spec.m, spec.k, spec.p, spec.mu) == (6, 4, 5, 8)
        assert spec.stride == 2

    def test_f23_multiplication_claim(self):
        """'a 3x3 Conv producing a 2x2 output patch requires 16
        multiplications, whereas a standard Conv needs 36'."""
        assert PAPER_F23.multiplications_per_tile == 16
        assert PAPER_F23.direct_multiplications_per_tile() == 36
        assert PAPER_F23.speedup == pytest.approx(2.25)

    def test_t3_multiplication_claim(self):
        """T3(6x6, 4x4) 'involves 64 multiplications' (vs 144 direct)."""
        assert PAPER_T3_64.multiplications_per_tile == 64
        assert PAPER_T3_64.direct_multiplications_per_tile() == 144
        assert PAPER_T3_64.speedup == pytest.approx(2.25)

    def test_f23_1d_equals_direct(self, rng):
        x = rng.standard_normal(4)
        g = rng.standard_normal(3)
        ref = np.array([np.dot(g, x[j : j + 3]) for j in range(2)])
        assert np.abs(PAPER_F23.apply_1d(x, g) - ref).max() < 1e-12

    def test_f23_2d_equals_direct(self, rng):
        x = rng.standard_normal((4, 4))
        w = rng.standard_normal((3, 3))
        ref = correlate2d(x, w, mode="valid")
        assert np.abs(PAPER_F23.apply_2d(x, w) - ref).max() < 1e-12

    def test_t3_1d_equals_direct(self, rng):
        spec = PAPER_T3_64
        x = rng.standard_normal(spec.p)
        g = rng.standard_normal(spec.k)
        full = direct_deconv_full_1d(x, g, spec.stride)
        ref = full[spec.output_offset : spec.output_offset + spec.m]
        assert np.abs(spec.apply_1d(x, g) - ref).max() < 1e-12

    def test_t3_2d_equals_direct(self, rng):
        spec = PAPER_T3_64
        x = rng.standard_normal((spec.p, spec.p))
        w = rng.standard_normal((spec.k, spec.k))
        full = direct_deconv_full_2d(x, w, spec.stride)
        o = spec.output_offset
        ref = full[o : o + spec.m, o : o + spec.m]
        assert np.abs(spec.apply_2d(x, w) - ref).max() < 1e-12

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            PAPER_F23.__class__(
                kind="conv",
                m=2,
                k=3,
                p=4,
                mu=4,
                stride=1,
                a=np.zeros((3, 3)),
                b=PAPER_F23.b,
                g=PAPER_F23.g,
            )


class TestCookToom:
    @pytest.mark.parametrize("m,k", [(2, 3), (3, 3), (4, 3), (2, 5), (3, 2), (6, 3)])
    def test_conv_property(self, rng, m, k):
        spec = cook_toom_conv(m, k)
        assert spec.p == m + k - 1
        x = rng.standard_normal(spec.p)
        g = rng.standard_normal(k)
        ref = np.array([np.dot(g, x[j : j + k]) for j in range(m)])
        assert np.abs(spec.apply_1d(x, g) - ref).max() < 1e-8

    def test_too_large_raises(self):
        with pytest.raises(ValueError):
            cook_toom_conv(16, 16)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            cook_toom_conv(0, 3)


class TestFTAGeneric:
    @pytest.mark.parametrize(
        "r,s,k", [(3, 2, 4), (2, 2, 4), (1, 2, 4), (3, 3, 6), (2, 2, 2), (4, 2, 4), (2, 3, 3)]
    )
    def test_deconv_property(self, rng, r, s, k):
        spec = fta_deconv(r, s, k)
        assert spec.m == r * s
        x = rng.standard_normal(spec.p)
        g = rng.standard_normal(k)
        full = direct_deconv_full_1d(x, g, s)
        ref = full[spec.output_offset : spec.output_offset + spec.m]
        assert np.abs(spec.apply_1d(x, g) - ref).max() < 1e-8

    def test_paper_geometry_formulas(self):
        """p = ceil((k + r*s - 1)/s) and mu = k + (r-1)*s (Sec. III-B)."""
        for r, s, k in [(3, 2, 4), (2, 2, 4), (4, 2, 4), (3, 3, 6)]:
            spec = fta_deconv(r, s, k)
            assert spec.p == -(-(k + r * s - 1) // s)
            assert spec.mu == k + (r - 1) * s

    def test_kernel_smaller_than_stride_rejected(self):
        with pytest.raises(ValueError):
            fta_deconv(2, 3, 2)

    def test_generic_matches_paper_t3_behaviour(self, rng):
        """Generated T3(6x6,4x4) must compute the same function as the
        paper's published matrices (the matrices themselves may differ
        by diagonal scaling)."""
        generated = fta_deconv(3, 2, 4)
        x = rng.standard_normal(5)
        g = rng.standard_normal(4)
        assert np.abs(
            generated.apply_1d(x, g) - PAPER_T3_64.apply_1d(x, g)
        ).max() < 1e-10
