"""Autoscaling a local worker fleet against observed queue pressure.

The :class:`Autoscaler` closes the loop the network transport opens:
once jobs arrive over HTTP (:mod:`repro.pipeline.dist.net`) the
serving host no longer knows in advance how many workers a grid
needs, so it watches two signals on the queue itself —

* **depth** — pending jobs per alive worker (``backlog_per_worker``
  is the scale-up threshold), and
* **lease-expiry rate** — a reaped lease means a worker died mid-job,
  so the fleet is down a hand regardless of depth,

and grows or shrinks a fleet of local worker *processes* between
``min_workers`` and ``max_workers``, with a ``cooldown_seconds``
damper between actions so a bursty queue doesn't thrash the fleet.
Scale-down is deliberately conservative: workers are only terminated
when the queue is fully idle (nothing pending, nothing claimed), so a
kill can never orphan a lease mid-job.

The scaling *decision* (:meth:`Autoscaler.desired_workers`) is a pure
function of observed numbers, unit-testable without processes; the
*actuation* (:meth:`Autoscaler.step`) spawns handles via an injectable
``spawn`` callable — anything with ``is_alive()`` / ``terminate()`` /
``join()``, which a ``multiprocessing.Process`` is.  Use
:func:`spawn_http_worker` / :func:`spawn_directory_worker` for the two
real transports, or inject a fake in tests.

``repro serve --autoscale`` runs one next to the daemon; see
``docs/distributed.md`` ("Network transport") for the knobs.
"""

from __future__ import annotations

import math
import time

from .queues import JobQueue

__all__ = [
    "Autoscaler",
    "spawn_directory_worker",
    "spawn_http_worker",
]


def spawn_http_worker(queue_url: str, **kwargs):
    """Start one persistent HTTP worker process against ``queue_url``.

    ``stop_when_drained=False`` by default — fleet lifetime belongs to
    the autoscaler, not to a momentarily empty queue.  Extra kwargs
    pass through to :func:`~repro.pipeline.dist.net.http_worker_entry`.
    """
    import multiprocessing

    from .net import http_worker_entry

    process = multiprocessing.Process(
        target=http_worker_entry,
        args=(queue_url,),
        kwargs={"stop_when_drained": False, **kwargs},
        daemon=True,
    )
    process.start()
    return process


def spawn_directory_worker(queue_dir: str, **kwargs):
    """Start one persistent worker process against a queue directory
    (the shared-filesystem sibling of :func:`spawn_http_worker`)."""
    import multiprocessing

    from .worker import worker_entry

    process = multiprocessing.Process(
        target=worker_entry,
        args=(queue_dir,),
        kwargs={"stop_when_drained": False, **kwargs},
        daemon=True,
    )
    process.start()
    return process


class Autoscaler:
    """Grow/shrink a worker fleet against queue depth and expiry rate.

    Parameters
    ----------
    queue:
        The :class:`~repro.pipeline.dist.queues.JobQueue` to watch
        (any backend — the autoscaler only calls ``reap_expired`` and
        ``stats``).
    spawn:
        Zero-argument callable returning a started worker handle with
        ``is_alive()`` / ``terminate()`` / ``join()``.
    min_workers / max_workers:
        Hard fleet bounds.  ``min_workers=0`` lets an idle fleet scale
        to nothing.
    backlog_per_worker:
        Scale-up threshold: target at most this many pending jobs per
        alive worker.
    cooldown_seconds:
        Minimum time between scaling actions (observations still
        happen every :meth:`step`).
    clock:
        Injectable monotonic clock, for tests.
    """

    def __init__(
        self,
        queue: JobQueue | None = None,
        spawn=None,
        *,
        min_workers: int = 0,
        max_workers: int = 4,
        backlog_per_worker: int = 4,
        cooldown_seconds: float = 2.0,
        clock=time.monotonic,
    ):
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if not 0 <= min_workers <= max_workers:
            raise ValueError(
                f"need 0 <= min_workers <= max_workers, got "
                f"{min_workers}/{max_workers}"
            )
        if backlog_per_worker < 1:
            raise ValueError(
                f"backlog_per_worker must be >= 1, got {backlog_per_worker}"
            )
        self.queue = queue
        self.spawn = spawn
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.backlog_per_worker = backlog_per_worker
        self.cooldown_seconds = cooldown_seconds
        self._clock = clock
        self._workers: list = []
        self._last_action: float | None = None
        self.expired_total = 0

    # -- decision (pure) ----------------------------------------------
    def desired_workers(
        self, *, pending: int, claimed: int, expired: int = 0
    ) -> int:
        """How many workers the observed queue state wants, clamped to
        ``[min_workers, max_workers]``.

        Depth asks for ``ceil(pending / backlog_per_worker)``; any
        in-flight work asks for at least one; each freshly expired
        lease asks for one more hand (a worker just died mid-job).  An
        idle queue asks for ``min_workers``.
        """
        if pending == 0 and claimed == 0 and expired == 0:
            need = 0
        else:
            need = math.ceil(pending / self.backlog_per_worker)
            if claimed > 0 or pending > 0:
                need = max(need, 1)
            need += expired
        return max(self.min_workers, min(self.max_workers, need))

    # -- actuation ----------------------------------------------------
    @property
    def workers(self) -> list:
        """Live worker handles (dead ones are pruned by :meth:`step`)."""
        return list(self._workers)

    def _prune_dead(self) -> int:
        alive = [w for w in self._workers if w.is_alive()]
        dead = len(self._workers) - len(alive)
        self._workers = alive
        return dead

    def _cooled_down(self, now: float) -> bool:
        return (
            self._last_action is None
            or now - self._last_action >= self.cooldown_seconds
        )

    def step(self) -> dict:
        """One observe→decide→act cycle; returns a summary document.

        Reaps expired leases (feeding the expiry signal), prunes dead
        handles, then — if the cooldown allows — spawns up to the
        desired count, or terminates excess workers *only when the
        queue is fully idle* so no in-flight job is ever killed.
        """
        if self.queue is None or self.spawn is None:
            raise RuntimeError("step() needs both a queue and a spawn callable")
        now = self._clock()
        expired = len(self.queue.reap_expired())
        self.expired_total += expired
        died = self._prune_dead()
        stats = self.queue.stats()
        desired = self.desired_workers(
            pending=stats.pending, claimed=stats.claimed, expired=expired
        )
        alive = len(self._workers)
        action = "hold"
        if desired > alive and self._cooled_down(now):
            for _ in range(desired - alive):
                self._workers.append(self.spawn())
            action = f"scale-up:{desired - alive}"
            self._last_action = now
        elif (
            desired < alive
            and stats.pending == 0
            and stats.claimed == 0
            and self._cooled_down(now)
        ):
            excess = self._workers[desired:]
            self._workers = self._workers[:desired]
            for worker in excess:
                worker.terminate()
            for worker in excess:
                worker.join()
            action = f"scale-down:{len(excess)}"
            self._last_action = now
        return {
            "action": action,
            "alive": len(self._workers),
            "desired": desired,
            "pending": stats.pending,
            "claimed": stats.claimed,
            "expired": expired,
            "worker_deaths": died,
        }

    def run(self, *, poll_seconds: float = 0.5, should_stop=None) -> None:
        """Loop :meth:`step` until ``should_stop()`` is true (forever
        when ``should_stop`` is ``None`` — the serve-daemon shape);
        always shuts the fleet down on the way out."""
        try:
            while should_stop is None or not should_stop():
                self.step()
                time.sleep(poll_seconds)
        finally:
            self.shutdown()

    def shutdown(self) -> None:
        """Terminate and join every worker (idempotent)."""
        workers, self._workers = self._workers, []
        for worker in workers:
            worker.terminate()
        for worker in workers:
            worker.join()
