"""Tests for the entropy-backend registry and the rANS fast path."""

import numpy as np
import pytest

from repro.codec import (
    CTVCConfig,
    ClassicalCodec,
    ClassicalCodecConfig,
    CTVCNet,
    EntropyBackendError,
    LaplacianModel,
    RansBackend,
    SequenceBitstream,
    SymbolModel,
    available_entropy_backends,
    cached_laplacian,
    cached_uniform_model,
    estimate_bits,
    get_entropy_backend,
    register_entropy_backend,
    unregister_entropy_backend,
)
from repro.serialization import ConfigError
from repro.video import SceneConfig, generate_sequence


@pytest.fixture
def rng():
    return np.random.default_rng(2024)


def random_model(rng, max_symbols=64):
    n = int(rng.integers(2, max_symbols))
    return SymbolModel(rng.integers(1, 200, n))


class TestRegistry:
    def test_builtins_available(self):
        names = available_entropy_backends()
        assert "cacm" in names and "rans" in names

    def test_unknown_backend(self):
        with pytest.raises(EntropyBackendError, match="unknown entropy backend"):
            get_entropy_backend("huffman")

    def test_register_conflict_and_teardown(self):
        backend = RansBackend(lanes=4)
        register_entropy_backend("rans4", backend)
        try:
            with pytest.raises(EntropyBackendError, match="already registered"):
                register_entropy_backend("rans4", backend)
            assert get_entropy_backend("rans4") is backend
        finally:
            unregister_entropy_backend("rans4")
        with pytest.raises(EntropyBackendError):
            get_entropy_backend("rans4")

    def test_builtins_self_heal_after_unregister(self):
        """Tearing down a built-in must not brick it for the process."""
        unregister_entropy_backend("rans")
        assert get_entropy_backend("rans").name == "rans"
        unregister_entropy_backend("cacm")
        assert get_entropy_backend("cacm").name == "cacm"

    def test_config_validates_backend_name(self):
        with pytest.raises(EntropyBackendError):
            CTVCConfig(entropy_backend="nope")
        with pytest.raises(ConfigError):
            ClassicalCodecConfig.from_dict({"entropy_backend": "nope"})

    def test_config_roundtrips_backend(self):
        cfg = CTVCConfig(channels=8, entropy_backend="cacm")
        assert CTVCConfig.from_dict(cfg.to_dict()) == cfg
        assert cfg.to_dict()["entropy_backend"] == "cacm"


class TestModelCaches:
    def test_cached_laplacian_hits(self):
        a = cached_laplacian(0x4000, 32)
        b = cached_laplacian(0x4000, 32)
        assert a is b
        assert cached_laplacian(0x4000, 33) is not a

    def test_cached_laplacian_matches_inline_construction(self):
        from repro.codec import f16_from_bits

        bits, support = 0x3C00, 16  # f16 1.0
        cached = cached_laplacian(bits, support)
        inline = LaplacianModel(max(f16_from_bits(bits), 1e-3), support)
        assert np.array_equal(cached.model.freqs, inline.model.freqs)

    def test_cached_uniform(self):
        model = cached_uniform_model(17)
        assert model is cached_uniform_model(17)
        assert model.num_symbols == 17
        assert np.all(model.freqs == 1)


class TestRansTable:
    def test_total_is_power_of_two(self, rng):
        from repro.codec.entropy import RANS_PRECISION

        for _ in range(20):
            model = random_model(rng, max_symbols=500)
            freqs, cums, slots = model.rans_table()
            assert int(freqs.sum()) == 1 << RANS_PRECISION
            assert np.all(freqs >= 1)
            assert slots.size == 1 << RANS_PRECISION
            # slots inverts cums: slot s in [cums[k], cums[k]+freqs[k]) -> k
            assert np.array_equal(np.diff(np.concatenate([cums, [1 << RANS_PRECISION]])), freqs)

    def test_table_cached_per_instance(self, rng):
        model = random_model(rng)
        assert model.rans_table() is model.rans_table()

    def test_single_symbol_alphabet(self):
        model = SymbolModel(np.array([7]))
        rans = get_entropy_backend("rans")
        syms = np.zeros(500, dtype=np.int64)
        blob = rans.encode_segments([(syms, model)])
        out = rans.decode_segments(blob, [(500, model)])[0]
        assert np.array_equal(out, syms)

    def test_oversized_alphabet_raises_instead_of_hanging(self):
        from repro.codec.entropy import RANS_PRECISION

        model = SymbolModel(np.ones((1 << RANS_PRECISION) + 1, dtype=np.int64))
        with pytest.raises(ValueError, match="rANS precision"):
            model.rans_table()


class TestRansRoundTrip:
    @pytest.mark.parametrize("size", [0, 1, 5, 63, 64, 65, 257, 4096])
    def test_sizes(self, rng, size):
        rans = get_entropy_backend("rans")
        model = random_model(rng)
        syms = rng.choice(model.num_symbols, size=size, p=model.probabilities())
        blob = rans.encode_segments([(syms, model)])
        out = rans.decode_segments(blob, [(size, model)])[0]
        assert np.array_equal(out, syms)

    def test_property_random_multisegment(self, rng):
        """Random pmfs + random symbol streams, many trials: byte-exact
        round-trips through the rANS backend, including empty and
        single-symbol segments mixed with large ones."""
        rans = get_entropy_backend("rans")
        for _ in range(40):
            segments = []
            for _ in range(int(rng.integers(1, 9))):
                pmf = rng.random(int(rng.integers(2, 80))) ** 3
                model = SymbolModel.from_pmf(pmf)
                count = int(rng.choice([0, 1, 2, 7, 100, 700]))
                syms = rng.choice(
                    model.num_symbols, size=count, p=model.probabilities()
                )
                segments.append((syms, model))
            blob = rans.encode_segments(segments)
            decoded = rans.decode_segments(
                blob, [(len(s), m) for s, m in segments]
            )
            for (syms, _), out in zip(segments, decoded):
                assert np.array_equal(out, syms)

    def test_deterministic_payloads(self, rng):
        rans = get_entropy_backend("rans")
        model = random_model(rng)
        syms = rng.choice(model.num_symbols, size=1000, p=model.probabilities())
        assert rans.encode_segments([(syms, model)]) == rans.encode_segments(
            [(syms, model)]
        )

    def test_truncated_payload_rejected(self, rng):
        rans = get_entropy_backend("rans")
        model = random_model(rng)
        syms = rng.choice(model.num_symbols, size=500, p=model.probabilities())
        blob = rans.encode_segments([(syms, model)])
        with pytest.raises(ValueError, match="truncated"):
            rans.decode_segments(blob[: len(blob) // 2], [(500, model)])

    def test_custom_lane_counts(self, rng):
        model = random_model(rng)
        syms = rng.choice(model.num_symbols, size=3000, p=model.probabilities())
        for lanes in (1, 2, 7, 32, 64):
            backend = RansBackend(lanes=lanes)
            blob = backend.encode_segments([(syms, model)])
            # any RansBackend decodes any lane count (it's in the header)
            out = get_entropy_backend("rans").decode_segments(blob, [(3000, model)])
            assert np.array_equal(out[0], syms)


class TestCrossBackendRates:
    def test_rates_near_shannon(self, rng):
        """Both backends land within 1% of the ideal Shannon cost on a
        long Laplacian stream (the satellite acceptance criterion)."""
        model = LaplacianModel(scale=3.0, support=64)
        values = np.clip(np.round(rng.laplace(0, 3.0, 60000)), -64, 64)
        syms = values.astype(np.int64) + 64
        ideal = estimate_bits(syms, model.model)
        for name in ("cacm", "rans"):
            backend = get_entropy_backend(name)
            blob = backend.encode_segments([(syms, model.model)])
            out = backend.decode_segments(blob, [(len(syms), model.model)])[0]
            assert np.array_equal(out, syms)
            actual = 8 * len(blob)
            assert actual >= ideal - 8  # cannot beat entropy
            assert actual <= ideal * 1.01, (name, actual, ideal)

    def test_backends_agree_on_symbols(self, rng):
        """cacm and rans decode each other's source symbols identically
        (payloads differ; decoded streams must not)."""
        cacm = get_entropy_backend("cacm")
        rans = get_entropy_backend("rans")
        model = random_model(rng)
        syms = rng.choice(model.num_symbols, size=2000, p=model.probabilities())
        for backend in (cacm, rans):
            blob = backend.encode_segments([(syms, model)])
            out = backend.decode_segments(blob, [(2000, model)])[0]
            assert np.array_equal(out, syms)


class TestCodecsAcrossBackends:
    @pytest.fixture(scope="class")
    def frames(self):
        return generate_sequence(SceneConfig(height=32, width=48, frames=3, seed=9))

    def test_classical_identical_reconstruction(self, frames):
        streams = {}
        recons = {}
        for backend in ("cacm", "rans"):
            codec = ClassicalCodec(
                ClassicalCodecConfig(qp=10.0, entropy_backend=backend)
            )
            blob = codec.encode_sequence(frames).serialize()
            streams[backend] = blob
            recons[backend] = codec.decode_sequence(SequenceBitstream.parse(blob))
        # entropy coding is lossless: reconstructions are bit-identical
        for a, b in zip(recons["cacm"], recons["rans"]):
            assert np.array_equal(a, b)
        # the rans payloads genuinely differ from cacm's
        assert streams["cacm"] != streams["rans"]

    def test_ctvc_identical_reconstruction(self, frames):
        recons = {}
        for backend in ("cacm", "rans"):
            net = CTVCNet(
                CTVCConfig(channels=8, qstep=8.0, seed=3, entropy_backend=backend)
            )
            blob = net.encode_sequence(frames).serialize()
            stream = SequenceBitstream.parse(blob)
            assert stream.header["entropy"] == backend
            assert stream.version == 2
            recons[backend] = net.decode_sequence(stream)
        for a, b in zip(recons["cacm"], recons["rans"]):
            assert np.array_equal(a, b)

    def test_decoder_follows_stream_header(self, frames):
        """A cacm-configured codec decodes a rans stream (and vice
        versa): the bitstream header, not the local config, picks the
        backend."""
        writer = ClassicalCodec(
            ClassicalCodecConfig(qp=10.0, entropy_backend="rans")
        )
        blob = writer.encode_sequence(frames).serialize()
        reader = ClassicalCodec(
            ClassicalCodecConfig(qp=10.0, entropy_backend="cacm")
        )
        decoded = reader.decode_sequence(SequenceBitstream.parse(blob))
        expected = writer.decode_sequence(SequenceBitstream.parse(blob))
        for a, b in zip(decoded, expected):
            assert np.array_equal(a, b)
