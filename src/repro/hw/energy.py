"""Energy/power roll-up (TSMC 28 nm HPC+ calibration).

The paper's Table II power figure (0.76 W at 400 MHz) comes from
synthesis-derived unit energies multiplied by activity counts; this
module reproduces that methodology.  Unit energies are calibrated 28 nm
values (fixed-point multiplier/adder energies from the usual Horowitz
ISSCC'14 tables, SRAM/DRAM per-byte costs for the buffer geometry);
``control_overhead`` covers clock tree, registers, and control not
captured by the datapath counts.

DRAM energy is accounted separately from chip power, as in the paper
(Table II lists chip power; Fig. 9(b) motivates chaining by off-chip
*traffic*).
"""

from __future__ import annotations

from dataclasses import dataclass

from .arch import NVCAConfig
from .dataflow import TrafficReport
from .scheduler import GraphSchedule

__all__ = ["EnergyUnits", "EnergyReport", "energy_report"]


@dataclass(frozen=True)
class EnergyUnits:
    """Unit energies in picojoules (28 nm, 0.9 V)."""

    mult_12x16_pj: float = 0.45  # SCU multiplier incl. operand regs
    add_pj: float = 0.10  # transform / adder-tree add
    dcc_mac_pj: float = 0.70  # DCC MAC incl. gather logic
    interp_mult_pj: float = 0.30  # bilinear interpolation multiply
    sram_byte_pj: float = 1.00  # on-chip buffer access per byte
    dram_byte_pj: float = 30.0  # LPDDR4-class external access
    static_power_w: float = 0.055  # leakage + always-on control
    control_overhead: float = 1.28  # clock tree / pipeline registers

    @classmethod
    def scaled(cls, technology_nm: int) -> "EnergyUnits":
        """First-order technology scaling of the dynamic unit energies
        relative to the 28 nm calibration point (energy ~ feature size)."""
        factor = technology_nm / 28.0
        base = cls()
        return cls(
            mult_12x16_pj=base.mult_12x16_pj * factor,
            add_pj=base.add_pj * factor,
            dcc_mac_pj=base.dcc_mac_pj * factor,
            interp_mult_pj=base.interp_mult_pj * factor,
            sram_byte_pj=base.sram_byte_pj * factor,
            dram_byte_pj=base.dram_byte_pj,  # off-chip: node-independent
            static_power_w=base.static_power_w * factor,
            control_overhead=base.control_overhead,
        )


#: Transform adds per 2-D tile (PreU B^T X B + PostU A^T U A stages):
#: F(2x2,3x3) tiles pass 8 four-wide 1-D transforms each way; the
#: deconvolution tiles are larger.
_TRANSFORM_ADDS = {"fast-conv": 96, "fast-deconv": 280, "direct": 0}


@dataclass
class EnergyReport:
    """Per-frame energy breakdown and resulting power."""

    graph_name: str
    frame_time_s: float
    mult_energy_j: float
    add_energy_j: float
    dcc_energy_j: float
    sram_energy_j: float
    dram_energy_j: float
    static_energy_j: float

    @property
    def chip_energy_j(self) -> float:
        """On-chip energy (what the paper's 0.76 W covers)."""
        return (
            self.mult_energy_j
            + self.add_energy_j
            + self.dcc_energy_j
            + self.sram_energy_j
            + self.static_energy_j
        )

    @property
    def chip_power_w(self) -> float:
        return self.chip_energy_j / self.frame_time_s

    @property
    def system_energy_j(self) -> float:
        return self.chip_energy_j + self.dram_energy_j

    def energy_efficiency_gops_per_w(self, sustained_gops: float) -> float:
        return sustained_gops / self.chip_power_w

    def __str__(self) -> str:
        return (
            f"EnergyReport({self.graph_name}: {self.chip_power_w:.2f} W chip, "
            f"{self.chip_energy_j * 1e3:.1f} mJ/frame on-chip + "
            f"{self.dram_energy_j * 1e3:.1f} mJ/frame DRAM)"
        )


def energy_report(
    schedule: GraphSchedule,
    traffic: TrafficReport,
    units: EnergyUnits | None = None,
    config: NVCAConfig | None = None,
) -> EnergyReport:
    """Roll activity counts up into per-frame energy and chip power."""
    config = config or schedule.config
    units = units or EnergyUnits.scaled(config.technology_nm)
    frame_time = max(
        sum(entry.cycles for entry in schedule.layers) / config.clock_hz, 1e-12
    )

    mult_j = 0.0
    add_j = 0.0
    dcc_j = 0.0
    sram_bytes = 0.0
    for entry in schedule.layers:
        layer = entry.layer
        if entry.core == "sftc" and entry.cost is not None:
            mult_j += entry.cost.sparse_mults * units.mult_12x16_pj * 1e-12
            adds_per_tile = _TRANSFORM_ADDS.get(entry.cost.mode, 0)
            tile_transforms = entry.cost.spatial_tiles * (
                layer.in_channels + layer.out_channels
            )
            add_j += tile_transforms * adds_per_tile * units.add_pj * 1e-12
            # Adder-tree reduction over input channels.
            add_j += entry.cost.sparse_mults * units.add_pj * 1e-12
        elif entry.core == "dcc" and entry.cost is not None:
            dcc_j += entry.cost.macs * units.dcc_mac_pj * 1e-12
            dcc_j += (
                entry.cost.interpolation_mults * units.interp_mult_pj * 1e-12
            )
        # On-chip buffer traffic: each activation element is written
        # once and read ~kernel-reuse times from SRAM regardless of
        # dataflow (chaining changes *DRAM* traffic, not SRAM traffic).
        if layer.kind not in ("pool", "eltwise"):
            elements = layer.input_elements() + layer.output_elements()
            sram_bytes += 2.0 * elements * config.activation_bytes

    dram_bytes = traffic.chained_total
    overhead = units.control_overhead
    return EnergyReport(
        graph_name=schedule.graph.name,
        frame_time_s=frame_time,
        mult_energy_j=mult_j * overhead,
        add_energy_j=add_j * overhead,
        dcc_energy_j=dcc_j * overhead,
        sram_energy_j=sram_bytes * units.sram_byte_pj * 1e-12 * overhead,
        dram_energy_j=dram_bytes * units.dram_byte_pj * 1e-12,
        static_energy_j=units.static_power_w * frame_time,
    )
