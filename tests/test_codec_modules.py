"""Tests for the CTVC-Net pipeline modules (Fig. 2) and Swin-AM."""

import numpy as np
import pytest

from repro.codec import (
    CompressionAE,
    DeformableCompensation,
    FeatureExtraction,
    FrameReconstruction,
    MotionEstimation,
    SwinAM,
    block_match,
    dense_motion_field,
)
from repro.metrics import psnr
from repro.video import SceneConfig, generate_sequence


@pytest.fixture
def rng():
    return np.random.default_rng(81)


@pytest.fixture(scope="module")
def frames():
    return generate_sequence(SceneConfig(height=64, width=96, frames=3, seed=7))


class TestFeatureExtraction:
    def test_structured_shapes(self, rng, frames):
        fe = FeatureExtraction(12, rng=rng)
        features = fe(frames[0])
        assert features.shape == (12, 32, 48)

    def test_paper_mode_shapes(self, rng, frames):
        fe = FeatureExtraction(12, mode="paper", rng=rng)
        assert fe(frames[0]).shape == (12, 32, 48)

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            FeatureExtraction(12, mode="magic")

    def test_roundtrip_quality(self, frames):
        """Structured FE -> FR must be a high-quality autoencoder — the
        codec's quality ceiling (DESIGN.md §2)."""
        fe = FeatureExtraction(16, rng=np.random.default_rng(1))
        fr = FrameReconstruction(16, rng=np.random.default_rng(2))
        recon = np.clip(fr(fe(frames[0])), 0, 255)
        assert psnr(frames[0], recon) > 35.0

    def test_roundtrip_quality_paper_n(self, frames):
        fe = FeatureExtraction(36, rng=np.random.default_rng(1))
        fr = FrameReconstruction(36, rng=np.random.default_rng(2))
        recon = np.clip(fr(fe(frames[0])), 0, 255)
        assert psnr(frames[0], recon) > 36.0


class TestBlockMatching:
    def test_exact_integer_shift_recovered(self, rng):
        ref = rng.uniform(0, 255, (48, 64))
        # current = reference shifted by (dy=2, dx=-3): cur[p] = ref[p + mv]
        cur = np.roll(ref, (-2, 3), axis=(0, 1))
        mv = block_match(cur, ref, block_size=8, search_range=4)
        interior = mv[:, 1:-1, 1:-1]
        assert np.all(interior[0] == 2)
        assert np.all(interior[1] == -3)

    def test_zero_motion_on_identical(self, rng):
        plane = rng.uniform(0, 255, (32, 32))
        mv = block_match(plane, plane, 8, 4)
        assert np.all(mv == 0)

    def test_range_respected(self, rng):
        mv = block_match(
            rng.uniform(0, 255, (32, 32)), rng.uniform(0, 255, (32, 32)), 8, 3
        )
        assert np.abs(mv).max() <= 3

    def test_plane_too_small(self, rng):
        with pytest.raises(ValueError):
            block_match(rng.uniform(0, 255, (4, 4)), rng.uniform(0, 255, (4, 4)), 8)

    def test_dense_field_expansion(self):
        mv = np.zeros((2, 2, 3), dtype=np.int64)
        mv[0, 1, 2] = 5
        dense = dense_motion_field(mv, 16, 24, 8)
        assert dense.shape == (2, 16, 24)
        assert dense[0, 12, 20] == 5
        assert dense[0, 0, 0] == 0

    def test_dense_field_pads_ragged_edges(self):
        mv = np.ones((2, 2, 2), dtype=np.int64)
        dense = dense_motion_field(mv, 20, 20, 8)
        assert dense.shape == (2, 20, 20)
        assert dense[0, 19, 19] == 1


class TestMotionEstimation:
    def test_estimate_embeds_motion(self, rng):
        me = MotionEstimation(8, rng=rng)
        ref = rng.uniform(0, 255, (32, 48))
        cur = np.roll(ref, (-1, -2), axis=(0, 1))
        feature, mv = me.estimate(cur, ref)
        assert feature.shape == (8, 32, 48)
        assert np.all(feature[2:] == 0.0)  # only channels 0,1 carry motion
        assert np.all(feature[0][8:-8, 8:-8] == 1)
        assert np.all(feature[1][8:-8, 8:-8] == 2)
        assert mv.shape == (2, 4, 6)

    def test_neural_stack_runs(self, rng):
        me = MotionEstimation(8, rng=rng)
        f1 = rng.standard_normal((8, 16, 16))
        f0 = rng.standard_normal((8, 16, 16))
        assert me(f1, f0).shape == (8, 16, 16)


class TestDeformableCompensation:
    def test_integer_warp(self, rng):
        dc = DeformableCompensation(8, rng=rng)
        features = rng.standard_normal((8, 24, 24))
        motion = np.zeros((8, 24, 24))
        motion[0] = 2.0  # dy
        motion[1] = 1.0  # dx
        pred = dc(motion, features)
        expected = np.roll(features, (-2, -1), axis=(1, 2))
        interior = (slice(None), slice(3, -3), slice(3, -3))
        rel = np.linalg.norm(pred[interior] - expected[interior]) / np.linalg.norm(
            expected[interior]
        )
        assert rel < 0.1  # warp + small refinement residual

    def test_zero_motion_near_identity(self, rng):
        dc = DeformableCompensation(8, rng=rng)
        features = rng.standard_normal((8, 16, 16))
        pred = dc(np.zeros((8, 16, 16)), features)
        rel = np.linalg.norm(pred - features) / np.linalg.norm(features)
        assert rel < 0.1

    def test_subpixel_motion_interpolates(self, rng):
        dc = DeformableCompensation(4, rng=rng)
        features = rng.standard_normal((4, 16, 16))
        motion = np.zeros((4, 16, 16))
        motion[1] = 0.5
        pred = dc(motion, features)
        avg = 0.5 * (features + np.roll(features, -1, axis=2))
        interior = (slice(None), slice(2, -2), slice(2, -2))
        rel = np.linalg.norm(pred[interior] - avg[interior]) / np.linalg.norm(
            avg[interior]
        )
        assert rel < 0.12

    def test_prediction_reduces_residual(self, frames):
        """End-to-end: motion compensation must beat frame copying."""
        fe = FeatureExtraction(12, rng=np.random.default_rng(1))
        me = MotionEstimation(12, rng=np.random.default_rng(2))
        dc = DeformableCompensation(12, rng=np.random.default_rng(3))

        def half_luma(frame):
            y = 0.299 * frame[0] + 0.587 * frame[1] + 0.114 * frame[2]
            return 0.25 * (
                y[0::2, 0::2] + y[1::2, 0::2] + y[0::2, 1::2] + y[1::2, 1::2]
            )

        f_prev, f_cur = fe(frames[0]), fe(frames[1])
        motion, _ = me.estimate(half_luma(frames[1]), half_luma(frames[0]))
        pred = dc(motion, f_prev)
        assert np.mean((f_cur - pred) ** 2) < np.mean((f_cur - f_prev) ** 2)


class TestCompressionAE:
    def test_latent_geometry(self, rng):
        ae = CompressionAE(8, rng=rng)
        x = rng.standard_normal((8, 32, 48))
        latent = ae.analyze(x)
        assert latent.shape == (8, 4, 6)
        assert ae.synthesize(latent).shape == x.shape

    def test_smooth_fields_reconstruct(self, rng):
        """Motion-like (piecewise constant) inputs must survive the AE
        round trip — that is what makes decoded motion usable."""
        ae = CompressionAE(8, rng=rng)
        ae.calibrate()
        field = np.zeros((8, 32, 48))
        field[0] = 2.0
        field[1] = -1.5
        recon = ae(field)
        rel = np.linalg.norm(recon - field) / np.linalg.norm(field)
        assert rel < 0.45  # leakage from near-identity blocks bounded
        # The channels the codec actually consumes (the embedded dy/dx)
        # reconstruct nearly perfectly once the per-frame gain applies.
        gain = float(np.sum(field[:2] * recon[:2]) / np.sum(recon[:2] ** 2))
        motion_rel = np.linalg.norm(gain * recon[:2] - field[:2]) / np.linalg.norm(
            field[:2]
        )
        assert motion_rel < 0.05

    def test_calibration_idempotent(self, rng):
        ae = CompressionAE(8, rng=rng)
        ae.calibrate()
        weights = ae.syn_deconvs[2].weight.data.copy()
        ae.calibrate()
        assert np.array_equal(weights, ae.syn_deconvs[2].weight.data)

    def test_calibration_improves_roundtrip(self, rng):
        field = np.repeat(
            np.repeat(rng.standard_normal((8, 4, 6)), 8, axis=1), 8, axis=2
        )
        raw = CompressionAE(8, rng=np.random.default_rng(5))
        calibrated = CompressionAE(8, rng=np.random.default_rng(5))
        calibrated.calibrate()
        err_raw = np.linalg.norm(raw(field) - field)
        err_cal = np.linalg.norm(calibrated(field) - field)
        # Calibration fits gains on its own reference field; on an
        # independent field it must be at least competitive (and it
        # rescues badly-scaled stacks by orders of magnitude).
        assert err_cal <= err_raw * 1.15
        # Sanity: the calibrated AE must not amplify (the low-pass
        # pyramid can only lose broadband energy, not add it).
        assert err_cal / np.linalg.norm(field) < 1.05


class TestSwinAM:
    def test_shape_preserved(self, rng):
        am = SwinAM(8, window=3, shift=0, heads=2, rng=rng)
        x = rng.standard_normal((8, 12, 12))
        assert am(x).shape == x.shape

    def test_near_identity_at_init(self, rng):
        """The mask bias keeps the untrained module transparent."""
        am = SwinAM(8, window=3, shift=2, heads=2, rng=rng)
        x = rng.standard_normal((8, 12, 12))
        rel = np.linalg.norm(am(x) - x) / np.linalg.norm(x)
        assert rel < 0.1

    def test_mask_in_unit_interval(self, rng):
        am = SwinAM(8, rng=rng)
        mask = am.attention_mask(rng.standard_normal((8, 9, 9)))
        assert mask.min() >= 0.0
        assert mask.max() <= 1.0

    def test_open_mask_changes_output(self, rng):
        am = SwinAM(8, mask_bias=4.0, rng=rng)  # mask ~ 1: branch 2 on
        x = rng.standard_normal((8, 12, 12))
        rel = np.linalg.norm(am(x) - x) / np.linalg.norm(x)
        assert rel > 0.2

    def test_alternating_shifts_configured(self, rng):
        a = SwinAM(8, window=3, shift=0, rng=rng)
        b = SwinAM(8, window=3, shift=2, rng=rng)
        assert a.attention.shift == 0
        assert b.attention.shift == 2
