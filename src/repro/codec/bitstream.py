"""Bitstream container: what travels from encoder to decoder.

"HD video ... is typically stored on cloud servers as encoded
bitstreams" (Section I) — the decoder-side accelerator consumes exactly
this.  The container is deliberately simple and fully self-describing:

    magic 'NVCA' | version u16 | header-length u32 | header JSON |
    repeat per frame:  meta-length u32 | meta JSON | chunks...

Every chunk is a named byte payload (an entropy-coded stream or raw
side information).  All rate numbers in the evaluation harness are
``len(serialize())*8`` — real bits, headers included.

Format versions:

* **1** — the original container: every chunk is CACM'87
  arithmetic-coded, and the classical codec's DCT planes interleave
  their per-band models block by block.  The header records
  ``num_frames`` and packets follow back to back.
* **2** — the header's ``"entropy"`` field names the entropy backend
  that wrote the chunks (``"cacm"``, ``"rans"``, ...; absent means
  ``"cacm"``), and multi-model chunks are laid out as contiguous
  per-model segments.  Decoders pick the backend from the stream, not
  from their own configuration.
* **3** (streaming) — the header drops ``num_frames`` (unknowable
  while encoding live) and every packet is length-prefixed
  (``u32 size | packet bytes``), terminated by a zero-size sentinel.
  This is what :class:`StreamWriter` emits incrementally and
  :class:`StreamReader` consumes packet by packet, so file-to-file
  transcoding needs O(1) frame memory.

``parse`` accepts every version and records which one it saw in
``SequenceBitstream.version``, so version-1 streams remain decodable
(the codecs keep a legacy symbol-order path for them) and version-3
files round-trip through the in-memory API too.  The batch encoders
keep writing version 2 — byte-compatible with every pre-streaming
consumer — while the streaming paths write version 3.

Floating-point side information (e.g. Laplacian scales) must be passed
through :func:`as_f32` before use on the *encoder* side too, so encoder
and decoder derive bit-identical probability models.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "FramePacket",
    "SequenceBitstream",
    "StreamReader",
    "StreamWriter",
    "as_f32",
    "f32_bits",
    "f32_from_bits",
    "f16_bits",
    "f16_from_bits",
]

_MAGIC = b"NVCA"
_VERSION = 2
#: Version the incremental (length-prefixed) container writes.
STREAM_VERSION = 3
_SUPPORTED_VERSIONS = (1, 2, 3)
#: Zero-size packet sentinel ending a version-3 stream.
_END_OF_STREAM = struct.pack("<I", 0)


def as_f32(value: float) -> float:
    """Quantize a float to IEEE-754 single precision (side-info width)."""
    return float(np.float32(value))


def f32_bits(value: float) -> int:
    """Pack a float into its 32-bit pattern (compact exact side info)."""
    return int(np.float32(value).view(np.uint32))


def f32_from_bits(bits: int) -> float:
    """Inverse of :func:`f32_bits`."""
    return float(np.uint32(bits).view(np.float32))


def f16_bits(value: float) -> int:
    """Pack a float into a 16-bit half-precision pattern.

    Used for probability-model scales, where half precision is plenty —
    both sides of the channel just have to use the *same* value.
    """
    return int(np.float16(value).view(np.uint16))


def f16_from_bits(bits: int) -> float:
    """Inverse of :func:`f16_bits`."""
    return float(np.uint16(bits).view(np.float16))


@dataclass
class FramePacket:
    """One coded frame: metadata plus named binary chunks."""

    frame_type: str  # "I" or "P"
    meta: dict = field(default_factory=dict)
    chunks: dict[str, bytes] = field(default_factory=dict)

    def add_chunk(self, name: str, payload: bytes) -> None:
        if name in self.chunks:
            raise ValueError(f"duplicate chunk {name!r}")
        self.chunks[name] = payload

    def num_bits(self) -> int:
        """Payload bits of this packet (chunks only, no container)."""
        return 8 * sum(len(c) for c in self.chunks.values())

    def _meta_blob(self) -> bytes:
        # Single-character keys: this JSON rides in the bitstream and
        # counts against the measured rate.
        record = {
            "t": self.frame_type,
            "m": self.meta,
            "n": list(self.chunks),
            "z": [len(self.chunks[k]) for k in self.chunks],
        }
        return json.dumps(record, sort_keys=True, separators=(",", ":")).encode("utf-8")

    def serialize(self) -> bytes:
        blob = self._meta_blob()
        out = bytearray(struct.pack("<I", len(blob)))
        out.extend(blob)
        for name in self.chunks:
            out.extend(self.chunks[name])
        return bytes(out)

    @classmethod
    def parse(cls, buffer: bytes, offset: int) -> tuple["FramePacket", int]:
        (meta_len,) = struct.unpack_from("<I", buffer, offset)
        offset += 4
        record = json.loads(buffer[offset : offset + meta_len].decode("utf-8"))
        offset += meta_len
        packet = cls(frame_type=record["t"], meta=record["m"])
        for name, size in zip(record["n"], record["z"]):
            packet.chunks[name] = bytes(buffer[offset : offset + size])
            offset += size
        return packet, offset

    @classmethod
    def read_from(cls, fileobj) -> "FramePacket":
        """Read one packet from a binary file object (the packet framing
        is self-describing: chunk names and sizes ride in the meta
        blob, so no container-level length prefix is needed)."""
        (meta_len,) = struct.unpack("<I", _read_exact(fileobj, 4))
        record = json.loads(_read_exact(fileobj, meta_len).decode("utf-8"))
        packet = cls(frame_type=record["t"], meta=record["m"])
        for name, size in zip(record["n"], record["z"]):
            packet.chunks[name] = _read_exact(fileobj, size)
        return packet


def _read_exact(fileobj, size: int) -> bytes:
    data = fileobj.read(size)
    if len(data) != size:
        raise ValueError(
            f"truncated bitstream: wanted {size} bytes, got {len(data)}"
        )
    return bytes(data)


@dataclass
class SequenceBitstream:
    """A full coded sequence: header plus per-frame packets.

    ``version`` is the container format version; ``parse`` preserves
    the version of the incoming stream so re-serialization and
    decoder dispatch stay faithful to what was read.
    """

    header: dict = field(default_factory=dict)
    packets: list[FramePacket] = field(default_factory=list)
    version: int = _VERSION

    def add_packet(self, packet: FramePacket) -> None:
        self.packets.append(packet)

    def num_bits(self) -> int:
        """Total bits of the serialized stream (container included)."""
        return 8 * len(self.serialize())

    def bits_per_pixel(self, height: int, width: int) -> float:
        frames = max(len(self.packets), 1)
        return self.num_bits() / (frames * height * width)

    def serialize(self) -> bytes:
        if self.version not in _SUPPORTED_VERSIONS:
            raise ValueError(f"unsupported bitstream version {self.version}")
        if self.version == STREAM_VERSION:
            out = bytearray(_stream_header_bytes(self.header))
            for packet in self.packets:
                blob = packet.serialize()
                out.extend(struct.pack("<I", len(blob)))
                out.extend(blob)
            out.extend(_END_OF_STREAM)
            return bytes(out)
        header_blob = json.dumps(
            {"header": self.header, "num_frames": len(self.packets)},
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")
        out = bytearray()
        out.extend(_MAGIC)
        out.extend(struct.pack("<H", self.version))
        out.extend(struct.pack("<I", len(header_blob)))
        out.extend(header_blob)
        for packet in self.packets:
            out.extend(packet.serialize())
        return bytes(out)

    @classmethod
    def parse(cls, buffer: bytes) -> "SequenceBitstream":
        if buffer[:4] != _MAGIC:
            raise ValueError("not an NVCA bitstream (bad magic)")
        (version,) = struct.unpack_from("<H", buffer, 4)
        if version not in _SUPPORTED_VERSIONS:
            raise ValueError(f"unsupported bitstream version {version}")
        (header_len,) = struct.unpack_from("<I", buffer, 6)
        offset = 10
        record = json.loads(buffer[offset : offset + header_len].decode("utf-8"))
        offset += header_len
        stream = cls(header=record["header"], version=version)
        if version == STREAM_VERSION:
            while True:
                if offset + 4 > len(buffer):
                    raise ValueError(
                        "truncated version-3 bitstream "
                        "(missing end-of-stream sentinel)"
                    )
                (size,) = struct.unpack_from("<I", buffer, offset)
                offset += 4
                if size == 0:
                    break
                if offset + size > len(buffer):
                    raise ValueError(
                        "truncated version-3 bitstream "
                        f"(packet of {size} bytes overruns the buffer)"
                    )
                packet, end = FramePacket.parse(buffer, offset)
                if end - offset != size:
                    raise ValueError(
                        f"corrupt version-3 bitstream: packet framed as "
                        f"{size} bytes but its body spans {end - offset}"
                    )
                offset = end
                stream.add_packet(packet)
            return stream
        for _ in range(record["num_frames"]):
            packet, offset = FramePacket.parse(buffer, offset)
            stream.add_packet(packet)
        return stream


def _stream_header_bytes(header: dict) -> bytes:
    """Magic + version 3 + header JSON (no frame count — unknowable
    while encoding live)."""
    blob = json.dumps(
        {"header": header}, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return (
        _MAGIC
        + struct.pack("<H", STREAM_VERSION)
        + struct.pack("<I", len(blob))
        + blob
    )


class StreamWriter:
    """Incremental version-3 container writer over a binary file object.

    Packets leave the process as they are produced — nothing buffers —
    so encode memory is independent of sequence length:

    >>> writer = StreamWriter(fileobj, header)         # doctest: +SKIP
    >>> writer.write_packet(packet)                    # per frame
    >>> writer.finalize()                              # end-of-stream

    The caller owns the file object (``finalize`` writes the
    end-of-stream sentinel but does not close the file).  Used as a
    context manager, ``finalize`` runs on clean exit.
    """

    def __init__(self, fileobj, header: dict | None = None):
        self._file = fileobj
        self._finalized = False
        self.header: dict | None = None
        self.packets_written = 0
        self.bytes_written = 0
        if header is not None:
            self.write_header(header)

    def write_header(self, header: dict) -> int:
        """Write magic/version/header; must happen before any packet."""
        if self.header is not None:
            raise ValueError("stream header already written")
        blob = _stream_header_bytes(header)
        self._file.write(blob)
        self.header = dict(header)
        self.bytes_written += len(blob)
        return len(blob)

    def write_packet(self, packet: FramePacket) -> int:
        """Write one length-prefixed packet; returns its wire size."""
        if self.header is None:
            raise ValueError("write_header must precede write_packet")
        if self._finalized:
            raise ValueError("stream is finalized")
        blob = packet.serialize()
        self._file.write(struct.pack("<I", len(blob)))
        self._file.write(blob)
        self.packets_written += 1
        self.bytes_written += 4 + len(blob)
        return 4 + len(blob)

    def finalize(self) -> int:
        """Write the end-of-stream sentinel; returns total bytes
        written.  Idempotent."""
        if not self._finalized:
            if self.header is None:
                raise ValueError("nothing was written to the stream")
            self._file.write(_END_OF_STREAM)
            self.bytes_written += len(_END_OF_STREAM)
            self._finalized = True
        return self.bytes_written

    def __enter__(self) -> "StreamWriter":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        if exc_type is None:
            self.finalize()


class StreamReader:
    """Incremental container reader: any supported version, packet at
    a time, from a binary file object.

    The header parses on construction (``.header``, ``.version``);
    :meth:`read_packet` returns packets in stream order and ``None`` at
    end of stream.  Version 1/2 files end after the frame count their
    header promised; version-3 files end at the zero-size sentinel.
    Iterating the reader yields every remaining packet.
    """

    def __init__(self, fileobj):
        self._file = fileobj
        magic = _read_exact(fileobj, 4)
        if magic != _MAGIC:
            raise ValueError("not an NVCA bitstream (bad magic)")
        (version,) = struct.unpack("<H", _read_exact(fileobj, 2))
        if version not in _SUPPORTED_VERSIONS:
            raise ValueError(f"unsupported bitstream version {version}")
        (header_len,) = struct.unpack("<I", _read_exact(fileobj, 4))
        record = json.loads(_read_exact(fileobj, header_len).decode("utf-8"))
        self.version = version
        self.header: dict = record["header"]
        #: packets left to read for v1/v2; None means "until sentinel".
        self._remaining = (
            None if version == STREAM_VERSION else int(record["num_frames"])
        )
        self._done = False

    def read_packet(self) -> FramePacket | None:
        """Next packet, or ``None`` once the stream is exhausted."""
        if self._done:
            return None
        if self._remaining is not None:  # versions 1 and 2
            if self._remaining == 0:
                self._done = True
                return None
            self._remaining -= 1
            return FramePacket.read_from(self._file)
        (size,) = struct.unpack("<I", _read_exact(self._file, 4))
        if size == 0:
            self._done = True
            return None
        packet, end = FramePacket.parse(_read_exact(self._file, size), 0)
        if end != size:
            raise ValueError(
                f"corrupt version-3 bitstream: packet framed as {size} "
                f"bytes but its body spans {end}"
            )
        return packet

    def __iter__(self):
        while True:
            packet = self.read_packet()
            if packet is None:
                return
            yield packet
