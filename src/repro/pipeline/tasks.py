"""Task kinds: typed dispatch for distributed job specs.

PR 4's queue layer assumed every job was an encode; this registry
generalizes the on-wire unit of work to *task kinds*.  A job spec is
still one JSON document, but a ``"kind"`` field now names which task it
is — and a spec with **no** ``kind`` field is an ``"encode"`` job, so
every pre-existing queue directory, resume state, and job id keeps
working unchanged.

Four kinds register at import:

* ``"encode"`` — a :class:`~repro.pipeline.Pipeline` run (codec,
  codec_config, scene, ...), hydrating to
  :class:`~repro.pipeline.EncodeReport`.
* ``"hardware"`` — a platform analysis (``platform`` registry name,
  platform ``config``, ``height``/``width``), hydrating to
  :class:`~repro.pipeline.PlatformReport`.
* ``"dse-point"`` — one NVCA design-space point (``label``, ``config``,
  resolution), hydrating to :class:`~repro.hw.DesignPoint`.
* ``"ladder-rendition"`` — one ABR ladder rung: an encode job plus the
  ``rendition`` (resolution + ``target_kbps``) it serves, hydrating to
  :class:`~repro.pipeline.RenditionReport`.

Each kind supplies three functions: ``normalize`` (validate a raw spec
up front — on the submitting side, before anything ships to a pool or
queue — and canonicalize it so content-derived job ids are stable),
``execute`` (spec in, JSON-ready result document out; what
:func:`repro.pipeline.dist.run_worker` runs), and ``hydrate`` (result
document back to a typed report on the aggregating side).  Custom kinds
plug in with :func:`register_task`; like codec and platform
registrations, runtime registrations propagate to thread workers and
``fork``-start processes only (``docs/distributed.md``).

>>> from repro.pipeline import available_tasks
>>> available_tasks()
['dse-point', 'encode', 'hardware', 'ladder-rendition']
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable

from repro.serialization import ConfigError

__all__ = [
    "TaskKind",
    "TaskRegistryError",
    "WorkerContext",
    "available_tasks",
    "get_worker_context",
    "hydrate_result",
    "normalize_spec",
    "register_task",
    "reset_worker_context",
    "run_task",
    "spec_kind",
    "task_kind",
    "unregister_task",
]

#: the kind assumed when a job spec carries no "kind" field — the
#: shape every spec had before task typing existed.
DEFAULT_KIND = "encode"


class TaskRegistryError(ValueError):
    """Registration conflict or unknown-task-kind lookup."""


@dataclass(frozen=True)
class TaskKind:
    """One registry entry: the three phases of a typed job."""

    name: str
    #: raw spec -> validated canonical spec (raises on bad input).
    normalize: Callable[[dict], dict]
    #: canonical spec -> JSON-ready result document (the worker body).
    execute: Callable[[dict], dict]
    #: result document -> typed report object (the aggregating side).
    hydrate: Callable[[dict], Any]
    description: str = ""


_REGISTRY: dict[str, TaskKind] = {}


def register_task(
    name: str,
    *,
    normalize: Callable[[dict], dict],
    execute: Callable[[dict], dict],
    hydrate: Callable[[dict], Any],
    description: str = "",
    overwrite: bool = False,
) -> TaskKind:
    """Register a task kind under ``name``."""
    if not name or not isinstance(name, str):
        raise TaskRegistryError(
            f"task kind must be a non-empty string, got {name!r}"
        )
    if name in _REGISTRY and not overwrite:
        raise TaskRegistryError(
            f"task kind {name!r} is already registered "
            f"({_REGISTRY[name].description!r}); "
            "pass overwrite=True to replace it"
        )
    kind = TaskKind(
        name=name,
        normalize=normalize,
        execute=execute,
        hydrate=hydrate,
        description=description,
    )
    _REGISTRY[name] = kind
    return kind


def unregister_task(name: str) -> None:
    """Remove a registration (mainly for tests and plugin teardown)."""
    _REGISTRY.pop(name, None)


def available_tasks() -> list[str]:
    """Sorted names of every registered task kind."""
    return sorted(_REGISTRY)


def task_kind(name: str) -> TaskKind:
    """Look up a registry entry, with a helpful unknown-name error."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise TaskRegistryError(
            f"unknown task kind {name!r}; available: "
            f"{', '.join(available_tasks())}"
        ) from None


def spec_kind(spec: dict) -> str:
    """The task kind a job spec names (missing ``kind`` = encode)."""
    if not isinstance(spec, dict):
        raise TaskRegistryError(
            f"job spec must be a mapping, got {type(spec).__name__}"
        )
    kind = spec.get("kind", DEFAULT_KIND)
    if not isinstance(kind, str):
        raise TaskRegistryError(
            f"job spec 'kind' must be a string, got {type(kind).__name__}"
        )
    return kind


def normalize_spec(spec: dict) -> dict:
    """Validate and canonicalize one job spec, whatever its kind.

    This is the up-front check every submission path runs *before* a
    job reaches a pool or queue, so a typo'd codec, platform, or task
    name is one clear ``ValueError`` on the submitting side instead of
    a worker traceback mid-sweep.
    """
    return task_kind(spec_kind(spec)).normalize(spec)


def run_task(spec: dict) -> dict:
    """Execute one job spec to its result document (the worker body)."""
    return task_kind(spec_kind(spec)).execute(spec)


def hydrate_result(spec: dict, result: dict) -> Any:
    """Turn a worker's result document back into the typed report the
    spec's kind produces."""
    return task_kind(spec_kind(spec)).hydrate(result)


# -- the warm-worker cache --------------------------------------------------
class WorkerContext:
    """Per-process cache of the expensive-to-build, cheap-to-reuse
    pieces of a job: codec instances and rendered scene frames.

    A cold worker pays codec construction (model tables, entropy
    backends) and frame synthesis for *every* job; a warm worker pays
    once per distinct config.  Keys are canonical JSON of the codec
    config / scene config, so two specs that normalize identically
    share an entry.  Both caches are LRU-bounded, and ``stats()``
    exposes the hit/miss split (BENCH records it as the warm/cold
    ratio).

    Reuse is only sound because codecs are deterministic and
    stateless across ``encode_sequence`` calls — a property the
    distributed parity tests pin (serial runs build fresh codecs, warm
    workers reuse them, and the aggregated results must stay
    byte-identical).  Cached frames are returned as per-frame copies so
    an in-place consumer can never corrupt the cache.
    """

    def __init__(self, *, max_codecs: int = 32, max_scenes: int = 8):
        self._codecs: OrderedDict[str, Any] = OrderedDict()
        self._scenes: OrderedDict[str, list] = OrderedDict()
        self._max_codecs = int(max_codecs)
        self._max_scenes = int(max_scenes)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _key(document: dict) -> str:
        return json.dumps(document, sort_keys=True, separators=(",", ":"))

    @staticmethod
    def _count(resource: str, outcome: str) -> None:
        from repro.obs.metrics import get_registry

        get_registry().counter(
            "repro_warm_cache_total",
            "warm-worker cache lookups by resource and outcome",
        ).inc(resource=resource, outcome=outcome)

    def codec(self, name: str, config) -> Any:
        """The cached codec instance for ``(name, config)``, building
        one on first use."""
        from .registry import create_codec

        config_doc = config.to_dict() if hasattr(config, "to_dict") else config
        key = f"{name}\x00{self._key(dict(config_doc or {}))}"
        with self._lock:
            if key in self._codecs:
                self._codecs.move_to_end(key)
                self.hits += 1
                self._count("codec", "hit")
                return self._codecs[key]
            self.misses += 1
            self._count("codec", "miss")
        built = create_codec(name, config)
        with self._lock:
            self._codecs[key] = built
            while len(self._codecs) > self._max_codecs:
                self._codecs.popitem(last=False)
        return built

    def frames(self, scene, *, loader=None) -> list:
        """Rendered frames for ``scene`` (per-frame copies of the
        cached originals).  ``loader`` overrides how a cache miss is
        filled — the shared-memory transport uses it to attach a
        segment instead of re-synthesizing."""
        scene_doc = scene.to_dict() if hasattr(scene, "to_dict") else scene
        key = self._key(dict(scene_doc))
        with self._lock:
            cached = self._scenes.get(key)
            if cached is not None:
                self._scenes.move_to_end(key)
                self.hits += 1
                self._count("scene", "hit")
                return [frame.copy() for frame in cached]
            self.misses += 1
            self._count("scene", "miss")
        rendered = None
        if loader is not None:
            rendered = loader()
        if rendered is None:
            from repro.video import SceneConfig, generate_sequence

            if isinstance(scene, dict):
                scene = SceneConfig.from_dict(scene)
            rendered = generate_sequence(scene)
        with self._lock:
            self._scenes[key] = rendered
            while len(self._scenes) > self._max_scenes:
                self._scenes.popitem(last=False)
        return [frame.copy() for frame in rendered]

    def stats(self) -> dict:
        """Hit/miss counters and cache occupancy (JSON-ready)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "codecs": len(self._codecs),
                "scenes": len(self._scenes),
            }

    def clear(self) -> None:
        with self._lock:
            self._codecs.clear()
            self._scenes.clear()
            self.hits = 0
            self.misses = 0


_WORKER_CONTEXT = WorkerContext()


def get_worker_context() -> WorkerContext:
    """This process's warm cache (what the execute paths use)."""
    return _WORKER_CONTEXT


def reset_worker_context() -> None:
    """Empty the process cache (tests; cold-start benchmarking)."""
    _WORKER_CONTEXT.clear()


# -- "encode" ---------------------------------------------------------------
#: transport-only spec fields: annotations a runner may attach for the
#: worker's benefit that are *not* part of the job's identity — they
#: are stripped before hashing, validation, and execution semantics.
TRANSPORT_FIELDS = ("frames_shm",)


def strip_transport_fields(spec: dict) -> dict:
    """Copy of ``spec`` without transport annotations (job identity)."""
    return {k: v for k, v in spec.items() if k not in TRANSPORT_FIELDS}


def _strip_kind(spec: dict) -> dict:
    return {k: v for k, v in spec.items() if k != "kind"}


def _shm_loader(descriptor):
    """A :meth:`WorkerContext.frames` loader that attaches a shared
    frame segment, or ``None`` (fall back to synthesis) when the
    segment is unreachable — a remote/HTTP worker, or a runner that
    already tore the segment down."""
    if descriptor is None:
        return None

    def load():
        from repro.pipeline.dist.shm import attach_frames

        return attach_frames(descriptor)

    return load


def _warm_encode_session(pipeline, shm_descriptor=None):
    """An :class:`~repro.pipeline.facade.EncodeSession` with its codec
    (and, for real codecs, its frames) injected from the worker
    cache."""
    context = get_worker_context()
    session = pipeline.session()
    session.codec = context.codec(pipeline.codec, pipeline.codec_config)
    if not hasattr(session.codec, "simulate"):
        session.frames = context.frames(
            pipeline.scene, loader=_shm_loader(shm_descriptor)
        )
    return session


def _normalize_encode(spec: dict) -> dict:
    # Canonical form carries no "kind" (and no transport annotations):
    # byte-identical to every job document written before task typing,
    # so content-derived ids (and therefore --resume against old queue
    # directories) are stable.
    from .facade import Pipeline

    return Pipeline.from_dict(_strip_kind(strip_transport_fields(spec))).to_dict()


def _execute_encode(spec: dict) -> dict:
    from .facade import Pipeline

    shm_descriptor = spec.get("frames_shm")
    pipeline = Pipeline.from_dict(_strip_kind(strip_transport_fields(spec)))
    report = _warm_encode_session(pipeline, shm_descriptor).run()
    report.hardware = pipeline.run_hardware() if pipeline.hardware else None
    return report.to_dict()


def _hydrate_encode(result: dict):
    from .reports import EncodeReport

    return EncodeReport.from_dict(result)


# -- "hardware" -------------------------------------------------------------
_HARDWARE_FIELDS = ("kind", "platform", "config", "height", "width")


def _check_fields(spec: dict, known: tuple[str, ...], kind: str) -> None:
    unknown = sorted(set(spec) - set(known))
    if unknown:
        raise ConfigError(
            f"{kind} job spec: unknown field(s) {', '.join(unknown)}; "
            f"valid fields: {', '.join(known)}"
        )


def _resolution(spec: dict, kind: str) -> tuple[int, int]:
    height = spec.get("height", 1080)
    width = spec.get("width", 1920)
    for label, value in (("height", height), ("width", width)):
        if not isinstance(value, int) or isinstance(value, bool) or value < 1:
            raise ConfigError(
                f"{kind} job spec: {label} must be a positive int, "
                f"got {value!r}"
            )
    return height, width


def _platform_config(spec: dict, kind: str):
    """Resolve (platform name, canonical config dict), validating the
    name against the platform registry up front."""
    from .platforms import platform_entry

    platform = spec.get("platform", "nvca")
    entry = platform_entry(platform)  # raises listing what is available
    config = spec.get("config")
    if config is None:
        config = entry.config_cls()
    elif isinstance(config, dict):
        config = entry.config_cls.from_dict(config)
    elif not isinstance(config, entry.config_cls):
        raise ConfigError(
            f"{kind} job spec: platform {platform!r} expects a "
            f"{entry.config_cls.__name__} config, got {type(config).__name__}"
        )
    return platform, entry, config


def _normalize_hardware(spec: dict) -> dict:
    _check_fields(spec, _HARDWARE_FIELDS, "hardware")
    platform, _, config = _platform_config(spec, "hardware")
    height, width = _resolution(spec, "hardware")
    return {
        "kind": "hardware",
        "platform": platform,
        "config": config.to_dict(),
        "height": height,
        "width": width,
    }


def _execute_hardware(spec: dict) -> dict:
    from .platforms import create_platform

    model = create_platform(spec.get("platform", "nvca"), spec.get("config"))
    height, width = _resolution(spec, "hardware")
    return model.analyze(height, width).to_dict()


def _hydrate_hardware(result: dict):
    from .reports import PlatformReport

    return PlatformReport.from_dict(result)


# -- "dse-point" ------------------------------------------------------------
_DSE_FIELDS = ("kind", "label", "platform", "config", "height", "width")


def _normalize_dse_point(spec: dict) -> dict:
    from repro.hw import NVCAConfig

    _check_fields(spec, _DSE_FIELDS, "dse-point")
    platform, entry, config = _platform_config(spec, "dse-point")
    if not (
        isinstance(entry.config_cls, type)
        and issubclass(entry.config_cls, NVCAConfig)
    ):
        raise ConfigError(
            f"dse-point job spec: platform {platform!r} is a fixed "
            "reference platform with no design space; DSE needs a "
            "modeled platform ('nvca')"
        )
    height, width = _resolution(spec, "dse-point")
    label = spec.get("label")
    if label is None:
        label = (
            f"{config.pif}x{config.pof}@rho={config.rho:.2f}"
            f"@{config.frequency_mhz:g}MHz"
        )
    elif not isinstance(label, str) or not label:
        raise ConfigError(
            f"dse-point job spec: label must be a non-empty string, "
            f"got {label!r}"
        )
    return {
        "kind": "dse-point",
        "label": label,
        "platform": platform,
        "config": config.to_dict(),
        "height": height,
        "width": width,
    }


def _execute_dse_point(spec: dict) -> dict:
    from .platforms import create_platform

    model = create_platform(spec.get("platform", "nvca"), spec.get("config"))
    height, width = _resolution(spec, "dse-point")
    return model.design_point(height, width, spec["label"]).to_dict()


def _hydrate_dse_point(result: dict):
    from repro.hw import DesignPoint

    return DesignPoint.from_dict(result)


# -- "ladder-rendition" -----------------------------------------------------
_LADDER_FIELDS = (
    "kind",
    "codec",
    "codec_config",
    "scene",
    "compute_msssim",
    "hardware",
    "rendition",
)


def _ladder_parts(spec: dict):
    """Split a ladder-rendition spec into (Rendition, encode sub-spec),
    cross-checking that the encode job actually serves the rung."""
    from .facade import Pipeline
    from .ladder import Rendition

    spec = strip_transport_fields(spec)
    _check_fields(spec, _LADDER_FIELDS, "ladder-rendition")
    if "rendition" not in spec:
        raise ConfigError(
            "ladder-rendition job spec needs a 'rendition' mapping "
            "(height, width, target_kbps)"
        )
    rendition = Rendition.from_dict(spec["rendition"])
    encode = {k: v for k, v in spec.items() if k not in ("kind", "rendition")}
    pipeline = Pipeline.from_dict(encode)
    scene = pipeline.scene
    if (scene.height, scene.width) != (rendition.height, rendition.width):
        raise ConfigError(
            f"ladder-rendition job spec: scene is "
            f"{scene.width}x{scene.height} but the rendition says "
            f"{rendition.width}x{rendition.height}"
        )
    target = pipeline.codec_config.to_dict().get("target_kbps")
    if target != rendition.target_kbps:
        raise ConfigError(
            f"ladder-rendition job spec: codec_config target_kbps is "
            f"{target!r} but the rendition says {rendition.target_kbps}"
        )
    return rendition, pipeline


def _normalize_ladder_rendition(spec: dict) -> dict:
    rendition, pipeline = _ladder_parts(spec)
    return {
        "kind": "ladder-rendition",
        "rendition": rendition.to_dict(),
        **pipeline.to_dict(),
    }


def _execute_ladder_rendition(spec: dict) -> dict:
    shm_descriptor = spec.get("frames_shm")
    _, pipeline = _ladder_parts(spec)
    report = _warm_encode_session(pipeline, shm_descriptor).run()
    report.hardware = pipeline.run_hardware() if pipeline.hardware else None
    return {
        "rendition": dict(spec["rendition"]),
        "encode": report.to_dict(),
    }


def _hydrate_ladder_rendition(result: dict):
    from .ladder import RenditionReport

    return RenditionReport.from_result(result)


# -- built-in registrations -------------------------------------------------
register_task(
    "encode",
    normalize=_normalize_encode,
    execute=_execute_encode,
    hydrate=_hydrate_encode,
    description="one Pipeline encode/decode/measure run -> EncodeReport",
)
register_task(
    "hardware",
    normalize=_normalize_hardware,
    execute=_execute_hardware,
    hydrate=_hydrate_hardware,
    description="one platform analysis -> PlatformReport",
)
register_task(
    "dse-point",
    normalize=_normalize_dse_point,
    execute=_execute_dse_point,
    hydrate=_hydrate_dse_point,
    description="one NVCA design-space point -> DesignPoint",
)
register_task(
    "ladder-rendition",
    normalize=_normalize_ladder_rendition,
    execute=_execute_ladder_rendition,
    hydrate=_hydrate_ladder_rendition,
    description="one ABR ladder rung encode -> RenditionReport",
)
