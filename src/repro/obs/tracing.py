"""Tracing spans and the flight recorder.

:func:`span` is a context manager producing nested :class:`Span`
records: monotonic start/duration, a parent id taken from the
enclosing span on the same thread, and the current job id (set by the
worker loop around each job, so every span coded under a job carries
it).  Finished spans land in the process :class:`FlightRecorder` — a
fixed-size ring buffer that dumps its last N spans as JSONL on demand
or when a worker hits an error, and hands *new-since-last-drain*
spans to the heartbeat so the queue server can keep a fleet-wide tail
(``GET /trace``).

The whole layer sits behind one switch.  Disabled (the default),
:func:`span` returns a shared no-op context manager — one function
call and a truthiness check, no allocation, no clock read — which is
what keeps instrumented hot paths at ~zero cost until someone turns
tracing on (:func:`enable`, the ``REPRO_OBS_TRACE=1`` environment
variable, or a CLI ``--trace-out``).  Per-stage codec timers use the
same switch through :func:`encode_stage_timer`.

>>> enable()
>>> with span("encode.frame", frame_type="I") as s:
...     with span("classical.transform"):
...         pass
>>> spans = get_recorder().tail(2)
>>> [s["name"] for s in spans]
['classical.transform', 'encode.frame']
>>> spans[0]["parent_id"] == spans[1]["span_id"]
True
>>> enable(False)
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque

from .metrics import get_registry

__all__ = [
    "FlightRecorder",
    "Span",
    "critical_path",
    "current_job_id",
    "drain_spans",
    "enable",
    "enabled",
    "encode_stage_timer",
    "get_recorder",
    "load_trace",
    "render_trace_tree",
    "set_job_id",
    "span",
    "trace_meta",
]

#: default ring capacity of the process flight recorder.
DEFAULT_CAPACITY = 2048


class _State:
    __slots__ = ("enabled",)

    def __init__(self, enabled: bool):
        self.enabled = enabled


_STATE = _State(os.environ.get("REPRO_OBS_TRACE", "") not in ("", "0"))
_IDS = itertools.count(1)
_TLS = threading.local()


def enabled() -> bool:
    """Is span recording (and per-stage codec timing) on?"""
    return _STATE.enabled


def enable(flag: bool = True) -> None:
    """Flip the tracing switch for this process."""
    _STATE.enabled = bool(flag)


def _stack() -> list:
    stack = getattr(_TLS, "stack", None)
    if stack is None:
        stack = _TLS.stack = []
    return stack


def current_job_id() -> str | None:
    """Job id attached to spans on this thread (``None`` outside a
    job)."""
    return getattr(_TLS, "job_id", None)


def set_job_id(job_id: str | None) -> None:
    """Tag subsequent spans on this thread with ``job_id`` (the worker
    loop sets it around each job and clears it after)."""
    _TLS.job_id = job_id


def _new_span_id() -> str:
    return f"{os.getpid():x}-{next(_IDS):x}"


def trace_meta() -> dict:
    """The ``kind="meta"`` header row trace files start with: which
    build and which process produced the spans that follow."""
    import repro

    return {
        "kind": "meta",
        "version": getattr(repro, "__version__", "unknown"),
        "pid": os.getpid(),
    }


class Span:
    """One live span; ``attrs`` may be extended inside the block."""

    __slots__ = ("name", "span_id", "parent_id", "job_id", "attrs",
                 "start_unix", "_t0", "dur_s")

    def __init__(self, name: str, attrs: dict):
        self.name = name
        self.attrs = attrs
        self.span_id = _new_span_id()
        self.parent_id = None
        self.job_id = None
        self.start_unix = 0.0
        self.dur_s = 0.0
        self._t0 = 0.0

    def __enter__(self) -> "Span":
        stack = _stack()
        if stack:
            self.parent_id = stack[-1].span_id
        self.job_id = current_job_id()
        stack.append(self)
        self.start_unix = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.dur_s = time.perf_counter() - self._t0
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        if exc_type is not None:
            self.attrs = dict(self.attrs)
            self.attrs["error"] = exc_type.__name__
        get_recorder().record(self.to_dict())
        return False

    def to_dict(self) -> dict:
        record = {
            "kind": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "job_id": self.job_id,
            "start_unix": self.start_unix,
            "dur_s": self.dur_s,
        }
        if self.attrs:
            record["attrs"] = {k: v for k, v in self.attrs.items()}
        return record


class _NullSpan:
    """Shared no-op context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


def span(name: str, **attrs):
    """Open a span named ``name``; a no-op while tracing is off."""
    if not _STATE.enabled:
        return _NULL_SPAN
    return Span(name, attrs)


class FlightRecorder:
    """Fixed-size ring of finished span records.

    ``tail`` reads the newest records, ``drain`` hands back (and
    forgets) everything recorded since the previous drain — the
    heartbeat's increment — and ``dump`` writes a JSONL file headed by
    a :func:`trace_meta` row, the format ``repro trace`` renders.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._ring: deque = deque(maxlen=self.capacity)
        self._fresh: deque = deque(maxlen=self.capacity)

    def record(self, record: dict) -> None:
        with self._lock:
            self._ring.append(record)
            self._fresh.append(record)

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def tail(self, n: int | None = None) -> list[dict]:
        """The newest ``n`` records, oldest first (all when ``None``)."""
        with self._lock:
            records = list(self._ring)
        return records if n is None else records[-int(n):]

    def drain(self) -> list[dict]:
        """Records added since the last drain (bounded by capacity)."""
        with self._lock:
            fresh = list(self._fresh)
            self._fresh.clear()
        return fresh

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self._fresh.clear()

    def dump(self, path, limit: int | None = None) -> int:
        """Write the last ``limit`` spans (all by default) as JSONL,
        one :func:`trace_meta` header row first.  Returns the number
        of span rows written."""
        records = self.tail(limit)
        with open(path, "w", encoding="utf-8") as out:
            out.write(json.dumps(trace_meta(), sort_keys=True) + "\n")
            for record in records:
                out.write(json.dumps(record, sort_keys=True) + "\n")
        return len(records)


_RECORDER = FlightRecorder()


def get_recorder() -> FlightRecorder:
    """The process flight recorder every finished span lands in."""
    return _RECORDER


def drain_spans() -> list[dict]:
    """New spans since the last heartbeat (empty while tracing is
    off — the common case costs one attribute check)."""
    if not _STATE.enabled:
        return []
    return _RECORDER.drain()


_STAGE_HIST: tuple = (None, None)


def _stage_histogram():
    """The per-stage histogram, resolved once per registry — laps are
    the hottest metrics call site, so they skip the by-name lookup
    (and re-resolve if :func:`~repro.obs.metrics.reset_registry`
    swapped the global registry out underneath)."""
    global _STAGE_HIST
    registry = get_registry()
    cached_registry, histogram = _STAGE_HIST
    if cached_registry is not registry:
        histogram = registry.histogram(
            "repro_encode_stage_seconds",
            "per-plane codec stage time (transform/quantize/entropy)",
        )
        _STAGE_HIST = (registry, histogram)
    return histogram


class _StageTimer:
    """Per-stage codec timing: each :meth:`lap` closes one stage,
    recording a span and a ``repro_encode_stage_seconds`` histogram
    observation labelled by codec and stage."""

    __slots__ = ("codec", "parent_id", "job_id", "_last")

    def __init__(self, codec: str):
        self.codec = codec
        stack = _stack()
        self.parent_id = stack[-1].span_id if stack else None
        self.job_id = current_job_id()
        self._last = time.perf_counter()

    def lap(self, stage: str) -> float:
        now = time.perf_counter()
        dur = now - self._last
        self._last = now
        _stage_histogram().observe(dur, codec=self.codec, stage=stage)
        _RECORDER.record(
            {
                "kind": "span",
                "name": f"{self.codec}.{stage}",
                "span_id": _new_span_id(),
                "parent_id": self.parent_id,
                "job_id": self.job_id,
                "start_unix": time.time() - dur,
                "dur_s": dur,
            }
        )
        return dur


def encode_stage_timer(codec: str) -> _StageTimer | None:
    """A :class:`_StageTimer` while tracing is on, else ``None`` — the
    hot path guards each lap with a plain truthiness check."""
    if not _STATE.enabled:
        return None
    return _StageTimer(codec)


# -- trace files: loading and rendering (the ``repro trace`` view) ----------
def load_trace(path) -> tuple[dict | None, list[dict]]:
    """Read a flight-recorder JSONL file; returns ``(meta, spans)``.

    ``meta`` is the leading ``kind="meta"`` row when present (build
    version, pid), ``spans`` every span row in file order.  Malformed
    lines raise :class:`ValueError` naming the line number.
    """
    meta = None
    spans: list[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSONL ({exc})")
            if not isinstance(record, dict):
                raise ValueError(f"{path}:{lineno}: span rows are objects")
            if record.get("kind") == "meta":
                meta = record
            else:
                spans.append(record)
    return meta, spans


def _fmt_ms(seconds: float) -> str:
    ms = float(seconds) * 1000.0
    return f"{ms:.2f}ms" if ms < 10 else f"{ms:.1f}ms"


def _children_index(spans: list[dict]) -> tuple[list[dict], dict]:
    """Roots (orphans included) plus a parent-id -> children map, both
    in record order (the recorder preserves completion order; sorting
    by start keeps renders stable)."""
    by_id = {s.get("span_id"): s for s in spans if s.get("span_id")}
    children: dict = {}
    roots: list[dict] = []
    for s in spans:
        parent = s.get("parent_id")
        if parent and parent in by_id:
            children.setdefault(parent, []).append(s)
        else:
            roots.append(s)
    for kids in children.values():
        kids.sort(key=lambda s: s.get("start_unix", 0.0))
    roots.sort(key=lambda s: s.get("start_unix", 0.0))
    return roots, children


def _span_label(s: dict) -> str:
    label = str(s.get("name", "?"))
    job = s.get("job_id")
    if job:
        label += f"  [{job}]"
    attrs = s.get("attrs") or {}
    if attrs:
        body = " ".join(f"{k}={attrs[k]}" for k in sorted(attrs))
        label += f"  ({body})"
    return label


def render_trace_tree(spans: list[dict], *, max_roots: int | None = None) -> str:
    """ASCII tree of spans nested by parent id, durations on every
    row — what ``repro trace`` prints."""
    roots, children = _children_index(spans)
    shown = roots if max_roots is None else roots[-int(max_roots):]
    lines: list[str] = []

    def walk(s: dict, prefix: str, tail: bool, top: bool) -> None:
        if top:
            head = ""
        else:
            head = prefix + ("└─ " if tail else "├─ ")
        lines.append(f"{head}{_span_label(s)}  {_fmt_ms(s.get('dur_s', 0.0))}")
        kids = children.get(s.get("span_id"), [])
        for i, kid in enumerate(kids):
            deeper = "" if top else prefix + ("   " if tail else "│  ")
            walk(kid, deeper, i == len(kids) - 1, False)

    for root in shown:
        walk(root, "", True, True)
    if max_roots is not None and len(roots) > len(shown):
        lines.append(f"... ({len(roots) - len(shown)} earlier roots elided)")
    return "\n".join(lines)


def critical_path(spans: list[dict]) -> list[dict]:
    """The longest chain: from the slowest root, repeatedly descend
    into the slowest child.  Returns the chain's span records, root
    first (empty for an empty trace)."""
    roots, children = _children_index(spans)
    if not roots:
        return []
    node = max(roots, key=lambda s: s.get("dur_s", 0.0))
    path = [node]
    while True:
        kids = children.get(node.get("span_id"), [])
        if not kids:
            return path
        node = max(kids, key=lambda s: s.get("dur_s", 0.0))
        path.append(node)
