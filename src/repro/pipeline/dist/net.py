"""Network job transport: the :class:`JobQueue` protocol over HTTP.

This module is the seam that turns the distributed layer from "worker
processes sharing a filesystem" into a service.  It adds no third
dependency to the claim/lease/ack protocol — just a wire:

* :class:`QueueServer` — a long-lived daemon built on the stdlib
  :mod:`http.server` (``ThreadingHTTPServer``) exposing a backing
  :class:`~repro.pipeline.dist.queues.JobQueue` — in-memory or
  directory-backed, so durable state and ``--resume`` keep working —
  as JSON-over-HTTP endpoints.  ``repro serve`` runs one.
* :class:`HttpJobQueue` — a client implementing the full
  :class:`~repro.pipeline.dist.queues.JobQueue` protocol over that
  wire, with per-thread connection reuse (HTTP/1.1 keep-alive),
  request timeouts, and bounded exponential-backoff retries on
  connection errors.  Because it *is* a ``JobQueue``,
  :class:`~repro.pipeline.dist.sweep.QueueRunner`,
  :class:`~repro.pipeline.dist.sweep.SweepRunner`,
  :class:`~repro.pipeline.dse.DSERunner`, and
  :func:`~repro.pipeline.dist.worker.run_worker` all work over the
  network unchanged.
* :func:`http_worker_entry` — the process/remote-host entry point:
  ``repro worker --queue-url http://host:port`` on any machine that
  can reach the server joins the fleet, no shared filesystem needed.

Results drain **incrementally**: the ``/results`` endpoint is
paginated (lexicographic job-id cursor), and the runner consumes pages
as jobs finish instead of asking the server to buffer every report
into one response — see ``QueueRunner``'s drain loop.

## Wire schema

Every endpoint speaks JSON.  ``POST`` bodies are JSON objects; ``GET``
parameters ride in the query string.  Success is HTTP 200 with a JSON
body; a malformed request is 400, an unknown endpoint 404, an internal
failure 500 — all with ``{"error": ...}``.

| endpoint          | request                                      | response |
|-------------------|----------------------------------------------|----------|
| ``POST /submit``  | ``{"spec": {...}, "job_id": "..."}``         | ``{"job_id": "..."}`` |
| ``POST /claim``   | ``{"worker_id": "...", "lease_seconds": s}`` | ``{"job": null | {"job_id", "spec", "attempts"}}`` |
| ``POST /claim`` (batch) | ``{"worker_id", "lease_seconds", "batch": n}`` | ``{"jobs": [{"job_id", "spec", "attempts"}, ...], "job": first | null}`` |
| ``POST /ack``     | ``{"job_id", "result", "worker_id"?}``       | ``{"accepted": bool}`` |
| ``POST /fail``    | ``{"job_id", "error"}``                      | ``{"ok": true}`` |
| ``POST /reap``    | ``{}``                                       | ``{"reaped": [ids]}`` |
| ``GET /attempts`` | ``?job_id=<id>``                             | ``{"attempts": n}`` |
| ``POST /heartbeat`` | worker heartbeat document                  | ``{"ok": true}`` |
| ``GET /stats``    | —                                            | ``{"pending", "claimed", "done", "failed", "workers"}`` |
| ``GET /metrics``  | —                                            | fleet-merged metrics, Prometheus text |
| ``GET /trace``    | ``?limit=<n>``                               | fleet flight-recorder tail, JSONL |
| ``GET /finished`` | —                                            | ``{"finished": [ids]}`` |
| ``GET /results``  | ``?after=<id>&limit=<n>``                    | ``{"results": {id: doc}, "next": id | null}`` |
| ``GET /failures`` | —                                            | ``{"failures": {id: error}}`` |
| ``GET /failure-details`` | —                                     | ``{"failures": {id: {"error", "attempts", "spec", "quarantined"?}}}`` |
| ``POST /retry``   | ``{"job_id": "..."}``                        | ``{"retried": bool}`` |
| ``POST /quarantine`` | ``{"job_id": "...", "reason"?: "..."}``   | ``{"quarantined": bool}`` |
| ``GET /health``   | —                                            | ``{"ok": true, "backend": "..."}`` |

Semantics are exactly the queue protocol's (``docs/distributed.md``):
at-least-once with idempotent submission and stale-ack rejection.
``/submit`` in particular is **idempotent server-side**: resubmitting
a job id that is already pending, claimed, done, or failed is a 200
no-op returning the id — which is what makes the client's
connection-error retry of ``/submit`` safe (a lost *response* just
resubmits, and the queue keeps the original job).  One
transport-specific caveat: a retried ``/claim`` whose first attempt
succeeded server-side but whose response was lost can leave an
orphaned lease — it expires and is reaped like any dead worker's.

Request hardening: a body that is not a JSON object, an unparseable or
negative ``Content-Length``, or a body larger than 16 MiB is a clean
400 ``{"error": ...}`` (never an unhandled traceback in the handler
thread), and the connection is closed so a half-sent oversized body
cannot poison the next keep-alive request.

## Observability

The two text endpoints break the JSON rule on purpose — they speak the
formats their consumers already parse.  ``GET /metrics`` is Prometheus
text exposition: the server merges the metric snapshots workers ship
as the optional ``"metrics"`` field of their heartbeats (counters and
histograms sum across the fleet; a pruned worker's last snapshot folds
into a retired accumulator so fleet counters never regress), its own
process registry, and live queue-depth gauges.  ``GET /trace`` is the
fleet flight recorder: span records shipped as the optional
``"spans"`` heartbeat field land in a bounded ring, and the endpoint
returns the newest ``limit`` of them as JSONL (a ``kind="meta"``
header row first) — the same format ``repro trace`` renders.  Both
heartbeat fields are optional; a pre-observability worker's heartbeat
is still valid.  See ``docs/observability.md``.
"""

from __future__ import annotations

import http.client
import json
import logging
import threading
import time
import traceback
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlencode, urlsplit

from repro.obs.metrics import (
    MetricsRegistry,
    get_registry,
    merge_snapshots,
    render_prometheus,
)
from repro.obs.tracing import trace_meta

from .queues import Job, JobQueue, QueueStats
from .worker import Heartbeat, default_worker_id, run_worker

__all__ = [
    "HttpJobQueue",
    "HttpQueueError",
    "QueueServer",
    "http_worker_entry",
]

_LOG = logging.getLogger(__name__)

#: hard cap on POST bodies — far above any job spec or result document,
#: far below anything that could exhaust a handler thread.
_MAX_BODY_BYTES = 16 * 1024 * 1024


class HttpQueueError(RuntimeError):
    """The queue server rejected a request or cannot be reached."""


# -- server -----------------------------------------------------------------
def _ep_health(server: "QueueServer", body: dict) -> dict:
    return {"ok": True, "backend": type(server.queue).__name__}


def _ep_submit(server: "QueueServer", body: dict) -> dict:
    # Idempotent by the queue protocol: an id already pending, claimed,
    # done, or failed is a no-op returning the id, so a client retrying
    # a lost /submit response can never double-submit.
    job_id = server.queue.submit(dict(body["spec"]), job_id=str(body["job_id"]))
    return {"job_id": job_id}


def _ep_claim(server: "QueueServer", body: dict) -> dict:
    worker_id = str(body["worker_id"])
    lease_seconds = float(body.get("lease_seconds", 60.0))
    batch = int(body.get("batch", 1))
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    if batch > 1:
        # Bundle claim: one request, up to ``batch`` jobs, one shared
        # lease deadline.  ``"job"`` carries the first job so an old
        # client pointed at a new server still works.
        if hasattr(server.queue, "claim_batch"):
            jobs = server.queue.claim_batch(
                worker_id, lease_seconds=lease_seconds, limit=batch
            )
        else:  # custom backing queue without bundling: loop single claims
            jobs = []
            while len(jobs) < batch:
                job = server.queue.claim(worker_id, lease_seconds=lease_seconds)
                if job is None:
                    break
                jobs.append(job)
        documents = [
            {"job_id": j.job_id, "spec": j.spec, "attempts": j.attempts}
            for j in jobs
        ]
        return {"jobs": documents, "job": documents[0] if documents else None}
    job = server.queue.claim(worker_id, lease_seconds=lease_seconds)
    if job is None:
        return {"job": None}
    return {
        "job": {"job_id": job.job_id, "spec": job.spec, "attempts": job.attempts}
    }


def _ep_ack(server: "QueueServer", body: dict) -> dict:
    worker_id = body.get("worker_id")
    accepted = server.queue.ack(
        str(body["job_id"]),
        dict(body["result"]),
        worker_id=None if worker_id is None else str(worker_id),
    )
    # a pre-stale-ack custom queue may return None; that meant accepted
    return {"accepted": True if accepted is None else bool(accepted)}


def _ep_fail(server: "QueueServer", body: dict) -> dict:
    server.queue.fail(str(body["job_id"]), str(body["error"]))
    return {"ok": True}


def _ep_reap(server: "QueueServer", body: dict) -> dict:
    return {"reaped": list(server.queue.reap_expired())}


def _ep_attempts(server: "QueueServer", body: dict) -> dict:
    if "job_ids" in body:
        # Bulk form: one round-trip for a whole sweep's counters, so
        # the runner's poison breaker costs O(1) requests per check
        # instead of one per unfinished job.
        ids = [j for j in str(body["job_ids"]).split(",") if j]
        if not hasattr(server.queue, "attempts"):
            return {"attempts_map": {job_id: 0 for job_id in ids}}
        return {
            "attempts_map": {
                job_id: int(server.queue.attempts(job_id)) for job_id in ids
            }
        }
    if not hasattr(server.queue, "attempts"):
        return {"attempts": 0}  # custom queue without the counter
    return {"attempts": int(server.queue.attempts(str(body["job_id"])))}


def _ep_heartbeat(server: "QueueServer", body: dict) -> dict:
    server.record_heartbeat(body)
    return {"ok": True}


def _ep_stats(server: "QueueServer", body: dict) -> dict:
    stats = server.queue.stats()
    return {
        "pending": stats.pending,
        "claimed": stats.claimed,
        "done": stats.done,
        "failed": stats.failed,
        "workers": server.fleet(),
    }


def _ep_metrics(server: "QueueServer", body: dict) -> dict:
    # Prometheus text, not JSON: the ``_text`` key routes the response
    # through the handler's plain-text path.
    return {
        "_text": server.metrics_text(),
        "_content_type": "text/plain; version=0.0.4",
    }


def _ep_trace(server: "QueueServer", body: dict) -> dict:
    limit = int(body.get("limit", 256))
    if limit < 1:
        raise ValueError(f"limit must be >= 1, got {limit}")
    return {
        "_text": server.trace_text(limit),
        "_content_type": "application/jsonlines",
    }


def _ep_finished(server: "QueueServer", body: dict) -> dict:
    return {"finished": sorted(server.queue.finished_ids())}


def _ep_results(server: "QueueServer", body: dict) -> dict:
    after = body.get("after") or None
    limit = int(body.get("limit", 100))
    if hasattr(server.queue, "results_page"):
        page, cursor = server.queue.results_page(after=after, limit=limit)
    else:  # custom queue without pagination: slice its full dict
        everything = server.queue.results()
        ids = sorted(
            job_id for job_id in everything
            if after is None or job_id > after
        )[:limit]
        page = {job_id: everything[job_id] for job_id in ids}
        cursor = ids[-1] if ids else None
    return {"results": page, "next": cursor}


def _ep_failures(server: "QueueServer", body: dict) -> dict:
    return {"failures": dict(server.queue.failures())}


def _ep_failure_details(server: "QueueServer", body: dict) -> dict:
    if hasattr(server.queue, "failure_details"):
        return {"failures": dict(server.queue.failure_details())}
    # custom queue predating the dead-letter ledger: degrade to errors
    return {
        "failures": {
            job_id: {"error": error, "attempts": 0, "spec": {}}
            for job_id, error in server.queue.failures().items()
        }
    }


def _ep_retry(server: "QueueServer", body: dict) -> dict:
    if not hasattr(server.queue, "retry"):
        raise ValueError(
            f"backend {type(server.queue).__name__} does not support retry"
        )
    return {"retried": bool(server.queue.retry(str(body["job_id"])))}


def _ep_quarantine(server: "QueueServer", body: dict) -> dict:
    if not hasattr(server.queue, "quarantine"):
        raise ValueError(
            f"backend {type(server.queue).__name__} does not support "
            "quarantine"
        )
    return {
        "quarantined": bool(
            server.queue.quarantine(
                str(body["job_id"]),
                str(body.get("reason", "quarantined over the wire")),
            )
        )
    }


_ROUTES = {
    ("GET", "/health"): _ep_health,
    ("GET", "/stats"): _ep_stats,
    ("GET", "/metrics"): _ep_metrics,
    ("GET", "/trace"): _ep_trace,
    ("GET", "/finished"): _ep_finished,
    ("GET", "/results"): _ep_results,
    ("GET", "/attempts"): _ep_attempts,
    ("GET", "/failures"): _ep_failures,
    ("GET", "/failure-details"): _ep_failure_details,
    ("POST", "/submit"): _ep_submit,
    ("POST", "/claim"): _ep_claim,
    ("POST", "/ack"): _ep_ack,
    ("POST", "/fail"): _ep_fail,
    ("POST", "/reap"): _ep_reap,
    ("POST", "/retry"): _ep_retry,
    ("POST", "/quarantine"): _ep_quarantine,
    ("POST", "/heartbeat"): _ep_heartbeat,
}


class _QueueHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    #: set by QueueServer right after construction.
    queue_server: "QueueServer"


class _QueueRequestHandler(BaseHTTPRequestHandler):
    """Routes requests to the endpoint table; JSON in, JSON out."""

    protocol_version = "HTTP/1.1"  # keep-alive: clients reuse connections
    server_version = "repro-queue/1"
    # Responses are two small writes (headers, then body); with Nagle on,
    # the body write stalls behind the client's delayed ACK (~40ms per
    # request), which dominates a chatty claim/ack/heartbeat workload.
    disable_nagle_algorithm = True

    def log_message(self, fmt, *args):  # stderr chatter off; logging on
        _LOG.debug("%s %s", self.address_string(), fmt % args)

    def _send(self, status: int, payload: dict) -> None:
        # An endpoint returning {"_text": ...} asked for a non-JSON
        # response (Prometheus text, JSONL) — everything else is JSON.
        if "_text" in payload:
            body = str(payload["_text"]).encode("utf-8")
            content_type = str(payload.get("_content_type", "text/plain"))
        else:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            content_type = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        url = urlsplit(self.path)
        endpoint = _ROUTES.get((method, url.path))
        if endpoint is None:
            self._send(
                404, {"error": f"no such endpoint: {method} {url.path}"}
            )
            return
        try:
            if method == "POST":
                raw_length = self.headers.get("Content-Length") or "0"
                try:
                    length = int(raw_length)
                except ValueError:
                    raise ValueError(
                        f"unparseable Content-Length: {raw_length!r}"
                    ) from None
                if length < 0:
                    raise ValueError(f"negative Content-Length: {length}")
                if length > _MAX_BODY_BYTES:
                    raise ValueError(
                        f"request body of {length} bytes exceeds the "
                        f"{_MAX_BODY_BYTES}-byte cap"
                    )
                raw = self.rfile.read(length) if length else b""
                body = json.loads(raw) if raw else {}
                if not isinstance(body, dict):
                    raise ValueError(
                        f"request body must be a JSON object, "
                        f"got {type(body).__name__}"
                    )
            else:
                body = {k: v[-1] for k, v in parse_qs(url.query).items()}
        except (ValueError, json.JSONDecodeError) as exc:
            # The body may be unread (oversized) or half-read (garbage
            # framing) — drop the connection so the leftovers cannot be
            # misparsed as the next keep-alive request.
            self.close_connection = True
            self._send(400, {"error": f"bad request body: {exc}"})
            return
        try:
            payload = endpoint(self.server.queue_server, body)
        except (KeyError, TypeError, ValueError) as exc:
            self._send(400, {"error": f"bad request: {exc!r}"})
        except Exception:
            self._send(500, {"error": traceback.format_exc()})
        else:
            self._send(200, payload)


class QueueServer:
    """Serve a backing :class:`JobQueue` over JSON/HTTP.

    The server is transport only: every queue semantic — leases,
    retries, idempotent submission, durable ``--resume`` state —
    belongs to the backing queue, so serving a
    :class:`~repro.pipeline.dist.queues.DirectoryJobQueue` survives a
    server restart with all state intact (point a new server at the
    same directory).  Requests are handled on daemon threads; both
    built-in queues are thread-safe (a lock, or atomic renames).

    Use as a context manager or ``start()``/``stop()`` for an
    in-process background server (tests, benchmarks, notebooks), or
    ``serve_forever()`` to block (the ``repro serve`` daemon).  With
    ``port=0`` the OS picks a free port; read it back from ``url``.

    Fleet liveness: workers POST structured heartbeats (worker id,
    jobs done/failed, last job id — see
    :class:`~repro.pipeline.dist.worker.Heartbeat`), and ``/stats``
    reports the fleet under ``"workers"`` so an autoscaler or a human
    can see who is alive without another channel.  Entries expire:
    a worker silent for ``heartbeat_ttl_seconds`` is pruned (dead and
    retired workers no longer linger in ``/stats`` forever), and every
    reported entry carries ``age_seconds`` since its last beat.

    Fleet observability: heartbeats may carry a metrics snapshot and
    fresh trace spans (see the module docstring); ``/metrics`` serves
    the merged fleet in Prometheus text and ``/trace`` the span ring
    as JSONL.  A pruned worker's last snapshot folds into a retired
    accumulator first, so fleet counters never move backwards.
    """

    def __init__(
        self,
        queue: JobQueue,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat_ttl_seconds: float = 300.0,
        trace_capacity: int = 4096,
    ):
        if heartbeat_ttl_seconds <= 0:
            raise ValueError(
                f"heartbeat_ttl_seconds must be > 0, "
                f"got {heartbeat_ttl_seconds}"
            )
        self.queue = queue
        self.heartbeat_ttl_seconds = float(heartbeat_ttl_seconds)
        self._heartbeats: dict[str, dict] = {}
        self._heartbeat_lock = threading.Lock()
        self._worker_metrics: dict[str, dict] = {}
        self._retired_metrics: dict = {}
        # The server's own series live in a dedicated registry, never
        # the process-global one: an in-process worker ships the global
        # registry on its heartbeat, so merging the global registry
        # here would double-count every fleet series.
        self._registry = MetricsRegistry()
        self._trace: deque = deque(maxlen=int(trace_capacity))
        self._httpd = _QueueHTTPServer((host, port), _QueueRequestHandler)
        self._httpd.queue_server = self
        self._thread: threading.Thread | None = None

    # -- addressing ---------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- lifecycle ----------------------------------------------------
    def start(self) -> "QueueServer":
        """Serve on a daemon thread; returns self for chaining."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        # Tight shutdown-poll interval: ``shutdown()`` blocks until the
        # serve loop's next poll tick, and the default 0.5s turns every
        # short-lived in-process server (tests, benchmarks) into a
        # quarter-second teardown stall.
        self._thread = threading.Thread(
            target=lambda: self._httpd.serve_forever(poll_interval=0.05),
            name=f"queue-server-{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until ``stop()`` (the daemon)."""
        self._httpd.serve_forever()

    def stop(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def __enter__(self) -> "QueueServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- fleet liveness -----------------------------------------------
    def record_heartbeat(self, beat: dict) -> None:
        """Record one worker heartbeat (the ``/heartbeat`` endpoint).

        The optional observability fields ride along: a ``"metrics"``
        snapshot replaces this worker's previous one (worker counters
        are monotone, so replacement keeps the fleet sum monotone),
        and ``"spans"`` append to the fleet trace ring.
        """
        worker_id = str(beat.get("worker_id", "anon"))
        entry = {
            "completed": int(beat.get("completed", 0)),
            "failed": int(beat.get("failed", 0)),
            "last_job_id": beat.get("last_job_id"),
            "last_seen_unix": time.time(),
        }
        if beat.get("version") is not None:
            entry["version"] = str(beat["version"])
        metrics = beat.get("metrics")
        spans = beat.get("spans")
        with self._heartbeat_lock:
            self._prune_expired_locked(time.time())
            self._heartbeats[worker_id] = entry
            if isinstance(metrics, dict):
                self._worker_metrics[worker_id] = metrics
            if isinstance(spans, list):
                self._trace.extend(
                    record for record in spans if isinstance(record, dict)
                )
        self._registry.counter(
            "repro_heartbeats_total", "worker heartbeats recorded"
        ).inc()

    def _prune_expired_locked(self, now: float) -> None:
        """Drop heartbeats older than the TTL (caller holds the lock).
        A pruned worker's metrics fold into the retired accumulator so
        the fleet's ``/metrics`` counters never regress."""
        expired = [
            worker_id
            for worker_id, entry in self._heartbeats.items()
            if now - entry["last_seen_unix"] > self.heartbeat_ttl_seconds
        ]
        for worker_id in expired:
            del self._heartbeats[worker_id]
            snapshot = self._worker_metrics.pop(worker_id, None)
            if snapshot is not None:
                self._retired_metrics = merge_snapshots(
                    [self._retired_metrics, snapshot]
                )

    def fleet(self) -> dict[str, dict]:
        """Live heartbeats per worker id (``/stats`` payload): the
        recorded fields plus ``age_seconds`` since the last beat.
        Workers silent past the TTL are pruned, not reported."""
        now = time.time()
        with self._heartbeat_lock:
            self._prune_expired_locked(now)
            return {
                worker_id: {
                    **entry,
                    "age_seconds": max(0.0, now - entry["last_seen_unix"]),
                }
                for worker_id, entry in self._heartbeats.items()
            }

    # -- fleet observability ------------------------------------------
    def metrics_snapshot(self) -> dict:
        """The merged fleet snapshot behind ``/metrics``: retired +
        live worker snapshots + the server's own series + live
        queue-depth gauges.  The process-global registry is *not*
        merged — an in-process worker already ships it via heartbeat."""
        with self._heartbeat_lock:
            self._prune_expired_locked(time.time())
            parts = [self._retired_metrics]
            parts.extend(self._worker_metrics.values())
            live_workers = len(self._heartbeats)
        parts.append(self._registry.snapshot())
        gauges = MetricsRegistry()
        depth = gauges.gauge(
            "repro_queue_jobs", "jobs in the backing queue by state"
        )
        stats = self.queue.stats()
        for state in ("pending", "claimed", "done", "failed"):
            depth.set(getattr(stats, state), state=state)
        gauges.gauge(
            "repro_fleet_workers", "workers with a live heartbeat"
        ).set(live_workers)
        parts.append(gauges.snapshot())
        return merge_snapshots(parts)

    def metrics_text(self) -> str:
        """``/metrics``: the merged fleet in Prometheus text format."""
        return render_prometheus(self.metrics_snapshot())

    def trace_text(self, limit: int = 256) -> str:
        """``/trace``: the newest ``limit`` fleet spans as JSONL, one
        ``kind="meta"`` header row first."""
        with self._heartbeat_lock:
            records = list(self._trace)[-int(limit):]
        lines = [json.dumps(trace_meta(), sort_keys=True)]
        lines.extend(json.dumps(r, sort_keys=True) for r in records)
        return "\n".join(lines) + "\n"


# -- client -----------------------------------------------------------------
class HttpJobQueue:
    """:class:`JobQueue` client speaking JSON/HTTP to a :class:`QueueServer`.

    Implements the full queue protocol over the wire, so every runner
    and worker loop in :mod:`repro.pipeline.dist` works over the
    network unchanged.  Transport behavior:

    * **connection reuse** — one persistent HTTP/1.1 connection per
      thread (the server keeps them alive), so a worker's
      claim/ack/heartbeat cycle costs no reconnect.
    * **timeouts** — every request carries ``timeout`` seconds; a hung
      server surfaces as an error instead of a stuck fleet.
    * **bounded retries** — connection-level failures (refused, reset,
      timed out) retry up to ``retries`` more times with exponential
      backoff (``backoff_seconds`` doubling, capped at
      ``max_backoff_seconds``), then raise :class:`HttpQueueError`.
      HTTP-level errors (4xx/5xx) never retry: the server answered.

    Retrying ``claim`` is not idempotent — if the response (not the
    request) was lost, a lease is orphaned server-side and recovered
    by normal expiry.  All other verbs are idempotent by protocol.

    A 200 response whose body is not valid JSON raises
    :class:`HttpQueueError` immediately (no retry: the server already
    executed the request, and blind re-execution of a ``claim`` would
    double-lease) — a garbling middlebox surfaces as a clean typed
    error, never a ``KeyError`` three frames later.

    ``transport_hook(method, path, attempt)`` is the fault-injection
    seam used by :class:`~repro.pipeline.dist.chaos.ChaosTransport`:
    called before each attempt, it may return ``"drop"`` (simulate a
    connection failure before the request leaves), ``"lose-response"``
    (deliver the request, then lose the response — exercising exactly
    the retry-idempotency semantics above), ``"garble"`` (corrupt the
    response body), ``"delay"`` (stall briefly), or ``None``/``"ok"``.
    Leave it ``None`` in production; it costs nothing.
    """

    def __init__(
        self,
        url: str,
        *,
        timeout: float = 10.0,
        retries: int = 5,
        backoff_seconds: float = 0.05,
        max_backoff_seconds: float = 2.0,
        transport_hook=None,
    ):
        parts = urlsplit(url if "//" in url else f"http://{url}")
        if parts.scheme not in ("", "http"):
            raise ValueError(
                f"HttpJobQueue speaks plain http, got {parts.scheme!r} "
                f"({url!r})"
            )
        if not parts.hostname:
            raise ValueError(f"queue url has no host: {url!r}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self._host = parts.hostname
        self._port = parts.port or 80
        self._prefix = parts.path.rstrip("/")
        self.url = f"http://{self._host}:{self._port}{self._prefix}"
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.backoff_seconds = float(backoff_seconds)
        self.max_backoff_seconds = float(max_backoff_seconds)
        self.transport_hook = transport_hook
        self._local = threading.local()

    # -- transport ----------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = http.client.HTTPConnection(
                self._host, self._port, timeout=self.timeout
            )
            self._local.connection = connection
        return connection

    def _drop_connection(self) -> None:
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            connection.close()
        self._local.connection = None

    def close(self) -> None:
        """Close this thread's persistent connection (best-effort)."""
        self._drop_connection()

    def _request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        query: dict | None = None,
        *,
        parse_json: bool = True,
    ) -> dict | str:
        target = self._prefix + path
        if query:
            pairs = {k: v for k, v in query.items() if v is not None}
            if pairs:
                target += "?" + urlencode(pairs)
        payload = None if body is None else json.dumps(body).encode("utf-8")
        headers = {"Content-Type": "application/json"} if payload else {}
        last_error: Exception | None = None
        for attempt in range(self.retries + 1):
            if attempt:
                time.sleep(
                    min(
                        self.backoff_seconds * (2 ** (attempt - 1)),
                        self.max_backoff_seconds,
                    )
                )
            action = (
                self.transport_hook(method, path, attempt)
                if self.transport_hook is not None
                else None
            )
            if action == "drop":
                # Simulated connection failure before the request ever
                # reaches the server: reconnect and retry, exactly like
                # a real refused/reset connection.
                self._drop_connection()
                last_error = ConnectionError(
                    f"chaos: dropped {method} {path} (attempt {attempt})"
                )
                continue
            if action == "delay":
                time.sleep(min(self.backoff_seconds, 0.05))
            try:
                request_t0 = time.perf_counter()
                connection = self._connection()
                connection.request(method, target, body=payload, headers=headers)
                if action == "lose-response":
                    # The request reached the server (and executed!) but
                    # the response never comes back — the dangerous half
                    # of a retry, which is why submit/ack must be
                    # idempotent server-side.
                    self._drop_connection()
                    last_error = ConnectionError(
                        f"chaos: lost response for {method} {path} "
                        f"(attempt {attempt})"
                    )
                    continue
                response = connection.getresponse()
                raw = response.read()
                status = response.status
            except (OSError, http.client.HTTPException) as exc:
                # connection-level failure: reconnect and retry
                self._drop_connection()
                last_error = exc
                continue
            if action == "garble":
                raw = b"\xff\x00chaos" + raw[: len(raw) // 2]
            registry = get_registry()
            registry.counter(
                "repro_http_requests_total",
                "queue-client requests that got an HTTP response",
            ).inc(path=path, status=str(status))
            registry.histogram(
                "repro_http_request_seconds",
                "queue-client request round-trip latency",
            ).observe(time.perf_counter() - request_t0, path=path)
            if attempt:
                registry.counter(
                    "repro_http_retries_total",
                    "request attempts past the first that got a response",
                ).inc(path=path)
            if status == 200:
                if not parse_json:
                    return raw.decode("utf-8", "replace")
                try:
                    return json.loads(raw) if raw else {}
                except json.JSONDecodeError as exc:
                    # The server answered 200 but the body is damaged.
                    # No retry: the request already executed server-side
                    # and re-running a claim would double-lease.
                    raise HttpQueueError(
                        f"{method} {path} -> malformed response body: "
                        f"{exc} ({raw[:120]!r})"
                    ) from exc
            try:
                document = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                document = {"error": raw.decode("utf-8", "replace")}
            detail = document.get("error", repr(raw[:200]))
            raise HttpQueueError(
                f"{method} {path} -> HTTP {status}: {detail}"
            )
        raise HttpQueueError(
            f"cannot reach queue server at {self.url} "
            f"({method} {path} failed {self.retries + 1} times; "
            f"last error: {last_error!r})"
        ) from last_error

    # -- JobQueue protocol --------------------------------------------
    def submit(self, spec: dict, *, job_id: str) -> str:
        return str(
            self._request(
                "POST", "/submit", {"spec": dict(spec), "job_id": job_id}
            )["job_id"]
        )

    def claim(self, worker_id: str, *, lease_seconds: float) -> Job | None:
        job = self._request(
            "POST",
            "/claim",
            {"worker_id": worker_id, "lease_seconds": lease_seconds},
        )["job"]
        if job is None:
            return None
        return Job(job["job_id"], job["spec"], int(job.get("attempts", 0)))

    def claim_batch(
        self, worker_id: str, *, lease_seconds: float, limit: int = 1
    ) -> list[Job]:
        """Claim up to ``limit`` jobs in **one** HTTP round-trip.

        This is the transport win bundling exists for: N tiny jobs cost
        one request instead of N.  The same retry caveat as ``claim``
        applies, once per bundle instead of once per job: a lost
        *response* orphans the whole bundle's lease, which expires and
        is reaped like any dead worker's."""
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        payload = self._request(
            "POST",
            "/claim",
            {
                "worker_id": worker_id,
                "lease_seconds": lease_seconds,
                "batch": limit,
            },
        )
        if "jobs" in payload:
            documents = payload["jobs"]
        else:  # pre-batch server: it honored the claim as a single
            documents = [payload["job"]] if payload.get("job") else []
        return [
            Job(doc["job_id"], doc["spec"], int(doc.get("attempts", 0)))
            for doc in documents
        ]

    def ack(
        self, job_id: str, result: dict, *, worker_id: str | None = None
    ) -> bool:
        return bool(
            self._request(
                "POST",
                "/ack",
                {"job_id": job_id, "result": result, "worker_id": worker_id},
            )["accepted"]
        )

    def fail(self, job_id: str, error: str) -> None:
        self._request("POST", "/fail", {"job_id": job_id, "error": error})

    def reap_expired(self) -> list[str]:
        return list(self._request("POST", "/reap", {})["reaped"])

    def attempts(self, job_id: str) -> int:
        """How many attempts this job has burned (reaps + failures)."""
        return int(
            self._request("GET", "/attempts", query={"job_id": job_id})[
                "attempts"
            ]
        )

    def attempts_map(self, job_ids) -> dict[str, int]:
        """Attempt counters for many jobs in one round-trip."""
        ids = list(job_ids)
        if not ids:
            return {}
        payload = self._request(
            "GET", "/attempts", query={"job_ids": ",".join(ids)}
        )
        return {k: int(v) for k, v in payload["attempts_map"].items()}

    def stats(self) -> QueueStats:
        payload = self._request("GET", "/stats")
        return QueueStats(
            pending=int(payload["pending"]),
            claimed=int(payload["claimed"]),
            done=int(payload["done"]),
            failed=int(payload["failed"]),
        )

    def fleet(self) -> dict[str, dict]:
        """Last-known worker heartbeats, as ``/stats`` reports them."""
        return dict(self._request("GET", "/stats")["workers"])

    def finished_ids(self) -> set[str]:
        return set(self._request("GET", "/finished")["finished"])

    def results_page(
        self, *, after: str | None = None, limit: int = 100
    ) -> tuple[dict[str, dict], str | None]:
        payload = self._request(
            "GET", "/results", query={"after": after, "limit": limit}
        )
        return dict(payload["results"]), payload.get("next")

    def results(self) -> dict[str, dict]:
        """Drain every result — by page, so the server never has to
        serialize the whole result set into one response."""
        out: dict[str, dict] = {}
        cursor: str | None = None
        while True:
            page, cursor = self.results_page(after=cursor, limit=100)
            if not page:
                return out
            out.update(page)

    def failures(self) -> dict[str, str]:
        return dict(self._request("GET", "/failures")["failures"])

    def failure_details(self) -> dict[str, dict]:
        """Dead-letter ledger: error, attempts, spec per failed job."""
        return dict(self._request("GET", "/failure-details")["failures"])

    def retry(self, job_id: str) -> bool:
        """Move one dead-lettered job back to pending, attempts reset."""
        return bool(
            self._request("POST", "/retry", {"job_id": job_id})["retried"]
        )

    def quarantine(self, job_id: str, reason: str) -> bool:
        """Dead-letter a pending or claimed job immediately."""
        return bool(
            self._request(
                "POST", "/quarantine", {"job_id": job_id, "reason": reason}
            )["quarantined"]
        )

    # -- extras -------------------------------------------------------
    def heartbeat(self, beat: Heartbeat | dict) -> None:
        """Report worker liveness to the server (``/stats`` surfaces it)."""
        document = beat.to_dict() if isinstance(beat, Heartbeat) else dict(beat)
        self._request("POST", "/heartbeat", document)

    def health(self) -> dict:
        """Server liveness probe: ``{"ok": true, "backend": ...}``."""
        return self._request("GET", "/health")

    def metrics_text(self) -> str:
        """The server's merged fleet metrics, Prometheus text format."""
        return self._request("GET", "/metrics", parse_json=False)

    def trace_tail(self, limit: int = 256) -> str:
        """The newest ``limit`` fleet spans as JSONL (meta row first)."""
        return self._request(
            "GET", "/trace", query={"limit": limit}, parse_json=False
        )


# -- worker entry point -----------------------------------------------------
def http_worker_entry(
    queue_url: str,
    worker_id: str | None = None,
    *,
    lease_seconds: float = 60.0,
    poll_seconds: float = 0.05,
    max_jobs: int | None = None,
    stop_when_drained: bool = True,
    timeout: float = 10.0,
    retries: int = 5,
    job_timeout_seconds: float | None = None,
    bundle: int = 1,
) -> int:
    """Process entry point: join a fleet over the network and work.

    The HTTP sibling of
    :func:`~repro.pipeline.dist.worker.worker_entry` — what
    ``repro worker --queue-url`` runs on a remote host, and what
    :class:`~repro.pipeline.dist.sweep.QueueRunner` and the
    :class:`~repro.pipeline.dist.autoscale.Autoscaler` spawn locally
    for an :class:`HttpJobQueue`.  Heartbeats are wired to the server
    automatically (best-effort: a lost heartbeat never kills the
    worker — the queue's lease machinery is the real liveness truth).

    Top-level (picklable) on purpose, so it works under both the
    ``fork`` and ``spawn`` multiprocessing start methods.
    """
    queue = HttpJobQueue(queue_url, timeout=timeout, retries=retries)
    if worker_id is None:
        worker_id = default_worker_id()

    def on_heartbeat(beat: Heartbeat) -> None:
        try:
            queue.heartbeat(beat)
        except HttpQueueError:
            pass  # liveness is best-effort; the next claim re-proves it

    return run_worker(
        queue,
        worker_id,
        lease_seconds=lease_seconds,
        poll_seconds=poll_seconds,
        max_jobs=max_jobs,
        stop_when_drained=stop_when_drained,
        on_heartbeat=on_heartbeat,
        job_timeout_seconds=job_timeout_seconds,
        bundle=bundle,
    )
