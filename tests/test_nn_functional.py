"""Tests for the functional tensor ops against scipy references."""

import numpy as np
import pytest
from scipy import signal

from repro.nn import functional as F


@pytest.fixture
def rng():
    return np.random.default_rng(11)


def conv2d_reference(x, w, bias, stride, padding):
    """Independent conv implementation via scipy.signal.correlate2d."""
    c_out, c_in, kh, kw = w.shape
    xp = np.pad(x, ((0, 0), (padding, padding), (padding, padding)))
    ho = (xp.shape[1] - kh) // stride + 1
    wo = (xp.shape[2] - kw) // stride + 1
    out = np.zeros((c_out, ho, wo))
    for o in range(c_out):
        acc = np.zeros((xp.shape[1] - kh + 1, xp.shape[2] - kw + 1))
        for i in range(c_in):
            acc += signal.correlate2d(xp[i], w[o, i], mode="valid")
        out[o] = acc[::stride, ::stride]
        if bias is not None:
            out[o] += bias[o]
    return out


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 0)])
    def test_matches_scipy(self, rng, stride, padding):
        x = rng.standard_normal((3, 12, 14))
        w = rng.standard_normal((5, 3, 3, 3))
        b = rng.standard_normal(5)
        ours = F.conv2d(x, w, b, stride, padding)
        ref = conv2d_reference(x, w, b, stride, padding)
        assert ours.shape == ref.shape
        assert np.abs(ours - ref).max() < 1e-10

    def test_1x1_conv_is_channel_mix(self, rng):
        x = rng.standard_normal((4, 6, 6))
        w = rng.standard_normal((2, 4, 1, 1))
        out = F.conv2d(x, w, None, 1, 0)
        ref = np.einsum("oi,ihw->ohw", w[:, :, 0, 0], x)
        assert np.abs(out - ref).max() < 1e-12

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            F.conv2d(rng.standard_normal((2, 8, 8)), rng.standard_normal((4, 3, 3, 3)))

    def test_output_size_helper(self):
        assert F.conv_output_size(16, 3, 1, 1) == 16
        assert F.conv_output_size(16, 3, 2, 1) == 8
        assert F.conv_output_size(16, 4, 2, 1) == 8


class TestConvTranspose2d:
    def test_adjoint_property(self, rng):
        """<conv(x), y> == <x, conv_transpose(y)> — the defining identity.

        Size chosen so the strided conv tiles exactly ((H + 2p - k)
        divisible by s), making the transposed conv restore H."""
        x = rng.standard_normal((3, 11, 11))
        w = rng.standard_normal((5, 3, 3, 3))
        y_shape_out = F.conv2d(x, w, None, 2, 1)
        y = rng.standard_normal(y_shape_out.shape)
        lhs = float(np.sum(F.conv2d(x, w, None, 2, 1) * y))
        # conv_transpose goes from 5 channels back to 3: weight (3, 5, 3, 3)
        wt = np.transpose(w, (1, 0, 2, 3))
        rhs = float(np.sum(x * F.conv_transpose2d(y, wt, None, 2, 1)))
        assert lhs == pytest.approx(rhs, rel=1e-10)

    @pytest.mark.parametrize("stride,padding,k", [(2, 1, 4), (2, 0, 4), (1, 1, 3), (2, 1, 2)])
    def test_shapes(self, rng, stride, padding, k):
        x = rng.standard_normal((3, 7, 9))
        w = rng.standard_normal((4, 3, k, k))
        out = F.conv_transpose2d(x, w, None, stride, padding)
        eh = (7 - 1) * stride - 2 * padding + k
        ew = (9 - 1) * stride - 2 * padding + k
        assert out.shape == (4, eh, ew)

    def test_single_pixel_stamps_kernel(self, rng):
        x = np.zeros((1, 3, 3))
        x[0, 1, 1] = 2.0
        w = rng.standard_normal((1, 1, 4, 4))
        out = F.conv_transpose2d(x, w, None, 2, 0)
        assert np.abs(out[0, 2:6, 2:6] - 2.0 * w[0, 0]).max() < 1e-12

    def test_bias_added(self, rng):
        x = rng.standard_normal((2, 4, 4))
        w = rng.standard_normal((3, 2, 4, 4))
        b = np.array([1.0, -2.0, 3.0])
        out = F.conv_transpose2d(x, w, b, 2, 1)
        out_nob = F.conv_transpose2d(x, w, None, 2, 1)
        assert np.allclose(out - out_nob, b[:, None, None])


class TestPooling:
    def test_max_pool(self):
        x = np.arange(16, dtype=float).reshape(1, 4, 4)
        out = F.max_pool2d(x, 2)
        assert out.shape == (1, 2, 2)
        assert np.array_equal(out[0], [[5, 7], [13, 15]])

    def test_avg_pool(self):
        x = np.arange(16, dtype=float).reshape(1, 4, 4)
        out = F.avg_pool2d(x, 2)
        assert np.array_equal(out[0], [[2.5, 4.5], [10.5, 12.5]])

    def test_odd_trailing_dropped(self):
        x = np.zeros((1, 5, 5))
        assert F.max_pool2d(x, 2).shape == (1, 2, 2)


class TestActivations:
    def test_relu(self):
        x = np.array([-1.0, 0.0, 2.0])
        assert np.array_equal(F.relu(x), [0.0, 0.0, 2.0])

    def test_leaky_relu(self):
        x = np.array([-10.0, 10.0])
        assert np.array_equal(F.leaky_relu(x, 0.1), [-1.0, 10.0])

    def test_sigmoid_range_and_symmetry(self, rng):
        # Moderate magnitudes: strictly inside (0, 1).
        x = rng.standard_normal(100) * 5
        s = F.sigmoid(x)
        assert np.all((s > 0) & (s < 1))
        assert np.allclose(F.sigmoid(-x), 1 - s, atol=1e-12)
        # Extreme magnitudes may saturate to exactly 0/1 in float64 but
        # must stay within [0, 1].
        hard = F.sigmoid(rng.standard_normal(100) * 50)
        assert np.all((hard >= 0) & (hard <= 1))

    def test_sigmoid_extremes_stable(self):
        assert F.sigmoid(np.array([1000.0]))[0] == pytest.approx(1.0)
        assert F.sigmoid(np.array([-1000.0]))[0] == pytest.approx(0.0)

    def test_softmax_sums_to_one(self, rng):
        x = rng.standard_normal((4, 7))
        s = F.softmax(x, axis=-1)
        assert np.allclose(s.sum(axis=-1), 1.0)

    def test_softmax_shift_invariant(self, rng):
        x = rng.standard_normal(9)
        assert np.allclose(F.softmax(x), F.softmax(x + 1000.0))


class TestBilinearSample:
    def test_integer_coords_exact(self, rng):
        x = rng.standard_normal((2, 6, 6))
        ys, xs = np.meshgrid(np.arange(6.0), np.arange(6.0), indexing="ij")
        out = F.bilinear_sample(x, ys, xs)
        assert np.abs(out - x).max() < 1e-12

    def test_halfway_interpolation(self):
        x = np.zeros((1, 2, 2))
        x[0] = [[0.0, 2.0], [4.0, 6.0]]
        out = F.bilinear_sample(x, np.array([[0.5]]), np.array([[0.5]]))
        assert out[0, 0, 0] == pytest.approx(3.0)

    def test_border_clamp(self):
        x = np.ones((1, 4, 4)) * 5.0
        out = F.bilinear_sample(x, np.array([[-3.0]]), np.array([[99.0]]))
        assert out[0, 0, 0] == pytest.approx(5.0)
