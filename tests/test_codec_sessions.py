"""Streaming codec sessions and the incremental (v3) container.

The redesign's contract, pinned here:

* streaming ``push``/``flush``/``pull`` is **bit-identical** to the
  batch ``encode_sequence``/``decode_sequence`` API for both codecs and
  both entropy backends (property-based over scenes and GOPs);
* version-1 and version-2 containers keep decoding through the new
  :class:`StreamReader` (golden-pinned);
* the version-3 container round-trips incrementally, file-to-file
  encoding holds O(1) frames in memory regardless of sequence length,
  and the facade's streaming mode reports the same quality as batch.
"""

import base64
import gc
import io
import weakref

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec import (
    ClassicalCodec,
    ClassicalCodecConfig,
    CTVCConfig,
    CTVCNet,
    FramePacket,
    SequenceBitstream,
    SessionError,
    StreamReader,
    StreamWriter,
)
from repro.metrics import psnr
from repro.pipeline import Pipeline
from repro.video import SceneConfig, generate_sequence, iter_sequence

from test_codec_golden import EXPECTED_PSNR, GOLDEN_CLASSICAL_V1, GOLDEN_CTVC_V1


def make_codec(name: str, entropy_backend: str, gop: int = 8):
    if name == "ctvc":
        return CTVCNet(
            CTVCConfig(
                channels=4, qstep=8.0, gop=gop, entropy_backend=entropy_backend
            )
        )
    return ClassicalCodec(
        ClassicalCodecConfig(qp=12.0, gop=gop, entropy_backend=entropy_backend)
    )


CODEC_BACKEND = [
    ("classical", "rans"),
    ("classical", "cacm"),
    ("ctvc", "rans"),
    ("ctvc", "cacm"),
]


class TestStreamingEqualsBatch:
    @pytest.mark.parametrize("codec_name,backend", CODEC_BACKEND)
    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(0, 2**16), frames=st.integers(1, 3), gop=st.integers(1, 3))
    def test_packets_bit_identical(self, codec_name, backend, seed, frames, gop):
        # 32x48 is the smallest geometry CTVC-Net's feature pyramid
        # supports with P-frames (same scene the golden streams use).
        codec = make_codec(codec_name, backend, gop=gop)
        clip = generate_sequence(
            SceneConfig(height=32, width=48, frames=frames, seed=seed)
        )
        batch = codec.encode_sequence(clip)
        session = codec.open_encoder()
        packets = [p for frame in clip for p in session.push(frame)]
        packets += session.flush()
        assert session.header == batch.header
        assert [p.serialize() for p in packets] == [
            p.serialize() for p in batch.packets
        ]
        # Decoder session reproduces decode_sequence frame by frame.
        decoded_batch = codec.decode_sequence(batch)
        decoder = codec.open_decoder(batch.header, version=batch.version)
        decoded_stream = []
        for packet in packets:
            decoder.push(packet)
            frame = decoder.pull()
            while frame is not None:
                decoded_stream.append(frame)
                frame = decoder.pull()
        assert len(decoded_stream) == len(decoded_batch)
        for a, b in zip(decoded_batch, decoded_stream):
            assert np.array_equal(a, b)

    def test_header_unavailable_before_first_push(self):
        session = make_codec("classical", "rans").open_encoder()
        with pytest.raises(SessionError, match="first frame"):
            session.header

    def test_push_after_close_rejected(self):
        codec = make_codec("classical", "rans")
        frame = generate_sequence(SceneConfig(height=16, width=32, frames=1))[0]
        with codec.open_encoder() as session:
            session.push(frame)
        with pytest.raises(SessionError, match="closed"):
            session.push(frame)

    def test_p_frame_before_i_frame_rejected(self):
        codec = make_codec("classical", "rans")
        decoder = codec.open_decoder()
        with pytest.raises(ValueError, match="P-frame before any I-frame"):
            decoder.push(FramePacket(frame_type="P"))

    def test_decoder_pull_empty_returns_none(self):
        assert make_codec("classical", "rans").open_decoder().pull() is None


class TestGoldenContainersThroughStreamReader:
    """v1/v2 streams must parse packet-by-packet through the new reader
    and decode through the session API to the seed's exact quality."""

    def test_v1_classical_golden(self):
        blob = base64.b64decode(GOLDEN_CLASSICAL_V1)
        reader = StreamReader(io.BytesIO(blob))
        assert reader.version == 1
        assert "entropy" not in reader.header
        codec = ClassicalCodec(ClassicalCodecConfig(qp=12.0))
        session = codec.open_decoder(reader.header, version=reader.version)
        decoded = list(session.decode_iter(reader))
        frames = generate_sequence(
            SceneConfig(height=32, width=48, frames=2, seed=123)
        )
        for frame, recon, expected in zip(
            frames, decoded, EXPECTED_PSNR["classical"]
        ):
            assert float(psnr(frame, recon)) == pytest.approx(expected, abs=1e-9)

    def test_v1_ctvc_golden(self):
        blob = base64.b64decode(GOLDEN_CTVC_V1)
        reader = StreamReader(io.BytesIO(blob))
        assert reader.version == 1
        net = CTVCNet(CTVCConfig(channels=8, qstep=8.0, seed=5))
        session = net.open_decoder(reader.header, version=reader.version)
        decoded = list(session.decode_iter(reader))
        frames = generate_sequence(
            SceneConfig(height=32, width=48, frames=2, seed=321)
        )
        for frame, recon, expected in zip(frames, decoded, EXPECTED_PSNR["ctvc"]):
            assert float(psnr(frame, recon)) == pytest.approx(expected, abs=1e-9)

    def test_v2_stream_reads_packet_by_packet(self):
        codec = make_codec("classical", "rans")
        clip = generate_sequence(SceneConfig(height=16, width=32, frames=3))
        stream = codec.encode_sequence(clip)
        reader = StreamReader(io.BytesIO(stream.serialize()))
        assert (reader.version, reader.header) == (2, stream.header)
        packets = list(reader)
        assert [p.serialize() for p in packets] == [
            p.serialize() for p in stream.packets
        ]
        assert reader.read_packet() is None  # exhausted stays exhausted


class TestV3Container:
    def _packets(self):
        codec = make_codec("classical", "rans")
        clip = generate_sequence(SceneConfig(height=16, width=32, frames=3))
        stream = codec.encode_sequence(clip)
        return codec, stream

    def test_writer_reader_round_trip(self):
        _, stream = self._packets()
        buffer = io.BytesIO()
        writer = StreamWriter(buffer, stream.header)
        for packet in stream.packets:
            writer.write_packet(packet)
        total = writer.finalize()
        assert total == len(buffer.getvalue())
        assert writer.packets_written == len(stream.packets)
        buffer.seek(0)
        reader = StreamReader(buffer)
        assert (reader.version, reader.header) == (4, stream.header)
        assert [p.serialize() for p in reader] == [
            p.serialize() for p in stream.packets
        ]

    def test_finalize_is_idempotent_and_required_order(self):
        buffer = io.BytesIO()
        writer = StreamWriter(buffer)
        with pytest.raises(ValueError, match="write_header"):
            writer.write_packet(FramePacket(frame_type="I"))
        writer.write_header({"codec": "x"})
        with pytest.raises(ValueError, match="already written"):
            writer.write_header({"codec": "x"})
        assert writer.finalize() == writer.finalize()
        with pytest.raises(ValueError, match="finalized"):
            writer.write_packet(FramePacket(frame_type="I"))

    def test_sequence_bitstream_v3_round_trip(self):
        _, stream = self._packets()
        v3 = SequenceBitstream(
            header=stream.header, packets=stream.packets, version=3
        )
        back = SequenceBitstream.parse(v3.serialize())
        assert back.version == 3
        assert back.header == stream.header
        assert [p.serialize() for p in back.packets] == [
            p.serialize() for p in stream.packets
        ]
        # and the whole v3 buffer re-serializes identically
        assert back.serialize() == v3.serialize()

    def test_v3_decodes_like_v2(self):
        codec, stream = self._packets()
        v3 = SequenceBitstream.parse(
            SequenceBitstream(
                header=stream.header, packets=stream.packets, version=3
            ).serialize()
        )
        for a, b in zip(codec.decode_sequence(stream), codec.decode_sequence(v3)):
            assert np.array_equal(a, b)

    def test_truncated_v3_raises(self):
        _, stream = self._packets()
        blob = SequenceBitstream(
            header=stream.header, packets=stream.packets, version=3
        ).serialize()
        reader = StreamReader(io.BytesIO(blob[:-6]))  # kill sentinel + tail
        with pytest.raises(ValueError, match="truncated"):
            list(reader)

    def test_corrupt_length_prefix_raises(self):
        import struct

        _, stream = self._packets()
        blob = bytearray(
            SequenceBitstream(
                header=stream.header, packets=stream.packets, version=3
            ).serialize()
        )
        # Grow the first packet's length prefix so the framed size no
        # longer matches the packet body it wraps.
        header_len = struct.unpack_from("<I", blob, 6)[0]
        prefix_at = 10 + header_len
        (size,) = struct.unpack_from("<I", blob, prefix_at)
        struct.pack_into("<I", blob, prefix_at, size + 3)
        with pytest.raises(ValueError, match="corrupt|truncated"):
            SequenceBitstream.parse(bytes(blob))
        with pytest.raises(ValueError, match="corrupt|truncated"):
            list(StreamReader(io.BytesIO(bytes(blob))))

    @pytest.mark.parametrize("cut", [6, 1])
    def test_truncated_v3_parse_raises_value_error(self, cut):
        # in-memory parse must match the reader's ValueError contract,
        # never leak struct.error, whether the cut lands mid-packet or
        # on the sentinel.
        _, stream = self._packets()
        blob = SequenceBitstream(
            header=stream.header, packets=stream.packets, version=3
        ).serialize()
        with pytest.raises(ValueError, match="truncated"):
            SequenceBitstream.parse(blob[:-cut])


class _FrameLivenessCounter:
    """Counts how many source frames are simultaneously alive, via
    weakref finalizers (CPython refcounting frees them deterministically
    as soon as the pipeline lets go)."""

    def __init__(self):
        self.live = 0
        self.max_live = 0
        self.total = 0

    def _release(self):
        self.live -= 1

    def track(self, frames):
        for frame in frames:
            self.total += 1
            self.live += 1
            self.max_live = max(self.max_live, self.live)
            weakref.finalize(frame, self._release)
            yield frame
            del frame


class TestConstantMemoryStreaming:
    @pytest.mark.parametrize("num_frames", [4, 12])
    def test_file_to_file_peak_frames(self, tmp_path, monkeypatch, num_frames):
        """Peak simultaneously-alive source frames during a file-to-file
        streaming encode must not grow with sequence length."""
        import repro.pipeline.facade as facade

        counter = _FrameLivenessCounter()
        real_iter = facade.iter_sequence
        monkeypatch.setattr(
            facade, "iter_sequence", lambda cfg: counter.track(real_iter(cfg))
        )
        pipe = Pipeline(
            "classical",
            {"qp": 16.0, "gop": 4},
            scene={"height": 16, "width": 32, "frames": num_frames},
        )
        pipe.session().encode(output=str(tmp_path / "clip.bin"))
        gc.collect()
        assert counter.total == num_frames
        # current frame + the generator's hand-off slot; independent of
        # sequence length (a batch path would hold all of them).
        assert counter.max_live <= 3

    def test_peak_is_equal_across_lengths(self, tmp_path, monkeypatch):
        import repro.pipeline.facade as facade

        peaks = []
        for num_frames in (4, 12):
            counter = _FrameLivenessCounter()
            real_iter = iter_sequence
            monkeypatch.setattr(
                facade,
                "iter_sequence",
                lambda cfg, c=counter: c.track(real_iter(cfg)),
            )
            pipe = Pipeline(
                "classical",
                {"qp": 16.0},
                scene={"height": 16, "width": 32, "frames": num_frames},
            )
            pipe.session().encode(output=str(tmp_path / f"c{num_frames}.bin"))
            gc.collect()
            peaks.append(counter.max_live)
        assert peaks[0] == peaks[1]


class TestFacadeStreamingMode:
    SCENE = {"height": 16, "width": 32, "frames": 3}

    def test_streaming_report_matches_batch_quality(self, tmp_path):
        batch = Pipeline("classical", {"qp": 12.0}, scene=self.SCENE).run()
        session = Pipeline("classical", {"qp": 12.0}, scene=self.SCENE).session()
        report = session.run(output=str(tmp_path / "clip.bin"))
        assert report.psnr_per_frame == batch.psnr_per_frame
        assert report.frames == batch.frames
        # v3 carries extra header context (config + scene), so it costs
        # a little container overhead but the payload is identical.
        assert report.stream_bytes >= batch.stream_bytes
        assert report.encode_seconds > 0 and report.decode_seconds > 0

    def test_progress_callbacks_fire_per_frame(self, tmp_path):
        encoded, decoded = [], []
        session = Pipeline("classical", {"qp": 16.0}, scene=self.SCENE).session()
        session.encode(
            output=str(tmp_path / "clip.bin"),
            progress=lambda i, nbytes: encoded.append((i, nbytes)),
        )
        session.decode(progress=lambda i, quality: decoded.append((i, quality)))
        assert [i for i, _ in encoded] == [1, 2, 3]
        assert all(nbytes > 0 for _, nbytes in encoded)
        assert [i for i, _ in decoded] == [1, 2, 3]
        assert all(quality > 10.0 for _, quality in decoded)

    def test_decode_from_explicit_source(self, tmp_path):
        path = str(tmp_path / "clip.bin")
        Pipeline("classical", {"qp": 12.0}, scene=self.SCENE).session().encode(
            output=path
        )
        # A fresh session decodes someone else's container file.
        other = Pipeline("classical", {"qp": 12.0}, scene=self.SCENE).session()
        report = other.decode(source=path).report()
        assert report.frames == 3
        assert report.mean_psnr > 20.0

    def test_streaming_file_object_output(self, tmp_path):
        buffer = io.BytesIO()
        session = Pipeline("classical", {"qp": 16.0}, scene=self.SCENE).session()
        session.encode(output=buffer)
        buffer.seek(0)
        assert StreamReader(buffer).version == 4

    def test_decode_after_file_object_stream_requires_source(self):
        # The streamed container lives in a caller-owned file object;
        # silently re-encoding in batch would discard it.
        buffer = io.BytesIO()
        session = Pipeline("classical", {"qp": 16.0}, scene=self.SCENE).session()
        session.encode(output=buffer)
        with pytest.raises(ValueError, match="decode\\(source=...\\)"):
            session.decode()
        buffer.seek(0)
        report = session.decode(source=buffer).report()
        assert report.frames == self.SCENE["frames"]

    def test_run_with_seekable_file_object_round_trips(self):
        buffer = io.BytesIO()
        report = Pipeline("classical", {"qp": 16.0}, scene=self.SCENE).session().run(
            output=buffer
        )
        assert report.frames == self.SCENE["frames"]
        assert report.stream_bytes == len(buffer.getvalue())  # not 0
        assert report.bpp > 0

    def test_run_with_unreadable_file_object_rejected_up_front(self, tmp_path):
        with open(tmp_path / "clip.bin", "wb") as handle:
            session = Pipeline("classical", {"qp": 16.0}, scene=self.SCENE).session()
            with pytest.raises(ValueError, match="readable, seekable"):
                session.run(output=handle)
            assert session.frames_encoded is None  # rejected before encoding

    def test_decode_rejects_longer_container_than_scene(self, tmp_path):
        path = str(tmp_path / "clip.bin")
        Pipeline(
            "classical", {"qp": 16.0}, scene={**self.SCENE, "frames": 4}
        ).session().encode(output=path)
        short = Pipeline(
            "classical", {"qp": 16.0}, scene={**self.SCENE, "frames": 2}
        ).session()
        with pytest.raises(ValueError, match="more frames than"):
            short.decode(source=path)

    def test_progress_needs_streaming(self):
        session = Pipeline("classical", scene=self.SCENE).session()
        with pytest.raises(ValueError, match="streaming"):
            session.encode(progress=lambda i, n: None)
