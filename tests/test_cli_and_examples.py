"""Smoke tests for the CLI and the example scripts."""

import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


def run_cli(*args, timeout=300):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=REPO,
    )


class TestCLI:
    def test_hardware_summary(self):
        result = run_cli("hardware")
        assert result.returncode == 0
        assert "FPS" in result.stdout
        assert "gates" in result.stdout

    def test_encode_classical(self):
        result = run_cli(
            "encode", "--codec", "classical", "--frames", "2", "--qp", "16"
        )
        assert result.returncode == 0
        assert "bpp" in result.stdout
        assert "PSNR" in result.stdout

    def test_encode_ctvc(self):
        result = run_cli(
            "encode", "--codec", "ctvc", "--frames", "2", "--channels", "8"
        )
        assert result.returncode == 0
        assert "ctvc" in result.stdout

    def test_reproduce_fast(self, tmp_path):
        out = tmp_path / "report.txt"
        result = run_cli("reproduce", "-o", str(out))
        assert result.returncode == 0
        assert "Table I" in result.stdout
        assert "Table II" in result.stdout
        assert out.exists()
        assert "Fig. 9(a)" in out.read_text()


class TestExamples:
    @pytest.mark.parametrize(
        "script",
        ["quickstart.py", "sparse_codesign.py", "hardware_walkthrough.py"],
    )
    def test_example_runs(self, script):
        result = subprocess.run(
            [sys.executable, str(REPO / "examples" / script)],
            capture_output=True,
            text=True,
            timeout=560,
            cwd=REPO,
        )
        assert result.returncode == 0, result.stderr[-2000:]
        assert result.stdout  # produced a report

    def test_reproduce_paper_fast(self, tmp_path):
        out = tmp_path / "paper.txt"
        result = subprocess.run(
            [
                sys.executable,
                str(REPO / "examples" / "reproduce_paper.py"),
                "-o",
                str(out),
            ],
            capture_output=True,
            text=True,
            timeout=300,
            cwd=REPO,
        )
        assert result.returncode == 0, result.stderr[-2000:]
        assert "BDBR" in out.read_text()
