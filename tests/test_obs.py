"""Observability subsystem: metrics registry semantics (cardinality
bounds, snapshot isolation, fleet merging, Prometheus rendering),
tracing spans and the flight recorder, encode byte-identity with
tracing on vs off, the trace-file renderer, and the CLI surface
(``--version``, ``repro trace``, ``--metrics-out``/``--trace-out``)."""

import json

import pytest

from repro.obs import (
    FlightRecorder,
    MetricsRegistry,
    critical_path,
    current_job_id,
    drain_spans,
    enable,
    enabled,
    encode_stage_timer,
    get_recorder,
    get_registry,
    load_trace,
    merge_snapshots,
    render_prometheus,
    render_trace_tree,
    reset_registry,
    set_job_id,
    span,
    trace_meta,
)


@pytest.fixture(autouse=True)
def clean_obs():
    """Every test starts (and leaves) with tracing off, an empty
    flight recorder, and a fresh process-global registry."""
    reset_registry()
    get_recorder().clear()
    enable(False)
    set_job_id(None)
    yield
    reset_registry()
    get_recorder().clear()
    enable(False)
    set_job_id(None)


class TestMetricsInstruments:
    def test_counter_counts_per_label_set(self):
        reg = MetricsRegistry()
        counter = reg.counter("jobs_total", "jobs")
        counter.inc(kind="encode")
        counter.inc(2.5, kind="encode")
        counter.inc(kind="hardware")
        assert counter.value(kind="encode") == 3.5
        assert counter.value(kind="hardware") == 1.0
        assert counter.value(kind="missing") == 0.0

    def test_counter_rejects_decrements(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_gauge_last_write_wins(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(5.0, state="pending")
        gauge.set(2.0, state="pending")
        assert gauge.value(state="pending") == 2.0

    def test_histogram_buckets_and_sum(self):
        hist = MetricsRegistry().histogram("t", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            hist.observe(value)
        assert hist.count() == 4
        snap = hist._series["{}"]
        # bucket layout: <=0.1, <=1.0, +Inf
        assert snap["counts"] == [1, 2, 1]
        assert snap["sum"] == pytest.approx(6.05)

    def test_histogram_rejects_unsorted_edges(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("bad", buckets=(1.0, 0.5))
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("dup", buckets=(1.0, 1.0))

    def test_registry_get_or_create_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.names() == ["x"]

    def test_registry_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_cardinality_bound_collapses_to_overflow(self):
        counter = MetricsRegistry().counter("c", max_series=2)
        counter.inc(job="a")
        counter.inc(job="b")
        for junk in range(50):  # a label that should never be a label
            counter.inc(job=f"runaway-{junk}")
        # existing series still addressable, memory stays bounded
        assert counter.value(job="a") == 1.0
        assert counter.labels_count() == 3  # a, b, and the overflow bin
        key = '{"overflow": "true"}'
        assert counter._series[key] == 50.0

    def test_snapshot_is_isolated_from_later_updates(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        reg.counter("c").inc(10)
        reg.histogram("h").observe(0.5)
        assert snap["counters"]["c"]["series"]["{}"] == 1.0
        assert snap["histograms"]["h"]["series"]["{}"]["counts"] == [1, 0]

    def test_snapshot_round_trips_through_json(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(kind="encode")
        reg.gauge("g").set(3.0)
        reg.histogram("h").observe(0.01)
        snap = reg.snapshot()
        assert json.loads(json.dumps(snap)) == snap


class TestMergeSnapshots:
    def _snap(self, completed, depth, seconds):
        reg = MetricsRegistry()
        reg.counter("jobs_total", "jobs").inc(completed, kind="encode")
        reg.gauge("depth").set(depth)
        hist = reg.histogram("job_seconds", buckets=(0.1, 1.0))
        for value in seconds:
            hist.observe(value)
        return reg.snapshot()

    def test_counters_and_histograms_sum_gauges_last_write_wins(self):
        merged = merge_snapshots([
            self._snap(3, 5.0, [0.05, 0.5]),
            self._snap(2, 1.0, [2.0]),
        ])
        key = '{"kind": "encode"}'
        assert merged["counters"]["jobs_total"]["series"][key] == 5.0
        assert merged["gauges"]["depth"]["series"]["{}"] == 1.0
        state = merged["histograms"]["job_seconds"]["series"]["{}"]
        assert state["counts"] == [1, 1, 1]
        assert state["sum"] == pytest.approx(2.55)

    def test_mismatched_bucket_edges_are_skipped(self):
        a = MetricsRegistry()
        a.histogram("h", buckets=(0.1, 1.0)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("h", buckets=(0.2, 2.0)).observe(0.5)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        # first edges win; the incompatible series contributes nothing
        assert merged["histograms"]["h"]["buckets"] == [0.1, 1.0]
        assert merged["histograms"]["h"]["series"]["{}"]["counts"] == [0, 1, 0]

    def test_garbage_snapshots_are_ignored(self):
        merged = merge_snapshots([None, "nope", {}, self._snap(1, 0.0, [])])
        key = '{"kind": "encode"}'
        assert merged["counters"]["jobs_total"]["series"][key] == 1.0


class TestPrometheusRendering:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total", "jobs done").inc(3, kind="encode")
        reg.gauge("depth", "queue depth").set(2.0)
        text = reg.render()
        assert "# HELP jobs_total jobs done\n# TYPE jobs_total counter" in text
        assert 'jobs_total{kind="encode"} 3\n' in text
        assert "# TYPE depth gauge\ndepth 2\n" in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        reg = MetricsRegistry()
        hist = reg.histogram("t", "timings", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        text = reg.render()
        assert 't_bucket{le="0.1"} 1' in text
        assert 't_bucket{le="1"} 2' in text
        assert 't_bucket{le="+Inf"} 3' in text
        assert "t_count 3" in text
        assert "t_sum 5.55" in text

    def test_label_values_are_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(path='/a"b\\c')
        assert 'c{path="/a\\"b\\\\c"} 1' in reg.render()

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus(MetricsRegistry().snapshot()) == ""


class TestTracing:
    def test_disabled_span_is_noop(self):
        assert not enabled()
        with span("x", a=1) as s:
            assert s is None
        assert len(get_recorder()) == 0
        assert drain_spans() == []

    def test_nesting_parent_ids_and_attrs(self):
        enable()
        with span("outer", codec="classical"):
            with span("inner"):
                pass
        inner, outer = get_recorder().tail(2)
        assert (inner["name"], outer["name"]) == ("inner", "outer")
        assert inner["parent_id"] == outer["span_id"]
        assert outer["parent_id"] is None
        assert outer["attrs"] == {"codec": "classical"}
        assert inner["dur_s"] <= outer["dur_s"]

    def test_job_id_rides_every_span(self):
        enable()
        set_job_id("job-42")
        assert current_job_id() == "job-42"
        with span("work"):
            pass
        set_job_id(None)
        with span("after"):
            pass
        work, after = get_recorder().tail(2)
        assert work["job_id"] == "job-42"
        assert after["job_id"] is None

    def test_exception_is_recorded_and_propagates(self):
        enable()
        with pytest.raises(RuntimeError):
            with span("doomed"):
                raise RuntimeError("boom")
        (record,) = get_recorder().tail(1)
        assert record["attrs"]["error"] == "RuntimeError"

    def test_recorder_ring_is_bounded_and_drain_is_incremental(self):
        recorder = FlightRecorder(capacity=3)
        for i in range(5):
            recorder.record({"kind": "span", "name": f"s{i}"})
        assert len(recorder) == 3
        assert [r["name"] for r in recorder.tail()] == ["s2", "s3", "s4"]
        assert [r["name"] for r in recorder.drain()] == ["s2", "s3", "s4"]
        assert recorder.drain() == []  # nothing new since
        recorder.record({"kind": "span", "name": "s5"})
        assert [r["name"] for r in recorder.drain()] == ["s5"]

    def test_drain_spans_feeds_the_heartbeat_only_when_enabled(self):
        enable()
        with span("beat"):
            pass
        fresh = drain_spans()
        assert [s["name"] for s in fresh] == ["beat"]
        assert drain_spans() == []
        enable(False)
        get_recorder().record({"kind": "span", "name": "hidden"})
        assert drain_spans() == []

    def test_stage_timer_off_means_none(self):
        assert encode_stage_timer("classical") is None

    def test_stage_timer_records_spans_and_histogram(self):
        enable()
        with span("encode.frame"):
            timer = encode_stage_timer("classical")
            timer.lap("transform")
            timer.lap("quantize")
        transform, quantize, frame = get_recorder().tail(3)
        assert transform["name"] == "classical.transform"
        assert quantize["name"] == "classical.quantize"
        assert transform["parent_id"] == frame["span_id"]
        hist = get_registry().histogram("repro_encode_stage_seconds")
        assert hist.count(codec="classical", stage="transform") == 1
        assert hist.count(codec="classical", stage="quantize") == 1

    def test_dump_and_load_round_trip(self, tmp_path):
        enable()
        with span("outer"):
            with span("inner"):
                pass
        path = tmp_path / "flight.jsonl"
        assert get_recorder().dump(path) == 2
        meta, spans = load_trace(path)
        import repro

        assert meta["version"] == repro.__version__
        assert [s["name"] for s in spans] == ["inner", "outer"]
        assert trace_meta()["pid"] == meta["pid"]

    def test_load_trace_names_the_bad_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "span", "name": "ok"}\nnot json\n')
        with pytest.raises(ValueError, match=":2:"):
            load_trace(path)


def _span(name, span_id, parent_id=None, dur=1.0, start=0.0, **attrs):
    record = {
        "kind": "span", "name": name, "span_id": span_id,
        "parent_id": parent_id, "job_id": None,
        "start_unix": start, "dur_s": dur,
    }
    if attrs:
        record["attrs"] = attrs
    return record


class TestTraceView:
    def test_tree_nests_by_parent_and_shows_durations(self):
        spans = [
            _span("child-b", "c2", "r1", dur=0.002, start=2.0),
            _span("child-a", "c1", "r1", dur=0.001, start=1.0),
            _span("root", "r1", dur=0.01, start=0.0),
        ]
        text = render_trace_tree(spans)
        lines = text.splitlines()
        assert lines[0].startswith("root")
        assert "10.0ms" in lines[0]
        # children sorted by start time, last child gets the corner
        assert lines[1].startswith("├─ child-a")
        assert lines[2].startswith("└─ child-b")

    def test_orphans_render_as_roots(self):
        spans = [_span("lost", "x1", parent_id="gone-from-ring")]
        assert render_trace_tree(spans).startswith("lost")

    def test_max_roots_elides_older_roots(self):
        spans = [_span(f"r{i}", f"r{i}", start=float(i)) for i in range(5)]
        text = render_trace_tree(spans, max_roots=2)
        assert text.splitlines()[0].startswith("r3")
        assert "3 earlier roots elided" in text

    def test_critical_path_descends_slowest_children(self):
        spans = [
            _span("root", "r1", dur=10.0),
            _span("fast", "f", "r1", dur=1.0),
            _span("slow", "s", "r1", dur=8.0),
            _span("leaf", "l", "s", dur=7.0),
            _span("other-root", "r2", dur=2.0),
        ]
        assert [s["name"] for s in critical_path(spans)] == [
            "root", "slow", "leaf",
        ]
        assert critical_path([]) == []


class TestEncodeByteIdentity:
    def test_tracing_never_changes_classical_packets(self):
        from repro.codec import ClassicalCodec, ClassicalCodecConfig
        from repro.video import SceneConfig, generate_sequence

        clip = generate_sequence(SceneConfig(height=32, width=48, frames=2))

        def encode():
            codec = ClassicalCodec(ClassicalCodecConfig(qp=12.0))
            stream = codec.encode_sequence(clip)
            return [p.serialize() for p in stream.packets]

        plain = encode()
        enable()
        traced = encode()
        assert traced == plain
        # and the instrumentation actually fired
        names = {s["name"] for s in get_recorder().tail()}
        assert {"classical.transform", "classical.quantize",
                "classical.entropy"} <= names


class TestCli:
    def test_version_flag(self, capsys):
        import repro
        from repro.__main__ import main

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {repro.__version__}"

    def test_sweep_writes_metrics_and_trace_artifacts(self, tmp_path, capsys):
        from repro.__main__ import main

        metrics_path = tmp_path / "metrics.prom"
        trace_path = tmp_path / "trace.jsonl"
        code = main([
            "sweep", "--codecs", "classical", "--qps", "8",
            "--height", "32", "--width", "48", "--frames", "2",
            "--workers", "0",
            "--metrics-out", str(metrics_path),
            "--trace-out", str(trace_path),
        ])
        assert code == 0
        capsys.readouterr()
        text = metrics_path.read_text()
        assert "# TYPE repro_jobs_completed_total counter" in text
        assert 'repro_jobs_completed_total{kind="encode"} 1' in text
        assert "repro_encode_stage_seconds_bucket" in text
        meta, spans = load_trace(trace_path)
        assert meta["version"]
        assert {"runner.submit", "worker.execute"} <= {
            s["name"] for s in spans
        }

        # the dump renders through the CLI viewer
        assert main(["trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "worker.execute" in out
        assert "critical path:" in out

    def test_trace_json_mode_emits_payload(self, tmp_path, capsys):
        from repro.__main__ import main

        enable()
        with span("only"):
            pass
        path = tmp_path / "t.jsonl"
        get_recorder().dump(path)
        assert main(["trace", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [s["name"] for s in payload["spans"]] == ["only"]
        assert [s["name"] for s in payload["critical_path"]] == ["only"]

    def test_trace_empty_file_reports_no_spans(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "empty.jsonl"
        path.write_text(json.dumps(trace_meta()) + "\n")
        assert main(["trace", str(path)]) == 0
        assert "no spans recorded" in capsys.readouterr().out
