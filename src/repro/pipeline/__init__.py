"""``repro.pipeline`` — the package's composable front door.

Layers, designed to be scripted, queued, and sharded:

* **registries** — ``register_codec`` / ``create_codec`` /
  ``available_codecs``: codecs are named plugins behind the
  :class:`VideoCodec` protocol (``"ctvc"`` and ``"classical"``
  register at import); ``register_platform`` / ``create_platform`` /
  ``available_platforms``: accelerator platforms are named plugins
  behind the :class:`AcceleratorModel` protocol (``"nvca"`` plus the
  four published Table II references).
* **configs** — every config class serializes (``to_dict`` /
  ``from_dict`` / JSON) with validation, so jobs travel as documents.
* **facade** — :class:`Pipeline` composes source → codec →
  bitstream round-trip → metrics → optional NVCA hardware analysis
  into one ``run()`` returning typed :class:`EncodeReport` /
  :class:`HardwareReport`; :func:`analyze_hardware` and the platform
  models return :class:`PlatformReport`; :func:`run_many` sweeps
  (codec, config, scene) and (platform, config, resolution) grids
  inline, on a process pool, or — via ``backend="queue"`` — on the
  work-queue execution layer.
* **tasks** — distributed jobs are *task-typed*
  (:mod:`repro.pipeline.tasks`): a job spec's ``"kind"`` field names
  its body — ``"encode"``, ``"hardware"``, ``"dse-point"``,
  ``"ladder-rendition"``, or a :func:`register_task` plugin — and a
  spec without ``kind`` stays an encode job, so pre-existing queue
  state keeps working.
* **dist** — sharded execution (:mod:`repro.pipeline.dist`): a
  claim/lease/ack :class:`~repro.pipeline.dist.JobQueue` (in-memory
  or directory-backed, so workers can live in other processes or on
  other hosts sharing a filesystem), the kind-dispatching worker
  loop, and :class:`~repro.pipeline.dist.QueueRunner` fleets —
  :class:`~repro.pipeline.dist.SweepRunner` aggregating RD curves +
  BD-rate (``repro sweep``), :class:`DSERunner` aggregating
  design-point tables + Pareto fronts (``repro dse``,
  :mod:`repro.pipeline.dse`), and :class:`LadderRunner` building ABR
  ladders rung-by-rung (``repro ladder``,
  :mod:`repro.pipeline.ladder`).  See ``docs/distributed.md`` and
  ``docs/hardware.md``.

Codecs stream: the :class:`VideoCodec` protocol includes
``open_encoder()``/``open_decoder()`` frame-at-a-time sessions
(:mod:`repro.codec.sessions`), and the facade's
``session().run(output=..., progress=...)`` writes the incremental
version-3 container with O(1) frame memory.  The registered
``rd-model`` pseudo-codec sweeps calibrated literature RD curves
through this same surface (simulated reports — it has no bitstream).

Entropy backends plug in one layer below: both built-in codec configs
carry an ``entropy_backend`` field (``"rans"`` fast path by default,
``"cacm"`` paper-exact reference — see
:func:`available_entropy_backends`), it serializes with the rest of the
job document, and the chosen backend is recorded in every bitstream
header so decode always follows the stream, not the local config.
"""

from repro.codec import available_entropy_backends

from .configs import CONFIG_TYPES, ConfigError, load_config
from .facade import (
    EncodeSession,
    Pipeline,
    analyze_hardware,
    build_jobs,
    run_many,
)
from .dist import (
    Autoscaler,
    HttpJobQueue,
    QueueRunner,
    QueueServer,
    SweepResult,
    SweepRunner,
)
from .dse import DSEResult, DSERunner, dse_grid, dse_point_spec
from .ladder import (
    LadderReport,
    LadderRunner,
    LadderSpec,
    Rendition,
    RenditionReport,
)
from .platforms import (
    AcceleratorModel,
    NVCAModel,
    PlatformEntry,
    PlatformRegistryError,
    ReferencePlatform,
    ReferencePlatformConfig,
    available_platforms,
    create_platform,
    platform_entry,
    register_platform,
    unregister_platform,
)
from .registry import (
    CodecRegistryError,
    CodecSpec,
    VideoCodec,
    available_codecs,
    codec_spec,
    create_codec,
    register_codec,
    unregister_codec,
)
from .reports import EncodeReport, HardwareReport, PlatformReport
from .tasks import (
    TaskKind,
    TaskRegistryError,
    available_tasks,
    hydrate_result,
    normalize_spec,
    register_task,
    run_task,
    spec_kind,
    task_kind,
    unregister_task,
)

__all__ = [
    "CONFIG_TYPES",
    "AcceleratorModel",
    "Autoscaler",
    "CodecRegistryError",
    "CodecSpec",
    "ConfigError",
    "DSEResult",
    "DSERunner",
    "EncodeReport",
    "EncodeSession",
    "HardwareReport",
    "HttpJobQueue",
    "LadderReport",
    "LadderRunner",
    "LadderSpec",
    "NVCAModel",
    "Pipeline",
    "PlatformEntry",
    "PlatformRegistryError",
    "PlatformReport",
    "QueueRunner",
    "QueueServer",
    "ReferencePlatform",
    "ReferencePlatformConfig",
    "Rendition",
    "RenditionReport",
    "SweepResult",
    "SweepRunner",
    "TaskKind",
    "TaskRegistryError",
    "VideoCodec",
    "analyze_hardware",
    "available_codecs",
    "available_entropy_backends",
    "available_platforms",
    "available_tasks",
    "build_jobs",
    "codec_spec",
    "create_codec",
    "create_platform",
    "dse_grid",
    "dse_point_spec",
    "hydrate_result",
    "load_config",
    "normalize_spec",
    "platform_entry",
    "register_codec",
    "register_platform",
    "register_task",
    "run_many",
    "run_task",
    "spec_kind",
    "task_kind",
    "unregister_codec",
    "unregister_platform",
    "unregister_task",
]
