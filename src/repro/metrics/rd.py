"""Rate-distortion containers used across the evaluation harness.

The paper reports results as rate-distortion (RD) curves — quality
(PSNR dB or MS-SSIM) against rate (bits per pixel, "bpp") — and as
Bjøntegaard deltas between curves (Table I).  This module provides the
small value types those computations share.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RDPoint", "RDCurve"]


@dataclass(frozen=True)
class RDPoint:
    """One operating point of a codec: rate in bpp, quality in the
    metric's natural unit (dB for PSNR; 0..1 for MS-SSIM)."""

    bpp: float
    quality: float

    def __post_init__(self) -> None:
        if self.bpp <= 0.0:
            raise ValueError(f"bpp must be positive, got {self.bpp}")


@dataclass
class RDCurve:
    """A named RD curve: a set of operating points for one codec/config.

    Points are kept sorted by increasing rate.  ``metric`` records what
    the quality axis means ("psnr" or "ms-ssim"); Bjøntegaard math needs
    this to convert MS-SSIM to a dB-like scale.
    """

    name: str
    points: list[RDPoint] = field(default_factory=list)
    metric: str = "psnr"
    dataset: str = ""

    def add(self, bpp: float, quality: float) -> "RDCurve":
        self.points.append(RDPoint(bpp, quality))
        self.points.sort(key=lambda p: p.bpp)
        return self

    @property
    def rates(self) -> np.ndarray:
        return np.array([p.bpp for p in self.points], dtype=np.float64)

    @property
    def qualities(self) -> np.ndarray:
        return np.array([p.quality for p in self.points], dtype=np.float64)

    def quality_axis_db(self) -> np.ndarray:
        """Quality values mapped to a dB-like axis.

        PSNR is already in dB.  MS-SSIM values q in (0, 1) are mapped to
        ``-10 * log10(1 - q)``, the standard convention in the NVC
        literature (used e.g. by DVC/FVC/DCVC when reporting MS-SSIM
        BD-rate), so that Bjøntegaard integration is well conditioned.
        """
        q = self.qualities
        if self.metric == "psnr":
            return q
        if self.metric == "ms-ssim":
            clipped = np.clip(q, 0.0, 1.0 - 1e-9)
            return -10.0 * np.log10(1.0 - clipped)
        raise ValueError(f"unknown metric {self.metric!r}")

    def validate_monotone(self) -> bool:
        """True when quality is non-decreasing with rate (sane codec)."""
        q = self.qualities
        return bool(np.all(np.diff(q) >= -1e-9))

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)
