"""Work queues for sharded sweeps: claim / lease / ack with retry.

A queue holds *job specs* — the JSON documents
:meth:`repro.pipeline.Pipeline.to_dict` produces — and hands them to
workers under a **lease**: a claim expires after ``lease_seconds``
unless the worker acks a result first, so a worker that dies mid-job
(OOM kill, node loss, ctrl-C) never strands work.  The next
:meth:`~JobQueue.reap_expired` call returns the job to the pending set
with its attempt counter bumped; a job that keeps failing moves to the
dead-letter set after ``max_attempts`` tries instead of looping
forever.  The full protocol semantics (state diagram, at-least-once
caveats) are specified in ``docs/distributed.md``.

Two implementations share the :class:`JobQueue` protocol:

* :class:`MemoryJobQueue` — a ``threading.Lock``-guarded in-process
  queue.  Workers are threads; this is what serial execution and the
  fast tests use.
* :class:`DirectoryJobQueue` — a filesystem-backed queue: every job is
  one JSON file that moves between ``pending/``, ``claimed/``,
  ``done/`` and ``failed/`` subdirectories via atomic ``os.rename``.
  Claiming *is* the rename, so any number of worker processes — on one
  host or on many hosts sharing a filesystem — can pop from the same
  directory without locks, and the queue state survives restarts
  (which is what ``repro sweep --resume`` relies on).

Job identity is caller-chosen (the sweep runner derives ids from the
spec content, making resubmission idempotent).  Lease deadlines and
attempt counters ride in the *filename* of a claimed job, so every
state transition is a single atomic rename with no read-modify-write
window.

A third implementation lives in :mod:`repro.pipeline.dist.net`:
:class:`~repro.pipeline.dist.net.HttpJobQueue` speaks this same
protocol over JSON/HTTP to a :class:`~repro.pipeline.dist.net.QueueServer`
wrapping either queue above, so workers need no shared filesystem at
all.
"""

from __future__ import annotations

import json
import logging
import os
import re
import threading
import time
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

_LOG = logging.getLogger(__name__)

__all__ = [
    "DirectoryJobQueue",
    "Job",
    "JobQueue",
    "MemoryJobQueue",
    "QueueStats",
]

#: characters allowed in job and worker ids (they become file names).
_SAFE = re.compile(r"[^A-Za-z0-9._-]+")
#: field separator inside queue file names; sanitization above
#: guarantees it cannot appear in a job or worker id.
_SEP = "~~"


def _sanitize(name: str) -> str:
    return _SAFE.sub("-", str(name)) or "anon"


@dataclass(frozen=True)
class Job:
    """One claimed unit of work: the spec plus its queue bookkeeping."""

    job_id: str
    spec: dict
    #: how many times this job has been claimed before (0 first try).
    attempts: int = 0


@dataclass(frozen=True)
class QueueStats:
    """Point-in-time queue census (one entry per job, states disjoint)."""

    pending: int
    claimed: int
    done: int
    failed: int

    @property
    def total(self) -> int:
        return self.pending + self.claimed + self.done + self.failed

    @property
    def finished(self) -> int:
        """Jobs in a terminal state (completed or dead-lettered)."""
        return self.done + self.failed


@runtime_checkable
class JobQueue(Protocol):
    """What the worker loop and the sweep runner require of a queue.

    Semantics (both implementations):

    * ``submit`` is idempotent per ``job_id`` — resubmitting an id that
      is already pending, claimed, done, or failed is a no-op returning
      the id, so a resumed sweep can replay its whole grid.
    * ``claim`` transfers one pending job to the caller under a lease;
      ``None`` means nothing is pending right now (work may still be
      claimed by others — check :meth:`stats`).
    * ``claim_batch`` transfers up to ``limit`` pending jobs in one
      call — a *bundle* — under one lease deadline, amortizing queue
      round-trips over many tiny jobs.  Acks stay per-job: a worker
      that dies after acking job *k* of *N* strands only the unacked
      remainder, which ``reap_expired`` returns to pending when the
      shared deadline passes.  An empty list means nothing is pending.
    * ``ack`` finishes a claimed job with its result document and
      returns ``True``.  A **stale** ack — the job's lease was already
      reaped (and possibly reassigned to another worker, when
      ``worker_id`` is given), or the job already finished — is
      *rejected*: ``ack`` returns ``False``, the existing state is
      untouched, and nothing double-aggregates.  Rejection is clean,
      never an exception, so a straggler worker just moves on.
    * ``fail`` records an error; the job returns to pending until it
      has been attempted ``max_attempts`` times, then dead-letters.
    * ``reap_expired`` requeues every claimed job whose lease deadline
      passed (the crashed-worker recovery path).
    * ``attempts`` reads one job's attempt counter: how many times it
      has been handed out and lost (lease reaps and recorded failures
      both bump it, whoever triggers them).  Monotonic until ``retry``
      resets it — which makes it the poison-job circuit breaker's
      evidence: the runner can see a job churning through workers even
      when worker threads win every ``reap_expired`` race.
    * ``results_page`` reads one lexicographic page of completed
      results after a cursor, so huge grids drain incrementally
      instead of materializing every payload at once (``results`` is
      the drain-everything convenience).
    * ``quarantine`` force-dead-letters a pending or claimed job
      *now*, skipping the remaining attempts — the circuit breaker's
      verb for a poison job that keeps killing its workers.  Returns
      ``False`` if the job is unknown or already terminal.
    * ``failure_details`` is the dead-letter ledger: every failed job
      with its error text, attempt count, original spec, and a
      ``quarantined`` marker — enough to triage (``repro failures``)
      and to resubmit.
    * ``retry`` moves one dead-lettered job back to pending with a
      fresh attempt budget (``repro retry``); ``False`` if the id is
      not in the failed set.
    """

    def submit(self, spec: dict, *, job_id: str) -> str: ...

    def claim(self, worker_id: str, *, lease_seconds: float) -> Job | None: ...

    def claim_batch(
        self, worker_id: str, *, lease_seconds: float, limit: int = 1
    ) -> list[Job]: ...

    def ack(
        self, job_id: str, result: dict, *, worker_id: str | None = None
    ) -> bool: ...

    def fail(self, job_id: str, error: str) -> None: ...

    def reap_expired(self) -> list[str]: ...

    def attempts(self, job_id: str) -> int: ...

    def stats(self) -> QueueStats: ...

    def finished_ids(self) -> set[str]: ...

    def results(self) -> dict[str, dict]: ...

    def results_page(
        self, *, after: str | None = None, limit: int = 100
    ) -> tuple[dict[str, dict], str | None]: ...

    def failures(self) -> dict[str, str]: ...

    def failure_details(self) -> dict[str, dict]: ...

    def retry(self, job_id: str) -> bool: ...

    def quarantine(self, job_id: str, reason: str) -> bool: ...


class MemoryJobQueue:
    """In-process :class:`JobQueue`: a lock, four dicts, no I/O.

    Workers against this queue are necessarily threads of the
    submitting process; the codec hot loops live in NumPy, so thread
    workers still overlap usefully.  Used by ``repro sweep --workers N``
    when no ``--queue-dir`` is given, and by the fast tests.
    """

    def __init__(self, *, max_attempts: int = 3):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.max_attempts = max_attempts
        self._lock = threading.Lock()
        self._specs: dict[str, dict] = {}
        self._attempts: dict[str, int] = {}
        self._pending: list[str] = []
        #: job_id -> (worker_id, monotonic deadline)
        self._claimed: dict[str, tuple[str, float]] = {}
        self._done: dict[str, dict] = {}
        self._failed: dict[str, str] = {}
        self._quarantined: set[str] = set()

    def submit(self, spec: dict, *, job_id: str) -> str:
        job_id = _sanitize(job_id)
        with self._lock:
            if job_id not in self._specs:
                self._specs[job_id] = dict(spec)
                self._attempts[job_id] = 0
                self._pending.append(job_id)
        return job_id

    def claim(self, worker_id: str, *, lease_seconds: float) -> Job | None:
        with self._lock:
            if not self._pending:
                return None
            job_id = self._pending.pop(0)
            self._claimed[job_id] = (
                _sanitize(worker_id),
                time.monotonic() + lease_seconds,
            )
            return Job(job_id, dict(self._specs[job_id]), self._attempts[job_id])

    def claim_batch(
        self, worker_id: str, *, lease_seconds: float, limit: int = 1
    ) -> list[Job]:
        """Claim up to ``limit`` pending jobs under one lease deadline.

        One lock acquisition pops the whole bundle, so N tiny jobs cost
        one queue round-trip instead of N.  Acks remain per-job."""
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        worker = _sanitize(worker_id)
        with self._lock:
            deadline = time.monotonic() + lease_seconds
            jobs: list[Job] = []
            while self._pending and len(jobs) < limit:
                job_id = self._pending.pop(0)
                self._claimed[job_id] = (worker, deadline)
                jobs.append(
                    Job(job_id, dict(self._specs[job_id]), self._attempts[job_id])
                )
            return jobs

    def ack(
        self, job_id: str, result: dict, *, worker_id: str | None = None
    ) -> bool:
        with self._lock:
            lease = self._claimed.get(job_id)
            if lease is None:
                # Stale: the lease was reaped (job is pending again or
                # already finished elsewhere).  Reject; state untouched.
                return False
            if worker_id is not None and lease[0] != _sanitize(worker_id):
                # Stale: reaped *and* reassigned — the current claim
                # belongs to another worker now.
                return False
            del self._claimed[job_id]
            self._done[job_id] = result
            return True

    def fail(self, job_id: str, error: str) -> None:
        with self._lock:
            self._claimed.pop(job_id, None)
            if job_id in self._done:
                return
            self._attempts[job_id] = self._attempts.get(job_id, 0) + 1
            if self._attempts[job_id] >= self.max_attempts:
                self._failed[job_id] = error
            else:
                self._pending.append(job_id)

    def reap_expired(self) -> list[str]:
        now = time.monotonic()
        reaped = []
        with self._lock:
            for job_id, (worker, deadline) in list(self._claimed.items()):
                if deadline > now:
                    continue
                del self._claimed[job_id]
                self._attempts[job_id] = self._attempts.get(job_id, 0) + 1
                if self._attempts[job_id] >= self.max_attempts:
                    self._failed[job_id] = (
                        f"lease expired {self._attempts[job_id]} times "
                        f"(last worker: {worker})"
                    )
                else:
                    self._pending.append(job_id)
                reaped.append(job_id)
        return reaped

    def attempts(self, job_id: str) -> int:
        """How many attempts this job has burned (reaps + failures)."""
        with self._lock:
            return self._attempts.get(_sanitize(job_id), 0)

    def stats(self) -> QueueStats:
        with self._lock:
            return QueueStats(
                pending=len(self._pending),
                claimed=len(self._claimed),
                done=len(self._done),
                failed=len(self._failed),
            )

    def finished_ids(self) -> set[str]:
        """Ids in a terminal state — cheap to poll, no payload access."""
        with self._lock:
            return set(self._done) | set(self._failed)

    def results(self) -> dict[str, dict]:
        with self._lock:
            return dict(self._done)

    def results_page(
        self, *, after: str | None = None, limit: int = 100
    ) -> tuple[dict[str, dict], str | None]:
        """One lexicographic page of results with ids after ``after``.

        Returns ``(page, cursor)``; ``cursor`` is the last id of the
        page (pass it back as ``after``) or ``None`` when the page is
        empty.  Pagination is stable because job ids only ever *enter*
        the done set.
        """
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        with self._lock:
            ids = sorted(
                job_id for job_id in self._done
                if after is None or job_id > after
            )[:limit]
            page = {job_id: self._done[job_id] for job_id in ids}
        return page, (ids[-1] if ids else None)

    def failures(self) -> dict[str, str]:
        with self._lock:
            return dict(self._failed)

    def failure_details(self) -> dict[str, dict]:
        """Dead-letter ledger: error, attempts, spec per failed job."""
        with self._lock:
            out: dict[str, dict] = {}
            for job_id, error in self._failed.items():
                record = {
                    "error": error,
                    "attempts": self._attempts.get(job_id, 0),
                    "spec": dict(self._specs.get(job_id, {})),
                }
                if job_id in self._quarantined:
                    record["quarantined"] = True
                out[job_id] = record
            return out

    def retry(self, job_id: str) -> bool:
        """Move one dead-lettered job back to pending, attempts reset."""
        job_id = _sanitize(job_id)
        with self._lock:
            if job_id not in self._failed:
                return False
            del self._failed[job_id]
            self._quarantined.discard(job_id)
            self._attempts[job_id] = 0
            self._pending.append(job_id)
            return True

    def quarantine(self, job_id: str, reason: str) -> bool:
        """Dead-letter a pending or claimed job immediately (the
        poison-job circuit breaker's verb — no more attempts).  A job
        already dead-lettered is *upgraded* in place — the breaker's
        diagnosis replaces a generic lease-expiry error — so the
        record reads the same whichever race the breaker won.  Only a
        completed job refuses quarantine."""
        job_id = _sanitize(job_id)
        with self._lock:
            if job_id in self._done:
                return False
            if job_id in self._failed:
                self._failed[job_id] = reason
                self._quarantined.add(job_id)
                return True
            if job_id in self._claimed:
                del self._claimed[job_id]
            elif job_id in self._pending:
                self._pending.remove(job_id)
            elif job_id not in self._specs:
                return False
            self._failed[job_id] = reason
            self._quarantined.add(job_id)
            return True


class DirectoryJobQueue:
    """Filesystem-backed :class:`JobQueue` for cross-process workers.

    Layout under ``root``::

        pending/{id}~~{attempts}.json            the job spec
        claimed/{id}~~{attempts}~~{deadline_ms}~~{worker}.json
        done/{id}.json                           the result document
        failed/{id}.json                         {"error": ..., "spec": ...}

    Every transition is one atomic ``os.rename`` (claim, requeue) or a
    write-then-unlink (ack, fail), so concurrent workers — including
    workers on other hosts sharing the filesystem — cannot double-run a
    job: whichever rename wins owns the claim, the loser gets
    ``FileNotFoundError`` and moves on.  Lease deadlines are wall-clock
    epoch milliseconds in the claimed filename; hosts sharing a queue
    directory should have loosely synchronized clocks (skew merely
    shortens or stretches leases).

    The directory is durable state: a sweep interrupted and restarted
    with the same root resumes from ``done/`` instead of re-encoding
    (``repro sweep --resume``).
    """

    _STATES = ("pending", "claimed", "done", "failed")

    def __init__(self, root: str | os.PathLike, *, max_attempts: int = 3):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.root = os.fspath(root)
        self.max_attempts = max_attempts
        #: malformed filenames already warned about (warn once each —
        #: every scan revisits them, and a stray file must not spam).
        self._warned: set[str] = set()
        for state in self._STATES:
            os.makedirs(os.path.join(self.root, state), exist_ok=True)

    # -- path helpers -------------------------------------------------
    def _dir(self, state: str) -> str:
        return os.path.join(self.root, state)

    def _pending_path(self, job_id: str, attempts: int) -> str:
        return os.path.join(
            self._dir("pending"), f"{job_id}{_SEP}{attempts}.json"
        )

    def _terminal_path(self, state: str, job_id: str) -> str:
        return os.path.join(self._dir(state), f"{job_id}.json")

    @staticmethod
    def _parse_name(name: str) -> list[str]:
        return name[: -len(".json")].split(_SEP)

    def _warn_malformed(self, state: str, name: str, why: str) -> None:
        key = f"{state}/{name}"
        if key not in self._warned:
            self._warned.add(key)
            _LOG.warning(
                "skipping malformed job file %s in %s: %s "
                "(not produced by this queue; remove it to silence this)",
                name, os.path.join(self.root, state), why,
            )

    def _parse_pending(self, name: str) -> tuple[str, int] | None:
        """``{id}~~{attempts}.json`` -> (id, attempts), or ``None``
        (with a one-time warning) for a file this queue never wrote —
        a corrupt or foreign filename must never abort a whole scan."""
        parts = self._parse_name(name)
        if len(parts) == 2 and parts[1].isdigit():
            return parts[0], int(parts[1])
        self._warn_malformed(
            "pending", name, "want {id}~~{attempts}.json"
        )
        return None

    def _parse_claimed(self, name: str) -> tuple[str, int, int, str] | None:
        """``{id}~~{attempts}~~{deadline_ms}~~{worker}.json`` parsed,
        or ``None`` (with a one-time warning) when malformed."""
        parts = self._parse_name(name)
        if len(parts) == 4 and parts[1].isdigit() and parts[2].isdigit():
            return parts[0], int(parts[1]), int(parts[2]), parts[3]
        self._warn_malformed(
            "claimed", name,
            "want {id}~~{attempts}~~{deadline_ms}~~{worker}.json",
        )
        return None

    def _find_job(self, state: str, job_id: str) -> str | None:
        prefix = f"{job_id}{_SEP}"
        for name in os.listdir(self._dir(state)):
            if name.startswith(prefix):
                return name
        return None

    @staticmethod
    def _write_json(path: str, payload: dict) -> None:
        # Write-then-rename so a concurrently listing worker never sees
        # a half-written JSON document.
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
        os.replace(tmp, path)

    # -- protocol -----------------------------------------------------
    def submit(self, spec: dict, *, job_id: str) -> str:
        job_id = _sanitize(job_id)
        if not self._known(job_id):
            self._write_json(self._pending_path(job_id, 0), dict(spec))
        return job_id

    def _known(self, job_id: str) -> bool:
        for state in ("done", "failed"):
            if os.path.exists(self._terminal_path(state, job_id)):
                return True
        return any(
            self._find_job(state, job_id) for state in ("pending", "claimed")
        )

    def claim(self, worker_id: str, *, lease_seconds: float) -> Job | None:
        worker_id = _sanitize(worker_id)
        for name in sorted(os.listdir(self._dir("pending"))):
            if not name.endswith(".json") or ".tmp." in name:
                continue
            parsed = self._parse_pending(name)
            if parsed is None:
                continue  # junk file; warned, skip, keep scanning
            job_id, attempts = parsed
            deadline_ms = int((time.time() + lease_seconds) * 1000)
            target = os.path.join(
                self._dir("claimed"),
                f"{job_id}{_SEP}{attempts}{_SEP}{deadline_ms}{_SEP}"
                f"{worker_id}.json",
            )
            try:
                os.rename(os.path.join(self._dir("pending"), name), target)
            except FileNotFoundError:
                continue  # lost the race; try the next pending job
            with open(target, "r", encoding="utf-8") as handle:
                spec = json.load(handle)
            return Job(job_id, spec, int(attempts))
        return None

    def claim_batch(
        self, worker_id: str, *, lease_seconds: float, limit: int = 1
    ) -> list[Job]:
        """Claim up to ``limit`` pending jobs under one shared deadline.

        One directory listing feeds the whole bundle; each job is still
        claimed by its own atomic rename (losing a race skips to the
        next candidate), so concurrent bundling workers never
        double-claim.  Acks remain per-job."""
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        worker_id = _sanitize(worker_id)
        deadline_ms = int((time.time() + lease_seconds) * 1000)
        jobs: list[Job] = []
        for name in sorted(os.listdir(self._dir("pending"))):
            if len(jobs) >= limit:
                break
            if not name.endswith(".json") or ".tmp." in name:
                continue
            parsed = self._parse_pending(name)
            if parsed is None:
                continue  # junk file; warned, skip, keep scanning
            job_id, attempts = parsed
            target = os.path.join(
                self._dir("claimed"),
                f"{job_id}{_SEP}{attempts}{_SEP}{deadline_ms}{_SEP}"
                f"{worker_id}.json",
            )
            try:
                os.rename(os.path.join(self._dir("pending"), name), target)
            except FileNotFoundError:
                continue  # lost the race; try the next pending job
            with open(target, "r", encoding="utf-8") as handle:
                spec = json.load(handle)
            jobs.append(Job(job_id, spec, int(attempts)))
        return jobs

    def ack(
        self, job_id: str, result: dict, *, worker_id: str | None = None
    ) -> bool:
        claimed = self._find_job("claimed", job_id)
        if claimed is None:
            # Stale ack: the lease was reaped (job pending again) or
            # the job already finished.  Reject cleanly; whatever state
            # exists — including a result acked by the re-run — stands.
            return False
        if worker_id is not None:
            parsed = self._parse_claimed(claimed)
            if parsed is not None and parsed[3] != _sanitize(worker_id):
                # Stale: reaped *and* reassigned; the claim belongs to
                # another worker now.
                return False
        self._write_json(self._terminal_path("done", job_id), result)
        try:
            os.unlink(os.path.join(self._dir("claimed"), claimed))
        except FileNotFoundError:
            pass
        return True

    def fail(self, job_id: str, error: str) -> None:
        claimed = self._find_job("claimed", job_id)
        if claimed is None or os.path.exists(
            self._terminal_path("done", job_id)
        ):
            return
        path = os.path.join(self._dir("claimed"), claimed)
        parsed = self._parse_claimed(claimed)
        if parsed is None:
            return  # junk file matching the id prefix; never ours
        attempts = parsed[1] + 1
        try:
            with open(path, "r", encoding="utf-8") as handle:
                spec = json.load(handle)
        except FileNotFoundError:
            return  # someone else already moved it
        if attempts >= self.max_attempts:
            self._write_json(
                self._terminal_path("failed", job_id),
                {"error": error, "attempts": attempts, "spec": spec},
            )
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass
        else:
            try:
                os.rename(path, self._pending_path(job_id, attempts))
            except FileNotFoundError:
                pass

    def reap_expired(self) -> list[str]:
        now_ms = int(time.time() * 1000)
        reaped = []
        for name in os.listdir(self._dir("claimed")):
            if not name.endswith(".json") or ".tmp." in name:
                continue
            parsed = self._parse_claimed(name)
            if parsed is None:
                continue  # junk file; warned, skip, keep scanning
            job_id, attempts, deadline_ms, worker = parsed
            if deadline_ms > now_ms:
                continue
            path = os.path.join(self._dir("claimed"), name)
            attempts = attempts + 1
            if attempts >= self.max_attempts:
                try:
                    with open(path, "r", encoding="utf-8") as handle:
                        spec = json.load(handle)
                    self._write_json(
                        self._terminal_path("failed", job_id),
                        {
                            "error": (
                                f"lease expired {attempts} times "
                                f"(last worker: {worker})"
                            ),
                            "attempts": attempts,
                            "spec": spec,
                        },
                    )
                    os.unlink(path)
                except FileNotFoundError:
                    continue
            else:
                try:
                    os.rename(path, self._pending_path(job_id, attempts))
                except FileNotFoundError:
                    continue  # claimer acked or another reaper won
            reaped.append(job_id)
        return reaped

    def attempts(self, job_id: str) -> int:
        """How many attempts this job has burned (reaps + failures).

        Free to answer: the counter rides in the pending/claimed
        filename and in the failed record, so no state is added — any
        process sharing the directory sees the same number."""
        job_id = _sanitize(job_id)
        for state in ("pending", "claimed"):
            name = self._find_job(state, job_id)
            if name is None:
                continue
            parsed = (
                self._parse_pending(name)
                if state == "pending"
                else self._parse_claimed(name)
            )
            if parsed is not None:
                return int(parsed[1])
        try:
            with open(
                self._terminal_path("failed", job_id), encoding="utf-8"
            ) as handle:
                return int(json.load(handle).get("attempts", 0))
        except (FileNotFoundError, json.JSONDecodeError, TypeError, ValueError):
            return 0  # unknown or done: no attempt churn worth reporting

    def _count(self, state: str) -> int:
        return sum(
            1
            for name in os.listdir(self._dir(state))
            if name.endswith(".json") and ".tmp." not in name
        )

    def stats(self) -> QueueStats:
        return QueueStats(
            pending=self._count("pending"),
            claimed=self._count("claimed"),
            done=self._count("done"),
            failed=self._count("failed"),
        )

    def finished_ids(self) -> set[str]:
        """Ids in a terminal state, from filenames alone — the cheap
        thing to poll (no JSON parsing; result payloads load once via
        :meth:`results` when the sweep completes)."""
        out: set[str] = set()
        for state in ("done", "failed"):
            for name in os.listdir(self._dir(state)):
                if name.endswith(".json") and ".tmp." not in name:
                    out.add(name[: -len(".json")])
        return out

    def _load_terminal(self, state: str) -> dict[str, dict]:
        out = {}
        directory = self._dir(state)
        for name in os.listdir(directory):
            if not name.endswith(".json") or ".tmp." in name:
                continue
            with open(os.path.join(directory, name), encoding="utf-8") as fh:
                out[name[: -len(".json")]] = json.load(fh)
        return out

    def results(self) -> dict[str, dict]:
        return self._load_terminal("done")

    def results_page(
        self, *, after: str | None = None, limit: int = 100
    ) -> tuple[dict[str, dict], str | None]:
        """One lexicographic page of results with ids after ``after``
        — only the page's files are opened, so a runner can drain a
        huge grid without ever loading every payload at once.

        Returns ``(page, cursor)``; ``cursor`` is the last id of the
        page (pass it back as ``after``) or ``None`` when empty.
        """
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        directory = self._dir("done")
        ids = sorted(
            name[: -len(".json")]
            for name in os.listdir(directory)
            if name.endswith(".json") and ".tmp." not in name
            and (after is None or name[: -len(".json")] > after)
        )[:limit]
        page: dict[str, dict] = {}
        for job_id in ids:
            try:
                with open(
                    os.path.join(directory, f"{job_id}.json"),
                    encoding="utf-8",
                ) as handle:
                    page[job_id] = json.load(handle)
            except FileNotFoundError:
                continue  # raced with nothing we mind about
        return page, (ids[-1] if ids else None)

    def failures(self) -> dict[str, str]:
        return {
            job_id: record.get("error", "unknown error")
            for job_id, record in self._load_terminal("failed").items()
        }

    def failure_details(self) -> dict[str, dict]:
        """Dead-letter ledger: error, attempts, spec per failed job
        (``failed/{id}.json`` already stores all three)."""
        out: dict[str, dict] = {}
        for job_id, record in self._load_terminal("failed").items():
            detail = {
                "error": record.get("error", "unknown error"),
                "attempts": int(record.get("attempts", 0)),
                "spec": record.get("spec") or {},
            }
            if record.get("quarantined"):
                detail["quarantined"] = True
            out[job_id] = detail
        return out

    def retry(self, job_id: str) -> bool:
        """Move one dead-lettered job back to pending, attempts reset.

        The failed record keeps the original spec, so replay needs no
        other source of truth; concurrent retries of the same id
        converge (the pending write is idempotent, one unlink wins).
        """
        job_id = _sanitize(job_id)
        path = self._terminal_path("failed", job_id)
        try:
            with open(path, encoding="utf-8") as handle:
                record = json.load(handle)
        except FileNotFoundError:
            return False
        self._write_json(
            self._pending_path(job_id, 0), dict(record.get("spec") or {})
        )
        try:
            os.unlink(path)
        except FileNotFoundError:
            pass  # lost a retry race; the pending file stands either way
        return True

    def quarantine(self, job_id: str, reason: str) -> bool:
        """Dead-letter a pending or claimed job immediately (the
        poison-job circuit breaker's verb — no more attempts).  A job
        already dead-lettered is *upgraded* in place — the breaker's
        diagnosis replaces a generic lease-expiry error — so the
        record reads the same whichever race the breaker won.  Only a
        completed job refuses quarantine."""
        job_id = _sanitize(job_id)
        if os.path.exists(self._terminal_path("done", job_id)):
            return False
        failed_path = self._terminal_path("failed", job_id)
        try:
            with open(failed_path, encoding="utf-8") as handle:
                record = json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            record = None
        if record is not None:
            record["error"] = reason
            record["quarantined"] = True
            self._write_json(failed_path, record)
            return True
        for state in ("pending", "claimed"):
            name = self._find_job(state, job_id)
            if name is None:
                continue
            parsed = (
                self._parse_pending(name)
                if state == "pending"
                else self._parse_claimed(name)
            )
            if parsed is None:
                continue  # junk file matching the id prefix; never ours
            path = os.path.join(self._dir(state), name)
            try:
                with open(path, encoding="utf-8") as handle:
                    spec = json.load(handle)
            except FileNotFoundError:
                continue  # raced with a claim/ack; check the other state
            self._write_json(
                self._terminal_path("failed", job_id),
                {
                    "error": reason,
                    "attempts": int(parsed[1]),
                    "spec": spec,
                    "quarantined": True,
                },
            )
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass
            if os.path.exists(self._terminal_path("done", job_id)):
                # The claimer acked inside our race window; its result
                # wins — withdraw the quarantine record.
                try:
                    os.unlink(self._terminal_path("failed", job_id))
                except FileNotFoundError:
                    pass
                return False
            return True
        return False
