"""Reference platforms for the Table II comparison.

Published characteristics of the comparison points — the Intel
i9-9900X CPU, the NVIDIA RTX 3090 GPU, Shao et al.'s interlayer
feature-map-compression accelerator [25], and Alchemist [26] — recorded
verbatim from the paper's Table II.  The NVCA row is *not* a constant:
``nvca_spec`` derives it from this reproduction's performance, energy
and area models, so the published speedup/efficiency ratios become
regression tests of our models rather than copied numbers.

First-order technology scaling (the paper's dagger note on Alchemist's
65 nm figures) is provided by :func:`scale_power` /
:func:`scale_frequency`: delay and dynamic energy scale with feature
size at constant field.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "PlatformSpec",
    "CPU_I9_9900X",
    "GPU_RTX3090",
    "SHAO_TCAS22",
    "ALCHEMIST",
    "REFERENCE_PLATFORMS",
    "REFERENCE_PLATFORM_SPECS",
    "scale_power",
    "scale_frequency",
    "scale_platform",
    "nvca_spec",
]


@dataclass(frozen=True)
class PlatformSpec:
    """One column of the paper's Table II."""

    name: str
    year: str
    task: str
    benchmark: str
    technology_nm: int
    frequency_mhz: float
    precision: str  # "A-W" notation
    power_w: float
    throughput_gops: float
    gate_count_m: float | None = None
    on_chip_kb: float | None = None
    scaled_from_nm: int | None = None

    @property
    def energy_efficiency(self) -> float:
        """GOPS per watt."""
        return self.throughput_gops / self.power_w


CPU_I9_9900X = PlatformSpec(
    name="Intel i9-9900X (CPU)",
    year="-",
    task="Video Compression",
    benchmark="CTVC-Net",
    technology_nm=14,
    frequency_mhz=3500.0,
    precision="FP 32-32",
    power_w=121.2,
    throughput_gops=317.0,
)

GPU_RTX3090 = PlatformSpec(
    name="NVIDIA RTX 3090 (GPU)",
    year="-",
    task="Video Compression",
    benchmark="CTVC-Net",
    technology_nm=8,
    frequency_mhz=1700.0,
    precision="FP 32-32",
    power_w=257.1,
    throughput_gops=1493.0,
)

SHAO_TCAS22 = PlatformSpec(
    name="Shao et al. TCAS-I'22 [25]",
    year="2022",
    task="Feature Map Compression",
    benchmark="VGG16",
    technology_nm=28,
    frequency_mhz=700.0,
    precision="FXP 16-16",
    power_w=0.19,
    throughput_gops=403.0,
    gate_count_m=1.12,
    on_chip_kb=480.0,
)

ALCHEMIST = PlatformSpec(
    name="Alchemist TCAD'22 [26]",
    year="2022",
    task="Video Analysis",
    benchmark="VGG16",
    technology_nm=65,
    frequency_mhz=800.0,
    precision="FXP 16-16",
    power_w=0.33,  # scaled to 28 nm in the paper (dagger)
    throughput_gops=833.0,
    gate_count_m=3.03,
    on_chip_kb=512.0,
    scaled_from_nm=65,
)

REFERENCE_PLATFORMS: tuple[PlatformSpec, ...] = (
    CPU_I9_9900X,
    GPU_RTX3090,
    SHAO_TCAS22,
    ALCHEMIST,
)

#: registry key -> published spec, in Table II column order.  These are
#: the names the ``repro.pipeline`` platform registry registers its
#: reference adapters under (``repro hardware --platform gpu-rtx3090``).
REFERENCE_PLATFORM_SPECS: dict[str, PlatformSpec] = {
    "cpu-i9-9900x": CPU_I9_9900X,
    "gpu-rtx3090": GPU_RTX3090,
    "shao-tcas22": SHAO_TCAS22,
    "alchemist": ALCHEMIST,
}


def scale_frequency(frequency_mhz: float, from_nm: int, to_nm: int) -> float:
    """Gate delay scales with feature size: f' = f * (from / to)."""
    return frequency_mhz * from_nm / to_nm


def scale_power(power_w: float, from_nm: int, to_nm: int) -> float:
    """First-order constant-field scaling: dynamic power per gate falls
    linearly with feature size at a fixed clock."""
    return power_w * to_nm / from_nm


def scale_platform(spec: PlatformSpec, to_nm: int) -> PlatformSpec:
    """Project a platform to another node (frequency and power)."""
    if spec.technology_nm == to_nm:
        return spec
    return replace(
        spec,
        technology_nm=to_nm,
        frequency_mhz=scale_frequency(spec.frequency_mhz, spec.technology_nm, to_nm),
        power_w=scale_power(spec.power_w, spec.technology_nm, to_nm),
        scaled_from_nm=spec.technology_nm,
    )


def nvca_spec(
    sustained_gops: float,
    chip_power_w: float,
    gate_count_m: float,
    on_chip_kb: float,
    frequency_mhz: float = 400.0,
) -> PlatformSpec:
    """Assemble the NVCA Table II column from model outputs."""
    return PlatformSpec(
        name="NVCA (this work)",
        year="2023",
        task="Video Compression",
        benchmark="CTVC-Net",
        technology_nm=28,
        frequency_mhz=frequency_mhz,
        precision="FXP 12-16",
        power_w=chip_power_w,
        throughput_gops=sustained_gops,
        gate_count_m=gate_count_m,
        on_chip_kb=on_chip_kb,
    )
