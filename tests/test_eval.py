"""Tests for the evaluation harness (tables, figures, ablations)."""

import pytest

from repro.eval import (
    PAPER_FIG9B_REDUCTIONS,
    PAPER_NVCA_COLUMN,
    dataflow_ablation,
    fast_algorithm_ablation,
    generate_fig8,
    generate_fig9a,
    generate_fig9b,
    generate_table1,
    generate_table2,
    render_bars,
    render_series,
    render_table,
)


class TestRendering:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [[1, 2.5], [10, 3.25]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len({len(l) for l in lines[2:]}) <= 2

    def test_render_bars(self):
        text = render_bars(["x", "yy"], [1.0, 2.0], unit=" ms")
        assert "#" in text
        assert "2 ms" in text

    def test_render_series(self):
        text = render_series({"m": [(0.1, 30.0)]}, title="S")
        assert "(0.100, 30.000)" in text


class TestTable1:
    @pytest.fixture(scope="class")
    def table(self):
        return generate_table1(mode="calibrated")

    def test_all_cells_present(self, table):
        assert len(table.computed) == 9 * 3 * 2

    def test_anchor_rows_zero(self, table):
        for dataset in ("uvg", "hevcb", "mcljcv"):
            for metric in ("psnr", "ms-ssim"):
                assert table.computed[("h265", dataset, metric)] == pytest.approx(
                    0.0, abs=1e-6
                )

    def test_close_to_paper(self, table):
        """Every regenerated BDBR within 2 points of Table I."""
        assert table.max_abs_deviation() < 2.0

    def test_headline_value(self, table):
        """'35.19% bit rate savings over the H.265 standard ... on the
        UVG dataset' for the sparse model."""
        assert table.computed[("ctvc-sparse", "uvg", "psnr")] == pytest.approx(
            -35.19, abs=1.0
        )
        assert table.computed[("ctvc-sparse", "uvg", "ms-ssim")] == pytest.approx(
            -51.30, abs=1.0
        )

    def test_render(self, table):
        text = table.render()
        assert "ctvc-sparse" in text
        assert "Table I" in text

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            generate_table1(mode="psychic")


class TestTable2:
    @pytest.fixture(scope="class")
    def table(self):
        return generate_table2()

    def test_nvca_column_near_paper(self, table):
        paper = PAPER_NVCA_COLUMN
        assert table.nvca.throughput_gops == pytest.approx(
            paper["throughput_gops"], rel=0.05
        )
        assert table.nvca.power_w == pytest.approx(paper["power_w"], rel=0.05)
        assert table.nvca.gate_count_m == pytest.approx(
            paper["gate_count_m"], rel=0.03
        )
        assert table.nvca.on_chip_kb == paper["on_chip_kb"]
        assert table.performance.fps == pytest.approx(paper["fps_1080p"], rel=0.05)

    def test_ratios_match_paper_claims(self, table):
        assert table.ratios["throughput_vs_gpu"] == pytest.approx(2.4, abs=0.2)
        assert table.ratios["throughput_vs_cpu"] == pytest.approx(11.1, rel=0.06)
        assert table.ratios["efficiency_vs_shao"] == pytest.approx(2.2, rel=0.1)

    def test_render(self, table):
        text = table.render()
        assert "NVCA (this work)" in text
        assert "FXP 12-16" in text


class TestFig8:
    @pytest.fixture(scope="class")
    def panels(self):
        return generate_fig8(include_measured=False)

    def test_four_panels(self, panels):
        keys = [(p.dataset, p.metric) for p in panels]
        assert keys == [
            ("uvg", "psnr"),
            ("uvg", "ms-ssim"),
            ("hevcb", "psnr"),
            ("hevcb", "ms-ssim"),
        ]

    def test_ctvc_wins_every_panel(self, panels):
        """'Our design achieves the lowest bit consumption at the same
        compression quality.'"""
        for panel in panels:
            assert panel.best_method_at_low_rate() == "ctvc-fp"

    def test_series_and_render(self, panels):
        panel = panels[0]
        series = panel.series()
        assert len(series) == 9
        assert "Fig. 8" in panel.render()


class TestFig9:
    def test_fig9a_nvca_25fps(self):
        result = generate_fig9a()
        assert result.nvca_fps == pytest.approx(25.0, rel=0.05)
        assert result.decode_ms["nvca"] == pytest.approx(40.0, rel=0.05)

    def test_fig9a_dcvc_speedup(self):
        """'outperforming DCVC by up to 22.7x in decoding speed'."""
        result = generate_fig9a()
        assert result.speedup_vs_dcvc == pytest.approx(22.7, rel=0.06)

    def test_fig9a_nvca_fastest_neural(self):
        result = generate_fig9a()
        for method in ("elf-vc", "fvc", "vct", "dcvc"):
            assert result.decode_ms["nvca"] < result.decode_ms[method]

    def test_fig9a_render(self):
        assert "22.7x" in generate_fig9a().render()

    def test_fig9b_reductions_shape(self):
        result = generate_fig9b()
        computed = {m.module: m.reduction for m in result.traffic.modules}
        # Ordering agrees with the paper: compensation smallest,
        # frame reconstruction largest.
        assert min(computed, key=computed.get) == "deformable_compensation"
        assert max(computed, key=computed.get) == "frame_reconstruction"
        # Synthesis transforms land on the paper's 44.4% almost
        # exactly; feature extraction deviates most (its baseline
        # accounting in the paper is not fully specified) — shape and
        # band are what we assert (see EXPERIMENTS.md).
        tolerance = {
            "feature_extraction": 0.20,
            "motion_synthesis": 0.02,
            "deformable_compensation": 0.04,
            "residual_synthesis": 0.02,
            "frame_reconstruction": 0.16,
        }
        for module, paper in PAPER_FIG9B_REDUCTIONS.items():
            assert computed[module] == pytest.approx(
                paper, abs=tolerance[module]
            )

    def test_fig9b_render(self):
        assert "overall" in generate_fig9b().render()


class TestAblations:
    def test_fast_algorithm_reductions(self):
        result = fast_algorithm_ablation()
        # F(2,3)/T3 both reduce multiplications 2.25x; sparsity doubles it.
        assert result["fast_reduction"] == pytest.approx(2.25, abs=0.1)
        assert result["sparse_reduction"] == pytest.approx(4.5, abs=0.2)

    def test_dataflow_ablation(self):
        result = dataflow_ablation()
        assert result["chained_gb"] < result["baseline_gb"]
        assert result["chained_dram_mj"] < result["baseline_dram_mj"]
        assert 0.3 < result["reduction"] < 0.6
