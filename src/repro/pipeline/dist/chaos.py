"""Fault injection for the distributed layer: break it on purpose.

Production means partial failure is the steady state — workers die
mid-job, acks vanish, leases get stolen, responses come back mangled.
This module makes every one of those faults *injectable on demand*, so
the recovery machinery (lease expiry + reaping, stale-ack rejection,
idempotent submission, retry budgets, the poison-job circuit breaker)
is exercised by tests and CI instead of trusted on faith.  The
standing invariant a chaos run must uphold: **faults on, byte-identical
curves out** — aggregated sweep results depend only on job specs,
never on which faults fired where.

Three injection seams, one per layer:

* :class:`ChaosQueue` — a proxy wrapping any
  :class:`~repro.pipeline.dist.queues.JobQueue`, injecting queue-level
  faults on the worker-facing verbs: dropped and duplicated acks,
  duplicated submissions, stolen leases (a phantom claimer grabs a
  pending job under a micro-lease and vanishes), delayed claims.
* :class:`ChaosTransport` — a ``transport_hook`` for
  :class:`~repro.pipeline.dist.net.HttpJobQueue`, injecting wire-level
  faults per request: connections dropped before the request leaves,
  responses lost *after* the server executed (the dangerous half of a
  retry), garbled response bodies, stalls.
* :class:`CrashPlan` — a ``checkpoint`` hook for
  :func:`~repro.pipeline.dist.worker.run_worker`, killing a worker (via
  :class:`InjectedCrash`, a ``BaseException`` the worker's job-failure
  handler deliberately does not catch) at a scheduled point in the
  claim/execute/ack cycle: after claim, mid-encode, before ack, after
  ack.  Each point exercises a distinct recovery path.

**Determinism.** Every plan draws its decisions from a private
``random.Random(seed)`` and spends them against explicit budgets
(``ack_drops=2`` means *at most two* acks are ever dropped), with at
most ``max_faults_per_job`` faults charged to any single job.  The
decision sequence is seed-deterministic and replayable; under
concurrent workers the *assignment* of decisions to calls follows
arrival order, but the budgets and the per-job cap bound the blast
radius regardless of interleaving — which is what lets a chaos sweep
guarantee completion and byte-identical aggregation no matter how the
threads race.  Every fault fired is recorded in ``events`` /
``report()`` for assertions and post-mortems.

The ``"chaos-poison"`` task kind (:func:`register_poison_task` /
:func:`poison_spec`) is a job whose *execution* raises
:class:`InjectedCrash` — it kills every worker that claims it, which is
exactly what the :class:`~repro.pipeline.dist.sweep.QueueRunner`
circuit breaker exists to quarantine.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field

from repro.obs.metrics import get_registry

from .queues import Job, JobQueue

__all__ = [
    "ChaosPlan",
    "ChaosQueue",
    "ChaosTransport",
    "CrashPlan",
    "InjectedCrash",
    "POISON_KIND",
    "poison_spec",
    "register_poison_task",
]

#: task kind whose execution kills its worker (see register_poison_task).
POISON_KIND = "chaos-poison"


class InjectedCrash(BaseException):
    """A simulated worker death.

    Subclasses :class:`BaseException` — *not* :class:`Exception` — on
    purpose: :func:`~repro.pipeline.dist.worker.run_worker` catches
    ``Exception`` around job execution to fail-and-continue, and a
    crash must bypass that handler entirely.  An ``InjectedCrash``
    unwinds the whole worker loop exactly like a SIGKILL would end the
    process: no ``fail()`` is recorded, the lease is simply orphaned,
    and recovery is the lease machinery's job.
    """


@dataclass
class ChaosPlan:
    """Seeded, budgeted schedule of queue-level faults.

    Each ``*_budget``-style knob caps how many times that fault may
    fire across the whole run; ``probability`` is the per-eligible-call
    chance of spending a unit of budget (``1.0`` = spend greedily, so
    fault *counts* are exact).  ``max_faults_per_job`` bounds how many
    faults may ever be charged against one job id, which is what keeps
    a legitimate job from accumulating enough lease expiries to trip
    the poison circuit breaker.
    """

    seed: int = 0
    ack_drops: int = 0
    ack_dups: int = 0
    submit_dups: int = 0
    lease_thefts: int = 0
    claim_delays: int = 0
    delay_seconds: float = 0.005
    #: lease used by the phantom thief — tiny, so the stolen lease
    #: expires (and the job recovers) almost immediately.
    theft_lease_seconds: float = 0.01
    probability: float = 0.5
    max_faults_per_job: int = 1
    #: every fault fired: ``{"fault", "op", "job_id"}`` in firing order.
    events: list = field(default_factory=list)

    def __post_init__(self):
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()
        self._budgets = {
            "ack-drop": int(self.ack_drops),
            "ack-dup": int(self.ack_dups),
            "submit-dup": int(self.submit_dups),
            "lease-theft": int(self.lease_thefts),
            "claim-delay": int(self.claim_delays),
        }
        self._per_job: dict[str, int] = {}

    def take(self, fault: str, op: str, job_id: str | None = None) -> bool:
        """Spend one unit of ``fault`` budget, or decline.

        Declines when the budget is exhausted, the per-job fault cap is
        reached, or the seeded coin says not this time.  Thread-safe;
        fires are recorded in ``events``.
        """
        with self._lock:
            if self._budgets.get(fault, 0) <= 0:
                return False
            if (
                job_id is not None
                and self._per_job.get(job_id, 0) >= self.max_faults_per_job
            ):
                return False
            if self._rng.random() >= self.probability:
                return False
            self._budgets[fault] -= 1
            if job_id is not None:
                self._per_job[job_id] = self._per_job.get(job_id, 0) + 1
            self.events.append({"fault": fault, "op": op, "job_id": job_id})
        get_registry().counter(
            "repro_chaos_events_total", "injected faults fired, by kind"
        ).inc(layer="queue", fault=fault)
        return True

    def report(self) -> dict:
        """Fault counts by kind plus the remaining budgets."""
        with self._lock:
            fired: dict[str, int] = {}
            for event in self.events:
                fired[event["fault"]] = fired.get(event["fault"], 0) + 1
            return {
                "fired": fired,
                "remaining": dict(self._budgets),
                "total": len(self.events),
            }


class ChaosQueue:
    """A :class:`~repro.pipeline.dist.queues.JobQueue` proxy that
    injects faults from a :class:`ChaosPlan` on the worker-facing
    verbs, and forwards everything else untouched.

    Faults and the recovery path each one exercises:

    * **dropped ack** — the ack never reaches the queue (the worker
      sees a rejection and moves on); the lease expires, the job is
      reaped and re-run, and the re-run's ack lands.  At-least-once
      execution, idempotent results.
    * **duplicated ack** — the ack is delivered twice; the second is
      rejected as stale (the job is already done).  Exactly-once
      recording.
    * **duplicated submit** — the submission is delivered twice; the
      queue keeps the first (idempotent submission by job id).
    * **lease theft** — before a real claim, a phantom claimer grabs
      one pending job under a micro-lease and vanishes without acking;
      the stolen lease expires and the job recovers via reaping.
    * **delayed claim** — a claim stalls briefly (slow network, slow
      disk); nothing breaks, everything is just later.

    The proxy is itself a valid ``JobQueue`` (it passes the runtime
    protocol check), so runners, workers, and servers accept it
    anywhere a queue goes.  Reads (stats, results, failures) are never
    faulted: observation must stay trustworthy or nothing is testable.
    """

    def __init__(self, inner: JobQueue, plan: ChaosPlan):
        self.inner = inner
        self.plan = plan

    # -- faulted verbs ------------------------------------------------
    def submit(self, spec: dict, *, job_id: str) -> str:
        if self.plan.take("submit-dup", "submit", job_id):
            self.inner.submit(spec, job_id=job_id)
        return self.inner.submit(spec, job_id=job_id)

    def claim(self, worker_id: str, *, lease_seconds: float) -> Job | None:
        if self.plan.take("lease-theft", "claim"):
            stolen = self.inner.claim(
                "chaos-thief",
                lease_seconds=self.plan.theft_lease_seconds,
            )
            if stolen is not None:
                # The thief vanishes without acking; record who got hit
                # so the per-job ledger sees the (single) fault.
                self.plan.events.append(
                    {
                        "fault": "lease-theft",
                        "op": "claim",
                        "job_id": stolen.job_id,
                    }
                )
        if self.plan.take("claim-delay", "claim"):
            import time as _time

            _time.sleep(self.plan.delay_seconds)
        return self.inner.claim(worker_id, lease_seconds=lease_seconds)

    def claim_batch(
        self, worker_id: str, *, lease_seconds: float, limit: int = 1
    ) -> list[Job]:
        # Explicit wrapper (not __getattr__ delegation) so bundled
        # claims stay inside the fault plan: the same theft/delay
        # faults fire once per bundle claim, exactly as for ``claim``.
        if self.plan.take("lease-theft", "claim"):
            stolen = self.inner.claim(
                "chaos-thief",
                lease_seconds=self.plan.theft_lease_seconds,
            )
            if stolen is not None:
                self.plan.events.append(
                    {
                        "fault": "lease-theft",
                        "op": "claim",
                        "job_id": stolen.job_id,
                    }
                )
        if self.plan.take("claim-delay", "claim"):
            import time as _time

            _time.sleep(self.plan.delay_seconds)
        if hasattr(self.inner, "claim_batch"):
            return self.inner.claim_batch(
                worker_id, lease_seconds=lease_seconds, limit=limit
            )
        job = self.inner.claim(worker_id, lease_seconds=lease_seconds)
        return [] if job is None else [job]

    def ack(
        self, job_id: str, result: dict, *, worker_id: str | None = None
    ) -> bool:
        if self.plan.take("ack-drop", "ack", job_id):
            # The ack vanishes in flight: the queue never hears it, the
            # worker sees a rejection.  Lease expiry re-runs the job.
            return False
        accepted = self.inner.ack(job_id, result, worker_id=worker_id)
        if accepted and self.plan.take("ack-dup", "ack", job_id):
            # Delivered twice; the duplicate must be rejected as stale.
            self.inner.ack(job_id, result, worker_id=worker_id)
        return accepted

    # -- clean pass-through -------------------------------------------
    def fail(self, job_id: str, error: str) -> None:
        self.inner.fail(job_id, error)

    def reap_expired(self) -> list[str]:
        return self.inner.reap_expired()

    def stats(self):
        return self.inner.stats()

    def finished_ids(self) -> set[str]:
        return self.inner.finished_ids()

    def results(self) -> dict[str, dict]:
        return self.inner.results()

    def results_page(self, *, after: str | None = None, limit: int = 100):
        return self.inner.results_page(after=after, limit=limit)

    def failures(self) -> dict[str, str]:
        return self.inner.failures()

    def failure_details(self) -> dict[str, dict]:
        return self.inner.failure_details()

    def retry(self, job_id: str) -> bool:
        return self.inner.retry(job_id)

    def quarantine(self, job_id: str, reason: str) -> bool:
        return self.inner.quarantine(job_id, reason)

    def __getattr__(self, name: str):
        # Extras beyond the protocol (heartbeat, health, fleet, ...)
        # delegate so the proxy is drop-in for any concrete queue.
        return getattr(self.inner, name)


class ChaosTransport:
    """Wire-level fault plan: a ``transport_hook`` for
    :class:`~repro.pipeline.dist.net.HttpJobQueue`.

    Budgeted and seeded like :class:`ChaosPlan`.  Faults fire only on a
    request's *first* attempt and only for paths in ``fault_paths``
    (the worker-facing verbs by default), so the client's bounded
    retries always converge and the runner's own submit/drain traffic
    is never sabotaged — the point is to prove worker-side recovery,
    not to break the experimenter's instruments.

    Actions returned to the hook seam:

    * ``"drop"`` — connection failure before the request leaves; the
      server never hears it.  Pure retry.
    * ``"lose-response"`` — the request executes server-side, the
      response dies on the way back.  The retry proves server-side
      idempotency (``/submit``) or leans on lease recovery
      (``/claim``).
    * ``"garble"`` — the response body is corrupted; the client raises
      a clean :class:`~repro.pipeline.dist.net.HttpQueueError` (a dead
      worker, a reaped lease — never silent garbage).
    * ``"delay"`` — a brief stall.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        drops: int = 0,
        lost_responses: int = 0,
        garbles: int = 0,
        delays: int = 0,
        probability: float = 0.5,
        fault_paths: tuple = ("/claim", "/ack", "/fail", "/heartbeat"),
    ):
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._budgets = {
            "drop": int(drops),
            "lose-response": int(lost_responses),
            "garble": int(garbles),
            "delay": int(delays),
        }
        self.fault_paths = tuple(fault_paths)
        self.probability = float(probability)
        #: every fault fired: ``{"action", "method", "path"}`` in order.
        self.events: list = []

    def __call__(self, method: str, path: str, attempt: int) -> str | None:
        if attempt > 0 or path not in self.fault_paths:
            return None
        with self._lock:
            for action, remaining in self._budgets.items():
                if remaining <= 0:
                    continue
                if self._rng.random() >= self.probability:
                    continue
                self._budgets[action] -= 1
                self.events.append(
                    {"action": action, "method": method, "path": path}
                )
                get_registry().counter(
                    "repro_chaos_events_total",
                    "injected faults fired, by kind",
                ).inc(layer="transport", fault=action)
                return action
        return None

    def report(self) -> dict:
        """Fault counts by action plus the remaining budgets."""
        with self._lock:
            fired: dict[str, int] = {}
            for event in self.events:
                fired[event["action"]] = fired.get(event["action"], 0) + 1
            return {
                "fired": fired,
                "remaining": dict(self._budgets),
                "total": len(self.events),
            }


class CrashPlan:
    """Kill workers at scheduled checkpoints in the claim/execute/ack
    cycle.

    Each argument lists zero-based *occurrence indices* of that
    checkpoint, counted fleet-wide: ``before_ack=(2,)`` crashes
    whichever worker is third to reach the before-ack checkpoint.
    Every scheduled crash fires exactly once (the occurrence counter
    only moves forward), so a respawned worker re-running the same job
    sails past the checkpoint that killed its predecessor — no crash
    loops by construction.

    Wire it into a worker with
    ``run_worker(queue, checkpoint=crash_plan.checkpoint)`` or let
    :class:`~repro.pipeline.dist.sweep.QueueRunner` pass it to every
    thread worker it spawns (``checkpoint=...``).  The recovery path
    each stage exercises:

    * ``after-claim`` — died holding an untouched lease: expiry +
      reap re-runs the job from scratch.
    * ``mid-encode`` — died inside job execution: partial work is
      lost, the re-run must be deterministic.
    * ``before-ack`` — died with the result computed but unrecorded:
      the re-run repeats work already done; idempotent results make
      that safe.
    * ``after-ack`` — died right after recording: nothing to recover,
      but a sloppy runner would double-count.  The stale-ack rejection
      and result-keyed aggregation must shrug.
    * ``mid-bundle`` — died after acking job *k* of a claimed bundle:
      the acked results stand, the unacked remainder sits claimed under
      the bundle's shared lease until expiry reaps and re-runs it.  The
      stage only fires for workers running with ``bundle > 1``.
    """

    def __init__(
        self,
        *,
        after_claim: tuple = (),
        mid_encode: tuple = (),
        before_ack: tuple = (),
        after_ack: tuple = (),
        mid_bundle: tuple = (),
    ):
        self._scheduled = {
            "after-claim": set(after_claim),
            "mid-encode": set(mid_encode),
            "before-ack": set(before_ack),
            "after-ack": set(after_ack),
            "mid-bundle": set(mid_bundle),
        }
        self._counters = {stage: 0 for stage in self._scheduled}
        self._lock = threading.Lock()
        #: every crash fired: ``{"stage", "occurrence", "job_id"}``.
        self.crashes: list = []

    def checkpoint(self, stage: str, job: Job) -> None:
        """The ``run_worker`` checkpoint hook; raises
        :class:`InjectedCrash` when this occurrence is scheduled."""
        with self._lock:
            if stage not in self._counters:
                return
            occurrence = self._counters[stage]
            self._counters[stage] += 1
            due = occurrence in self._scheduled[stage]
            if due:
                self.crashes.append(
                    {
                        "stage": stage,
                        "occurrence": occurrence,
                        "job_id": job.job_id,
                    }
                )
        if due:
            get_registry().counter(
                "repro_chaos_events_total", "injected faults fired, by kind"
            ).inc(layer="worker", fault=f"crash-{stage}")
            raise InjectedCrash(
                f"injected crash at {stage} "
                f"(occurrence {occurrence}, job {job.job_id})"
            )


# -- the poison job ---------------------------------------------------------
def poison_spec(tag: str = "poison") -> dict:
    """A job spec that kills every worker claiming it (register the
    kind first with :func:`register_poison_task`)."""
    return {"kind": POISON_KIND, "tag": str(tag)}


def _poison_execute(spec: dict) -> dict:
    raise InjectedCrash(
        f"poison job {spec.get('tag', 'poison')!r}: simulated hard worker "
        "death during execution"
    )


def register_poison_task() -> None:
    """Register the ``"chaos-poison"`` task kind (idempotent).

    Its execution raises :class:`InjectedCrash`, so the claiming worker
    dies instead of failing the job — the signature of a poison job:
    no traceback ever reaches ``fail()``, just a trail of dead workers
    and expired leases.  Quarantining it is the
    :class:`~repro.pipeline.dist.sweep.QueueRunner` circuit breaker's
    job.  Call this in any process that might *claim* a poison job
    (thread-worker fleets inherit the registration from their parent).
    """
    from repro.pipeline.tasks import register_task

    register_task(
        POISON_KIND,
        normalize=dict,
        execute=_poison_execute,
        hydrate=dict,
        description="chaos testing: kills the claiming worker",
        overwrite=True,
    )
