"""Network job transport: the HTTP queue protocol end to end —
wire-level semantics, stale-ack rejection across every queue backend,
sweep/DSE parity over HTTP worker processes (including a killed
worker), server restart + resume over a durable backend, and the
autoscaler's scaling decisions."""

import json
import multiprocessing
import os
import time

import pytest

from repro.pipeline import run_many
from repro.pipeline.dist import (
    Autoscaler,
    DirectoryJobQueue,
    HttpJobQueue,
    HttpQueueError,
    MemoryJobQueue,
    QueueServer,
    SweepRunner,
    job_id_for_spec,
    run_worker,
)
from repro.pipeline.dse import DSERunner, dse_grid

SCENE = {"height": 32, "width": 48, "frames": 2}


def _mp_context():
    return multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods() else None
    )


def _claim_and_die_http(url, lease_seconds):
    """Worker that dies mid-job over the wire: claims, never acks."""
    queue = HttpJobQueue(url)
    job = queue.claim("doomed-http", lease_seconds=lease_seconds)
    assert job is not None
    os._exit(1)


@pytest.fixture
def http_queue():
    """An HttpJobQueue talking to an in-process server over loopback."""
    with QueueServer(MemoryJobQueue(max_attempts=2)) as server:
        yield HttpJobQueue(server.url)


@pytest.fixture(params=["memory", "directory", "http"])
def any_queue(request, tmp_path):
    """One queue per backend, same protocol — the parametrization the
    stale-ack race contract is pinned across."""
    if request.param == "memory":
        yield MemoryJobQueue(max_attempts=3)
    elif request.param == "directory":
        yield DirectoryJobQueue(tmp_path / "q", max_attempts=3)
    else:
        with QueueServer(MemoryJobQueue(max_attempts=3)) as server:
            yield HttpJobQueue(server.url)


class TestHttpProtocol:
    def test_submit_claim_ack_cycle(self, http_queue):
        job_id = http_queue.submit({"x": 1}, job_id="job-a")
        assert http_queue.stats().pending == 1
        job = http_queue.claim("w1", lease_seconds=30.0)
        assert job.job_id == job_id and job.spec == {"x": 1}
        assert job.attempts == 0
        assert http_queue.claim("w2", lease_seconds=30.0) is None
        assert http_queue.ack(job_id, {"ok": True}, worker_id="w1")
        stats = http_queue.stats()
        assert (stats.pending, stats.claimed, stats.done) == (0, 0, 1)
        assert http_queue.results() == {job_id: {"ok": True}}
        assert http_queue.finished_ids() == {job_id}

    def test_submit_is_idempotent(self, http_queue):
        http_queue.submit({"x": 1}, job_id="dup")
        http_queue.submit({"x": 2}, job_id="dup")
        assert http_queue.stats().pending == 1
        assert http_queue.claim("w", lease_seconds=30.0).spec == {"x": 1}

    def test_fail_requeues_then_dead_letters(self, http_queue):
        http_queue.submit({"x": 1}, job_id="flaky")  # max_attempts=2
        job = http_queue.claim("w", lease_seconds=30.0)
        http_queue.fail(job.job_id, "boom 1")
        assert http_queue.stats().pending == 1
        job = http_queue.claim("w", lease_seconds=30.0)
        assert job.attempts == 1
        http_queue.fail(job.job_id, "boom 2")
        stats = http_queue.stats()
        assert (stats.pending, stats.failed) == (0, 1)
        assert "boom 2" in http_queue.failures()["flaky"]

    def test_claim_batch_is_one_round_trip(self, http_queue):
        for index in range(5):
            http_queue.submit({"x": index}, job_id=f"job-{index}")
        bundle = http_queue.claim_batch("w1", lease_seconds=30.0, limit=3)
        assert [job.spec["x"] for job in bundle] == [0, 1, 2]
        stats = http_queue.stats()
        assert (stats.pending, stats.claimed) == (2, 3)
        # past the queue depth: what's left, no error
        rest = http_queue.claim_batch("w2", lease_seconds=30.0, limit=10)
        assert [job.spec["x"] for job in rest] == [3, 4]
        assert http_queue.claim_batch("w3", lease_seconds=30.0, limit=2) == []
        for job in bundle + rest:
            assert http_queue.ack(job.job_id, {"ok": True})
        assert http_queue.stats().done == 5

    def test_claim_batch_wire_response_keeps_single_job_field(
        self, http_queue
    ):
        """The batched /claim response carries "jobs" plus the legacy
        "job" (first-of-bundle) so pre-batching clients keep working."""
        http_queue.submit({"x": 1}, job_id="compat")
        payload = http_queue._request(
            "POST",
            "/claim",
            {"worker_id": "w", "lease_seconds": 30.0, "batch": 2},
        )
        assert [doc["job_id"] for doc in payload["jobs"]] == ["compat"]
        assert payload["job"]["job_id"] == "compat"

    def test_claim_batch_rejects_nonpositive_batch(self, http_queue):
        # client-side: before any request goes out
        with pytest.raises(ValueError, match="limit"):
            http_queue.claim_batch("w", lease_seconds=30.0, limit=0)
        # server-side: a hand-rolled batch=0 is a clean wire error
        with pytest.raises(HttpQueueError):
            http_queue._request(
                "POST",
                "/claim",
                {"worker_id": "w", "lease_seconds": 30.0, "batch": 0},
            )

    def test_attempts_map_is_one_round_trip(self, http_queue):
        """The bulk /attempts form returns every requested counter at
        once — the runner's poison breaker polls it instead of one
        request per unfinished job."""
        for name in ("burned", "fresh"):
            http_queue.submit({"x": 1}, job_id=name)
        assert http_queue.claim("w", lease_seconds=0.05).job_id == "burned"
        time.sleep(0.08)
        assert http_queue.reap_expired() == ["burned"]
        counts = http_queue.attempts_map(["burned", "fresh", "unknown"])
        assert counts == {"burned": 1, "fresh": 0, "unknown": 0}
        assert http_queue.attempts_map([]) == {}
        # the single-job wire form stays intact
        assert http_queue.attempts("burned") == 1

    def test_lease_expiry_reaps_over_the_wire(self, http_queue):
        http_queue.submit({"x": 1}, job_id="leased")
        assert http_queue.claim("w1", lease_seconds=0.05) is not None
        time.sleep(0.08)
        assert http_queue.reap_expired() == ["leased"]
        job = http_queue.claim("w2", lease_seconds=30.0)
        assert job.job_id == "leased" and job.attempts == 1

    def test_results_paginate(self, http_queue):
        for i in range(7):
            job_id = http_queue.submit({"n": i}, job_id=f"{i:05d}-x")
            job = http_queue.claim("w", lease_seconds=30.0)
            http_queue.ack(job.job_id, {"n": job.spec["n"]})
        page, cursor = http_queue.results_page(limit=3)
        assert sorted(page) == ["00000-x", "00001-x", "00002-x"]
        assert cursor == "00002-x"
        page, cursor = http_queue.results_page(after=cursor, limit=3)
        assert sorted(page) == ["00003-x", "00004-x", "00005-x"]
        # drained via pages, reassembled complete
        assert len(http_queue.results()) == 7

    def test_health_and_heartbeat_feed_stats(self, http_queue):
        health = http_queue.health()
        assert health["ok"] and health["backend"] == "MemoryJobQueue"
        http_queue.heartbeat(
            {"worker_id": "w9", "completed": 3, "failed": 1,
             "last_job_id": "00002-x"}
        )
        fleet = http_queue.fleet()
        assert fleet["w9"]["completed"] == 3
        assert fleet["w9"]["failed"] == 1
        assert fleet["w9"]["last_seen_unix"] > 0

    def test_unknown_endpoint_and_bad_body_are_clean_errors(self, http_queue):
        with pytest.raises(HttpQueueError, match="404"):
            http_queue._request("GET", "/nope")
        with pytest.raises(HttpQueueError, match="400"):
            http_queue._request("POST", "/submit", {"spec": {"x": 1}})  # no id

    def test_unreachable_server_raises_after_bounded_retries(self):
        queue = HttpJobQueue(
            "http://127.0.0.1:9", timeout=0.5, retries=2,
            backoff_seconds=0.01,
        )
        start = time.monotonic()
        with pytest.raises(HttpQueueError, match="cannot reach"):
            queue.stats()
        assert time.monotonic() - start < 5.0  # bounded, not hung

    def test_rejects_non_http_urls(self):
        with pytest.raises(ValueError, match="plain http"):
            HttpJobQueue("https://example.com:8642")


class TestObservabilityEndpoints:
    """``GET /metrics`` (fleet-merged Prometheus text), ``GET /trace``
    (JSONL span tail), heartbeat TTL pruning with ``age_seconds``, and
    the retired-worker fold that keeps fleet counters monotone."""

    def _beat(self, worker_id, completed, *, version=None, metrics=None,
              spans=None):
        doc = {"worker_id": worker_id, "completed": completed, "failed": 0,
               "last_job_id": None}
        if version is not None:
            doc["version"] = version
        if metrics is not None:
            doc["metrics"] = metrics
        if spans is not None:
            doc["spans"] = spans
        return doc

    def _worker_snapshot(self, completed):
        from repro.obs.metrics import MetricsRegistry

        reg = MetricsRegistry()
        reg.counter("repro_jobs_completed_total", "jobs acked").inc(
            completed, kind="encode"
        )
        reg.histogram("repro_job_seconds", buckets=(0.1, 1.0)).observe(0.05)
        return reg.snapshot()

    def test_metrics_merges_worker_snapshots_and_queue_gauges(self, http_queue):
        http_queue.submit({"x": 1}, job_id="j1")
        job = http_queue.claim("w1", lease_seconds=30.0)
        http_queue.ack(job.job_id, {"ok": True})
        for worker_id, completed in (("w1", 3), ("w2", 2)):
            http_queue.heartbeat(self._beat(
                worker_id, completed,
                metrics=self._worker_snapshot(completed),
            ))
        text = http_queue.metrics_text()
        # worker counters sum across the fleet; histograms bucket-sum
        assert 'repro_jobs_completed_total{kind="encode"} 5' in text
        assert 'repro_job_seconds_bucket{le="0.1"} 2' in text
        # the server's own series and live queue-depth gauges ride along
        assert "repro_heartbeats_total 2" in text
        assert 'repro_queue_jobs{state="done"} 1' in text
        assert "repro_fleet_workers 2" in text

    def test_fleet_reports_age_and_version(self, http_queue):
        http_queue.heartbeat(self._beat("w1", 0, version="9.9.9"))
        entry = http_queue.fleet()["w1"]
        assert entry["version"] == "9.9.9"
        assert 0.0 <= entry["age_seconds"] < 60.0

    def test_ttl_prunes_silent_workers_but_folds_their_counters(self):
        with QueueServer(
            MemoryJobQueue(), heartbeat_ttl_seconds=0.05
        ) as server:
            queue = HttpJobQueue(server.url)
            queue.heartbeat(self._beat(
                "w1", 4, metrics=self._worker_snapshot(4)
            ))
            assert "w1" in queue.fleet()
            time.sleep(0.1)
            # silent past the TTL: gone from /stats ...
            assert queue.fleet() == {}
            text = queue.metrics_text()
            assert "repro_fleet_workers 0" in text
            # ... yet the fleet counter never regresses (retired fold)
            assert 'repro_jobs_completed_total{kind="encode"} 4' in text

    def test_heartbeat_replacement_keeps_fleet_sum_monotone(self, http_queue):
        for completed in (1, 3):
            http_queue.heartbeat(self._beat(
                "w1", completed, metrics=self._worker_snapshot(completed)
            ))
        # the second snapshot replaces (not adds to) the first
        assert 'repro_jobs_completed_total{kind="encode"} 3' \
            in http_queue.metrics_text()

    def test_trace_tail_is_jsonl_with_meta_header(self, http_queue):
        spans = [
            {"kind": "span", "name": f"s{i}", "span_id": f"x-{i}",
             "parent_id": None, "job_id": None, "start_unix": float(i),
             "dur_s": 0.001}
            for i in range(5)
        ]
        http_queue.heartbeat(self._beat("w1", 0, spans=spans))
        lines = http_queue.trace_tail(limit=2).strip().splitlines()
        rows = [json.loads(line) for line in lines]
        assert rows[0]["kind"] == "meta" and rows[0]["version"]
        assert [r["name"] for r in rows[1:]] == ["s3", "s4"]  # newest

    def test_trace_rejects_bad_limit(self, http_queue):
        with pytest.raises(HttpQueueError, match="400"):
            http_queue.trace_tail(limit=0)

    def test_server_rejects_nonpositive_ttl(self):
        with pytest.raises(ValueError, match="heartbeat_ttl_seconds"):
            QueueServer(MemoryJobQueue(), heartbeat_ttl_seconds=0.0)

    def test_worker_loop_ships_metrics_over_the_wire(self, http_queue):
        from repro.obs.metrics import reset_registry

        reset_registry()
        for index in range(2):
            http_queue.submit({"x": index}, job_id=f"0000{index}-x")
        completed = run_worker(
            http_queue, "obs-worker", lease_seconds=30.0,
            execute=lambda job: {"ok": True},
            on_heartbeat=http_queue.heartbeat,
        )
        assert completed == 2
        text = http_queue.metrics_text()
        assert 'repro_jobs_completed_total{kind="encode"} 2' in text
        assert 'repro_worker_claims_total{outcome="claimed"} 2' in text
        # the client instruments its own transport
        assert 'repro_http_requests_total{path="/claim",status="200"}' in text
        fleet = http_queue.fleet()
        import repro

        assert fleet["obs-worker"]["version"] == repro.__version__


class TestStaleAck:
    def test_ack_after_reap_is_rejected(self, any_queue):
        """The lease-expiry race: a straggler whose job was reaped and
        re-acked elsewhere must get a clean rejection — idempotent, no
        double-aggregation."""
        queue = any_queue
        queue.submit({"x": 1}, job_id="raced")
        slow = queue.claim("w1", lease_seconds=0.05)
        time.sleep(0.08)
        assert queue.reap_expired() == ["raced"]
        fast = queue.claim("w2", lease_seconds=30.0)
        assert queue.ack(fast.job_id, {"from": "w2"}, worker_id="w2") is True
        # the straggler returns: job is already terminal
        assert queue.ack(slow.job_id, {"from": "w1"}, worker_id="w1") is False
        assert queue.stats().done == 1
        assert queue.results()["raced"] == {"from": "w2"}

    def test_ack_after_reassignment_is_rejected(self, any_queue):
        """Straggler acks while the *new* owner still holds the claim:
        the worker-id check must refuse the old owner's result."""
        queue = any_queue
        queue.submit({"x": 1}, job_id="stolen")
        stale = queue.claim("w1", lease_seconds=0.05)
        time.sleep(0.08)
        queue.reap_expired()
        assert queue.claim("w2", lease_seconds=30.0) is not None
        assert queue.ack(stale.job_id, {"from": "w1"}, worker_id="w1") is False
        stats = queue.stats()
        assert (stats.claimed, stats.done) == (1, 0)  # w2 still owns it
        assert queue.ack(stale.job_id, {"from": "w2"}, worker_id="w2") is True
        assert queue.results()["stolen"] == {"from": "w2"}

    def test_worker_loop_drops_stale_ack(self, any_queue):
        """run_worker itself must not count a stale ack as completed."""
        queue = any_queue
        queue.submit({"x": 1}, job_id="slowjob")

        done_elsewhere = {}

        def slow_execute(job):
            # w1 outlives its lease; meanwhile w2 takes and finishes
            # the job, so w1's eventual ack must be stale
            time.sleep(0.08)
            queue.reap_expired()
            stolen = queue.claim("w2", lease_seconds=30.0)
            if stolen is not None:
                queue.ack(stolen.job_id, {"late": False}, worker_id="w2")
                done_elsewhere[stolen.job_id] = True
            return {"late": True}

        completed = run_worker(
            queue, "w1", lease_seconds=0.05, max_jobs=1,
            execute=slow_execute,
        )
        assert done_elsewhere  # the race actually happened
        assert completed == 0  # w1's ack was stale, not counted
        assert queue.results()["slowjob"] == {"late": False}


class TestHttpSweepParity:
    GRID = dict(
        codecs=["classical", "ctvc"],
        codec_configs=[{"qp": 8.0, "qstep": 8.0, "channels": 8}],
        scenes=[SCENE],
        anchor="classical",
    )

    def canon(self, result):
        payload = result.to_dict()
        return (
            json.dumps(payload["curves"], sort_keys=True),
            json.dumps(payload["bd_rate"], sort_keys=True),
        )

    def test_http_workers_match_serial(self):
        serial = SweepRunner(workers=0, **self.GRID).run()
        assert serial.ok
        with QueueServer(MemoryJobQueue()) as server:
            net = SweepRunner(
                queue=HttpJobQueue(server.url), workers=2,
                lease_seconds=60.0, **self.GRID,
            ).run()
        assert net.ok, net.failures
        assert self.canon(net) == self.canon(serial)

    def test_http_sweep_survives_killed_worker(self):
        """One worker claims over the wire and dies; the sweep still
        completes byte-identically."""
        serial = SweepRunner(
            codecs=["classical"],
            codec_configs=[{"qp": 8.0}, {"qp": 16.0}, {"qp": 32.0}],
            scenes=[SCENE], workers=0,
        ).run()
        with QueueServer(MemoryJobQueue()) as server:
            runner = SweepRunner(
                codecs=["classical"],
                codec_configs=[{"qp": 8.0}, {"qp": 16.0}, {"qp": 32.0}],
                scenes=[SCENE],
                queue=HttpJobQueue(server.url),
                workers=2,
                lease_seconds=0.3,
            )
            runner.submit()
            victim = _mp_context().Process(
                target=_claim_and_die_http, args=(server.url, 0.3)
            )
            victim.start()
            victim.join(timeout=30)
            assert victim.exitcode == 1
            result = runner.run()
        assert result.ok, result.failures
        assert len(result.reports) == 3
        assert self.canon(result) == self.canon(serial)

    def test_run_many_queue_url_matches_inline(self):
        inline = run_many(codecs=["classical"],
                          codec_configs=[{"qp": 8.0}, {"qp": 16.0}],
                          scenes=[SCENE])
        with QueueServer(MemoryJobQueue()) as server:
            queued = run_many(codecs=["classical"],
                              codec_configs=[{"qp": 8.0}, {"qp": 16.0}],
                              scenes=[SCENE],
                              backend="queue", workers=2,
                              queue_url=server.url)
        for a, b in zip(inline, queued):
            a_dict, b_dict = a.to_dict(), b.to_dict()
            for key in ("encode_seconds", "decode_seconds"):
                a_dict.pop(key), b_dict.pop(key)
            assert a_dict == b_dict

    def test_queue_url_demands_queue_backend(self):
        with pytest.raises(ValueError, match="queue_url"):
            run_many(codecs=["classical"], scenes=[SCENE],
                     queue_url="http://127.0.0.1:1")


class TestHttpDSEParity:
    def test_dse_grid_over_http_matches_serial(self):
        specs = dse_grid("geometry", values=((6, 6), (12, 12), (18, 18)))
        serial = DSERunner(specs, workers=0).run()
        assert serial.ok
        with QueueServer(MemoryJobQueue()) as server:
            net = DSERunner(
                specs, queue=HttpJobQueue(server.url), workers=2,
                lease_seconds=60.0,
            ).run()
        assert net.ok, net.failures

        def canon(result):
            payload = result.to_dict()
            return json.dumps(
                {"points": payload["points"], "pareto": payload["pareto"]},
                sort_keys=True,
            )

        assert canon(net) == canon(serial)


class TestServerRestartResume:
    def test_directory_backend_survives_server_restart(self, tmp_path):
        """Durable state lives in the backing queue, not the server: a
        new server over the same directory resumes the grid."""
        root = str(tmp_path / "q")
        grid = dict(
            codecs=["classical"],
            codec_configs=[{"qp": 8.0}, {"qp": 16.0}],
            scenes=[SCENE],
        )
        server = QueueServer(
            DirectoryJobQueue(root, max_attempts=3)
        ).start()
        try:
            runner = SweepRunner(
                queue=HttpJobQueue(server.url), workers=0, **grid
            )
            runner.submit()
            # complete exactly one job through the first server
            run_worker(runner.queue, "w1", lease_seconds=60.0, max_jobs=1)
            assert runner.queue.stats().done == 1
        finally:
            server.stop()

        # first server is gone; its client now fails fast
        with pytest.raises(HttpQueueError):
            HttpJobQueue(server.url, retries=0, timeout=0.5).stats()

        restarted = QueueServer(
            DirectoryJobQueue(root, max_attempts=3)
        ).start()
        try:
            queue = HttpJobQueue(restarted.url)
            assert queue.stats().done == 1  # state survived
            resumed = SweepRunner(queue=queue, workers=0, **grid)
            result = resumed.run()
        finally:
            restarted.stop()
        assert result.ok, result.failures
        assert len(result.reports) == 2
        serial = SweepRunner(workers=0, **grid).run()
        assert json.dumps(result.to_dict()["curves"], sort_keys=True) == \
            json.dumps(serial.to_dict()["curves"], sort_keys=True)


class _FakeWorker:
    def __init__(self):
        self.alive = True
        self.terminated = False

    def is_alive(self):
        return self.alive

    def terminate(self):
        self.alive = False
        self.terminated = True

    def join(self, timeout=None):
        pass


class TestAutoscaler:
    def test_desired_workers_decision_table(self):
        scaler = Autoscaler(
            min_workers=0, max_workers=4, backlog_per_worker=4
        )
        assert scaler.desired_workers(pending=0, claimed=0) == 0
        assert scaler.desired_workers(pending=1, claimed=0) == 1
        assert scaler.desired_workers(pending=8, claimed=0) == 2
        assert scaler.desired_workers(pending=100, claimed=0) == 4  # clamp
        assert scaler.desired_workers(pending=0, claimed=1) == 1
        # a freshly expired lease asks for an extra hand
        assert scaler.desired_workers(pending=4, claimed=0, expired=1) == 2
        floor = Autoscaler(min_workers=2, max_workers=4)
        assert floor.desired_workers(pending=0, claimed=0) == 2

    def test_step_scales_up_then_down_when_idle(self):
        queue = MemoryJobQueue()
        for i in range(8):
            queue.submit({"n": i}, job_id=f"{i:05d}-x")
        clock = {"t": 0.0}
        scaler = Autoscaler(
            queue, _FakeWorker,
            min_workers=0, max_workers=4, backlog_per_worker=4,
            cooldown_seconds=10.0, clock=lambda: clock["t"],
        )
        summary = scaler.step()
        assert summary["action"] == "scale-up:2"
        assert len(scaler.workers) == 2
        # cooldown holds even though depth would ask for more
        for i in range(8, 16):
            queue.submit({"n": i}, job_id=f"{i:05d}-x")
        assert scaler.step()["action"] == "hold"
        clock["t"] = 11.0
        assert scaler.step()["action"] == "scale-up:2"
        # drain the queue; idle fleet scales to nothing after cooldown
        while True:
            job = queue.claim("w", lease_seconds=30.0)
            if job is None:
                break
            queue.ack(job.job_id, {})
        clock["t"] = 30.0
        summary = scaler.step()
        assert summary["action"] == "scale-down:4"
        assert scaler.workers == []

    def test_no_scale_down_while_jobs_in_flight(self):
        queue = MemoryJobQueue()
        queue.submit({"n": 0}, job_id="00000-x")
        clock = {"t": 0.0}
        scaler = Autoscaler(
            queue, _FakeWorker, min_workers=0, max_workers=2,
            cooldown_seconds=0.0, clock=lambda: clock["t"],
        )
        scaler.step()
        assert len(scaler.workers) == 1
        assert queue.claim("w", lease_seconds=30.0) is not None
        clock["t"] = 100.0
        # claimed=1 keeps desired at 1 and forbids termination
        assert scaler.step()["action"] == "hold"
        assert len(scaler.workers) == 1

    def test_shutdown_terminates_fleet(self):
        queue = MemoryJobQueue()
        queue.submit({"n": 0}, job_id="00000-x")
        scaler = Autoscaler(queue, _FakeWorker, cooldown_seconds=0.0)
        scaler.step()
        workers = scaler.workers
        assert workers
        scaler.shutdown()
        assert scaler.workers == []
        assert all(w.terminated for w in workers)

    def test_autoscaled_http_fleet_drains_a_real_grid(self):
        """End to end: server + autoscaler-spawned HTTP worker
        processes complete a queue nobody else is draining."""
        backing = MemoryJobQueue()
        with QueueServer(backing) as server:
            from repro.pipeline.dist import spawn_http_worker
            from repro.pipeline.tasks import normalize_spec

            specs = [
                normalize_spec(spec)
                for spec in dse_grid(
                    "geometry", values=((6, 6), (12, 12))
                )
            ]
            queue = HttpJobQueue(server.url)
            for index, spec in enumerate(specs):
                queue.submit(spec, job_id=job_id_for_spec(index, spec))
            scaler = Autoscaler(
                queue,
                lambda: spawn_http_worker(server.url, lease_seconds=30.0),
                min_workers=0, max_workers=2, backlog_per_worker=1,
                cooldown_seconds=0.0,
            )
            try:
                deadline = time.time() + 60
                while queue.stats().done < len(specs):
                    scaler.step()
                    assert time.time() < deadline, "fleet never drained grid"
                    time.sleep(0.05)
            finally:
                scaler.shutdown()
            assert queue.stats().done == len(specs)
            assert len(queue.results()) == len(specs)
            # heartbeats from the autoscaled workers reached /stats
            assert queue.fleet()
