"""Experiment harness: regenerates every table and figure of the paper."""

from .ablations import (
    SparsityPoint,
    attention_ablation,
    dataflow_ablation,
    fast_algorithm_ablation,
    render_sparsity_sweep,
    sparsity_sweep,
    tile_size_exploration,
    resolution_sweep,
    gop_size_ablation,
)
from .fig8 import Fig8Panel, generate_fig8, measured_rd_curve
from .fig9 import (
    LITERATURE_DECODE_MS,
    PAPER_FIG9B_REDUCTIONS,
    Fig9aResult,
    Fig9bResult,
    generate_fig9a,
    generate_fig9b,
)
from .runner import main, run_all
from .table1 import Table1Result, generate_table1, measured_variant_deltas
from .table2 import PAPER_NVCA_COLUMN, Table2Result, generate_table2
from .tables import render_bars, render_series, render_table

__all__ = [
    "Fig8Panel",
    "Fig9aResult",
    "Fig9bResult",
    "LITERATURE_DECODE_MS",
    "PAPER_FIG9B_REDUCTIONS",
    "PAPER_NVCA_COLUMN",
    "SparsityPoint",
    "Table1Result",
    "Table2Result",
    "attention_ablation",
    "dataflow_ablation",
    "fast_algorithm_ablation",
    "generate_fig8",
    "generate_fig9a",
    "generate_fig9b",
    "generate_table1",
    "generate_table2",
    "main",
    "measured_rd_curve",
    "measured_variant_deltas",
    "render_bars",
    "render_series",
    "render_sparsity_sweep",
    "render_table",
    "run_all",
    "sparsity_sweep",
    "tile_size_exploration",
    "resolution_sweep",
    "gop_size_ablation",
]
