"""Property-based tests (hypothesis) on the core invariants.

These sweep randomized shapes, contents, and parameters over the
load-bearing algebra: fast-transform == direct operator, pruning
sparsity exactness, entropy-coding round trips, quantization bounds,
and Bjøntegaard identities.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec import LaplacianModel, SymbolModel, decode_symbols, encode_symbols
from repro.core import (
    PAPER_F23,
    PAPER_T3_64,
    compress_kernel,
    cook_toom_conv,
    fast_conv2d,
    fast_deconv2d,
    fta_deconv,
    importance_matrix,
    prune_transform_weights,
)
from repro.metrics import RDCurve, bd_rate
from repro.nn import QuantSpec
from repro.nn import functional as F

_SETTINGS = dict(max_examples=25, deadline=None)


class TestFastTransformEquivalence:
    @settings(**_SETTINGS)
    @given(
        h=st.integers(2, 20),
        w=st.integers(2, 20),
        cin=st.integers(1, 5),
        cout=st.integers(1, 5),
        seed=st.integers(0, 2**31),
    )
    def test_fast_conv_equals_direct(self, h, w, cin, cout, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((cin, h, w))
        weight = rng.standard_normal((cout, cin, 3, 3))
        ours = fast_conv2d(x, weight, None, PAPER_F23, padding=1)
        ref = F.conv2d(x, weight, None, 1, 1)
        assert np.abs(ours - ref).max() < 1e-9

    @settings(**_SETTINGS)
    @given(
        h=st.integers(2, 12),
        w=st.integers(2, 12),
        cin=st.integers(1, 4),
        cout=st.integers(1, 4),
        seed=st.integers(0, 2**31),
    )
    def test_fast_deconv_equals_direct(self, h, w, cin, cout, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((cin, h, w))
        weight = rng.standard_normal((cout, cin, 4, 4))
        ours = fast_deconv2d(x, weight, None, PAPER_T3_64, padding=1)
        ref = F.conv_transpose2d(x, weight, None, 2, 1)
        assert np.abs(ours - ref).max() < 1e-9

    @settings(**_SETTINGS)
    @given(m=st.integers(1, 6), k=st.integers(2, 5), seed=st.integers(0, 2**31))
    def test_cook_toom_family(self, m, k, seed):
        rng = np.random.default_rng(seed)
        spec = cook_toom_conv(m, k)
        x = rng.standard_normal(spec.p)
        g = rng.standard_normal(k)
        ref = np.array([np.dot(g, x[j : j + k]) for j in range(m)])
        assert np.abs(spec.apply_1d(x, g) - ref).max() < 1e-7

    @settings(**_SETTINGS)
    @given(
        r=st.integers(1, 4),
        s=st.integers(2, 3),
        ksub=st.integers(1, 2),
        seed=st.integers(0, 2**31),
    )
    def test_fta_family(self, r, s, ksub, seed):
        k = s * ksub
        rng = np.random.default_rng(seed)
        spec = fta_deconv(r, s, k)
        x = rng.standard_normal(spec.p)
        g = rng.standard_normal(k)
        full = np.zeros((spec.p - 1) * s + k)
        for i, xi in enumerate(x):
            full[i * s : i * s + k] += xi * g
        ref = full[spec.output_offset : spec.output_offset + spec.m]
        assert np.abs(spec.apply_1d(x, g) - ref).max() < 1e-7

    @settings(**_SETTINGS)
    @given(m=st.integers(1, 5), k=st.integers(2, 4))
    def test_importance_matrix_properties(self, m, k):
        spec = cook_toom_conv(m, k)
        q = importance_matrix(spec)
        assert q.shape == (spec.mu, spec.mu)
        assert np.allclose(q, q.T)
        assert (q >= 0).all()


class TestPruningProperties:
    @settings(**_SETTINGS)
    @given(
        oc=st.integers(1, 6),
        ic=st.integers(1, 6),
        rho=st.sampled_from([0.0, 0.125, 0.25, 0.5, 0.75]),
        seed=st.integers(0, 2**31),
    )
    def test_balanced_sparsity_exact(self, oc, ic, rho, seed):
        rng = np.random.default_rng(seed)
        weight = rng.standard_normal((oc, ic, 3, 3))
        pruned = prune_transform_weights(weight, PAPER_F23, rho=rho)
        keep = round((1 - rho) * 16)
        assert np.all(pruned.nonzeros_per_patch() == keep)

    @settings(**_SETTINGS)
    @given(
        oc=st.integers(1, 4),
        ic=st.integers(1, 4),
        rho=st.floats(0.1, 0.9),
        seed=st.integers(0, 2**31),
    )
    def test_compression_roundtrip(self, oc, ic, rho, seed):
        rng = np.random.default_rng(seed)
        weight = rng.standard_normal((oc, ic, 4, 4))
        pruned = prune_transform_weights(weight, PAPER_T3_64, rho=rho, mode="global")
        packed = compress_kernel(pruned)
        assert np.allclose(packed.to_dense(), pruned.values)

    @settings(**_SETTINGS)
    @given(seed=st.integers(0, 2**31))
    def test_masked_output_bounded_by_dense(self, seed):
        """Pruning at rho=0 equals dense; higher rho only perturbs."""
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((3, 10, 10))
        weight = rng.standard_normal((2, 3, 3, 3))
        dense = fast_conv2d(x, weight, None, PAPER_F23, 1)
        rho0 = prune_transform_weights(weight, PAPER_F23, rho=0.0)
        out0 = fast_conv2d(x, weight, None, PAPER_F23, 1, transform_weights=rho0.values)
        assert np.abs(out0 - dense).max() < 1e-10


class TestEntropyProperties:
    @settings(**_SETTINGS)
    @given(
        nsym=st.integers(2, 40),
        count=st.integers(1, 600),
        seed=st.integers(0, 2**31),
    )
    def test_roundtrip_any_alphabet(self, nsym, count, seed):
        rng = np.random.default_rng(seed)
        freqs = rng.integers(1, 1000, size=nsym)
        model = SymbolModel(freqs)
        symbols = rng.integers(0, nsym, size=count)
        data = encode_symbols(symbols, model)
        assert np.array_equal(decode_symbols(data, count, model), symbols)

    @settings(**_SETTINGS)
    @given(
        scale=st.floats(0.01, 50.0),
        support=st.integers(1, 64),
        seed=st.integers(0, 2**31),
    )
    def test_laplacian_roundtrip(self, scale, support, seed):
        rng = np.random.default_rng(seed)
        model = LaplacianModel(scale, support)
        values = np.clip(
            np.round(rng.laplace(0, scale, 200)), -support, support
        ).astype(int)
        symbols = np.array([model.symbol_of(v) for v in values])
        data = encode_symbols(symbols, model.model)
        decoded = decode_symbols(data, len(symbols), model.model)
        assert np.array_equal(
            np.array([model.value_of(s) for s in decoded]), values
        )


class TestQuantizationProperties:
    @settings(**_SETTINGS)
    @given(
        bits=st.integers(2, 16),
        scale_exp=st.floats(-3, 3),
        seed=st.integers(0, 2**31),
    )
    def test_error_bounded_by_half_step(self, bits, scale_exp, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(200) * (10.0**scale_exp)
        spec = QuantSpec.from_tensor(x, bits)
        err = np.abs(x - spec.fake_quant(x))
        assert err.max() <= spec.scale / 2 + 1e-12

    @settings(**_SETTINGS)
    @given(bits=st.integers(2, 16), seed=st.integers(0, 2**31))
    def test_idempotent(self, bits, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(100)
        spec = QuantSpec.from_tensor(x, bits)
        once = spec.fake_quant(x)
        assert np.array_equal(once, spec.fake_quant(once))


class TestBjontegaardProperties:
    @settings(**_SETTINGS)
    @given(
        factor=st.floats(0.3, 3.0),
        seed=st.integers(0, 2**31),
    )
    def test_uniform_rate_scaling_identity(self, factor, seed):
        """Scaling every rate by f gives BD-rate exactly (f-1)*100%."""
        rng = np.random.default_rng(seed)
        rates = np.sort(rng.uniform(0.05, 1.0, size=4))
        rates += np.arange(4) * 1e-3  # strictly increasing
        quals = np.sort(rng.uniform(30, 42, size=4))
        quals += np.arange(4) * 1e-6
        anchor = RDCurve("a")
        test = RDCurve("t")
        for r, q in zip(rates, quals):
            anchor.add(float(r), float(q))
            test.add(float(r * factor), float(q))
        expected = (factor - 1.0) * 100.0
        # The default trapezoid-on-log integration carries a few-1e-6
        # numerical error on some curves (e.g. factor=2.0, seed=12707);
        # pchip is exact to machine precision.
        assert bd_rate(anchor, test) == pytest.approx(expected, abs=1e-4)
        assert bd_rate(anchor, test, method="pchip") == pytest.approx(
            expected, abs=1e-6
        )

    @settings(**_SETTINGS)
    @given(seed=st.integers(0, 2**31))
    def test_antisymmetry_of_roles(self, seed):
        """Swapping anchor and test inverts the rate ratio:
        (1 + a/100) * (1 + b/100) == 1."""
        rng = np.random.default_rng(seed)
        rates = np.sort(rng.uniform(0.05, 1.0, size=4)) + np.arange(4) * 1e-3
        quals = np.sort(rng.uniform(30, 42, size=4)) + np.arange(4) * 1e-6
        a = RDCurve("a")
        b = RDCurve("b")
        for r, q in zip(rates, quals):
            a.add(float(r), float(q))
            b.add(float(r * 0.7), float(q))
        forward = bd_rate(a, b)
        backward = bd_rate(b, a)
        assert (1 + forward / 100) * (1 + backward / 100) == pytest.approx(
            1.0, abs=1e-6
        )


class TestWindowAttentionProperties:
    @settings(**_SETTINGS)
    @given(
        h=st.integers(2, 15),
        w=st.integers(2, 15),
        window=st.integers(2, 4),
        seed=st.integers(0, 2**31),
    )
    def test_partition_merge_roundtrip(self, h, w, window, seed):
        from repro.nn import window_merge, window_partition

        rng = np.random.default_rng(seed)
        x = rng.standard_normal((3, h, w))
        tokens, padded = window_partition(x, window)
        back = window_merge(tokens, window, padded, (h, w))
        assert np.array_equal(back, x)
