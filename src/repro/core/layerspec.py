"""Layer-level intermediate representation shared by codec and hardware.

The accelerator model does not execute pixels; it consumes a *layer
graph* — an ordered list of :class:`LayerSpec` records describing every
operation of the CTVC-Net decoder with concrete shapes (e.g. at 1080p).
``repro.codec.layergraph`` produces these from network modules, and
``repro.hw`` maps them onto the SFTC/DCC, counts cycles and DRAM
traffic, and detects the Conv-Conv-DeConv chains the heterogeneous
layer chaining dataflow fuses (Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["LayerSpec", "LayerGraph"]

#: Operation kinds understood by the hardware mapper.
KINDS = ("conv", "deconv", "dfconv", "attention", "pool", "eltwise")


@dataclass(frozen=True)
class LayerSpec:
    """One operation of the decoder with concrete shapes.

    ``module`` names the paper-level decoder module this layer belongs
    to (one of the five bars of Fig. 9(b)): "feature_extraction",
    "motion_synthesis", "deformable_compensation", "residual_synthesis",
    "frame_reconstruction".
    """

    name: str
    module: str
    kind: str
    in_channels: int
    out_channels: int
    kernel: int
    stride: int
    in_h: int
    in_w: int
    out_h: int
    out_w: int
    groups: int = 1
    #: Extra multiply count for ops the MAC formula below cannot model
    #: (window attention projections); see SwinAttention.attention_macs.
    extra_macs: int = 0
    #: Heterogeneous-layer-chaining group (Fig. 7): layers sharing a
    #: non-negative chain_id stream intermediates through the Input
    #: Buffer; -1 means unchained.  The paper's chains are "two Convs
    #: followed by a DeConv" — a ResBlock plus an optional synthesis
    #: deconvolution.
    chain_id: int = -1

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown kind {self.kind!r}")

    # -- workload accounting -------------------------------------------
    def macs(self) -> int:
        """Multiply-accumulate count of a direct implementation."""
        if self.kind == "attention":
            return self.extra_macs
        if self.kind in ("pool", "eltwise"):
            return 0
        if self.kind == "deconv":
            taps = -(-self.kernel // self.stride)
            per_out = self.in_channels * taps * taps
        else:  # conv, dfconv
            per_out = self.in_channels * self.kernel * self.kernel
        return self.out_h * self.out_w * self.out_channels * per_out // self.groups

    def ops(self) -> int:
        """Operations (2 per MAC), the unit of the paper's GOPS figures."""
        return 2 * self.macs()

    def input_elements(self) -> int:
        return self.in_channels * self.in_h * self.in_w

    def output_elements(self) -> int:
        return self.out_channels * self.out_h * self.out_w

    def weight_elements(self) -> int:
        if self.kind in ("pool", "eltwise"):
            return 0
        if self.kind == "attention":
            # Four C x C projections of SwinAtten.
            return 4 * self.in_channels * self.in_channels
        return (
            self.out_channels
            * self.in_channels
            * self.kernel
            * self.kernel
            // self.groups
        )

    @property
    def fast_supported(self) -> bool:
        """Does the SFTC's fast-algorithm path cover this layer?"""
        if self.kind == "conv" and self.kernel == 3 and self.stride == 1:
            return True
        if self.kind == "deconv" and self.kernel == 4 and self.stride == 2:
            return True
        return False


@dataclass
class LayerGraph:
    """An ordered sequence of LayerSpecs with per-module grouping."""

    name: str
    layers: list[LayerSpec] = field(default_factory=list)

    def add(self, layer: LayerSpec) -> "LayerGraph":
        self.layers.append(layer)
        return self

    def modules(self) -> list[str]:
        """Distinct module names in first-appearance order."""
        seen: list[str] = []
        for layer in self.layers:
            if layer.module not in seen:
                seen.append(layer.module)
        return seen

    def by_module(self, module: str) -> list[LayerSpec]:
        return [layer for layer in self.layers if layer.module == module]

    def total_macs(self) -> int:
        return sum(layer.macs() for layer in self.layers)

    def total_ops(self) -> int:
        return sum(layer.ops() for layer in self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self):
        return iter(self.layers)
