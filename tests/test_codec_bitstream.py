"""Tests for the bitstream container."""

import numpy as np
import pytest

from repro.codec import (
    FramePacket,
    SequenceBitstream,
    as_f32,
    f16_bits,
    f16_from_bits,
    f32_bits,
    f32_from_bits,
)


class TestFloatSideInfo:
    def test_f32_roundtrip(self):
        for value in (0.0, 1.5, -3.25, 1e-3, 12345.678):
            assert f32_from_bits(f32_bits(value)) == pytest.approx(
                np.float32(value), rel=0
            )

    def test_f16_roundtrip(self):
        for value in (0.0, 1.5, -3.25, 0.001, 100.0):
            assert f16_from_bits(f16_bits(value)) == pytest.approx(
                float(np.float16(value)), rel=0
            )

    def test_f16_bits_compact(self):
        assert 0 <= f16_bits(8.0) < 1 << 16

    def test_as_f32(self):
        value = 1 / 3
        assert as_f32(value) == float(np.float32(value))


class TestFramePacket:
    def test_chunk_roundtrip(self):
        packet = FramePacket(frame_type="P", meta={"x": 1})
        packet.add_chunk("motion", b"\x01\x02\x03")
        packet.add_chunk("residual", b"\xff" * 10)
        blob = packet.serialize()
        parsed, offset = FramePacket.parse(blob, 0)
        assert offset == len(blob)
        assert parsed.frame_type == "P"
        assert parsed.meta == {"x": 1}
        assert parsed.chunks["motion"] == b"\x01\x02\x03"
        assert parsed.chunks["residual"] == b"\xff" * 10

    def test_duplicate_chunk_rejected(self):
        packet = FramePacket(frame_type="I")
        packet.add_chunk("y", b"a")
        with pytest.raises(ValueError):
            packet.add_chunk("y", b"b")

    def test_num_bits(self):
        packet = FramePacket(frame_type="I")
        packet.add_chunk("y", b"abc")
        assert packet.num_bits() == 24

    def test_empty_packet(self):
        packet = FramePacket(frame_type="I")
        parsed, _ = FramePacket.parse(packet.serialize(), 0)
        assert parsed.chunks == {}


class TestSequenceBitstream:
    def make_stream(self):
        stream = SequenceBitstream(header={"codec": "test", "height": 64})
        for index in range(3):
            packet = FramePacket(
                frame_type="I" if index == 0 else "P", meta={"i": index}
            )
            packet.add_chunk("data", bytes([index]) * (index + 1))
            stream.add_packet(packet)
        return stream

    def test_roundtrip(self):
        stream = self.make_stream()
        parsed = SequenceBitstream.parse(stream.serialize())
        assert parsed.header == stream.header
        assert len(parsed.packets) == 3
        assert parsed.packets[0].frame_type == "I"
        assert parsed.packets[2].chunks["data"] == b"\x02\x02\x02"

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            SequenceBitstream.parse(b"XXXX" + b"\x00" * 20)

    def test_bad_version_rejected(self):
        blob = bytearray(self.make_stream().serialize())
        blob[4] = 99
        with pytest.raises(ValueError):
            SequenceBitstream.parse(bytes(blob))

    def test_current_version_is_2(self):
        stream = self.make_stream()
        assert stream.version == 2
        blob = stream.serialize()
        assert blob[4:6] == (2).to_bytes(2, "little")
        assert SequenceBitstream.parse(blob).version == 2

    def test_version_1_streams_parse(self):
        stream = self.make_stream()
        stream.version = 1
        parsed = SequenceBitstream.parse(stream.serialize())
        assert parsed.version == 1
        assert parsed.header == stream.header
        assert len(parsed.packets) == 3

    def test_unsupported_version_serialize_rejected(self):
        stream = self.make_stream()
        stream.version = 7
        with pytest.raises(ValueError):
            stream.serialize()

    def test_num_bits_counts_everything(self):
        stream = self.make_stream()
        assert stream.num_bits() == 8 * len(stream.serialize())

    def test_bits_per_pixel(self):
        stream = self.make_stream()
        bpp = stream.bits_per_pixel(64, 96)
        assert bpp == pytest.approx(stream.num_bits() / (3 * 64 * 96))

    def test_serialization_deterministic(self):
        assert self.make_stream().serialize() == self.make_stream().serialize()
