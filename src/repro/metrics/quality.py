"""Objective video/image quality metrics: PSNR, SSIM, and MS-SSIM.

The paper (Section V-A) evaluates compression quality with PSNR and the
multi-scale structural similarity index (MS-SSIM) of Wang et al. (2003).
Both are implemented here from first principles on top of NumPy/SciPy so
the evaluation harness has no external dependencies.

All functions accept images either as (H, W) grayscale or (C, H, W) /
(H, W, C) arrays; multi-channel inputs are scored per channel and
averaged, which matches the common RGB-PSNR convention used by the NVC
literature the paper compares against.
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import convolve, uniform_filter

__all__ = [
    "mse",
    "psnr",
    "ssim",
    "ms_ssim",
    "MS_SSIM_WEIGHTS",
]

#: Per-scale weights from Wang, Simoncelli & Bovik (2003), Table 1.
MS_SSIM_WEIGHTS = np.array([0.0448, 0.2856, 0.3001, 0.2363, 0.1333])


def _as_channel_list(image: np.ndarray) -> list[np.ndarray]:
    """Split an image array into a list of 2-D float64 channel planes."""
    arr = np.asarray(image, dtype=np.float64)
    if arr.ndim == 2:
        return [arr]
    if arr.ndim == 3:
        # Accept both (C, H, W) and (H, W, C); channels are the small axis.
        if arr.shape[0] <= 4 and arr.shape[0] < arr.shape[-1]:
            return [arr[c] for c in range(arr.shape[0])]
        return [arr[..., c] for c in range(arr.shape[-1])]
    raise ValueError(f"expected 2-D or 3-D image, got shape {arr.shape}")


def mse(reference: np.ndarray, test: np.ndarray) -> float:
    """Mean squared error between two images of identical shape."""
    ref = np.asarray(reference, dtype=np.float64)
    tst = np.asarray(test, dtype=np.float64)
    if ref.shape != tst.shape:
        raise ValueError(f"shape mismatch: {ref.shape} vs {tst.shape}")
    return float(np.mean((ref - tst) ** 2))


def psnr(reference: np.ndarray, test: np.ndarray, data_range: float = 255.0) -> float:
    """Peak signal-to-noise ratio in dB.

    Returns ``inf`` for identical inputs.  ``data_range`` is the dynamic
    range of the pixel representation (255 for 8-bit video, 1.0 for
    normalized floats).
    """
    err = mse(reference, test)
    if err == 0.0:
        return float("inf")
    return float(10.0 * np.log10((data_range**2) / err))


def _gaussian_kernel_1d(sigma: float, radius: int) -> np.ndarray:
    offsets = np.arange(-radius, radius + 1, dtype=np.float64)
    kernel = np.exp(-0.5 * (offsets / sigma) ** 2)
    return kernel / kernel.sum()


def _filter2(plane: np.ndarray, sigma: float, radius: int) -> np.ndarray:
    """Separable Gaussian filter with reflective boundary handling."""
    kernel = _gaussian_kernel_1d(sigma, radius)
    out = convolve(plane, kernel[:, None], mode="reflect")
    return convolve(out, kernel[None, :], mode="reflect")


def _ssim_components(
    ref: np.ndarray,
    tst: np.ndarray,
    data_range: float,
    sigma: float = 1.5,
    use_gaussian: bool = True,
    win_size: int = 11,
) -> tuple[np.ndarray, np.ndarray]:
    """Return per-pixel (luminance*contrast*structure, contrast*structure).

    The second map ("cs") is what MS-SSIM accumulates on all but the
    coarsest scale.
    """
    c1 = (0.01 * data_range) ** 2
    c2 = (0.03 * data_range) ** 2
    if use_gaussian:
        radius = win_size // 2

        def smooth(x: np.ndarray) -> np.ndarray:
            return _filter2(x, sigma, radius)

    else:

        def smooth(x: np.ndarray) -> np.ndarray:
            return uniform_filter(x, size=win_size, mode="reflect")

    mu_x = smooth(ref)
    mu_y = smooth(tst)
    mu_xx = mu_x * mu_x
    mu_yy = mu_y * mu_y
    mu_xy = mu_x * mu_y
    sigma_xx = smooth(ref * ref) - mu_xx
    sigma_yy = smooth(tst * tst) - mu_yy
    sigma_xy = smooth(ref * tst) - mu_xy

    cs_map = (2.0 * sigma_xy + c2) / (sigma_xx + sigma_yy + c2)
    ssim_map = ((2.0 * mu_xy + c1) / (mu_xx + mu_yy + c1)) * cs_map
    return ssim_map, cs_map


def ssim(
    reference: np.ndarray,
    test: np.ndarray,
    data_range: float = 255.0,
    sigma: float = 1.5,
    win_size: int = 11,
) -> float:
    """Single-scale structural similarity (Wang et al., 2004)."""
    ref_planes = _as_channel_list(reference)
    tst_planes = _as_channel_list(test)
    if len(ref_planes) != len(tst_planes):
        raise ValueError("channel count mismatch")
    scores = []
    for ref, tst in zip(ref_planes, tst_planes):
        ssim_map, _ = _ssim_components(ref, tst, data_range, sigma, True, win_size)
        scores.append(float(ssim_map.mean()))
    return float(np.mean(scores))


def _downsample_2x(plane: np.ndarray) -> np.ndarray:
    """Average-pool a plane by 2x2, cropping odd edges (MS-SSIM convention)."""
    h, w = plane.shape
    h2, w2 = h - (h % 2), w - (w % 2)
    cropped = plane[:h2, :w2]
    return 0.25 * (
        cropped[0::2, 0::2]
        + cropped[1::2, 0::2]
        + cropped[0::2, 1::2]
        + cropped[1::2, 1::2]
    )


def ms_ssim(
    reference: np.ndarray,
    test: np.ndarray,
    data_range: float = 255.0,
    weights: np.ndarray | None = None,
    sigma: float = 1.5,
    win_size: int = 11,
) -> float:
    """Multi-scale SSIM following Wang, Simoncelli & Bovik (2003).

    The product form ``prod(cs_i ** w_i) * ssim_L ** w_L`` is used with the
    published five-scale weights.  If the image is too small for five
    scales the weight vector is truncated and renormalized, keeping the
    metric well-defined on small synthetic test frames.
    """
    w = MS_SSIM_WEIGHTS if weights is None else np.asarray(weights, dtype=np.float64)
    ref_planes = _as_channel_list(reference)
    tst_planes = _as_channel_list(test)
    if len(ref_planes) != len(tst_planes):
        raise ValueError("channel count mismatch")

    scores = []
    for ref, tst in zip(ref_planes, tst_planes):
        # Number of scales the plane can support (filter needs win_size px).
        max_levels = 1
        size = min(ref.shape)
        while size // 2 >= win_size and max_levels < len(w):
            size //= 2
            max_levels += 1
        weights_used = w[:max_levels] / w[:max_levels].sum()

        mcs: list[float] = []
        cur_ref, cur_tst = ref, tst
        value = 1.0
        for level in range(max_levels):
            ssim_map, cs_map = _ssim_components(
                cur_ref, cur_tst, data_range, sigma, True, win_size
            )
            if level == max_levels - 1:
                luminance_term = float(np.clip(ssim_map.mean(), 1e-6, None))
                value = luminance_term ** weights_used[level]
            else:
                mcs.append(float(np.clip(cs_map.mean(), 1e-6, None)))
                cur_ref = _downsample_2x(cur_ref)
                cur_tst = _downsample_2x(cur_tst)
        for level, cs in enumerate(mcs):
            value *= cs ** weights_used[level]
        scores.append(value)
    return float(np.mean(scores))
