"""Bitstream integrity: version-4 CRC containers (bit-exact round
trips, single-flipped-byte detection with packet attribution, resync
and skip), and typed corruption errors — never ``struct.error``, never
a hang — for truncated or garbage version 1–3 streams."""

import io
import struct
import zlib

import pytest

from repro.codec import (
    ClassicalCodec,
    ClassicalCodecConfig,
    SequenceBitstream,
    StreamCorruptionError,
    StreamReader,
    StreamWriter,
)
from repro.video import SceneConfig, generate_sequence


def _stream():
    codec = ClassicalCodec(
        ClassicalCodecConfig(qp=12.0, entropy_backend="rans")
    )
    clip = generate_sequence(SceneConfig(height=16, width=32, frames=3))
    return codec.encode_sequence(clip)


def _v4_bytes(stream) -> bytes:
    buffer = io.BytesIO()
    writer = StreamWriter(buffer, stream.header)  # version 4 default
    for packet in stream.packets:
        writer.write_packet(packet)
    writer.finalize()
    return buffer.getvalue()


def _packet_spans(blob: bytes) -> list[tuple[int, int]]:
    """(body_start, body_size) of every framed v4 packet in ``blob``."""
    (header_len,) = struct.unpack_from("<I", blob, 6)
    offset = 10 + header_len + 4  # prelude + header blob + header CRC
    spans = []
    while True:
        (size,) = struct.unpack_from("<I", blob, offset)
        if size == 0:
            return spans
        spans.append((offset + 8, size))  # skip size + crc words
        offset += 8 + size


class TestV4Container:
    def test_writer_reader_round_trip_bit_exact(self):
        stream = _stream()
        blob = _v4_bytes(stream)
        reader = StreamReader(io.BytesIO(blob))
        assert (reader.version, reader.header) == (4, stream.header)
        assert [p.serialize() for p in reader] == [
            p.serialize() for p in stream.packets
        ]
        assert reader.packets_skipped == 0
        # and the SequenceBitstream path agrees with the streaming one
        parsed = SequenceBitstream.parse(blob)
        assert parsed.version == 4
        assert parsed.serialize() == blob

    def test_flipped_byte_in_any_packet_names_the_packet(self):
        stream = _stream()
        blob = _v4_bytes(stream)
        spans = _packet_spans(blob)
        assert len(spans) == len(stream.packets)
        for index, (start, size) in enumerate(spans):
            damaged = bytearray(blob)
            damaged[start + size // 2] ^= 0xFF
            reader = StreamReader(io.BytesIO(bytes(damaged)))
            with pytest.raises(StreamCorruptionError, match="CRC") as info:
                list(reader)
            assert info.value.packet_index == index
            assert f"(packet {index})" in str(info.value)
            with pytest.raises(StreamCorruptionError, match="CRC"):
                SequenceBitstream.parse(bytes(damaged))

    def test_flipped_header_byte_detected_before_any_packet(self):
        blob = bytearray(_v4_bytes(_stream()))
        blob[12] ^= 0xFF  # inside the header JSON
        with pytest.raises(StreamCorruptionError, match="header"):
            StreamReader(io.BytesIO(bytes(blob)))

    def test_skip_mode_resyncs_past_a_corrupt_packet(self):
        stream = _stream()
        blob = bytearray(_v4_bytes(stream))
        start, size = _packet_spans(blob)[1]
        blob[start + size // 2] ^= 0xFF
        reader = StreamReader(io.BytesIO(bytes(blob)), on_error="skip")
        survivors = [p.serialize() for p in reader]
        assert reader.packets_skipped == 1
        expected = [p.serialize() for p in stream.packets]
        assert survivors == expected[:1] + expected[2:]

    def test_skip_mode_still_raises_on_framing_damage(self):
        blob = _v4_bytes(_stream())
        reader = StreamReader(io.BytesIO(blob[:-6]), on_error="skip")
        with pytest.raises(StreamCorruptionError, match="truncated"):
            list(reader)

    def test_on_error_policy_is_validated(self):
        with pytest.raises(ValueError, match="on_error"):
            StreamReader(io.BytesIO(b""), on_error="ignore")

    def test_v3_stays_crc_free_and_both_versions_interchange(self):
        # v3 is the byte-compatibility escape hatch: no CRC words.
        stream = _stream()
        buffer = io.BytesIO()
        writer = StreamWriter(buffer, stream.header, version=3)
        for packet in stream.packets:
            writer.write_packet(packet)
        writer.finalize()
        reader = StreamReader(io.BytesIO(buffer.getvalue()))
        assert reader.version == 3
        assert [p.serialize() for p in reader] == [
            p.serialize() for p in stream.packets
        ]
        v4 = _v4_bytes(stream)
        # v4 costs the two header/packet CRC words and nothing else
        assert len(v4) == len(buffer.getvalue()) + 4 * (
            1 + len(stream.packets)
        )

    def test_header_crc_actually_guards_the_header_blob(self):
        blob = bytearray(_v4_bytes(_stream()))
        (header_len,) = struct.unpack_from("<I", blob, 6)
        crc_at = 10 + header_len
        (recorded,) = struct.unpack_from("<I", blob, crc_at)
        assert recorded == zlib.crc32(bytes(blob[10:crc_at]))


@pytest.mark.parametrize("version", [1, 2, 3])
class TestLegacyCorruption:
    """Damage to any pre-CRC container must surface as a typed
    ValueError (StreamCorruptionError), never struct.error, never an
    infinite read loop."""

    def _blob(self, version: int) -> bytes:
        stream = _stream()
        return SequenceBitstream(
            header=stream.header, packets=stream.packets, version=version
        ).serialize()

    def test_garbage_at_byte_zero(self, version):
        blob = bytearray(self._blob(version))
        blob[0] ^= 0xFF
        with pytest.raises(StreamCorruptionError, match="magic"):
            SequenceBitstream.parse(bytes(blob))
        with pytest.raises(StreamCorruptionError, match="magic"):
            StreamReader(io.BytesIO(bytes(blob)))

    def test_cut_mid_header(self, version):
        blob = self._blob(version)
        (header_len,) = struct.unpack_from("<I", blob, 6)
        cut = blob[: 10 + header_len // 2]
        with pytest.raises(ValueError, match="truncated|header"):
            SequenceBitstream.parse(cut)
        with pytest.raises(ValueError, match="truncated|header"):
            StreamReader(io.BytesIO(cut))

    def test_cut_mid_packet(self, version):
        blob = self._blob(version)
        cut = blob[: len(blob) - max(6, len(blob) // 10)]
        with pytest.raises(ValueError, match="truncated"):
            SequenceBitstream.parse(cut)
        reader = StreamReader(io.BytesIO(cut))
        with pytest.raises(ValueError, match="truncated"):
            list(reader)

    def test_empty_file(self, version):
        del version  # the prelude is version-independent
        with pytest.raises(ValueError, match="truncated"):
            SequenceBitstream.parse(b"")
        with pytest.raises(ValueError, match="truncated"):
            StreamReader(io.BytesIO(b""))

    def test_header_is_garbage_json(self, version):
        blob = bytearray(self._blob(version))
        (header_len,) = struct.unpack_from("<I", blob, 6)
        for i in range(10, 10 + header_len):
            blob[i] = 0xFE  # invalid UTF-8 everywhere
        with pytest.raises(StreamCorruptionError, match="header"):
            SequenceBitstream.parse(bytes(blob))
        with pytest.raises(StreamCorruptionError, match="header"):
            StreamReader(io.BytesIO(bytes(blob)))
