"""Entropy coding: binary arithmetic coder + discretized priors.

The NVC literature the paper builds on (DVC, FVC, DCVC) quantizes
auto-encoder latents and entropy-codes them under a factorized prior.
This module provides the real thing — no estimated-bits shortcuts:

* :class:`ArithmeticEncoder` / :class:`ArithmeticDecoder` — the
  classic CACM'87 integer arithmetic coder (32-bit registers, pending
  bit handling).  Exact round-trip is property-tested.
* :class:`SymbolModel` — static cumulative-frequency tables.
* :class:`LaplacianModel` — a discretized zero-mean Laplacian over a
  symmetric integer support, the standard factorized latent prior; its
  scale is the only side information a decoder needs.

Rates reported anywhere in the evaluation harness come from actual
encoded byte counts, with ``estimate_bits`` (ideal Shannon cost)
available to cross-check coder efficiency.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ArithmeticEncoder",
    "ArithmeticDecoder",
    "SymbolModel",
    "LaplacianModel",
    "encode_symbols",
    "decode_symbols",
    "estimate_bits",
]

_PRECISION = 32
_WHOLE = 1 << _PRECISION
_HALF = _WHOLE >> 1
_QUARTER = _WHOLE >> 2
_MAX_TOTAL = 1 << 16  # keeps span * total within 64-bit headroom


class SymbolModel:
    """Static frequency table over an alphabet of n symbols.

    Frequencies are positive integers; cumulative sums drive both the
    encoder and decoder.  ``total`` must stay below 2**16 so the
    arithmetic coder's renormalization cannot underflow.
    """

    def __init__(self, frequencies: np.ndarray):
        freqs = np.asarray(frequencies, dtype=np.int64)
        if freqs.ndim != 1 or freqs.size < 1:
            raise ValueError("frequencies must be a 1-D non-empty array")
        if np.any(freqs <= 0):
            raise ValueError("all frequencies must be positive")
        if int(freqs.sum()) >= _MAX_TOTAL:
            # Rescale, preserving positivity.
            scale = (_MAX_TOTAL - freqs.size - 1) / float(freqs.sum())
            freqs = np.maximum(1, (freqs * scale).astype(np.int64))
        self.freqs = freqs
        self.cum = np.concatenate([[0], np.cumsum(freqs)])
        self.total = int(self.cum[-1])

    @property
    def num_symbols(self) -> int:
        return int(self.freqs.size)

    def interval(self, symbol: int) -> tuple[int, int]:
        return int(self.cum[symbol]), int(self.cum[symbol + 1])

    def probabilities(self) -> np.ndarray:
        return self.freqs / self.total

    @classmethod
    def from_pmf(cls, pmf: np.ndarray, precision_total: int = 1 << 14) -> "SymbolModel":
        """Quantize a probability mass function to integer frequencies."""
        pmf = np.asarray(pmf, dtype=np.float64)
        if np.any(pmf < 0) or pmf.sum() <= 0:
            raise ValueError("pmf must be non-negative with positive mass")
        freqs = np.maximum(1, np.round(pmf / pmf.sum() * precision_total)).astype(
            np.int64
        )
        return cls(freqs)


class ArithmeticEncoder:
    """Integer arithmetic encoder (Witten-Neal-Cleary construction)."""

    def __init__(self):
        self._low = 0
        self._high = _WHOLE - 1
        self._pending = 0
        self._bits: list[int] = []
        self._finished = False

    def _emit(self, bit: int) -> None:
        self._bits.append(bit)
        inverse = 1 - bit
        for _ in range(self._pending):
            self._bits.append(inverse)
        self._pending = 0

    def encode(self, symbol: int, model: SymbolModel) -> None:
        if self._finished:
            raise RuntimeError("encoder already finished")
        lo, hi = model.interval(symbol)
        span = self._high - self._low + 1
        self._high = self._low + span * hi // model.total - 1
        self._low = self._low + span * lo // model.total
        while True:
            if self._high < _HALF:
                self._emit(0)
            elif self._low >= _HALF:
                self._emit(1)
                self._low -= _HALF
                self._high -= _HALF
            elif self._low >= _QUARTER and self._high < 3 * _QUARTER:
                self._pending += 1
                self._low -= _QUARTER
                self._high -= _QUARTER
            else:
                break
            self._low <<= 1
            self._high = (self._high << 1) | 1

    def finish(self) -> bytes:
        """Flush and return the encoded payload."""
        if not self._finished:
            self._pending += 1
            self._emit(0 if self._low < _QUARTER else 1)
            self._finished = True
        bits = self._bits
        padded = bits + [0] * ((-len(bits)) % 8)
        out = bytearray()
        for i in range(0, len(padded), 8):
            byte = 0
            for bit in padded[i : i + 8]:
                byte = (byte << 1) | bit
            out.append(byte)
        return bytes(out)


class ArithmeticDecoder:
    """Mirror of :class:`ArithmeticEncoder` over a byte payload."""

    def __init__(self, data: bytes):
        self._bits = []
        for byte in data:
            for shift in range(7, -1, -1):
                self._bits.append((byte >> shift) & 1)
        self._pos = 0
        self._low = 0
        self._high = _WHOLE - 1
        self._value = 0
        for _ in range(_PRECISION):
            self._value = (self._value << 1) | self._next_bit()

    def _next_bit(self) -> int:
        if self._pos < len(self._bits):
            bit = self._bits[self._pos]
            self._pos += 1
            return bit
        return 0  # zero-padding past the payload is part of the scheme

    def decode(self, model: SymbolModel) -> int:
        span = self._high - self._low + 1
        scaled = ((self._value - self._low + 1) * model.total - 1) // span
        symbol = int(np.searchsorted(model.cum, scaled, side="right") - 1)
        lo, hi = model.interval(symbol)
        self._high = self._low + span * hi // model.total - 1
        self._low = self._low + span * lo // model.total
        while True:
            if self._high < _HALF:
                pass
            elif self._low >= _HALF:
                self._low -= _HALF
                self._high -= _HALF
                self._value -= _HALF
            elif self._low >= _QUARTER and self._high < 3 * _QUARTER:
                self._low -= _QUARTER
                self._high -= _QUARTER
                self._value -= _QUARTER
            else:
                break
            self._low <<= 1
            self._high = (self._high << 1) | 1
            self._value = (self._value << 1) | self._next_bit()
        return symbol


class LaplacianModel:
    """Discretized zero-mean Laplacian over integers [-support, support].

    ``p(q) = integral over [q - 0.5, q + 0.5]`` of the Laplace density
    with scale ``b``, with tails folded into the extreme symbols — the
    factorized prior used for quantized latents.  Values outside the
    support are clipped by the caller before encoding.
    """

    def __init__(self, scale: float, support: int):
        if scale <= 0:
            raise ValueError("scale must be positive")
        if support < 1:
            raise ValueError("support must be >= 1")
        self.scale = float(scale)
        self.support = int(support)
        q = np.arange(-support, support + 1, dtype=np.float64)
        upper = self._cdf(q + 0.5)
        lower = self._cdf(q - 0.5)
        pmf = upper - lower
        pmf[0] += self._cdf(-support - 0.5)
        pmf[-1] += 1.0 - self._cdf(support + 0.5)
        self.pmf = pmf / pmf.sum()
        self.model = SymbolModel.from_pmf(self.pmf)

    def _cdf(self, x: np.ndarray) -> np.ndarray:
        # Exponents clipped: exp(-746) underflows to 0.0 exactly, which
        # is the correct tail limit, so clipping loses nothing.
        z = np.clip(np.asarray(x, dtype=np.float64) / self.scale, -745.0, 745.0)
        return np.where(
            z < 0,
            0.5 * np.exp(np.minimum(z, 0.0)),
            1.0 - 0.5 * np.exp(np.minimum(-z, 0.0)),
        )

    def symbol_of(self, value: int) -> int:
        return int(np.clip(value, -self.support, self.support)) + self.support

    def value_of(self, symbol: int) -> int:
        return symbol - self.support

    @staticmethod
    def fit_scale(values: np.ndarray) -> float:
        """Laplacian MLE: scale = mean absolute value (floored)."""
        return max(float(np.mean(np.abs(values))), 1e-3)


def encode_symbols(symbols: np.ndarray, model: SymbolModel) -> bytes:
    """Encode an integer symbol array under one static model."""
    encoder = ArithmeticEncoder()
    for symbol in np.asarray(symbols, dtype=np.int64).ravel():
        encoder.encode(int(symbol), model)
    return encoder.finish()


def decode_symbols(data: bytes, count: int, model: SymbolModel) -> np.ndarray:
    """Decode ``count`` symbols; exact inverse of :func:`encode_symbols`."""
    decoder = ArithmeticDecoder(data)
    return np.array([decoder.decode(model) for _ in range(count)], dtype=np.int64)


def estimate_bits(symbols: np.ndarray, model: SymbolModel) -> float:
    """Ideal Shannon cost of a symbol stream under the model, in bits."""
    probs = model.probabilities()
    syms = np.asarray(symbols, dtype=np.int64).ravel()
    return float(np.sum(-np.log2(probs[syms])))
