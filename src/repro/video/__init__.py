"""Synthetic video sources and raw-video utilities."""

from .datasets import DATASETS, DatasetSpec, dataset_names, load_dataset
from .synthetic import SceneConfig, VideoGenerator, generate_sequence, iter_sequence
from .yuv import (
    YUV420Reader,
    read_yuv420,
    rgb_to_ycbcr,
    subsample_420,
    upsample_420,
    write_yuv420,
    ycbcr_to_rgb,
)

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "SceneConfig",
    "VideoGenerator",
    "YUV420Reader",
    "dataset_names",
    "generate_sequence",
    "iter_sequence",
    "load_dataset",
    "read_yuv420",
    "rgb_to_ycbcr",
    "subsample_420",
    "upsample_420",
    "write_yuv420",
    "ycbcr_to_rgb",
]
