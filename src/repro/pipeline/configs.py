"""The pipeline's config layer: every tunable, one serialization story.

Collects the package's four user-facing config classes behind a
name-keyed table so generic tooling (CLI ``--config file.json``, sweep
drivers, job queues) can load "some config" without hard-coding types:

>>> from repro.pipeline.configs import load_config
>>> cfg = load_config({"type": "ctvc", "channels": 12})

All classes share ``to_dict``/``from_dict``/``to_json``/``from_json``/
``replace`` via :class:`repro.serialization.SerializableConfig`, with
validation errors that name the offending field.  Both codec configs
carry an ``entropy_backend`` field (``"rans"``/``"cacm"``, validated
against the entropy-backend registry at construction), so a sweep
document can pit entropy coders against each other like any other
knob.  These config documents are what travels inside the job specs
of distributed sweeps (``docs/distributed.md``) and inside version-3
stream headers (``docs/bitstream.md``).
"""

from __future__ import annotations

from repro.codec import ClassicalCodecConfig, CTVCConfig
from repro.hw import NVCAConfig
from repro.serialization import ConfigError, SerializableConfig
from repro.video import SceneConfig

from .platforms import ReferencePlatformConfig

__all__ = [
    "CONFIG_TYPES",
    "CTVCConfig",
    "ClassicalCodecConfig",
    "ConfigError",
    "NVCAConfig",
    "ReferencePlatformConfig",
    "SceneConfig",
    "SerializableConfig",
    "load_config",
]

#: Name → config class, the dual of the codec/platform registries for
#: configs.
CONFIG_TYPES: dict[str, type[SerializableConfig]] = {
    "ctvc": CTVCConfig,
    "classical": ClassicalCodecConfig,
    "nvca": NVCAConfig,
    "reference-platform": ReferencePlatformConfig,
    "scene": SceneConfig,
}


def load_config(
    data: dict, type_key: str = "type", default_type: str | None = None
) -> SerializableConfig:
    """Hydrate a config dict whose ``type`` field names its class.

    The ``type`` discriminator is popped before validation, so the same
    document can be written back with ``{"type": name, **cfg.to_dict()}``.
    """
    if not isinstance(data, dict):
        raise ConfigError(f"load_config expects a mapping, got {type(data).__name__}")
    payload = dict(data)
    name = payload.pop(type_key, default_type)
    if name is None:
        raise ConfigError(
            f"config document needs a {type_key!r} field naming one of: "
            f"{', '.join(sorted(CONFIG_TYPES))}"
        )
    try:
        cls = CONFIG_TYPES[name]
    except KeyError:
        raise ConfigError(
            f"unknown config type {name!r}; known types: "
            f"{', '.join(sorted(CONFIG_TYPES))}"
        ) from None
    return cls.from_dict(payload)
