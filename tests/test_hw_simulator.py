"""Tests for the event-driven SFTC pipeline simulator."""

import dataclasses

import pytest

from repro.codec import decoder_graph
from repro.core import LayerSpec
from repro.hw import NVCAConfig, simulate_graph, simulate_layer


def conv_layer(cin=36, cout=36, h=64, w=64):
    return LayerSpec(
        name="conv",
        module="m",
        kind="conv",
        in_channels=cin,
        out_channels=cout,
        kernel=3,
        stride=1,
        in_h=h,
        in_w=w,
        out_h=h,
        out_w=w,
    )


def deconv_layer(cin=36, cout=36, h=32, w=32):
    return LayerSpec(
        name="deconv",
        module="m",
        kind="deconv",
        in_channels=cin,
        out_channels=cout,
        kernel=4,
        stride=2,
        in_h=h,
        in_w=w,
        out_h=2 * h,
        out_w=2 * w,
    )


class TestSimulateLayer:
    def test_conv_close_to_analytical(self):
        result = simulate_layer(conv_layer(), NVCAConfig())
        assert result.mismatch < 0.05

    def test_deconv_close_to_analytical(self):
        result = simulate_layer(deconv_layer(), NVCAConfig())
        assert result.mismatch < 0.05

    def test_small_layer_constant_overhead_only(self):
        """Tiny layers are dominated by pipeline-fill constants; the
        models must agree to within those constants (absolute bound)."""
        result = simulate_layer(conv_layer(cin=12, cout=12, h=16, w=16), NVCAConfig())
        assert abs(result.cycles - result.analytical_cycles) <= 2 * NVCAConfig().pipeline_depth

    def test_cycles_at_least_work(self):
        """Simulation can never beat one work item per cycle."""
        layer = conv_layer()
        result = simulate_layer(layer, NVCAConfig())
        slots = (64 // 2) * (64 // 2) // 4
        passes = 9
        assert result.cycles >= slots * passes

    def test_weight_dma_stalls_when_bandwidth_starved(self):
        config = dataclasses.replace(NVCAConfig(), dram_bytes_per_cycle=0.25)
        starved = simulate_layer(conv_layer(h=16, w=16), config)
        healthy = simulate_layer(conv_layer(h=16, w=16), NVCAConfig())
        assert starved.stall_cycles > healthy.stall_cycles
        assert starved.cycles > healthy.cycles

    def test_direct_layer_passthrough(self):
        layer = dataclasses.replace(conv_layer(), stride=2, out_h=32, out_w=32)
        result = simulate_layer(layer, NVCAConfig())
        assert result.cycles == result.analytical_cycles


class TestSimulateGraph:
    def test_decoder_graph_agreement(self):
        """The paper's methodology inverted: the analytical model must
        agree with the detailed simulator within 5% on the full decoder
        (they 'verify the simulator against RTL implementation')."""
        graph = decoder_graph(1080, 1920, 36)
        result = simulate_graph(graph, NVCAConfig())
        assert result.mismatch < 0.05

    def test_only_sftc_layers_counted(self):
        graph = decoder_graph(270, 480, 36)
        result = simulate_graph(graph, NVCAConfig())
        assert result.cycles > 0
        # DfConv is on the DCC, pools stream: neither simulated here.
