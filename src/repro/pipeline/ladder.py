"""ABR ladder builds: one spec, many renditions, a worker fleet.

Streaming services do not ship one stream — they ship a *ladder* of
renditions (resolutions × target bitrates) and let the client switch.
This module turns a ladder build into a fleet workload on the existing
job-queue machinery:

* :class:`Rendition` — one rung: resolution + target bitrate.
* :class:`LadderSpec` — the build: renditions, codec, base scene, rate
  controller.  ``rendition_specs()`` expands it into
  ``"ladder-rendition"`` task specs (registered in
  :mod:`repro.pipeline.tasks`), one job per rung.
* :class:`LadderRunner` — a :class:`~repro.pipeline.dist.QueueRunner`
  that fans the rungs out over any queue backend (threads, directory,
  HTTP fleet) and folds the results into a :class:`LadderReport`.
* :class:`RenditionReport` / :class:`LadderReport` — typed results:
  achieved kbps, overshoot %, budget violations per rung.

Determinism: a rendition's result is a pure function of its spec, so
``LadderReport.table()`` — every field except wall-clock timings — is
byte-identical between serial (``workers=0``) and any worker count or
queue backend, the same invariant the sweep layer pins in CI.

>>> from repro.pipeline import LadderSpec
>>> spec = LadderSpec.grid(
...     resolutions=[(96, 64), (48, 32)],
...     bitrates_kbps=[15.0, 30.0, 60.0],
...     codec="rd-model",
... )
>>> len(spec.renditions)
6
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.codec.rate_control import rate_controller_spec
from repro.serialization import ConfigError, SerializableConfig
from repro.video import SceneConfig

from .dist.queues import JobQueue
from .dist.sweep import QueueRunner
from .registry import codec_spec
from .reports import EncodeReport

__all__ = [
    "LadderReport",
    "LadderRunner",
    "LadderSpec",
    "Rendition",
    "RenditionReport",
]


@dataclass(frozen=True)
class Rendition(SerializableConfig):
    """One ladder rung: a resolution encoded to a bitrate budget."""

    height: int = 128
    width: int = 192
    target_kbps: float = 100.0
    #: display label; empty derives ``"WxH@Nk"``.
    label: str = ""

    def __post_init__(self):
        for name, value in (("height", self.height), ("width", self.width)):
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise ValueError(
                    f"rendition {name} must be a positive int, got {value!r}"
                )
        if self.target_kbps <= 0:
            raise ValueError(
                f"rendition target_kbps must be > 0, got {self.target_kbps}"
            )

    @property
    def name(self) -> str:
        """The label, derived from geometry + rate when not given."""
        return self.label or f"{self.width}x{self.height}@{self.target_kbps:g}k"


class LadderSpec:
    """A full ladder build: renditions × one codec/scene/controller.

    ``renditions`` accepts :class:`Rendition` instances or plain dicts;
    ``scene`` is the *base* scene whose geometry each rendition
    overrides (same content seed across rungs — the point of a ladder
    is many rates of one source).  ``codec_config`` overrides apply to
    every rendition; the rate fields (``rate_control``, ``fps``, and
    each rung's ``target_kbps``) are merged in per rendition.
    """

    def __init__(
        self,
        renditions,
        *,
        codec: str = "classical",
        codec_config: dict | None = None,
        scene: SceneConfig | dict | None = None,
        rate_control: str = "calibrated",
        fps: float = 30.0,
        compute_msssim: bool = False,
    ):
        codec_spec(codec)  # fail fast on unknown names
        spec = rate_controller_spec(rate_control)  # likewise
        if not spec.adaptive:
            # allowed — a cqp ladder measures uncontrolled overshoot —
            # but it must be what the caller asked for, not a typo'd
            # default, so no extra validation here.
            pass
        if fps <= 0:
            raise ValueError(f"fps must be > 0, got {fps}")
        rungs = []
        for rendition in renditions:
            if isinstance(rendition, dict):
                rendition = Rendition.from_dict(rendition)
            elif not isinstance(rendition, Rendition):
                raise TypeError(
                    f"renditions must be Rendition or dict, "
                    f"got {type(rendition).__name__}"
                )
            rungs.append(rendition)
        if not rungs:
            raise ValueError("a ladder needs at least one rendition")
        names = [r.name for r in rungs]
        duplicates = sorted({n for n in names if names.count(n) > 1})
        if duplicates:
            raise ValueError(
                f"duplicate rendition label(s): {', '.join(duplicates)}"
            )
        self.renditions: list[Rendition] = rungs
        self.codec = codec
        self.codec_config = dict(codec_config or {})
        if isinstance(scene, dict):
            scene = SceneConfig.from_dict(scene)
        self.scene = scene or SceneConfig()
        self.rate_control = rate_control
        self.fps = float(fps)
        self.compute_msssim = bool(compute_msssim)

    @classmethod
    def grid(
        cls,
        *,
        resolutions,
        bitrates_kbps,
        **options,
    ) -> "LadderSpec":
        """The standard ladder shape: resolutions × target bitrates.

        ``resolutions`` is a list of ``(height, width)`` pairs,
        ``bitrates_kbps`` a list of targets; every combination becomes
        a rung.  Remaining options go to the constructor.
        """
        renditions = [
            Rendition(height=int(h), width=int(w), target_kbps=float(kbps))
            for h, w in resolutions
            for kbps in bitrates_kbps
        ]
        return cls(renditions, **options)

    def rendition_specs(self) -> list[dict]:
        """One ``"ladder-rendition"`` job spec per rung (the on-wire
        unit; schema in ``docs/distributed.md``)."""
        scene = self.scene.to_dict()
        specs = []
        for rendition in self.renditions:
            config = dict(self.codec_config)
            config["rate_control"] = self.rate_control
            config["target_kbps"] = rendition.target_kbps
            config["fps"] = self.fps
            specs.append(
                {
                    "kind": "ladder-rendition",
                    "codec": self.codec,
                    "codec_config": config,
                    "scene": {
                        **scene,
                        "height": rendition.height,
                        "width": rendition.width,
                    },
                    "compute_msssim": self.compute_msssim,
                    "rendition": rendition.to_dict(),
                }
            )
        return specs

    def to_dict(self) -> dict:
        return {
            "renditions": [r.to_dict() for r in self.renditions],
            "codec": self.codec,
            "codec_config": dict(self.codec_config),
            "scene": self.scene.to_dict(),
            "rate_control": self.rate_control,
            "fps": self.fps,
            "compute_msssim": self.compute_msssim,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LadderSpec":
        if not isinstance(data, dict):
            raise ConfigError(
                f"LadderSpec.from_dict expects a mapping, "
                f"got {type(data).__name__}"
            )
        known = {
            "renditions",
            "codec",
            "codec_config",
            "scene",
            "rate_control",
            "fps",
            "compute_msssim",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(
                f"LadderSpec: unknown field(s) {', '.join(unknown)}; "
                f"valid fields: {', '.join(sorted(known))}"
            )
        if "renditions" not in data:
            raise ConfigError("LadderSpec needs a 'renditions' list")
        return cls(
            data["renditions"],
            codec=data.get("codec", "classical"),
            codec_config=data.get("codec_config"),
            scene=data.get("scene"),
            rate_control=data.get("rate_control", "calibrated"),
            fps=float(data.get("fps", 30.0)),
            compute_msssim=bool(data.get("compute_msssim", False)),
        )


@dataclass
class RenditionReport:
    """Rate accuracy of one coded rung.

    ``overshoot_pct`` is signed (positive = over budget);
    ``budget_violations`` counts frames whose *cumulative* coded bits
    exceeded the cumulative budget by more than 20% — the client-side
    rebuffering proxy (a decoder draining a fixed-rate channel falls
    behind exactly when the cumulative stream runs ahead of the
    cumulative budget).
    """

    label: str
    height: int
    width: int
    target_kbps: float
    achieved_kbps: float | None
    overshoot_pct: float | None
    budget_violations: int
    mean_psnr: float
    bpp: float
    stream_bytes: int
    frames: int
    #: the full underlying encode result.
    encode: EncodeReport

    #: cumulative-overshoot tolerance before a frame counts as a
    #: budget violation.
    VIOLATION_SLACK = 1.2

    @classmethod
    def from_result(cls, result: dict) -> "RenditionReport":
        rendition = Rendition.from_dict(result["rendition"])
        encode = EncodeReport.from_dict(result["encode"])
        achieved = encode.achieved_kbps
        overshoot = (
            100.0 * (achieved - rendition.target_kbps) / rendition.target_kbps
            if achieved is not None
            else None
        )
        fps = float(encode.codec_config.get("fps", 30.0) or 30.0)
        per_frame_budget = rendition.target_kbps * 1000.0 / fps
        violations = 0
        cumulative = 0
        for index, bits in enumerate(encode.frame_bits, start=1):
            cumulative += bits
            if cumulative > cls.VIOLATION_SLACK * per_frame_budget * index:
                violations += 1
        return cls(
            label=rendition.name,
            height=rendition.height,
            width=rendition.width,
            target_kbps=rendition.target_kbps,
            achieved_kbps=achieved,
            overshoot_pct=overshoot,
            budget_violations=violations,
            mean_psnr=encode.mean_psnr,
            bpp=encode.bpp,
            stream_bytes=encode.stream_bytes,
            frames=encode.frames,
            encode=encode,
        )

    def table_row(self) -> dict:
        """The deterministic summary row (no timings): the unit the
        serial-vs-sharded byte-parity invariant compares."""
        return {
            "label": self.label,
            "width": self.width,
            "height": self.height,
            "target_kbps": round(self.target_kbps, 3),
            "achieved_kbps": (
                None if self.achieved_kbps is None
                else round(self.achieved_kbps, 3)
            ),
            "overshoot_pct": (
                None if self.overshoot_pct is None
                else round(self.overshoot_pct, 2)
            ),
            "budget_violations": self.budget_violations,
            "mean_psnr": round(self.mean_psnr, 4),
            "bpp": round(self.bpp, 6),
            "stream_bytes": self.stream_bytes,
            "frames": self.frames,
        }

    def to_dict(self) -> dict:
        row = self.table_row()
        row["encode"] = self.encode.to_dict()
        return row


@dataclass
class LadderReport:
    """Aggregated outcome of one ladder build."""

    renditions: list[RenditionReport]
    failures: dict[str, str]
    job_ids: list[str]
    elapsed_seconds: float
    workers: int

    @property
    def ok(self) -> bool:
        return not self.failures

    def max_abs_overshoot_pct(self) -> float | None:
        """Worst |overshoot| across rungs (None with no rate data)."""
        values = [
            abs(r.overshoot_pct)
            for r in self.renditions
            if r.overshoot_pct is not None
        ]
        return max(values) if values else None

    def table(self) -> list[dict]:
        """Per-rung summary rows, submission order, timing-free —
        byte-identical across worker counts and queue backends."""
        return [r.table_row() for r in self.renditions]

    def to_dict(self) -> dict:
        return {
            "jobs": len(self.job_ids),
            "completed": len(self.renditions),
            "failed": dict(self.failures),
            "workers": self.workers,
            "elapsed_seconds": self.elapsed_seconds,
            "table": self.table(),
            "renditions": [r.to_dict() for r in self.renditions],
        }

    def render(self) -> str:
        """Human summary: the ladder table plus failures."""
        lines = [
            f"ladder: {len(self.job_ids)} renditions, "
            f"{len(self.renditions)} completed, {len(self.failures)} failed "
            f"in {self.elapsed_seconds:.1f}s ({self.workers} workers)"
        ]
        header = (
            f"  {'rendition':>16s} {'target':>9s} {'achieved':>9s} "
            f"{'overshoot':>9s} {'viol':>4s} {'PSNR':>7s} {'bpp':>8s}"
        )
        lines.append(header)
        for r in self.renditions:
            achieved = (
                f"{r.achieved_kbps:8.1f}k" if r.achieved_kbps is not None
                else "     n/a"
            )
            overshoot = (
                f"{r.overshoot_pct:+8.1f}%" if r.overshoot_pct is not None
                else "     n/a"
            )
            lines.append(
                f"  {r.label:>16s} {r.target_kbps:8.1f}k {achieved} "
                f"{overshoot} {r.budget_violations:4d} "
                f"{r.mean_psnr:6.2f} {r.bpp:8.4f}"
            )
        for job_id, error in sorted(self.failures.items()):
            lines.append(f"  FAILED {job_id}: {error.strip().splitlines()[-1]}")
        return "\n".join(lines)


class LadderRunner(QueueRunner):
    """Fan a :class:`LadderSpec` out over a job queue and aggregate.

    Execution semantics (``workers``/``queue``/``queue_dir``/lease/
    retry/poison handling) are :class:`~repro.pipeline.dist.QueueRunner`'s
    — a ladder build is just another fleet workload, so HTTP workers
    started with ``repro worker --queue-url`` pick rungs up exactly as
    they pick up sweep jobs.
    """

    def __init__(
        self,
        spec: LadderSpec | dict,
        *,
        queue: JobQueue | None = None,
        queue_dir: str | os.PathLike | None = None,
        workers: int = 2,
        lease_seconds: float = 120.0,
        max_attempts: int = 3,
        poison_threshold: int = 5,
        job_timeout_seconds: float | None = None,
        checkpoint=None,
        bundle: int | str = 1,
        share_frames: bool | None = None,
    ):
        if isinstance(spec, dict):
            spec = LadderSpec.from_dict(spec)
        elif not isinstance(spec, LadderSpec):
            raise TypeError(
                f"LadderRunner needs a LadderSpec or dict, "
                f"got {type(spec).__name__}"
            )
        self.ladder = spec
        from .tasks import normalize_spec

        specs = [normalize_spec(s) for s in spec.rendition_specs()]
        super().__init__(
            specs,
            queue=queue,
            queue_dir=queue_dir,
            workers=workers,
            lease_seconds=lease_seconds,
            max_attempts=max_attempts,
            poison_threshold=poison_threshold,
            job_timeout_seconds=job_timeout_seconds,
            checkpoint=checkpoint,
            bundle=bundle,
            share_frames=share_frames,
        )

    def _aggregate(
        self, results: dict[str, dict], failures: dict[str, str], elapsed: float
    ) -> LadderReport:
        return LadderReport(
            renditions=self._hydrated_reports(results),
            failures=failures,
            job_ids=list(self.job_ids),
            elapsed_seconds=elapsed,
            workers=self.workers,
        )
