"""Tests for the extended ablations (tile-size exploration, attention)."""

import pytest

from repro.eval import attention_ablation, tile_size_exploration


class TestTileSizeExploration:
    @pytest.fixture(scope="class")
    def results(self):
        return tile_size_exploration()

    def test_covers_requested_tiles(self, results):
        assert [r["m"] for r in results] == [2, 4, 6]

    def test_speedups_match_theory(self, results):
        """(m+2)^2*... : F(2,3)=2.25x, F(4,3)=4x, F(6,3)=5.06x."""
        speedups = {r["m"]: r["speedup"] for r in results}
        assert speedups[2] == pytest.approx(2.25)
        assert speedups[4] == pytest.approx(4.0)
        assert speedups[6] == pytest.approx(5.0625, abs=1e-3)

    def test_patch_sizes(self, results):
        """mu^2 per tile — the SCU provisioning each choice implies."""
        mu2 = {r["m"]: r["mu2"] for r in results}
        assert mu2[2] == 16
        assert mu2[4] == 36
        assert mu2[6] == 64

    def test_f23_survives_fxp12(self, results):
        """The paper's choice: F(2,3) stays numerically healthy in the
        A12 datapath."""
        f23 = next(r for r in results if r["m"] == 2)
        assert f23["fxp_snr_db"] > 40.0

    def test_bigger_tiles_condition_worse(self, results):
        """The design rationale: larger tiles trade conditioning for
        multiplication reduction; under 12-bit transforms the SNR
        degrades monotonically with tile size."""
        snrs = [r["fxp_snr_db"] for r in results]
        assert snrs[0] > snrs[1] > snrs[2]
        assert snrs[0] - snrs[1] > 20.0  # the cliff is steep

    def test_more_bits_rescue_big_tiles(self):
        """At higher activation precision the larger tiles recover —
        confirming quantization (not the transform itself) is at fault."""
        wide = tile_size_exploration(activation_bits=24)
        f43 = next(r for r in wide if r["m"] == 4)
        assert f43["fxp_snr_db"] > 40.0


class TestAttentionAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return attention_ablation(channels=8, frames=2)

    def test_workload_reported(self, result):
        assert result["swin_am_total_gmacs"] > result["swinatten_gmacs"] > 0

    def test_measured_effect_bounded(self, result):
        """Untrained Swin-AMs are near-identity: effect ~0 by design."""
        delta = abs(
            result["psnr_with_attention"] - result["psnr_without_attention"]
        )
        assert delta < 0.5
