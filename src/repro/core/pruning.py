"""Transform-domain weight pruning (Eq. 8) and the pruned-kernel bundle.

Pipeline per layer:

1. transform every (out_ch, in_ch) spatial kernel: ``E = G W G^T``;
2. score each transform-domain weight with ``Q^2 * E^2`` (importance-
   scaled energy, Eq. 8);
3. derive a 0/1 mask ``M`` at target sparsity ``rho`` — either with one
   global threshold ``zeta`` per layer (the paper's Eq. 8 formulation)
   or *balanced* per patch so every (oc, ic) pair keeps exactly
   ``round((1 - rho) * mu^2)`` weights, which is the fine-grained
   structured sparsity the united SCU array exploits (each SCU
   provisions ``64 * rho`` multipliers — a fixed non-zero budget per
   patch);
4. bundle ``(E ⊙ M, M, spec)`` as a :class:`PrunedKernel` ready for the
   sparse executors in :mod:`repro.core.ops` and for compression into
   the hardware Weight/Index buffer format.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .importance import importance_matrix
from .transforms import TransformSpec

__all__ = ["PrunedKernel", "prune_transform_weights", "sparsity_of_mask"]


@dataclass
class PrunedKernel:
    """A layer's kernel after transform-domain pruning.

    Attributes
    ----------
    spec:        the fast-algorithm transform in use.
    values:      masked transform-domain weights, (OC, IC, mu, mu).
    mask:        0/1 mask, same shape.
    rho:         requested sparsity (fraction of weights pruned).
    mode:        "global" or "balanced".
    threshold:   the global threshold zeta (global mode; else NaN).
    """

    spec: TransformSpec
    values: np.ndarray
    mask: np.ndarray
    rho: float
    mode: str
    threshold: float = float("nan")

    @property
    def out_channels(self) -> int:
        return self.values.shape[0]

    @property
    def in_channels(self) -> int:
        return self.values.shape[1]

    @property
    def achieved_sparsity(self) -> float:
        return sparsity_of_mask(self.mask)

    def nonzeros_per_patch(self) -> np.ndarray:
        """Non-zero count for every (oc, ic) patch, shape (OC, IC)."""
        return self.mask.reshape(*self.mask.shape[:2], -1).sum(axis=-1).astype(int)

    def dense_values(self) -> np.ndarray:
        """Alias making call sites explicit about densified usage."""
        return self.values


def sparsity_of_mask(mask: np.ndarray) -> float:
    """Fraction of zero entries in a 0/1 mask."""
    return float(1.0 - mask.mean())


def _balanced_mask(scores: np.ndarray, keep: int) -> np.ndarray:
    """Keep the top-``keep`` scores independently in every (oc, ic) patch."""
    oc, ic, mu, _ = scores.shape
    flat = scores.reshape(oc, ic, mu * mu)
    mask = np.zeros_like(flat)
    if keep > 0:
        # argpartition per patch: indices of the `keep` largest scores.
        top = np.argpartition(flat, -keep, axis=-1)[..., -keep:]
        np.put_along_axis(mask, top, 1.0, axis=-1)
    return mask.reshape(scores.shape)


def _global_mask(scores: np.ndarray, rho: float) -> tuple[np.ndarray, float]:
    """One threshold zeta over the whole layer achieving sparsity rho."""
    flat = np.sort(scores.ravel())
    cut = int(np.clip(round(rho * flat.size), 0, flat.size))
    if cut == 0:
        return np.ones_like(scores), -np.inf
    if cut >= flat.size:
        return np.zeros_like(scores), np.inf
    zeta = float(flat[cut - 1])
    # Eq. (8): keep scores >= zeta is ambiguous under ties; use strict
    # ordering on the sorted array for an exact count.
    mask = (scores > zeta).astype(np.float64)
    deficit = (flat.size - cut) - int(mask.sum())
    if deficit > 0:
        # Ties at the threshold: admit just enough of them.
        tied = np.flatnonzero((scores == zeta).ravel())[:deficit]
        flat_mask = mask.ravel()
        flat_mask[tied] = 1.0
        mask = flat_mask.reshape(scores.shape)
    return mask, zeta


def prune_transform_weights(
    weight: np.ndarray,
    spec: TransformSpec,
    rho: float = 0.5,
    mode: str = "balanced",
) -> PrunedKernel:
    """Prune a spatial-domain weight tensor in the transform domain.

    ``weight`` is (OC, IC, k, k) — the layer's kernels; ``rho`` is the
    target sparsity (0 = dense, 0.5 = the paper's operating point).
    """
    if not 0.0 <= rho < 1.0:
        raise ValueError(f"rho must be in [0, 1), got {rho}")
    oc, ic, kh, kw = weight.shape
    if (kh, kw) != (spec.k, spec.k):
        raise ValueError(
            f"weight kernel {kh}x{kw} does not match spec k={spec.k}"
        )
    transformed = spec.transform_kernel_2d(weight)  # (OC, IC, mu, mu)
    q = importance_matrix(spec)
    scores = (q**2) * (transformed**2)

    threshold = float("nan")
    if mode == "balanced":
        keep = int(round((1.0 - rho) * spec.mu * spec.mu))
        keep = max(keep, 1)
        mask = _balanced_mask(scores, keep)
    elif mode == "global":
        mask, threshold = _global_mask(scores, rho)
    else:
        raise ValueError(f"unknown mode {mode!r} (use 'balanced' or 'global')")

    return PrunedKernel(
        spec=spec,
        values=transformed * mask,
        mask=mask,
        rho=rho,
        mode=mode,
        threshold=threshold,
    )
