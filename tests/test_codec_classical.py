"""Tests for the classical block-DCT codec (H.26x stand-in)."""

import numpy as np
import pytest

from repro.codec import (
    ClassicalCodec,
    ClassicalCodecConfig,
    SequenceBitstream,
    zigzag_indices,
)
from repro.metrics import psnr
from repro.video import SceneConfig, generate_sequence


@pytest.fixture(scope="module")
def frames():
    return generate_sequence(SceneConfig(height=64, width=96, frames=4, seed=7))


class TestZigzag:
    def test_is_permutation(self):
        zz = zigzag_indices(8)
        assert sorted(zz) == list(range(64))

    def test_jpeg_prefix(self):
        """First entries of the canonical JPEG zigzag for 8x8."""
        zz = zigzag_indices(8)
        assert list(zz[:10]) == [0, 1, 8, 16, 9, 2, 3, 10, 17, 24]

    def test_small_block(self):
        zz = zigzag_indices(2)
        assert list(zz) == [0, 1, 2, 3]


class TestIntraCoding:
    def test_roundtrip_decodes_identically(self, frames):
        codec = ClassicalCodec(ClassicalCodecConfig(qp=8.0))
        packet, encoder_recon = codec.encode_intra(frames[0])
        decoder_recon = codec.decode_intra(packet)
        assert np.array_equal(encoder_recon, decoder_recon)

    def test_quality_reasonable(self, frames):
        codec = ClassicalCodec(ClassicalCodecConfig(qp=4.0))
        _, recon = codec.encode_intra(frames[0])
        assert psnr(frames[0], recon) > 34.0

    def test_qp_controls_quality(self, frames):
        fine = ClassicalCodec(ClassicalCodecConfig(qp=2.0))
        coarse = ClassicalCodec(ClassicalCodecConfig(qp=64.0))
        _, recon_fine = fine.encode_intra(frames[0])
        _, recon_coarse = coarse.encode_intra(frames[0])
        assert psnr(frames[0], recon_fine) > psnr(frames[0], recon_coarse) + 5.0

    def test_qp_controls_rate(self, frames):
        fine, _ = ClassicalCodec(ClassicalCodecConfig(qp=2.0)).encode_intra(frames[0])
        coarse, _ = ClassicalCodec(ClassicalCodecConfig(qp=64.0)).encode_intra(
            frames[0]
        )
        assert fine.num_bits() > 2 * coarse.num_bits()


class TestInterCoding:
    def test_roundtrip(self, frames):
        codec = ClassicalCodec(ClassicalCodecConfig(qp=8.0))
        _, ref = codec.encode_intra(frames[0])
        packet, encoder_recon = codec.encode_inter(frames[1], ref)
        decoder_recon = codec.decode_inter(packet, ref)
        assert np.array_equal(encoder_recon, decoder_recon)

    def test_inter_cheaper_than_intra(self, frames):
        """Temporal prediction must pay: P-frames cost fewer bits."""
        codec = ClassicalCodec(ClassicalCodecConfig(qp=8.0))
        intra_packet, ref = codec.encode_intra(frames[1])
        inter_packet, _ = codec.encode_inter(frames[1], frames[0])
        assert inter_packet.num_bits() < intra_packet.num_bits()

    def test_motion_vectors_coded(self, frames):
        codec = ClassicalCodec(ClassicalCodecConfig(qp=8.0))
        _, ref = codec.encode_intra(frames[0])
        packet, _ = codec.encode_inter(frames[1], ref)
        assert "mv" in packet.chunks
        assert len(packet.chunks["mv"]) > 0


class TestSequenceCoding:
    def test_full_roundtrip_through_bytes(self, frames):
        codec = ClassicalCodec(ClassicalCodecConfig(qp=8.0))
        stream = codec.encode_sequence(frames)
        blob = stream.serialize()
        decoded = codec.decode_sequence(SequenceBitstream.parse(blob))
        assert len(decoded) == len(frames)
        for orig, rec in zip(frames, decoded):
            assert psnr(orig, rec) > 28.0

    def test_gop_structure(self, frames):
        codec = ClassicalCodec(ClassicalCodecConfig(qp=8.0, gop=2))
        stream = codec.encode_sequence(frames)
        types = [p.frame_type for p in stream.packets]
        assert types == ["I", "P", "I", "P"]

    def test_rd_monotonicity(self, frames):
        """Rate down, distortion up as QP grows — the codec's sanity."""
        results = []
        for qp in (4.0, 16.0, 64.0):
            codec = ClassicalCodec(ClassicalCodecConfig(qp=qp))
            stream = codec.encode_sequence(frames)
            decoded = codec.decode_sequence(
                SequenceBitstream.parse(stream.serialize())
            )
            bpp = stream.bits_per_pixel(64, 96)
            quality = float(np.mean([psnr(a, b) for a, b in zip(frames, decoded)]))
            results.append((bpp, quality))
        bpps, quals = zip(*results)
        assert bpps[0] > bpps[1] > bpps[2]
        assert quals[0] > quals[1] > quals[2]

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError):
            ClassicalCodec().encode_sequence([])

    def test_p_frame_before_i_rejected(self, frames):
        codec = ClassicalCodec()
        stream = codec.encode_sequence(frames[:2])
        stream.packets = stream.packets[1:]  # drop the I-frame
        with pytest.raises(ValueError):
            codec.decode_sequence(stream)

    def test_closed_loop_no_drift(self, frames):
        """Encoder-side reconstructions equal decoder output exactly for
        every frame — drift-free closed loop."""
        codec = ClassicalCodec(ClassicalCodecConfig(qp=16.0, gop=8))
        recons = []
        reference = None
        for index, frame in enumerate(frames):
            if index == 0:
                packet, reference = codec.encode_intra(frame)
            else:
                packet, reference = codec.encode_inter(frame, reference)
            recons.append(reference)
        stream = codec.encode_sequence(frames)
        decoded = codec.decode_sequence(SequenceBitstream.parse(stream.serialize()))
        for a, b in zip(recons, decoded):
            assert np.array_equal(a, b)


class TestHalfPelMotion:
    """Half-pel refinement (H.264-class motion precision)."""

    @pytest.fixture(scope="class")
    def subpel_frames(self):
        return generate_sequence(
            SceneConfig(
                height=64,
                width=96,
                frames=4,
                seed=11,
                pan_velocity=(0.5, 1.5),
                grain_sigma=0.5,
            )
        )

    def test_roundtrip(self, subpel_frames):
        codec = ClassicalCodec(ClassicalCodecConfig(qp=12.0, half_pel=True))
        stream = codec.encode_sequence(subpel_frames)
        decoded = codec.decode_sequence(SequenceBitstream.parse(stream.serialize()))
        assert len(decoded) == 4

    def test_improves_rd_on_subpel_motion(self, subpel_frames):
        """On sub-pixel panning content, half-pel compensation must
        strictly improve the operating point."""
        results = {}
        for hp in (False, True):
            codec = ClassicalCodec(ClassicalCodecConfig(qp=12.0, half_pel=hp))
            stream = codec.encode_sequence(subpel_frames)
            decoded = codec.decode_sequence(
                SequenceBitstream.parse(stream.serialize())
            )
            bpp = stream.bits_per_pixel(64, 96)
            quality = float(
                np.mean([psnr(a, b) for a, b in zip(subpel_frames, decoded)])
            )
            results[hp] = (bpp, quality)
        assert results[True][1] > results[False][1]  # better quality
        assert results[True][0] < results[False][0] * 1.05  # no rate blowup

    def test_precision_mismatch_rejected(self, subpel_frames):
        encoder = ClassicalCodec(ClassicalCodecConfig(qp=12.0, half_pel=True))
        decoder = ClassicalCodec(ClassicalCodecConfig(qp=12.0, half_pel=False))
        stream = encoder.encode_sequence(subpel_frames[:2])
        with pytest.raises(ValueError):
            decoder.decode_sequence(stream)

    def test_half_pel_closed_loop_exact(self, subpel_frames):
        codec = ClassicalCodec(ClassicalCodecConfig(qp=12.0, half_pel=True))
        _, ref = codec.encode_intra(subpel_frames[0])
        packet, encoder_recon = codec.encode_inter(subpel_frames[1], ref)
        assert np.array_equal(encoder_recon, codec.decode_inter(packet, ref))
