"""Color-space conversion and raw YUV frame I/O.

HD video reaching the paper's decoder is "RGB or YUV format ... encoded
bitstreams" (Section I).  This module provides BT.601 full-range
RGB<->YCbCr conversion, 4:2:0 chroma subsampling, and raw planar .yuv
file I/O so synthetic sequences can be stored and replayed exactly like
the public corpora the paper uses.

Frames are float64 in [0, 255] with shape (3, H, W) channel-first,
matching the rest of the code base.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = [
    "rgb_to_ycbcr",
    "ycbcr_to_rgb",
    "subsample_420",
    "upsample_420",
    "write_yuv420",
    "read_yuv420",
]

# BT.601 full-range matrix (the JPEG/JFIF convention).
_RGB_TO_YCBCR = np.array(
    [
        [0.299, 0.587, 0.114],
        [-0.168736, -0.331264, 0.5],
        [0.5, -0.418688, -0.081312],
    ]
)
_YCBCR_TO_RGB = np.linalg.inv(_RGB_TO_YCBCR)


def rgb_to_ycbcr(rgb: np.ndarray) -> np.ndarray:
    """Convert a (3, H, W) RGB frame in [0, 255] to YCbCr in [0, 255]."""
    rgb = np.asarray(rgb, dtype=np.float64)
    if rgb.ndim != 3 or rgb.shape[0] != 3:
        raise ValueError(f"expected (3, H, W), got {rgb.shape}")
    flat = rgb.reshape(3, -1)
    ycc = _RGB_TO_YCBCR @ flat
    ycc[1:] += 128.0
    return ycc.reshape(rgb.shape)


def ycbcr_to_rgb(ycc: np.ndarray) -> np.ndarray:
    """Inverse of :func:`rgb_to_ycbcr`; output clipped to [0, 255]."""
    ycc = np.asarray(ycc, dtype=np.float64)
    if ycc.ndim != 3 or ycc.shape[0] != 3:
        raise ValueError(f"expected (3, H, W), got {ycc.shape}")
    shifted = ycc.reshape(3, -1).copy()
    shifted[1:] -= 128.0
    rgb = _YCBCR_TO_RGB @ shifted
    return np.clip(rgb.reshape(ycc.shape), 0.0, 255.0)


def subsample_420(ycc: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split a YCbCr frame into (Y, Cb, Cr) planes with 4:2:0 chroma.

    Chroma is box-filtered 2x2 then decimated; H and W must be even.
    """
    _, h, w = ycc.shape
    if h % 2 or w % 2:
        raise ValueError(f"4:2:0 needs even dimensions, got {h}x{w}")
    y = ycc[0]
    chroma = []
    for c in (1, 2):
        plane = ycc[c]
        pooled = 0.25 * (
            plane[0::2, 0::2]
            + plane[1::2, 0::2]
            + plane[0::2, 1::2]
            + plane[1::2, 1::2]
        )
        chroma.append(pooled)
    return y, chroma[0], chroma[1]


def upsample_420(y: np.ndarray, cb: np.ndarray, cr: np.ndarray) -> np.ndarray:
    """Rebuild a (3, H, W) YCbCr frame from 4:2:0 planes (nearest)."""
    h, w = y.shape
    out = np.empty((3, h, w), dtype=np.float64)
    out[0] = y
    for idx, plane in ((1, cb), (2, cr)):
        out[idx] = np.repeat(np.repeat(plane, 2, axis=0), 2, axis=1)[:h, :w]
    return out


def write_yuv420(path: str, frames: list[np.ndarray]) -> int:
    """Write RGB frames to a raw planar YUV 4:2:0 8-bit file.

    Returns the number of bytes written.
    """
    total = 0
    with open(path, "wb") as handle:
        for frame in frames:
            y, cb, cr = subsample_420(rgb_to_ycbcr(frame))
            for plane in (y, cb, cr):
                data = np.clip(np.round(plane), 0, 255).astype(np.uint8).tobytes()
                handle.write(data)
                total += len(data)
    return total


def read_yuv420(path: str, height: int, width: int) -> list[np.ndarray]:
    """Read all frames of a raw planar YUV 4:2:0 8-bit file as RGB."""
    if height % 2 or width % 2:
        raise ValueError("4:2:0 needs even dimensions")
    frame_bytes = height * width + 2 * (height // 2) * (width // 2)
    size = os.path.getsize(path)
    if size % frame_bytes:
        raise ValueError(
            f"file size {size} is not a multiple of frame size {frame_bytes}"
        )
    frames = []
    with open(path, "rb") as handle:
        for _ in range(size // frame_bytes):
            raw = np.frombuffer(handle.read(frame_bytes), dtype=np.uint8)
            y = raw[: height * width].reshape(height, width).astype(np.float64)
            offset = height * width
            quarter = (height // 2) * (width // 2)
            cb = raw[offset : offset + quarter].reshape(height // 2, width // 2)
            cr = raw[offset + quarter :].reshape(height // 2, width // 2)
            ycc = upsample_420(y, cb.astype(np.float64), cr.astype(np.float64))
            frames.append(ycbcr_to_rgb(ycc))
    return frames
