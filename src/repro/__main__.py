"""Command-line entry point: ``python -m repro``.

Subcommands:

* ``reproduce``  — regenerate every table and figure (the default).
* ``encode``     — run one codec through the ``repro.pipeline`` facade
                   and report rate/quality.  ``--stream`` switches to
                   the frame-at-a-time session API, writing the
                   incremental version-3 container to ``--output`` as
                   packets are produced (O(1) frame memory); ``--input
                   clip.yuv`` feeds raw YUV 4:2:0 frames from disk
                   instead of the synthetic scene.
* ``decode``     — round-trip a container file (any format version)
                   back to frames, reporting rate/quality; ``--output``
                   writes the reconstruction as raw YUV 4:2:0.
* ``sweep``      — run a (codec, qp, scene) RD grid on the work-queue
                   backend (``--workers N`` threads, processes with
                   ``--queue-dir``, or HTTP worker processes against a
                   ``repro serve`` daemon with ``--queue-url``;
                   ``--resume`` continues an interrupted sweep from
                   the same directory or server) and aggregate RD
                   curves + BD-rate vs ``--anchor``.
* ``serve``      — run the JSON-over-HTTP job-queue daemon
                   (``--queue-dir`` for durable state, ``--autoscale``
                   to grow/shrink a local worker fleet against queue
                   depth and lease expiries).
* ``worker``     — join a fleet: drain jobs from a ``repro serve``
                   daemon (``--queue-url``) or a shared queue
                   directory (``--queue-dir``) until empty, or
                   ``--forever``; ``--job-timeout`` arms a per-job
                   wall-clock watchdog.
* ``failures``   — list a queue's dead-letter ledger: every failed
                   job with attempts, quarantine flag, and error
                   (``-v`` for full tracebacks).
* ``retry``      — resubmit dead-lettered jobs (by id or ``--all``)
                   with a fresh attempt budget; the specs ride in the
                   failed records, so replay needs no other input.
* ``ladder``     — build an ABR ladder (renditions = resolution ×
                   target bitrate) as a fleet workload on the same
                   work-queue backend as ``sweep``; each rung is a
                   rate-controlled encode (``--rate-control``,
                   default ``calibrated``) reporting achieved kbps,
                   overshoot %, and budget violations.
* ``hardware``   — analyze a registered accelerator platform:
                   ``--platform nvca`` (default) runs the full NVCA
                   performance/energy/area roll-up with the operating
                   point under ``--pif/--pof/--rho/--frequency``
                   control; the Table II references
                   (``--platform gpu-rtx3090``, ...) report their
                   published columns, optionally node-projected with
                   ``--technology``.
* ``dse``        — sweep one NVCA design-space axis (``--grid
                   geometry|sparsity|frequency``) through the same
                   work-queue backend as ``sweep`` (``--workers``,
                   ``--queue-dir``, ``--queue-url``, ``--resume``) and
                   report the design-point table with its Pareto front
                   (``--pareto`` for the frontier alone).
* ``trace``      — render a flight-recorder JSONL dump (a fleet
                   command's ``--trace-out`` file, or the daemon's
                   ``/trace`` endpoint saved to disk) as a nested span
                   tree with per-span durations and the critical path.

``sweep``/``ladder``/``dse`` also take ``--metrics-out`` (write the
runner's metrics registry as Prometheus text after the run) and
``--trace-out`` (switch span tracing on and dump the flight recorder
as JSONL); ``repro --version`` prints the build stamped into
heartbeats and trace files.

Every subcommand accepts ``--json`` to emit the structured report
(``to_dict()``) instead of the human rendering, and ``-o/--output`` to
write the result to a file as well as stdout — except in streaming
mode, where ``--output`` names the bitstream/YUV artifact and the
report goes to stdout.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys


def _emit(args, text: str, payload: dict) -> int:
    """Print (and optionally save) either rendering of a report."""
    out = json.dumps(payload, indent=2, sort_keys=True) if args.json else text
    print(out)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(out + "\n")
    return 0


def _cmd_reproduce(args) -> int:
    from repro.eval import main as eval_main
    from repro.eval.runner import report_dict, run_all

    if args.json:
        results = run_all(fast=not args.full)
        return _emit(args, "", report_dict(results))
    return _emit(args, eval_main(fast=not args.full), {})


def _progress_printer(enabled: bool):
    if not enabled:
        return None

    def progress(index: int, value) -> None:
        print(f"  frame {index}: {value}", file=sys.stderr)

    return progress


def _cmd_encode(args) -> int:
    from repro.pipeline import CodecRegistryError, Pipeline, codec_spec

    try:
        config_cls = codec_spec(args.codec).config_cls
    except CodecRegistryError as exc:
        print(f"repro encode: {exc}", file=sys.stderr)
        return 2
    # Map the generic CLI knobs onto whatever the codec's config calls
    # them (``--qp`` drives CTVC's latent qstep and classical's QP).
    fields = {f.name for f in dataclasses.fields(config_cls)}
    # --target-kbps alone implies a controller; "abr" needs no
    # calibration, so it is the sensible default.
    rate_control = args.rate_control
    if rate_control is None and args.target_kbps is not None:
        rate_control = "abr"
    overrides = {}
    for name, value in (
        ("qstep", args.qp),
        ("qp", None if "qstep" in fields else args.qp),
        ("channels", args.channels),
        ("entropy_backend", args.entropy_backend),
        ("rate_control", rate_control),
        ("target_kbps", args.target_kbps),
        ("fps", args.fps),
    ):
        if value is not None and name in fields:
            overrides[name] = value
    config = config_cls.from_dict(overrides)
    if args.input is not None and not args.stream:
        print("repro encode: --input needs --stream", file=sys.stderr)
        return 2
    if args.stream:
        if not args.output:
            print(
                "repro encode: --stream needs --output (the container file)",
                file=sys.stderr,
            )
            return 2
        if args.input is not None:
            return _encode_stream_yuv(args, config)
        # Synthetic scene through the facade's streaming mode: the
        # container is written incrementally and quality is scored
        # frame by frame against the regenerated scene.
        pipeline = Pipeline(
            args.codec,
            config,
            scene={
                "height": args.height,
                "width": args.width,
                "frames": args.frames,
            },
            compute_msssim=args.msssim,
        )
        report = pipeline.session().run(
            output=args.output, progress=_progress_printer(args.progress)
        )
        payload = report.to_dict()
        payload["container"] = args.output
        print(json.dumps(payload, indent=2, sort_keys=True) if args.json
              else f"{report.render()}\n  container: {args.output}")
        return 0
    pipeline = Pipeline(
        args.codec,
        config,
        scene={"height": args.height, "width": args.width, "frames": args.frames},
        compute_msssim=args.msssim,
    )
    report = pipeline.run()
    return _emit(args, report.render(), report.to_dict())


def _encode_stream_yuv(args, config) -> int:
    """File-to-file transcode: raw YUV in, v3 container out, one frame
    in memory at a time (the zero-copy path long sequences use)."""
    import time

    from repro.codec import StreamWriter
    from repro.pipeline import create_codec
    from repro.video import read_yuv420

    source = read_yuv420(args.input, args.height, args.width)
    codec = create_codec(args.codec, config)
    progress = _progress_printer(args.progress)
    start = time.perf_counter()
    count = 0
    with open(args.output, "wb") as out:
        session = codec.open_encoder()
        writer = StreamWriter(out)
        for packet in session.encode_iter(iter(source)):
            if writer.header is None:
                header = dict(session.header)
                header["registry"] = args.codec
                header["config"] = codec.config.to_dict()
                writer.write_header(header)
            nbytes = writer.write_packet(packet)
            count += 1
            if progress is not None:
                progress(count, nbytes)
        total = writer.finalize()
    seconds = time.perf_counter() - start
    payload = {
        "codec": args.codec,
        "codec_config": codec.config.to_dict(),
        "input": args.input,
        "container": args.output,
        "frames": count,
        "height": args.height,
        "width": args.width,
        "stream_bytes": total,
        "bpp": 8.0 * total / (max(count, 1) * args.height * args.width),
        "encode_seconds": seconds,
    }
    text = (
        f"{args.codec}: {count} frames @ {args.width}x{args.height} from "
        f"{args.input}, {payload['bpp']:.3f} bpp\n  container: {args.output}"
    )
    print(json.dumps(payload, indent=2, sort_keys=True) if args.json else text)
    return 0


def _cmd_decode(args) -> int:
    """Round-trip a container file through a streaming decoder session."""
    import time

    import numpy as np

    from repro.codec import StreamReader
    from repro.metrics import psnr
    from repro.pipeline import create_codec
    from repro.video import SceneConfig, iter_sequence, read_yuv420, write_yuv420

    #: headers written before the "registry" field name codecs by their
    #: on-wire name; map them back to registry names.
    wire_names = {"ctvc-net": "ctvc", "classical-dct": "classical"}
    start = time.perf_counter()
    with open(args.bitstream, "rb") as handle:
        reader = StreamReader(handle, on_error=args.on_error)
        header = reader.header
        codec_name = args.codec or header.get("registry")
        if codec_name is None:
            codec_name = wire_names.get(header.get("codec"))
        if codec_name is None:
            print(
                f"repro decode: cannot infer the codec from the stream header "
                f"({header.get('codec')!r}); pass --codec",
                file=sys.stderr,
            )
            return 2
        from repro.pipeline import codec_spec

        config = header.get("config")
        if config is None:
            # Pre-v3 headers record operating parameters inline (qp,
            # channels, qstep, gop, entropy); map the ones the codec's
            # config understands so v1/v2 streams decode with the
            # parameters they were encoded with.  Unrecorded knobs
            # (e.g. CTVC's seed) need --config.
            fields = {
                f.name
                for f in dataclasses.fields(codec_spec(codec_name).config_cls)
            }
            config = {k: v for k, v in header.items() if k in fields}
            if "entropy" in header and "entropy_backend" in fields:
                config["entropy_backend"] = header["entropy"]
        if args.config:
            config = {**(config or {}), **json.loads(args.config)}
        codec = create_codec(codec_name, config)
        session = codec.open_decoder(header, version=reader.version)
        height = int(header.get("height", 0))
        width = int(header.get("width", 0))

        # Reference frames for quality scoring: an explicit YUV file,
        # or the scene the facade embedded in a version-3 header.
        originals = None
        if args.reference:
            originals = iter(read_yuv420(args.reference, height, width))
        elif "scene" in header:
            originals = iter_sequence(SceneConfig.from_dict(header["scene"]))

        psnrs: list[float] = []
        count = 0
        progress = _progress_printer(args.progress)

        def frames():
            nonlocal count
            for decoded in session.decode_iter(reader):
                count += 1
                if originals is not None:
                    try:
                        original = next(originals)
                    except StopIteration:
                        raise ValueError(
                            f"reference has fewer frames than the bitstream "
                            f"(ran out at frame {count})"
                        ) from None
                    psnrs.append(float(psnr(original, decoded)))
                if progress is not None:
                    progress(count, psnrs[-1] if psnrs else "-")
                yield decoded

        if args.output:
            write_yuv420(args.output, frames())
        else:
            for _ in frames():
                pass
    seconds = time.perf_counter() - start
    stream_bytes = os.path.getsize(args.bitstream)
    payload = {
        "codec": codec_name,
        "container_version": reader.version,
        "bitstream": args.bitstream,
        "packets_skipped": reader.packets_skipped,
        "frames": count,
        "height": height,
        "width": width,
        "stream_bytes": stream_bytes,
        "bpp": 8.0 * stream_bytes / (max(count, 1) * max(height * width, 1)),
        "psnr_per_frame": psnrs,
        "mean_psnr": float(np.mean(psnrs)) if psnrs else None,
        "decode_seconds": seconds,
        "output": args.output,
    }
    text = (
        f"{codec_name}: {count} frames @ {width}x{height} from "
        f"{args.bitstream} (v{reader.version}), {payload['bpp']:.3f} bpp"
    )
    if psnrs:
        text += f", {payload['mean_psnr']:.2f} dB PSNR"
    if reader.packets_skipped:
        text += f"\n  WARNING: {reader.packets_skipped} corrupt packet(s) skipped"
    if args.output:
        text += f"\n  reconstruction: {args.output}"
    print(json.dumps(payload, indent=2, sort_keys=True) if args.json else text)
    return 0


def _csv_rows(result) -> list[list]:
    """Flatten a SweepResult into CSV rows (one per completed job)."""
    from repro.metrics import scene_label

    rows = [[
        "codec", "scene", "bpp", "mean_psnr", "mean_msssim",
        "stream_bytes", "frames", "codec_config",
    ]]
    for report in result.reports:
        rows.append([
            report.codec,
            scene_label(report.scene),
            report.bpp,
            report.mean_psnr,
            "" if report.mean_msssim is None else report.mean_msssim,
            report.stream_bytes,
            report.frames,
            json.dumps(report.codec_config, sort_keys=True),
        ])
    return rows


def _obs_start(args) -> None:
    """``--trace-out`` opts the run into span tracing (off by default;
    metrics are always on, so ``--metrics-out`` needs no arming)."""
    if getattr(args, "trace_out", None):
        from repro.obs import enable

        enable()


def _obs_write(args) -> None:
    """Write the ``--metrics-out`` / ``--trace-out`` artifacts after a
    fleet run.  Metrics are this process's registry (runner-side
    counters; worker-side series ride the daemon's ``/metrics``
    endpoint), the trace is the flight recorder's ring as JSONL."""
    if getattr(args, "metrics_out", None):
        from repro.obs import get_registry

        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(get_registry().render())
    if getattr(args, "trace_out", None):
        from repro.obs import get_recorder

        get_recorder().dump(args.trace_out)


def _cmd_trace(args) -> int:
    """Render a flight-recorder JSONL dump (from ``--trace-out`` or the
    daemon's ``/trace`` endpoint): the span tree, then the critical
    path (slowest root, descending into its slowest child)."""
    from repro.obs import critical_path, load_trace, render_trace_tree

    meta, spans = load_trace(args.trace_file)
    payload = {"meta": meta, "spans": spans}
    if not spans:
        return _emit(args, f"{args.trace_file}: no spans recorded", payload)
    header = f"{len(spans)} span(s) from {args.trace_file}"
    if meta and meta.get("version"):
        header += f"  (repro {meta['version']})"
    lines = [header, render_trace_tree(spans, max_roots=args.max_roots)]
    chain = critical_path(spans)
    payload["critical_path"] = chain
    lines.append("critical path:")
    for record in chain:
        dur_ms = float(record.get("dur_s", 0.0)) * 1000.0
        lines.append(f"  {record.get('name', '?')}  {dur_ms:.2f}ms")
    return _emit(args, "\n".join(lines), payload)


def _cmd_sweep(args) -> int:
    import csv

    from repro.pipeline import SweepRunner

    codecs = [c.strip() for c in args.codecs.split(",") if c.strip()]
    if not codecs:
        print("repro sweep: --codecs must name at least one codec",
              file=sys.stderr)
        return 2
    try:
        qps = [float(q) for q in args.qps.split(",") if q.strip()]
        seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
    except ValueError as exc:
        print(f"repro sweep: bad --qps/--seeds value ({exc})", file=sys.stderr)
        return 2
    # One override document per operating point; grid expansion keeps
    # only the keys each codec's config defines, so the same document
    # drives CTVC's qstep and classical's qp.
    configs = []
    for qp in qps or [None]:
        overrides = {}
        if qp is not None:
            overrides.update({"qstep": qp, "qp": qp})
        if args.channels is not None:
            overrides["channels"] = args.channels
        if args.entropy_backend is not None:
            overrides["entropy_backend"] = args.entropy_backend
        configs.append(overrides)
    scenes = [
        {
            "height": args.height,
            "width": args.width,
            "frames": args.frames,
            "seed": seed,
        }
        for seed in (seeds or [0])
    ]
    anchor = args.anchor
    if anchor == "auto":
        anchor = None
        if len(codecs) > 1:
            anchor = "classical" if "classical" in codecs else codecs[0]
    elif anchor == "none":
        anchor = None

    status = _check_queue_dir(args, "sweep")
    if status:
        return status
    queue = None
    if args.queue_url:
        queue, status = _remote_queue(args, "sweep")
        if status:
            return status

    runner = SweepRunner(
        codecs=codecs,
        codec_configs=configs,
        scenes=scenes,
        compute_msssim=args.msssim,
        queue=queue,
        queue_dir=args.queue_dir,
        workers=args.workers,
        lease_seconds=args.lease,
        max_attempts=args.max_attempts,
        bundle=args.bundle,
        metric=args.metric,
        anchor=anchor,
    )
    progress = None
    if args.progress:
        def progress(stats):
            print(
                f"  pending {stats.pending}  claimed {stats.claimed}  "
                f"done {stats.done}  failed {stats.failed}",
                file=sys.stderr,
            )
    _obs_start(args)
    result = runner.run(progress)
    _obs_write(args)
    if args.csv:
        with open(args.csv, "w", newline="", encoding="utf-8") as handle:
            csv.writer(handle).writerows(_csv_rows(result))
    _emit(args, result.render(), result.to_dict())
    return 0 if result.ok else 1


def _parse_renditions(text: str):
    """Parse ``WxH:KBPS,...`` rendition tokens into Rendition objects."""
    from repro.pipeline import Rendition

    renditions = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        geometry, sep, kbps = token.partition(":")
        width, wh_sep, height = geometry.partition("x")
        if not sep or not wh_sep:
            raise ValueError(f"{token!r} is not of the form WxH:KBPS")
        renditions.append(
            Rendition(
                height=int(height),
                width=int(width),
                target_kbps=float(kbps),
            )
        )
    return renditions


_LADDER_CSV_COLUMNS = (
    "label", "width", "height", "target_kbps", "achieved_kbps",
    "overshoot_pct", "budget_violations", "mean_psnr", "bpp",
    "stream_bytes", "frames",
)


def _cmd_ladder(args) -> int:
    import csv

    from repro.pipeline import (
        CodecRegistryError,
        LadderRunner,
        LadderSpec,
        codec_spec,
    )

    try:
        renditions = _parse_renditions(args.renditions)
    except ValueError as exc:
        print(f"repro ladder: bad --renditions ({exc})", file=sys.stderr)
        return 2
    try:
        config_cls = codec_spec(args.codec).config_cls
    except CodecRegistryError as exc:
        print(f"repro ladder: {exc}", file=sys.stderr)
        return 2
    # Same generic-knob mapping as encode: --qp drives whatever the
    # codec's config calls its quantization field.
    config = dict(json.loads(args.config)) if args.config else {}
    fields = {f.name for f in dataclasses.fields(config_cls)}
    for name, value in (
        ("qstep", args.qp),
        ("qp", None if "qstep" in fields else args.qp),
        ("entropy_backend", args.entropy_backend),
    ):
        if value is not None and name in fields:
            config[name] = value

    status = _check_queue_dir(args, "ladder")
    if status:
        return status
    queue = None
    if args.queue_url:
        queue, status = _remote_queue(args, "ladder")
        if status:
            return status

    spec = LadderSpec(
        renditions,
        codec=args.codec,
        codec_config=config,
        scene={"frames": args.frames, "seed": args.seed},
        rate_control=args.rate_control,
        fps=args.fps,
        compute_msssim=args.msssim,
    )
    runner = LadderRunner(
        spec,
        queue=queue,
        queue_dir=args.queue_dir,
        workers=args.workers,
        lease_seconds=args.lease,
        max_attempts=args.max_attempts,
        bundle=args.bundle,
    )
    progress = None
    if args.progress:
        def progress(stats):
            print(
                f"  pending {stats.pending}  claimed {stats.claimed}  "
                f"done {stats.done}  failed {stats.failed}",
                file=sys.stderr,
            )
    _obs_start(args)
    result = runner.run(progress)
    _obs_write(args)
    if args.csv:
        rows = [list(_LADDER_CSV_COLUMNS)]
        for row in result.table():
            rows.append([
                "" if row[column] is None else row[column]
                for column in _LADDER_CSV_COLUMNS
            ])
        with open(args.csv, "w", newline="", encoding="utf-8") as handle:
            csv.writer(handle).writerows(rows)
    _emit(args, result.render(), result.to_dict())
    return 0 if result.ok else 1


def _cmd_hardware(args) -> int:
    from repro.pipeline import PlatformRegistryError, create_platform, platform_entry

    try:
        entry = platform_entry(args.platform)
    except PlatformRegistryError as exc:
        print(f"repro hardware: {exc}", file=sys.stderr)
        return 2
    # Map the CLI knobs onto whatever the platform's config defines
    # (the NVCA operating point; reference platforms only take
    # --technology) — unknown keys are skipped, mirroring encode.
    fields = {f.name for f in dataclasses.fields(entry.config_cls)}
    overrides = {}
    for name, value in (
        ("pif", args.pif),
        ("pof", args.pof),
        ("rho", args.rho),
        ("frequency_mhz", args.frequency),
        ("channels", args.channels),
        ("technology_nm", args.technology),
    ):
        if value is not None and name in fields:
            overrides[name] = value
    config = dict(json.loads(args.config)) if args.config else {}
    config.update(overrides)
    report = create_platform(args.platform, config).analyze(
        args.height, args.width
    )
    if report.hardware is not None:
        # Modeled platforms keep the full roll-up as the top-level
        # payload — same shape `repro hardware` has always emitted.
        return _emit(args, report.hardware.render(), report.hardware.to_dict())
    return _emit(args, report.render(), report.to_dict())


def _bundle_arg(value: str):
    """argparse type for --bundle: a positive batch size, or 'auto' to
    size bundles from the grid and worker count."""
    import argparse

    if value == "auto":
        return "auto"
    try:
        size = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--bundle takes a positive integer or 'auto', got {value!r}"
        ) from None
    if size < 1:
        raise argparse.ArgumentTypeError("--bundle must be >= 1 or 'auto'")
    return size


def _check_queue_dir(args, command: str) -> int:
    """Shared --queue-dir/--resume hygiene for sweep-shaped commands."""
    queue_url = getattr(args, "queue_url", None)
    if queue_url and args.queue_dir:
        print(f"repro {command}: pass --queue-url or --queue-dir, not both "
              "(the server owns the backing queue; point workers and runners "
              "at its URL)", file=sys.stderr)
        return 2
    if args.resume and not (args.queue_dir or queue_url):
        print(f"repro {command}: --resume needs --queue-dir or --queue-url "
              "(the durable queue state to continue from)", file=sys.stderr)
        return 2
    if args.queue_dir and not args.resume:
        leftover = [
            name
            for state in ("pending", "claimed", "done", "failed")
            if os.path.isdir(os.path.join(args.queue_dir, state))
            for name in os.listdir(os.path.join(args.queue_dir, state))
        ]
        if leftover:
            print(
                f"repro {command}: queue dir {args.queue_dir!r} already holds "
                f"{len(leftover)} job file(s); pass --resume to continue "
                "that run or point --queue-dir at an empty directory",
                file=sys.stderr,
            )
            return 2
    return 0


def _remote_queue(args, command: str):
    """Build the HttpJobQueue for --queue-url, with the same
    already-holds-jobs hygiene as --queue-dir; returns (queue, status)."""
    from repro.pipeline.dist import HttpJobQueue

    queue = HttpJobQueue(args.queue_url)
    if not args.resume:
        stats = queue.stats()
        total = stats.pending + stats.claimed + stats.done + stats.failed
        if total:
            print(
                f"repro {command}: queue at {queue.url} already holds "
                f"{total} job(s); pass --resume to continue that run or "
                "point --queue-url at a fresh server",
                file=sys.stderr,
            )
            return None, 2
    return queue, 0


def _dse_csv_rows(result) -> list[list]:
    """Flatten a DSEResult into CSV rows (one per completed point)."""
    rows = [[
        "label", "pif", "pof", "rho", "frequency_mhz", "fps",
        "sustained_gops", "chip_power_w", "gate_count_m",
        "energy_efficiency", "pareto",
    ]]
    on_front = {id(point) for point in result.pareto}
    for point in result.points:
        rows.append([
            point.label, point.pif, point.pof, point.rho,
            point.frequency_mhz, point.fps, point.sustained_gops,
            point.chip_power_w, point.gate_count_m,
            point.energy_efficiency, int(id(point) in on_front),
        ])
    return rows


def _cmd_dse(args) -> int:
    import csv

    from repro.pipeline import DSERunner, dse_grid

    # An axis-values flag that does not match --grid would be silently
    # discarded and a *different* sweep would run; refuse instead.
    axis_flags = {
        "geometry": ("--geometries", args.geometries),
        "sparsity": ("--rhos", args.rhos),
        "frequency": ("--frequencies", args.frequencies),
    }
    for grid_name, (flag, value) in axis_flags.items():
        if value and grid_name != args.grid:
            print(
                f"repro dse: {flag} only applies to --grid {grid_name} "
                f"(got --grid {args.grid}); drop the flag or switch grids",
                file=sys.stderr,
            )
            return 2
    values = None
    try:
        if args.grid == "geometry" and args.geometries:
            values = tuple(
                tuple(int(side) for side in geometry.split("x"))
                for geometry in args.geometries.split(",") if geometry.strip()
            )
            if any(len(geometry) != 2 for geometry in values):
                raise ValueError("geometries must be PIFxPOF pairs")
        elif args.grid == "sparsity" and args.rhos:
            values = tuple(
                float(rho) for rho in args.rhos.split(",") if rho.strip()
            )
        elif args.grid == "frequency" and args.frequencies:
            values = tuple(
                float(f) for f in args.frequencies.split(",") if f.strip()
            )
    except ValueError as exc:
        print(f"repro dse: bad grid values ({exc})", file=sys.stderr)
        return 2
    base = {}
    for name, value in (
        ("pif", args.pif),
        ("pof", args.pof),
        ("rho", args.rho),
        ("frequency_mhz", args.frequency),
        ("channels", args.channels),
    ):
        if value is not None:
            base[name] = value

    status = _check_queue_dir(args, "dse")
    if status:
        return status
    queue = None
    if args.queue_url:
        queue, status = _remote_queue(args, "dse")
        if status:
            return status

    specs = dse_grid(
        args.grid,
        values=values,
        base=base,
        height=args.height,
        width=args.width,
        platform=args.platform,
    )
    runner = DSERunner(
        specs,
        queue=queue,
        queue_dir=args.queue_dir,
        workers=args.workers,
        lease_seconds=args.lease,
        max_attempts=args.max_attempts,
        bundle=args.bundle,
    )
    progress = None
    if args.progress:
        def progress(stats):
            print(
                f"  pending {stats.pending}  claimed {stats.claimed}  "
                f"done {stats.done}  failed {stats.failed}",
                file=sys.stderr,
            )
    _obs_start(args)
    result = runner.run(progress)
    _obs_write(args)
    if args.csv:
        with open(args.csv, "w", newline="", encoding="utf-8") as handle:
            csv.writer(handle).writerows(_dse_csv_rows(result))
    payload = result.to_dict()
    if args.pareto:
        payload["points"] = payload["pareto"]
    _emit(args, result.render(pareto_only=args.pareto), payload)
    return 0 if result.ok else 1


def _cmd_serve(args) -> int:
    """Run the JSON-over-HTTP queue daemon (optionally autoscaling a
    local worker fleet against it)."""
    import threading

    from repro.pipeline.dist import (
        Autoscaler,
        DirectoryJobQueue,
        MemoryJobQueue,
        QueueServer,
        spawn_http_worker,
    )

    if args.queue_dir:
        queue = DirectoryJobQueue(args.queue_dir, max_attempts=args.max_attempts)
        backend = f"directory queue {args.queue_dir!r}"
    else:
        queue = MemoryJobQueue(max_attempts=args.max_attempts)
        backend = "in-memory queue (state dies with the server; pass "\
                  "--queue-dir for durability and --resume)"
    server = QueueServer(queue, host=args.host, port=args.port)
    # Scraped by scripts/CI to discover an ephemeral --port 0 address;
    # keep the "serving on <url>" shape stable.
    print(f"serving on {server.url}\n  backend: {backend}", flush=True)
    stop = threading.Event()
    scaler_thread = None
    if args.autoscale:
        scaler = Autoscaler(
            queue,
            lambda: spawn_http_worker(
                server.url, lease_seconds=args.lease, bundle=args.bundle
            ),
            min_workers=args.min_workers,
            max_workers=args.max_workers,
            backlog_per_worker=args.backlog_per_worker,
            cooldown_seconds=args.cooldown,
        )
        scaler_thread = threading.Thread(
            target=scaler.run,
            kwargs={"should_stop": stop.is_set},
            daemon=True,
        )
        scaler_thread.start()
        print(
            f"  autoscaling {args.min_workers}..{args.max_workers} workers "
            f"(backlog/worker {args.backlog_per_worker}, "
            f"cooldown {args.cooldown:g}s)",
            flush=True,
        )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        stop.set()
        if scaler_thread is not None:
            scaler_thread.join(timeout=30.0)
        server.stop()
    return 0


def _cmd_worker(args) -> int:
    """Join a worker fleet: drain jobs from a queue server (or a shared
    queue directory) until it is empty — or forever with --forever."""
    from repro.pipeline.dist import (
        DirectoryJobQueue,
        default_worker_id,
        http_worker_entry,
        run_worker,
    )

    if bool(args.queue_url) == bool(args.queue_dir):
        print(
            "repro worker: pass exactly one of --queue-url (a repro serve "
            "daemon) or --queue-dir (a shared queue directory)",
            file=sys.stderr,
        )
        return 2
    worker_id = args.id or default_worker_id()
    try:
        if args.queue_url:
            completed = http_worker_entry(
                args.queue_url,
                worker_id,
                lease_seconds=args.lease,
                poll_seconds=args.poll,
                max_jobs=args.max_jobs,
                stop_when_drained=not args.forever,
                job_timeout_seconds=args.job_timeout,
                bundle=args.bundle,
            )
        else:
            queue = DirectoryJobQueue(
                args.queue_dir, max_attempts=args.max_attempts
            )
            completed = run_worker(
                queue,
                worker_id,
                lease_seconds=args.lease,
                poll_seconds=args.poll,
                max_jobs=args.max_jobs,
                stop_when_drained=not args.forever,
                job_timeout_seconds=args.job_timeout,
                bundle=args.bundle,
            )
    except KeyboardInterrupt:
        print(f"worker {worker_id}: interrupted", file=sys.stderr)
        return 130
    print(f"worker {worker_id}: completed {completed} job(s)")
    return 0


def _attach_queue(args, command: str):
    """Attach to *existing* queue state for inspection commands
    (``repro failures`` / ``repro retry``) — no emptiness hygiene: the
    whole point is to look at what a finished or wedged run left
    behind."""
    from repro.pipeline.dist import DirectoryJobQueue, HttpJobQueue

    if bool(args.queue_url) == bool(args.queue_dir):
        print(
            f"repro {command}: pass exactly one of --queue-url (a repro "
            "serve daemon) or --queue-dir (a queue directory)",
            file=sys.stderr,
        )
        return None
    if args.queue_url:
        return HttpJobQueue(args.queue_url)
    if not os.path.isdir(args.queue_dir):
        print(
            f"repro {command}: no queue directory at {args.queue_dir!r}",
            file=sys.stderr,
        )
        return None
    return DirectoryJobQueue(args.queue_dir)


def _cmd_failures(args) -> int:
    """List a queue's dead-letter ledger: every failed job with its
    attempts, quarantine flag, and error (traceback with -v)."""
    queue = _attach_queue(args, "failures")
    if queue is None:
        return 2
    details = queue.failure_details()
    payload = {
        "failed": len(details),
        "jobs": [
            {"job_id": job_id, **record}
            for job_id, record in sorted(details.items())
        ],
    }
    if not details:
        return _emit(args, "no dead-lettered jobs", payload)
    lines = [f"{len(details)} dead-lettered job(s):"]
    for job_id, record in sorted(details.items()):
        flag = "  [quarantined]" if record.get("quarantined") else ""
        error = str(record.get("error", "")).strip()
        last_line = error.splitlines()[-1] if error else "(no error recorded)"
        lines.append(
            f"  {job_id}{flag}  attempts={record.get('attempts', 0)}"
        )
        if args.verbose and error:
            lines.extend("    | " + ln for ln in error.splitlines())
        else:
            lines.append(f"    {last_line}")
    source = (
        f"--queue-url {args.queue_url}" if args.queue_url
        else f"--queue-dir {args.queue_dir}"
    )
    lines.append(f"replay with: repro retry {source} --all (or job ids)")
    return _emit(args, "\n".join(lines), payload)


def _cmd_retry(args) -> int:
    """Resubmit dead-lettered jobs: back to pending with a fresh
    attempt budget (their specs ride in the failed records)."""
    queue = _attach_queue(args, "retry")
    if queue is None:
        return 2
    if bool(args.job_ids) == bool(args.all):
        print(
            "repro retry: pass job ids (see 'repro failures') or --all",
            file=sys.stderr,
        )
        return 2
    job_ids = sorted(queue.failures()) if args.all else list(args.job_ids)
    retried, missing = [], []
    for job_id in job_ids:
        (retried if queue.retry(job_id) else missing).append(job_id)
    payload = {"retried": retried, "missing": missing}
    lines = [f"resubmitted {len(retried)} job(s)"]
    lines.extend(f"  {job_id}" for job_id in retried)
    for job_id in missing:
        lines.append(f"  {job_id}: not in the dead-letter ledger (already "
                     "retried, finished, or never existed)")
    _emit(args, "\n".join(lines), payload)
    return 0 if not missing else 1


def main(argv=None) -> int:
    from repro import __version__

    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}",
        help="print the build version (also stamped into heartbeats and "
        "trace files) and exit",
    )
    # Bare ``python -m repro`` runs the default subcommand with its
    # defaults; dispatch goes through ``func`` so user argv is never
    # re-parsed or discarded.
    parser.set_defaults(func=_cmd_reproduce, full=False, output=None, json=False)
    sub = parser.add_subparsers(dest="command")

    rep = sub.add_parser("reproduce", help="regenerate all tables and figures")
    rep.add_argument("--full", action="store_true", help="include measured runs")
    rep.add_argument("-o", "--output", default=None)
    rep.add_argument("--json", action="store_true", help="emit structured JSON")
    rep.set_defaults(func=_cmd_reproduce)

    enc = sub.add_parser("encode", help="encode a clip (synthetic or raw YUV)")
    enc.add_argument("--codec", default="ctvc", help="registered codec name")
    enc.add_argument("--height", type=int, default=64)
    enc.add_argument("--width", type=int, default=96)
    enc.add_argument("--frames", type=int, default=4)
    enc.add_argument("--channels", type=int, default=12)
    enc.add_argument("--qp", type=float, default=8.0)
    enc.add_argument(
        "--entropy-backend",
        default=None,
        help="entropy coder for the codec ('rans' fast path, 'cacm' reference; "
        "default: the codec config's default)",
    )
    enc.add_argument(
        "--target-kbps", type=float, default=None,
        help="bitrate budget: engage a rate controller (default 'abr' "
        "when only this flag is given) steering per-frame QP toward "
        "this average rate",
    )
    enc.add_argument(
        "--rate-control", default=None,
        help="rate controller name ('cqp' fixed QP, 'abr' running-average "
        "budget tracking, 'calibrated' QP->bits table inversion; see "
        "available_rate_controllers())",
    )
    enc.add_argument(
        "--fps", type=float, default=None,
        help="frame rate the bitrate budget is metered at (default 30)",
    )
    enc.add_argument("--msssim", action="store_true", help="also compute MS-SSIM")
    enc.add_argument(
        "--stream",
        action="store_true",
        help="frame-at-a-time encode writing the version-3 container to "
        "--output incrementally (O(1) frame memory); report goes to stdout",
    )
    enc.add_argument(
        "--input",
        default=None,
        help="raw YUV 4:2:0 file to encode instead of the synthetic scene "
        "(streamed lazily; needs --stream, --height, --width)",
    )
    enc.add_argument(
        "--progress",
        action="store_true",
        help="print per-frame progress to stderr (streaming mode)",
    )
    enc.add_argument(
        "-o",
        "--output",
        default=None,
        help="report file; with --stream, the container file instead",
    )
    enc.add_argument("--json", action="store_true", help="emit structured JSON")
    enc.set_defaults(func=_cmd_encode)

    dec = sub.add_parser(
        "decode", help="decode a container file (any format version)"
    )
    dec.add_argument("bitstream", help="container file to decode")
    dec.add_argument(
        "--codec",
        default=None,
        help="registered codec name (default: inferred from the stream header)",
    )
    dec.add_argument(
        "--config",
        default=None,
        help="JSON codec-config overrides (merged over the header's config, "
        "e.g. '{\"seed\": 5}' for pre-v3 CTVC streams)",
    )
    dec.add_argument(
        "--reference",
        default=None,
        help="raw YUV 4:2:0 reference for PSNR (default: the scene recorded "
        "in a version-3 header, if any)",
    )
    dec.add_argument(
        "--on-error",
        choices=["raise", "skip"],
        default="raise",
        help="corrupt-packet policy for version-4 containers: 'raise' "
        "(default) stops with the packet index; 'skip' drops damaged "
        "packets, resyncs at the next length prefix, and reports how "
        "many were lost",
    )
    dec.add_argument(
        "--progress",
        action="store_true",
        help="print per-frame progress to stderr",
    )
    dec.add_argument(
        "-o",
        "--output",
        default=None,
        help="write the reconstruction as raw YUV 4:2:0",
    )
    dec.add_argument("--json", action="store_true", help="emit structured JSON")
    dec.set_defaults(func=_cmd_decode)

    swp = sub.add_parser(
        "sweep",
        help="run an RD grid on the work-queue backend and aggregate curves",
    )
    swp.add_argument(
        "--codecs",
        default="classical,ctvc",
        help="comma-separated registered codec names (default: classical,ctvc)",
    )
    swp.add_argument(
        "--qps",
        default="8,16",
        help="comma-separated operating points; each drives the codec's "
        "quantization knob (CTVC qstep / classical qp)",
    )
    swp.add_argument("--height", type=int, default=64)
    swp.add_argument("--width", type=int, default=96)
    swp.add_argument("--frames", type=int, default=4)
    swp.add_argument(
        "--seeds",
        default="0",
        help="comma-separated scene seeds; each seed is one scene in the grid",
    )
    swp.add_argument("--channels", type=int, default=None)
    swp.add_argument(
        "--entropy-backend",
        default=None,
        help="entropy coder override for codecs that take one",
    )
    swp.add_argument("--msssim", action="store_true", help="also compute MS-SSIM")
    swp.add_argument(
        "--metric",
        choices=["psnr", "ms-ssim"],
        default="psnr",
        help="quality axis of the aggregated RD curves",
    )
    swp.add_argument(
        "--anchor",
        default="auto",
        help="anchor codec for BD-rate deltas ('auto': classical when "
        "present; 'none' to skip)",
    )
    swp.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker count: 0 runs serially in-process; with --queue-dir "
        "workers are processes, otherwise threads",
    )
    swp.add_argument(
        "--queue-dir",
        default=None,
        help="directory-backed job queue (durable state; other hosts sharing "
        "the filesystem can attach workers; enables --resume)",
    )
    swp.add_argument(
        "--queue-url",
        default=None,
        help="run the grid through a repro serve daemon at this URL; workers "
        "are local processes talking HTTP, and remote hosts can join with "
        "'repro worker --queue-url'",
    )
    swp.add_argument(
        "--resume",
        action="store_true",
        help="continue an interrupted sweep from --queue-dir or --queue-url "
        "(finished jobs are not re-run)",
    )
    swp.add_argument(
        "--lease",
        type=float,
        default=120.0,
        help="per-job lease seconds before a silent worker is presumed dead "
        "and its job is retried",
    )
    swp.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="tries per job before it dead-letters into the failure report",
    )
    swp.add_argument(
        "--bundle",
        type=_bundle_arg,
        default="auto",
        help="jobs claimed per queue round-trip; 'auto' (default) sizes "
        "bundles from the grid and worker count — transport only, results "
        "are byte-identical to --bundle 1",
    )
    swp.add_argument(
        "--csv", default=None, help="also write per-job rows as CSV here"
    )
    swp.add_argument(
        "--progress",
        action="store_true",
        help="print queue progress snapshots to stderr",
    )
    swp.add_argument(
        "--metrics-out", default=None,
        help="write this process's metrics registry as Prometheus text "
        "after the run (fleet-wide series live on the daemon's /metrics)",
    )
    swp.add_argument(
        "--trace-out", default=None,
        help="enable span tracing for the run and dump the flight "
        "recorder as JSONL here (render with 'repro trace FILE')",
    )
    swp.add_argument("-o", "--output", default=None, help="report file")
    swp.add_argument("--json", action="store_true", help="emit structured JSON")
    swp.set_defaults(func=_cmd_sweep)

    lad = sub.add_parser(
        "ladder",
        help="build an ABR ladder (rate-controlled renditions) on the "
        "work-queue backend",
    )
    lad.add_argument(
        "--renditions",
        default="96x64:30,96x64:60,48x32:8,48x32:16",
        help="comma-separated WxH:KBPS rungs (resolution encoded to a "
        "target bitrate)",
    )
    lad.add_argument("--codec", default="classical",
                     help="registered codec name every rung runs through")
    lad.add_argument(
        "--rate-control", default="calibrated",
        help="rate controller steering each rung ('cqp', 'abr', "
        "'calibrated')",
    )
    lad.add_argument("--fps", type=float, default=30.0,
                     help="frame rate the bitrate budgets are metered at")
    lad.add_argument("--frames", type=int, default=8)
    lad.add_argument("--seed", type=int, default=0,
                     help="scene seed (one source, many rates)")
    lad.add_argument("--qp", type=float, default=None,
                     help="base quantization the controller adapts around "
                     "(default: the codec config's default)")
    lad.add_argument(
        "--entropy-backend", default=None,
        help="entropy coder override for codecs that take one",
    )
    lad.add_argument(
        "--config", default=None,
        help="JSON codec-config overrides applied to every rung "
        "(e.g. '{\"method\": \"h265\"}' for --codec rd-model)",
    )
    lad.add_argument("--msssim", action="store_true",
                     help="also compute MS-SSIM per rung")
    lad.add_argument(
        "--workers", type=int, default=2,
        help="worker count: 0 runs serially in-process; with --queue-dir "
        "workers are processes, otherwise threads",
    )
    lad.add_argument(
        "--queue-dir", default=None,
        help="directory-backed job queue (durable state; other hosts "
        "sharing the filesystem can attach workers; enables --resume)",
    )
    lad.add_argument(
        "--queue-url", default=None,
        help="run the ladder through a repro serve daemon at this URL; "
        "workers are local processes talking HTTP, and remote hosts can "
        "join with 'repro worker --queue-url'",
    )
    lad.add_argument(
        "--resume", action="store_true",
        help="continue an interrupted ladder from --queue-dir or "
        "--queue-url (finished rungs are not re-run)",
    )
    lad.add_argument(
        "--lease", type=float, default=120.0,
        help="per-rung lease seconds before a silent worker is presumed "
        "dead and its rung is retried",
    )
    lad.add_argument(
        "--max-attempts", type=int, default=3,
        help="tries per rung before it dead-letters into the failure report",
    )
    lad.add_argument(
        "--bundle", type=_bundle_arg, default="auto",
        help="rungs claimed per queue round-trip ('auto' sizes from the "
        "ladder and worker count; results are byte-identical to --bundle 1)",
    )
    lad.add_argument(
        "--csv", default=None, help="also write per-rung rows as CSV here"
    )
    lad.add_argument(
        "--progress", action="store_true",
        help="print queue progress snapshots to stderr",
    )
    lad.add_argument(
        "--metrics-out", default=None,
        help="write this process's metrics registry as Prometheus text "
        "after the run (fleet-wide series live on the daemon's /metrics)",
    )
    lad.add_argument(
        "--trace-out", default=None,
        help="enable span tracing for the run and dump the flight "
        "recorder as JSONL here (render with 'repro trace FILE')",
    )
    lad.add_argument("-o", "--output", default=None, help="report file")
    lad.add_argument("--json", action="store_true", help="emit structured JSON")
    lad.set_defaults(func=_cmd_ladder)

    hw = sub.add_parser(
        "hardware",
        help="accelerator platform analysis (NVCA model or a Table II "
        "reference)",
    )
    hw.add_argument(
        "--platform",
        default="nvca",
        help="registered platform name ('nvca' modeled by this repo; "
        "'cpu-i9-9900x', 'gpu-rtx3090', 'shao-tcas22', 'alchemist' "
        "published references)",
    )
    hw.add_argument("--height", type=int, default=1080)
    hw.add_argument("--width", type=int, default=1920)
    hw.add_argument(
        "--pif", type=int, default=None,
        help="SCU array input-channel unrolling (NVCA; default 12)",
    )
    hw.add_argument(
        "--pof", type=int, default=None,
        help="SCU array output-channel unrolling (NVCA; default 12)",
    )
    hw.add_argument(
        "--rho", type=float, default=None,
        help="provisioned transform-domain sparsity in [0, 1) "
        "(NVCA; default 0.5)",
    )
    hw.add_argument(
        "--frequency", type=float, default=None,
        help="core clock in MHz (NVCA; default 400)",
    )
    hw.add_argument(
        "--channels", type=int, default=None,
        help="decoder channel count N (NVCA; default 36)",
    )
    hw.add_argument(
        "--technology", type=int, default=None,
        help="project a reference platform to this node (nm) via "
        "first-order scaling",
    )
    hw.add_argument(
        "--config", default=None,
        help="JSON platform-config overrides (merged under the flags, "
        "e.g. '{\"dcc_utilization\": 0.8}')",
    )
    hw.add_argument("-o", "--output", default=None)
    hw.add_argument("--json", action="store_true", help="emit structured JSON")
    hw.set_defaults(func=_cmd_hardware)

    dse = sub.add_parser(
        "dse",
        help="run an NVCA design-space grid on the work-queue backend "
        "and report the Pareto front",
    )
    dse.add_argument(
        "--grid",
        choices=["geometry", "sparsity", "frequency"],
        default="geometry",
        help="which axis to sweep around the paper's operating point",
    )
    dse.add_argument(
        "--geometries", default=None,
        help="comma-separated PIFxPOF pairs for --grid geometry "
        "(default: 6x6,12x6,12x12,18x12,18x18)",
    )
    dse.add_argument(
        "--rhos", default=None,
        help="comma-separated sparsity levels for --grid sparsity "
        "(default: 0,0.25,0.5,0.75)",
    )
    dse.add_argument(
        "--frequencies", default=None,
        help="comma-separated clock MHz for --grid frequency "
        "(default: 200,400,600,800)",
    )
    dse.add_argument("--height", type=int, default=1080)
    dse.add_argument("--width", type=int, default=1920)
    dse.add_argument("--platform", default="nvca",
                     help="registered (modeled) platform to explore")
    dse.add_argument("--pif", type=int, default=None,
                     help="base-config Pif for the non-swept axes")
    dse.add_argument("--pof", type=int, default=None,
                     help="base-config Pof for the non-swept axes")
    dse.add_argument("--rho", type=float, default=None,
                     help="base-config sparsity for the non-swept axes")
    dse.add_argument("--frequency", type=float, default=None,
                     help="base-config clock MHz for the non-swept axes")
    dse.add_argument("--channels", type=int, default=None,
                     help="base-config decoder channel count")
    dse.add_argument(
        "--workers", type=int, default=2,
        help="worker count: 0 runs serially in-process; with --queue-dir "
        "workers are processes, otherwise threads",
    )
    dse.add_argument(
        "--queue-dir", default=None,
        help="directory-backed job queue (durable state; other hosts "
        "sharing the filesystem can attach workers; enables --resume)",
    )
    dse.add_argument(
        "--queue-url", default=None,
        help="run the grid through a repro serve daemon at this URL; "
        "workers are local processes talking HTTP, and remote hosts can "
        "join with 'repro worker --queue-url'",
    )
    dse.add_argument(
        "--resume", action="store_true",
        help="continue an interrupted grid from --queue-dir or --queue-url "
        "(finished points are not re-run)",
    )
    dse.add_argument(
        "--lease", type=float, default=120.0,
        help="per-point lease seconds before a silent worker is presumed "
        "dead and its point is retried",
    )
    dse.add_argument(
        "--max-attempts", type=int, default=3,
        help="tries per point before it dead-letters into the failure report",
    )
    dse.add_argument(
        "--bundle", type=_bundle_arg, default="auto",
        help="points claimed per queue round-trip ('auto' sizes from the "
        "grid and worker count; results are byte-identical to --bundle 1)",
    )
    dse.add_argument(
        "--pareto", action="store_true",
        help="report only the Pareto-optimal points",
    )
    dse.add_argument(
        "--csv", default=None, help="also write per-point rows as CSV here"
    )
    dse.add_argument(
        "--progress", action="store_true",
        help="print queue progress snapshots to stderr",
    )
    dse.add_argument(
        "--metrics-out", default=None,
        help="write this process's metrics registry as Prometheus text "
        "after the run (fleet-wide series live on the daemon's /metrics)",
    )
    dse.add_argument(
        "--trace-out", default=None,
        help="enable span tracing for the run and dump the flight "
        "recorder as JSONL here (render with 'repro trace FILE')",
    )
    dse.add_argument("-o", "--output", default=None, help="report file")
    dse.add_argument("--json", action="store_true", help="emit structured JSON")
    dse.set_defaults(func=_cmd_dse)

    srv = sub.add_parser(
        "serve",
        help="run the JSON-over-HTTP job-queue daemon for network sweeps",
    )
    srv.add_argument(
        "--queue-dir",
        default=None,
        help="serve a directory-backed queue (durable: a restarted server "
        "over the same directory keeps all job state, and sweeps --resume); "
        "default is an in-memory queue that dies with the server",
    )
    srv.add_argument("--host", default="127.0.0.1",
                     help="bind address (default loopback; 0.0.0.0 to "
                     "accept remote workers)")
    srv.add_argument("--port", type=int, default=8642,
                     help="TCP port (0 picks a free one; the chosen URL is "
                     "printed at startup)")
    srv.add_argument(
        "--max-attempts", type=int, default=3,
        help="tries per job before it dead-letters (backing-queue policy)",
    )
    srv.add_argument(
        "--autoscale", action="store_true",
        help="also run an autoscaler growing/shrinking a local worker fleet "
        "against queue depth and lease expiries",
    )
    srv.add_argument("--min-workers", type=int, default=0,
                     help="autoscaler floor (default 0: idle fleet scales "
                     "to nothing)")
    srv.add_argument("--max-workers", type=int, default=4,
                     help="autoscaler ceiling")
    srv.add_argument(
        "--backlog-per-worker", type=int, default=4,
        help="scale-up threshold: target at most this many pending jobs "
        "per alive worker",
    )
    srv.add_argument("--cooldown", type=float, default=2.0,
                     help="seconds between autoscaler actions")
    srv.add_argument(
        "--lease", type=float, default=120.0,
        help="per-job lease seconds for autoscaled workers",
    )
    srv.add_argument(
        "--bundle", type=int, default=1,
        help="jobs each autoscaled worker claims per queue round-trip",
    )
    srv.set_defaults(func=_cmd_serve, json=False, output=None)

    wrk = sub.add_parser(
        "worker",
        help="join a worker fleet (network or shared-filesystem queue)",
    )
    wrk.add_argument(
        "--queue-url", default=None,
        help="repro serve daemon to drain (heartbeats feed its /stats)",
    )
    wrk.add_argument(
        "--queue-dir", default=None,
        help="shared queue directory to drain instead of a server",
    )
    wrk.add_argument("--id", default=None,
                     help="worker id for lease attribution "
                     "(default: host-pid)")
    wrk.add_argument(
        "--lease", type=float, default=120.0,
        help="per-job lease seconds (size well above the slowest job)",
    )
    wrk.add_argument("--max-jobs", type=int, default=None,
                     help="exit after completing this many jobs")
    wrk.add_argument("--poll", type=float, default=0.05,
                     help="idle poll interval in seconds")
    wrk.add_argument(
        "--forever", action="store_true",
        help="keep polling an empty queue instead of exiting when drained",
    )
    wrk.add_argument(
        "--max-attempts", type=int, default=3,
        help="tries per job before dead-letter (--queue-dir only; the "
        "server's backing queue owns this over HTTP)",
    )
    wrk.add_argument(
        "--bundle", type=int, default=1,
        help="jobs claimed per queue round-trip (one lease covers the "
        "bundle; unfinished jobs requeue if the worker dies mid-bundle)",
    )
    wrk.add_argument(
        "--job-timeout", type=float, default=None,
        help="per-job wall-clock watchdog in seconds: a job still running "
        "after this long is failed with a JobTimeoutError and the worker "
        "moves on (size it below --lease; default: no watchdog)",
    )
    wrk.set_defaults(func=_cmd_worker, json=False, output=None)

    fls = sub.add_parser(
        "failures",
        help="list a queue's dead-lettered jobs (tracebacks, attempts, "
        "quarantine flags)",
    )
    fls.add_argument(
        "--queue-dir", default=None,
        help="queue directory to inspect (a finished or wedged sweep's "
        "--queue-dir)",
    )
    fls.add_argument(
        "--queue-url", default=None,
        help="repro serve daemon to inspect instead of a directory",
    )
    fls.add_argument(
        "-v", "--verbose", action="store_true",
        help="show full tracebacks instead of the last line of each error",
    )
    fls.add_argument("-o", "--output", default=None)
    fls.add_argument("--json", action="store_true",
                     help="emit structured JSON")
    fls.set_defaults(func=_cmd_failures)

    rty = sub.add_parser(
        "retry",
        help="resubmit dead-lettered jobs (fresh attempt budget; specs "
        "come from the failed records)",
    )
    rty.add_argument(
        "job_ids", nargs="*",
        help="job ids to resubmit (from 'repro failures')",
    )
    rty.add_argument("--all", action="store_true",
                     help="resubmit every dead-lettered job")
    rty.add_argument(
        "--queue-dir", default=None,
        help="queue directory holding the dead letters",
    )
    rty.add_argument(
        "--queue-url", default=None,
        help="repro serve daemon holding the dead letters",
    )
    rty.add_argument("-o", "--output", default=None)
    rty.add_argument("--json", action="store_true",
                     help="emit structured JSON")
    rty.set_defaults(func=_cmd_retry)

    trc = sub.add_parser(
        "trace",
        help="render a flight-recorder JSONL dump as a span tree with "
        "its critical path",
    )
    trc.add_argument(
        "trace_file",
        help="JSONL trace (a sweep/ladder/dse --trace-out file, or the "
        "daemon's /trace endpoint saved to disk)",
    )
    trc.add_argument(
        "--max-roots", type=int, default=None,
        help="show only the newest N root spans (default: all)",
    )
    trc.add_argument("-o", "--output", default=None, help="report file")
    trc.add_argument("--json", action="store_true", help="emit structured JSON")
    trc.set_defaults(func=_cmd_trace)

    from repro.pipeline import CodecRegistryError
    from repro.pipeline.dist import HttpQueueError
    from repro.serialization import ConfigError

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ConfigError, CodecRegistryError, HttpQueueError,
            ValueError, OSError) as exc:
        # User-input errors get a clean one-liner; genuine internal
        # failures still traceback so they stay diagnosable.
        print(f"repro {args.command or 'reproduce'}: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
