"""Compressed sparse storage of transform-domain weights.

Mirrors the accelerator's on-chip layout: the Weight Buffer stores only
non-zero transform-domain weights and the Index Buffer stores their
positions inside each mu x mu patch (Section IV-A).  Each SCU's
"non-zero element selector" uses the indices to gather matching inputs
for the Hadamard products, so the representation here is exactly what
the hardware model meters.

Balanced pruning gives every (oc, ic) patch the same non-zero count —
the shape the united SCU array wants (a fixed ``64*rho`` multiplier
budget); global-threshold pruning produces ragged patches stored in a
CSR-like layout.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .pruning import PrunedKernel

__all__ = ["CompressedKernel", "compress_kernel"]


@dataclass
class CompressedKernel:
    """CSR-like compression of a pruned transform-domain kernel.

    ``values``/``indices`` are flat over all patches in (oc, ic) order;
    ``patch_ptr`` has ``OC*IC + 1`` entries delimiting each patch's
    slice.  ``indices`` address the flattened mu*mu patch.
    """

    out_channels: int
    in_channels: int
    mu: int
    values: np.ndarray
    indices: np.ndarray
    patch_ptr: np.ndarray
    weight_bits: int = 16

    @property
    def num_nonzeros(self) -> int:
        return int(self.values.size)

    @property
    def index_bits(self) -> int:
        """Bits needed to address one position inside a mu x mu patch."""
        return max(1, int(np.ceil(np.log2(self.mu * self.mu))))

    @property
    def is_balanced(self) -> bool:
        counts = np.diff(self.patch_ptr)
        return bool(counts.size == 0 or np.all(counts == counts[0]))

    def nonzeros_per_patch(self) -> np.ndarray:
        return np.diff(self.patch_ptr).reshape(self.out_channels, self.in_channels)

    def weight_buffer_bits(self) -> int:
        """Weight Buffer footprint in bits."""
        return self.num_nonzeros * self.weight_bits

    def index_buffer_bits(self) -> int:
        """Index Buffer footprint in bits."""
        return self.num_nonzeros * self.index_bits

    def patch(self, oc: int, ic: int) -> tuple[np.ndarray, np.ndarray]:
        """(values, indices) for one (oc, ic) patch."""
        flat = oc * self.in_channels + ic
        lo, hi = self.patch_ptr[flat], self.patch_ptr[flat + 1]
        return self.values[lo:hi], self.indices[lo:hi]

    def to_dense(self) -> np.ndarray:
        """Reconstruct the dense (OC, IC, mu, mu) masked weights."""
        dense = np.zeros(
            (self.out_channels, self.in_channels, self.mu * self.mu)
        )
        for oc in range(self.out_channels):
            for ic in range(self.in_channels):
                vals, idx = self.patch(oc, ic)
                dense[oc, ic, idx] = vals
        return dense.reshape(
            self.out_channels, self.in_channels, self.mu, self.mu
        )


def compress_kernel(pruned: PrunedKernel, weight_bits: int = 16) -> CompressedKernel:
    """Pack a :class:`PrunedKernel` into Weight/Index-buffer form."""
    oc, ic, mu, _ = pruned.values.shape
    flat_vals = pruned.values.reshape(oc * ic, mu * mu)
    flat_mask = pruned.mask.reshape(oc * ic, mu * mu) > 0.5

    values: list[np.ndarray] = []
    indices: list[np.ndarray] = []
    ptr = np.zeros(oc * ic + 1, dtype=np.int64)
    for patch_id in range(oc * ic):
        nz = np.flatnonzero(flat_mask[patch_id])
        values.append(flat_vals[patch_id, nz])
        indices.append(nz)
        ptr[patch_id + 1] = ptr[patch_id] + nz.size
    return CompressedKernel(
        out_channels=oc,
        in_channels=ic,
        mu=mu,
        values=np.concatenate(values) if values else np.empty(0),
        indices=np.concatenate(indices).astype(np.int64)
        if indices
        else np.empty(0, dtype=np.int64),
        patch_ptr=ptr,
        weight_bits=weight_bits,
    )
