"""Tests for the design-space exploration sweeps."""

import pytest

from repro.codec import decoder_graph
from repro.hw import (
    DesignPoint,
    pareto_front,
    sweep_array_geometry,
    sweep_sparsity,
)


@pytest.fixture(scope="module")
def graph():
    return decoder_graph(540, 960, 36)  # quarter-HD keeps sweeps fast


class TestGeometrySweep:
    def test_bigger_arrays_faster(self, graph):
        points = sweep_array_geometry(graph, ((6, 6), (12, 12), (18, 18)))
        assert points[0].fps < points[1].fps < points[2].fps

    def test_bigger_arrays_cost_more(self, graph):
        points = sweep_array_geometry(graph, ((6, 6), (12, 12), (18, 18)))
        assert points[0].gate_count_m < points[2].gate_count_m
        assert points[0].chip_power_w < points[2].chip_power_w

    def test_labels(self, graph):
        points = sweep_array_geometry(graph, ((12, 12),))
        assert points[0].label == "12x12"
        assert points[0].pif == points[0].pof == 12


class TestSparsitySweep:
    def test_sparsity_trades_area_for_nothing_at_dcc_bound(self, graph):
        """At the paper's operating point the DCC bounds the frame
        rate, so sparsity buys power/area at ~equal FPS — the design
        argument for rho = 50%."""
        points = sweep_sparsity(graph, (0.0, 0.5))
        dense, sparse = points
        assert sparse.fps == pytest.approx(dense.fps, rel=0.05)
        assert sparse.chip_power_w < dense.chip_power_w
        assert sparse.gate_count_m < dense.gate_count_m

    def test_monotone_cost_in_density(self, graph):
        points = sweep_sparsity(graph, (0.0, 0.25, 0.5, 0.75))
        gates = [p.gate_count_m for p in points]
        assert gates == sorted(gates, reverse=True)


class TestParetoFront:
    def make(self, label, fps, eff):
        return DesignPoint(
            label=label,
            pif=1,
            pof=1,
            rho=0.5,
            frequency_mhz=400,
            fps=fps,
            sustained_gops=0.0,
            chip_power_w=1.0,
            gate_count_m=1.0,
            energy_efficiency=eff,
        )

    def test_dominated_points_removed(self):
        a = self.make("a", fps=10, eff=100)
        b = self.make("b", fps=20, eff=200)  # dominates a
        c = self.make("c", fps=30, eff=50)  # trade-off with b
        front = pareto_front([a, b, c])
        assert {p.label for p in front} == {"b", "c"}

    def test_all_nondominated_kept(self):
        a = self.make("a", fps=10, eff=300)
        b = self.make("b", fps=20, eff=200)
        c = self.make("c", fps=30, eff=100)
        assert len(pareto_front([a, b, c])) == 3

    def test_area_efficiency_property(self):
        point = self.make("x", fps=1, eff=1)
        point = DesignPoint(
            **{**point.__dict__, "sustained_gops": 500.0, "gate_count_m": 5.0}
        )
        assert point.area_efficiency == pytest.approx(100.0)
