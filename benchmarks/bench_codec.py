"""Codec throughput benchmarks: encode/decode of both real codecs.

Run: pytest benchmarks/bench_codec.py --benchmark-only -s
"""

import numpy as np

from repro.codec import (
    ClassicalCodec,
    ClassicalCodecConfig,
    CTVCConfig,
    CTVCNet,
    SequenceBitstream,
)
from repro.metrics import psnr
from repro.video import SceneConfig, generate_sequence

_FRAMES = generate_sequence(SceneConfig(height=64, width=96, frames=3, seed=7))


def test_classical_encode(benchmark):
    codec = ClassicalCodec(ClassicalCodecConfig(qp=8.0))
    stream = benchmark(codec.encode_sequence, _FRAMES)
    assert len(stream.packets) == 3


def test_classical_decode(benchmark):
    codec = ClassicalCodec(ClassicalCodecConfig(qp=8.0))
    blob = codec.encode_sequence(_FRAMES).serialize()

    def decode():
        return codec.decode_sequence(SequenceBitstream.parse(blob))

    decoded = benchmark(decode)
    assert np.mean([psnr(a, b) for a, b in zip(_FRAMES, decoded)]) > 28.0


def test_ctvc_encode(benchmark):
    net = CTVCNet(CTVCConfig(channels=12, qstep=8.0, seed=1))
    stream = benchmark.pedantic(
        net.encode_sequence, args=(_FRAMES,), rounds=2, iterations=1
    )
    assert len(stream.packets) == 3


def test_ctvc_decode(benchmark):
    net = CTVCNet(CTVCConfig(channels=12, qstep=8.0, seed=1))
    blob = net.encode_sequence(_FRAMES).serialize()

    def decode():
        return net.decode_sequence(SequenceBitstream.parse(blob))

    decoded = benchmark.pedantic(decode, rounds=2, iterations=1)
    assert len(decoded) == 3


def test_ctvc_sparse_decode(benchmark):
    """Decoding with the sparse fast executors active."""
    net = CTVCNet(CTVCConfig(channels=12, qstep=8.0, seed=1))
    net.apply_sparse(rho=0.5)
    blob = net.encode_sequence(_FRAMES).serialize()

    def decode():
        return net.decode_sequence(SequenceBitstream.parse(blob))

    decoded = benchmark.pedantic(decode, rounds=2, iterations=1)
    assert len(decoded) == 3
