"""Quality metrics and rate-distortion analysis (PSNR, MS-SSIM, BD-rate)."""

from .bd import bd_quality, bd_rate
from .quality import MS_SSIM_WEIGHTS, ms_ssim, mse, psnr, ssim
from .rd import RDCurve, RDPoint

__all__ = [
    "MS_SSIM_WEIGHTS",
    "RDCurve",
    "RDPoint",
    "bd_quality",
    "bd_rate",
    "ms_ssim",
    "mse",
    "psnr",
    "ssim",
]
