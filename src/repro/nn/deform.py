"""Deformable convolution (DfConv), used by deformable compensation.

The paper's deformable compensation module (Fig. 2(d)) warps the
reference feature F_{t-1} with ``DfConv(N, 3, 1, G=2)``: a 3x3
convolution whose sampling taps are displaced by learned per-pixel
offsets, with channels split into G offset groups.  On the accelerator
this operation runs on the dedicated Deformable Convolution Core (DCC),
separate from the SFTC, because its gather pattern defeats the fast
transform algorithms.

Offset layout follows the torchvision convention: a ``(2*G*kH*kW, H, W)``
tensor ordered ``(group, tap_row, tap_col, [dy, dx])``.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .init import he_normal
from .layers import Module, Parameter

__all__ = ["DeformConv2d", "deform_conv2d"]


def deform_conv2d(
    x: np.ndarray,
    offsets: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None = None,
    stride: int = 1,
    padding: int = 1,
    groups: int = 1,
) -> np.ndarray:
    """Functional deformable convolution.

    Shapes: x (C_in, H, W); offsets (2*groups*kH*kW, H_out, W_out);
    weight (C_out, C_in, kH, kW).  Sampling clamps at borders (the
    hardware's gather unit does the same).
    """
    c_out, c_in, kh, kw = weight.shape
    if x.shape[0] != c_in:
        raise ValueError(f"input has {x.shape[0]} channels, weight expects {c_in}")
    if c_in % groups:
        raise ValueError(f"{c_in} channels not divisible into {groups} groups")
    _, h, w = x.shape
    ho = F.conv_output_size(h, kh, stride, padding)
    wo = F.conv_output_size(w, kw, stride, padding)
    expected = (2 * groups * kh * kw, ho, wo)
    if offsets.shape != expected:
        raise ValueError(f"offsets shape {offsets.shape}, expected {expected}")

    off = offsets.reshape(groups, kh, kw, 2, ho, wo)
    base_y = (np.arange(ho) * stride - padding)[:, None]
    base_x = (np.arange(wo) * stride - padding)[None, :]
    group_size = c_in // groups

    tap_y = np.arange(kh)[:, None, None, None]
    tap_x = np.arange(kw)[None, :, None, None]
    out = np.zeros((c_out, ho, wo))
    for g in range(groups):
        x_group = x[g * group_size : (g + 1) * group_size]
        w_group = weight[:, g * group_size : (g + 1) * group_size]
        # Gather all kh*kw displaced taps for this group in one
        # batched bilinear lookup (coordinates shaped (kh, kw, ho, wo)).
        ys = base_y[None, None] + tap_y + off[g, :, :, 0]
        xs = base_x[None, None] + tap_x + off[g, :, :, 1]
        sampled = F.bilinear_sample(x_group, ys, xs)
        out += np.einsum("ocij,cijhw->ohw", w_group, sampled)
    if bias is not None:
        out += bias[:, None, None]
    return out


class DeformConv2d(Module):
    """Deformable conv layer; offsets are a second forward argument."""

    op_kind = "dfconv"

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        padding: int | None = None,
        groups: int = 2,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if padding is None:
            padding = kernel_size // 2
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups
        rng = rng or np.random.default_rng(0)
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            he_normal(
                rng, (out_channels, in_channels, kernel_size, kernel_size), fan_in
            )
        )
        self.bias = Parameter(np.zeros(out_channels)) if bias else None
        self.activation_quant = None

    def offset_channels(self) -> int:
        """Number of offset channels this layer consumes."""
        return 2 * self.groups * self.kernel_size * self.kernel_size

    def forward(self, x: np.ndarray, offsets: np.ndarray) -> np.ndarray:
        out = deform_conv2d(
            x,
            offsets,
            self.weight.data,
            self.bias.data if self.bias is not None else None,
            self.stride,
            self.padding,
            self.groups,
        )
        if self.activation_quant is not None:
            out = self.activation_quant.fake_quant(out)
        return out
