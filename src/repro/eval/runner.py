"""One-shot driver: regenerate every table and figure of the paper.

``run_all`` collects the artifacts; ``main`` renders them to one text
report and ``report_dict`` to one JSON-ready document (what
``python -m repro reproduce --json`` emits).  ``fast=True`` (the
default) uses the calibrated Table I mode and skips the measured RD
overlays, finishing in seconds; ``fast=False`` additionally runs the
real pipeline measurements (minutes on a laptop-class CPU).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .ablations import (
    dataflow_ablation,
    fast_algorithm_ablation,
    render_sparsity_sweep,
    sparsity_sweep,
)
from .fig8 import generate_fig8
from .fig9 import generate_fig9a, generate_fig9b
from .table1 import generate_table1
from .table2 import generate_table2

__all__ = ["run_all", "main", "report_dict"]


def _jsonable(value, depth: int = 0):
    """Best-effort conversion of an eval artifact to JSON-ready types.

    Artifacts are heterogeneous dataclasses (tables, figure panels,
    nested hardware reports); anything without an obvious mapping
    falls back to ``str`` rather than failing the whole report.
    """
    if depth > 12:
        return str(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if hasattr(value, "to_dict"):
        return _jsonable(value.to_dict(), depth + 1)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name), depth + 1)
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {
            "/".join(map(str, k)) if isinstance(k, tuple) else str(k): _jsonable(
                v, depth + 1
            )
            for k, v in value.items()
        }
    if isinstance(value, (list, tuple, set)):
        return [_jsonable(item, depth + 1) for item in value]
    return str(value)


def report_dict(results: dict) -> dict:
    """Machine-readable rendering of :func:`run_all` output."""
    return {name: _jsonable(artifact) for name, artifact in results.items()}


def run_all(fast: bool = True) -> dict:
    """Regenerate all experiments; returns {artifact name: result}."""
    results = {
        "table1": generate_table1(mode="calibrated" if fast else "hybrid"),
        "table2": generate_table2(),
        "fig8": generate_fig8(include_measured=not fast),
        "fig9a": generate_fig9a(),
        "fig9b": generate_fig9b(),
        "fast_algorithm": fast_algorithm_ablation(),
        "dataflow": dataflow_ablation(),
    }
    if not fast:
        results["sparsity_sweep"] = sparsity_sweep()
    return results


def main(fast: bool = True) -> str:
    """Render every artifact to one text report."""
    results = run_all(fast=fast)
    sections = [
        results["table1"].render(),
        results["table2"].render(),
    ]
    for panel in results["fig8"]:
        sections.append(panel.render())
    sections.append(results["fig9a"].render())
    sections.append(results["fig9b"].render())
    fast_alg = results["fast_algorithm"]
    sections.append(
        "Fast-algorithm ablation: direct/fast = "
        f"{fast_alg['fast_reduction']:.2f}x, direct/sparse = "
        f"{fast_alg['sparse_reduction']:.2f}x"
    )
    flow = results["dataflow"]
    sections.append(
        "Dataflow ablation: "
        f"{flow['baseline_gb']:.3f} GB -> {flow['chained_gb']:.3f} GB "
        f"(-{flow['reduction']:.1%}), DRAM energy "
        f"{flow['baseline_dram_mj']:.1f} mJ -> {flow['chained_dram_mj']:.1f} mJ"
    )
    if "sparsity_sweep" in results:
        sections.append(render_sparsity_sweep(results["sparsity_sweep"]))
    return "\n\n".join(sections)


if __name__ == "__main__":
    print(main())
