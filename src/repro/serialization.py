"""Uniform config (de)serialization for the package's dataclass configs.

Every user-facing configuration dataclass (``CTVCConfig``,
``ClassicalCodecConfig``, ``NVCAConfig``, ``SceneConfig``, ...) mixes in
:class:`SerializableConfig`, gaining ``to_dict``/``from_dict`` and
JSON round-trips with validation.  This is what makes pipeline job
specs picklable/shippable: a whole encode job can travel as one JSON
document to a worker process, a queue, or a results archive, and come
back as the identical frozen config.

``from_dict`` is strict about *names* (unknown keys raise, listing the
valid fields) and lenient about *representations* (lists coerce to
tuple fields, ints to float fields, nested dicts to nested dataclass
fields) — exactly the relaxations JSON forces.
"""

from __future__ import annotations

import dataclasses
import json
import types
import typing

__all__ = ["ConfigError", "SerializableConfig", "coerce_field"]

#: PEP 604 ``X | Y`` unions and ``typing.Union`` both count as unions.
_UNION_ORIGINS = {typing.Union, getattr(types, "UnionType", typing.Union)}


class ConfigError(ValueError):
    """A config dict/JSON document failed validation."""


def _type_name(tp) -> str:
    return getattr(tp, "__name__", str(tp))


def coerce_field(cls: type, name: str, annotation, value):
    """Coerce one JSON-decoded value to a dataclass field's annotation.

    Raises :class:`ConfigError` with a path-qualified message when the
    value cannot represent the annotated type.
    """
    origin = typing.get_origin(annotation)
    args = typing.get_args(annotation)

    # Optional / unions: accept None when allowed, else try each arm.
    if origin in _UNION_ORIGINS:
        if value is None:
            if type(None) in args:
                return None
            raise ConfigError(
                f"{cls.__name__}.{name}: null is not allowed "
                f"(expected {annotation})"
            )
        errors = []
        for arm in args:
            if arm is type(None):
                continue
            try:
                return coerce_field(cls, name, arm, value)
            except ConfigError as exc:
                errors.append(str(exc))
        raise ConfigError(
            f"{cls.__name__}.{name}: {value!r} matches no arm of "
            f"{annotation} ({'; '.join(errors)})"
        )

    # Nested dataclass (e.g. BufferSpec inside NVCAConfig).
    if dataclasses.is_dataclass(annotation) and isinstance(annotation, type):
        if isinstance(value, annotation):
            return value
        if isinstance(value, dict):
            if issubclass(annotation, SerializableConfig):
                return annotation.from_dict(value)
            return annotation(**value)
        raise ConfigError(
            f"{cls.__name__}.{name}: expected a {annotation.__name__} "
            f"mapping, got {type(value).__name__}"
        )

    # Tuples (e.g. SceneConfig.pan_velocity) arrive as JSON lists.
    if origin is tuple or annotation is tuple:
        if not isinstance(value, (list, tuple)):
            raise ConfigError(
                f"{cls.__name__}.{name}: expected a sequence, "
                f"got {type(value).__name__}"
            )
        if args and args[-1] is not Ellipsis and len(args) != len(value):
            raise ConfigError(
                f"{cls.__name__}.{name}: expected {len(args)} elements, "
                f"got {len(value)}"
            )
        if args:
            element_types = (
                [args[0]] * len(value) if args[-1] is Ellipsis else list(args)
            )
            return tuple(
                coerce_field(cls, f"{name}[{i}]", tp, item)
                for i, (tp, item) in enumerate(zip(element_types, value))
            )
        return tuple(value)

    if annotation is bool:
        if isinstance(value, bool):
            return value
        raise ConfigError(
            f"{cls.__name__}.{name}: expected bool, got {type(value).__name__}"
        )
    if annotation is int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise ConfigError(
                f"{cls.__name__}.{name}: expected int, "
                f"got {type(value).__name__}"
            )
        return value
    if annotation is float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ConfigError(
                f"{cls.__name__}.{name}: expected a number, "
                f"got {type(value).__name__}"
            )
        return float(value)
    if annotation is str:
        if not isinstance(value, str):
            raise ConfigError(
                f"{cls.__name__}.{name}: expected str, "
                f"got {type(value).__name__}"
            )
        return value

    # Unparameterized / exotic annotations: pass through untouched.
    return value


class SerializableConfig:
    """Mixin giving a (frozen) dataclass dict/JSON round-trips.

    >>> cfg = SceneConfig(height=64, width=96)
    >>> SceneConfig.from_json(cfg.to_json()) == cfg
    True
    """

    def to_dict(self) -> dict:
        """Plain-JSON-types dict (tuples become lists, nested configs
        become nested dicts)."""
        out = {}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if isinstance(value, SerializableConfig):
                value = value.to_dict()
            elif dataclasses.is_dataclass(value):
                value = dataclasses.asdict(value)
            elif isinstance(value, tuple):
                value = list(value)
            out[field.name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "SerializableConfig":
        """Validate + coerce a dict into a config instance.

        Unknown keys, missing required values, and untypeable values all
        raise :class:`ConfigError` naming the offending field.
        """
        if not isinstance(data, dict):
            raise ConfigError(
                f"{cls.__name__}.from_dict expects a mapping, "
                f"got {type(data).__name__}"
            )
        hints = typing.get_type_hints(cls)
        fields = {f.name: f for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - set(fields))
        if unknown:
            raise ConfigError(
                f"{cls.__name__}: unknown field(s) {', '.join(unknown)}; "
                f"valid fields: {', '.join(sorted(fields))}"
            )
        kwargs = {
            name: coerce_field(cls, name, hints.get(name, object), value)
            for name, value in data.items()
        }
        try:
            return cls(**kwargs)
        except (TypeError, ValueError) as exc:
            raise ConfigError(f"{cls.__name__}: {exc}") from exc

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SerializableConfig":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"{cls.__name__}: invalid JSON ({exc})") from exc
        return cls.from_dict(data)

    def replace(self, **overrides) -> "SerializableConfig":
        """``dataclasses.replace`` spelled as a method, for fluent
        sweeps: ``cfg.replace(qstep=16.0)``."""
        return dataclasses.replace(self, **overrides)
