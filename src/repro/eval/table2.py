"""Table II — comparison with other pixel-processing accelerators.

Every column now comes through the ``repro.pipeline`` platform
registry: the CPU / GPU / [25] / Alchemist columns are the registered
reference adapters over the published constants
(:mod:`repro.hw.platforms`), and the NVCA column is produced end-to-end
by the registered ``"nvca"`` model — the decoder layer graph at 1080p
scheduled on the SFTC/DCC (throughput, FPS), activity counts rolled
into power, the architecture config into gates and SRAM.  The paper's
headline ratios (2.4x / 11.1x throughput, 799.7x / 1783.9x / 2.2x
energy efficiency) are recomputed from those model outputs, so they
are regression tests of our models rather than copied numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.arch import NVCAConfig
from repro.hw.perf import PerformanceReport
from repro.hw.platforms import (
    REFERENCE_PLATFORM_SPECS,
    REFERENCE_PLATFORMS,
    PlatformSpec,
    nvca_spec,
)

from .tables import render_table

__all__ = ["Table2Result", "generate_table2", "PAPER_NVCA_COLUMN"]

#: The paper's NVCA column, for paper-vs-measured reporting.
PAPER_NVCA_COLUMN = {
    "technology_nm": 28,
    "frequency_mhz": 400.0,
    "precision": "FXP 12-16",
    "gate_count_m": 5.01,
    "on_chip_kb": 373.0,
    "power_w": 0.76,
    "throughput_gops": 3525.0,
    "energy_efficiency": 4638.2,
    "fps_1080p": 25.0,
}


@dataclass
class Table2Result:
    """Regenerated Table II with the model-derived NVCA column."""

    nvca: PlatformSpec
    performance: PerformanceReport
    references: tuple[PlatformSpec, ...] = REFERENCE_PLATFORMS
    ratios: dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        platforms = list(self.references) + [self.nvca]
        headers = ["Attribute"] + [p.name for p in platforms]
        rows = [
            ["Year"] + [p.year for p in platforms],
            ["Task"] + [p.task for p in platforms],
            ["Benchmark"] + [p.benchmark for p in platforms],
            ["Technology (nm)"] + [p.technology_nm for p in platforms],
            ["Frequency (MHz)"] + [p.frequency_mhz for p in platforms],
            ["Precision (A-W)"] + [p.precision for p in platforms],
            ["Gate Count (M)"]
            + [p.gate_count_m if p.gate_count_m is not None else "-" for p in platforms],
            ["On-Chip Memory (KB)"]
            + [p.on_chip_kb if p.on_chip_kb is not None else "-" for p in platforms],
            ["Power (W)"] + [p.power_w for p in platforms],
            ["Throughput (GOPS)"] + [p.throughput_gops for p in platforms],
            ["Energy Eff. (GOPS/W)"] + [p.energy_efficiency for p in platforms],
        ]
        return render_table(headers, rows, title="Table II — accelerator comparison")


def generate_table2(
    height: int = 1080,
    width: int = 1920,
    config: NVCAConfig | None = None,
) -> Table2Result:
    """Regenerate Table II from the platform registry at 1080p.

    The NVCA column is ``create_platform("nvca", config)`` analyzed at
    the given resolution; the comparison columns are the registered
    reference platforms, in the paper's order.
    """
    from repro.pipeline.platforms import create_platform

    model = create_platform("nvca", config)
    _, performance, traffic, energy, area = model.roll_up(height, width)
    nvca = nvca_spec(
        sustained_gops=performance.sustained_gops,
        chip_power_w=energy.chip_power_w,
        gate_count_m=area.total_mgates,
        on_chip_kb=model.config.on_chip_kbytes(),
        frequency_mhz=model.config.frequency_mhz,
    )
    references = tuple(
        create_platform(name).spec for name in REFERENCE_PLATFORM_SPECS
    )
    result = Table2Result(
        nvca=nvca, performance=performance, references=references
    )
    # Paper: "2.4x higher throughput and 799.7x better energy
    # efficiency than the GPU"; "11.1x ... and 1783.9x ... than the
    # CPU"; "up to 8.7x higher throughput and 2.2x better energy
    # efficiency" over [25]/[26].
    short = {
        "cpu-i9-9900x": "cpu",
        "gpu-rtx3090": "gpu",
        "shao-tcas22": "shao",
        "alchemist": "alchemist",
    }
    result.ratios = {
        f"{metric}_vs_{short[name]}": value
        for name, spec in zip(REFERENCE_PLATFORM_SPECS, references)
        for metric, value in (
            ("throughput", nvca.throughput_gops / spec.throughput_gops),
            ("efficiency", nvca.energy_efficiency / spec.energy_efficiency),
        )
    }
    return result
