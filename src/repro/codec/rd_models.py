"""Calibrated rate-distortion models for the literature codecs.

We cannot retrain H.264, H.265, DVC, LU-ECCV20, FVC, or DCVC offline
(DESIGN.md §2), so Table I / Fig. 8 comparisons are regenerated from
*calibrated RD models*: per-dataset anchor curves for H.265 with each
method's curve derived by Bjøntegaard-consistent rate scaling anchored
to its published BDBR (the constants of the paper's Table I, recorded
verbatim below).  A small quality-dependent "tilt" per method keeps the
curves realistic (methods differ more at some rates than others), so
running the real BD machinery over these curves reproduces the paper's
numbers approximately rather than tautologically — deviations of a
percent or two are expected and reported in EXPERIMENTS.md.

The CTVC-Net FXP and Sparse rows can instead be derived from *measured*
degradation of the real pipeline (see ``repro.eval.table1``), which is
the honest part of the reproduction: the paper's claim that FXP and 50%
sparsity barely hurt is re-established by measurement, not calibration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.rd import RDCurve
from repro.serialization import SerializableConfig

from .rate_control import rate_controller_spec, validate_rate_fields

__all__ = [
    "METHODS",
    "DATASETS",
    "LITERATURE_BDBR",
    "RDModelCodec",
    "RDModelConfig",
    "anchor_curve",
    "model_curve",
    "all_method_curves",
]

#: Method keys in the paper's Table I row order.
METHODS = (
    "h264",
    "dvc",
    "h265",
    "lu-eccv20",
    "fvc",
    "dcvc",
    "ctvc-fp",
    "ctvc-fxp",
    "ctvc-sparse",
)

#: Dataset keys in the paper's Table I column order.
DATASETS = ("uvg", "hevcb", "mcljcv")

#: Paper Table I, verbatim: BDBR(%) against the H.265 anchor.
#: Keys: (method, dataset, metric).
LITERATURE_BDBR: dict[tuple[str, str, str], float] = {
    # -- PSNR ----------------------------------------------------------
    ("h264", "uvg", "psnr"): 35.27,
    ("h264", "hevcb", "psnr"): 28.12,
    ("h264", "mcljcv", "psnr"): 31.35,
    ("dvc", "uvg", "psnr"): 8.45,
    ("dvc", "hevcb", "psnr"): 4.85,
    ("dvc", "mcljcv", "psnr"): 13.94,
    ("h265", "uvg", "psnr"): 0.0,
    ("h265", "hevcb", "psnr"): 0.0,
    ("h265", "mcljcv", "psnr"): 0.0,
    ("lu-eccv20", "uvg", "psnr"): -7.34,
    ("lu-eccv20", "hevcb", "psnr"): -15.92,
    ("lu-eccv20", "mcljcv", "psnr"): 4.75,
    ("fvc", "uvg", "psnr"): -28.71,
    ("fvc", "hevcb", "psnr"): -23.75,
    ("fvc", "mcljcv", "psnr"): -21.08,
    ("dcvc", "uvg", "psnr"): -35.00,
    ("dcvc", "hevcb", "psnr"): -37.96,
    ("dcvc", "mcljcv", "psnr"): -23.08,
    ("ctvc-fp", "uvg", "psnr"): -36.62,
    ("ctvc-fp", "hevcb", "psnr"): -41.05,
    ("ctvc-fp", "mcljcv", "psnr"): -25.11,
    ("ctvc-fxp", "uvg", "psnr"): -35.91,
    ("ctvc-fxp", "hevcb", "psnr"): -40.32,
    ("ctvc-fxp", "mcljcv", "psnr"): -24.15,
    ("ctvc-sparse", "uvg", "psnr"): -35.19,
    ("ctvc-sparse", "hevcb", "psnr"): -39.85,
    ("ctvc-sparse", "mcljcv", "psnr"): -23.44,
    # -- MS-SSIM --------------------------------------------------------
    ("h264", "uvg", "ms-ssim"): 20.06,
    ("h264", "hevcb", "ms-ssim"): 16.81,
    ("h264", "mcljcv", "ms-ssim"): 18.99,
    ("dvc", "uvg", "ms-ssim"): 17.29,
    ("dvc", "hevcb", "ms-ssim"): 5.35,
    ("dvc", "mcljcv", "ms-ssim"): 22.70,
    ("h265", "uvg", "ms-ssim"): 0.0,
    ("h265", "hevcb", "ms-ssim"): 0.0,
    ("h265", "mcljcv", "ms-ssim"): 0.0,
    ("lu-eccv20", "uvg", "ms-ssim"): -27.57,
    ("lu-eccv20", "hevcb", "ms-ssim"): -10.58,
    ("lu-eccv20", "mcljcv", "ms-ssim"): 5.02,
    ("fvc", "uvg", "ms-ssim"): -49.14,
    ("fvc", "hevcb", "ms-ssim"): -53.97,
    ("fvc", "mcljcv", "ms-ssim"): -52.45,
    ("dcvc", "uvg", "ms-ssim"): -48.31,
    ("dcvc", "hevcb", "ms-ssim"): -50.72,
    ("dcvc", "mcljcv", "ms-ssim"): -49.36,
    ("ctvc-fp", "uvg", "ms-ssim"): -53.07,
    ("ctvc-fp", "hevcb", "ms-ssim"): -58.05,
    ("ctvc-fp", "mcljcv", "ms-ssim"): -56.75,
    ("ctvc-fxp", "uvg", "ms-ssim"): -52.13,
    ("ctvc-fxp", "hevcb", "ms-ssim"): -57.79,
    ("ctvc-fxp", "mcljcv", "ms-ssim"): -55.96,
    ("ctvc-sparse", "uvg", "ms-ssim"): -51.30,
    ("ctvc-sparse", "hevcb", "ms-ssim"): -57.11,
    ("ctvc-sparse", "mcljcv", "ms-ssim"): -55.09,
}

#: H.265 anchor operating ranges per dataset: (bpp_lo, bpp_hi,
#: quality_lo, quality_hi).  Values chosen to match the axis ranges of
#: the paper's Fig. 8 (PSNR ~31.5-39.5 dB, MS-SSIM ~0.955-0.99 over
#: bpp ~0.05-0.45).
_ANCHOR_RANGES: dict[tuple[str, str], tuple[float, float, float, float]] = {
    ("uvg", "psnr"): (0.05, 0.45, 34.0, 39.5),
    ("hevcb", "psnr"): (0.06, 0.50, 32.0, 38.0),
    ("mcljcv", "psnr"): (0.06, 0.50, 32.5, 38.5),
    ("uvg", "ms-ssim"): (0.05, 0.45, 0.958, 0.988),
    ("hevcb", "ms-ssim"): (0.06, 0.50, 0.952, 0.985),
    ("mcljcv", "ms-ssim"): (0.06, 0.50, 0.955, 0.986),
}

#: Per-method curve "tilt": relative rate-scaling slope across the
#: quality range (positive = the method's advantage shrinks at high
#: quality).  Small, hand-set values that make curves non-parallel —
#: the qualitative behaviour visible in the paper's Fig. 8.
_METHOD_TILT: dict[str, float] = {
    "h264": 0.02,
    "dvc": 0.04,
    "h265": 0.0,
    "lu-eccv20": 0.03,
    "fvc": -0.02,
    "dcvc": -0.03,
    "ctvc-fp": -0.02,
    "ctvc-fxp": -0.02,
    "ctvc-sparse": -0.02,
}


def _normalize_dataset(dataset: str) -> str:
    name = dataset.lower().replace("-sim", "")
    if name not in DATASETS:
        raise KeyError(f"unknown dataset {dataset!r}; know {DATASETS}")
    return name


def anchor_curve(dataset: str, metric: str, num_points: int = 5) -> RDCurve:
    """The H.265 reference curve for a dataset/metric.

    Quality follows the standard logarithmic RD law q = a + b*ln(r),
    fitted through the range endpoints.
    """
    dataset = _normalize_dataset(dataset)
    try:
        lo_r, hi_r, lo_q, hi_q = _ANCHOR_RANGES[(dataset, metric)]
    except KeyError:
        raise KeyError(f"no anchor for ({dataset!r}, {metric!r})") from None
    rates = np.geomspace(lo_r, hi_r, num_points)
    slope = (hi_q - lo_q) / np.log(hi_r / lo_r)
    qualities = lo_q + slope * np.log(rates / lo_r)
    curve = RDCurve(name="h265", metric=metric, dataset=dataset)
    for r, q in zip(rates, qualities):
        curve.add(float(r), float(q))
    return curve


def model_curve(
    method: str, dataset: str, metric: str, num_points: int = 5
) -> RDCurve:
    """The calibrated RD curve of one literature method.

    The anchor's rates are scaled by ``1 + BDBR/100`` (which by
    construction reproduces the published BDBR under Bjøntegaard
    integration) with the method's tilt applied across the quality
    range (which perturbs it realistically).
    """
    dataset = _normalize_dataset(dataset)
    if method not in METHODS:
        raise KeyError(f"unknown method {method!r}; know {METHODS}")
    base = anchor_curve(dataset, metric, num_points)
    bdbr = LITERATURE_BDBR[(method, dataset, metric)]
    tilt = _METHOD_TILT[method]
    positions = np.linspace(-1.0, 1.0, num_points)
    curve = RDCurve(name=method, metric=metric, dataset=dataset)
    for point, z in zip(base.points, positions):
        factor = (1.0 + bdbr / 100.0) * (1.0 + tilt * z)
        curve.add(point.bpp * factor, point.quality)
    return curve


def all_method_curves(
    dataset: str, metric: str, num_points: int = 5
) -> dict[str, RDCurve]:
    """Curves for every Table I method on one dataset/metric."""
    return {
        method: model_curve(method, dataset, metric, num_points)
        for method in METHODS
    }


# -- registry-facing pseudo-codec -------------------------------------------
@dataclass(frozen=True)
class RDModelConfig(SerializableConfig):
    """Operating point of one calibrated literature method.

    ``point`` indexes the method's RD curve (``0`` = lowest rate,
    ``num_points - 1`` = highest), so a ``run_many`` grid over
    ``point`` sweeps the whole published curve through the same
    surface as the measured codecs.
    """

    method: str = "h265"
    dataset: str = "uvg"
    #: curve index in [0, num_points).
    point: int = 2
    num_points: int = 5
    #: rate controller name (see :mod:`repro.codec.rate_control`).
    #: With a target, ``simulate`` inverts the method's calibrated RD
    #: curve to the target rate instead of reading a fixed point — the
    #: fast calibration path for ladder planning.
    rate_control: str | None = None
    #: bitrate budget in kilobits per second (needs a rate controller).
    target_kbps: float | None = None
    #: frame rate the bitrate budget is measured against.
    fps: float = 30.0

    def __post_init__(self):
        if self.method not in METHODS:
            raise ValueError(
                f"unknown method {self.method!r}; know {', '.join(METHODS)}"
            )
        _normalize_dataset(self.dataset)  # raises on unknown names
        if self.num_points < 2:
            raise ValueError(f"num_points must be >= 2, got {self.num_points}")
        if not 0 <= self.point < self.num_points:
            raise ValueError(
                f"point must be in [0, {self.num_points}), got {self.point}"
            )
        validate_rate_fields(self.rate_control, self.target_kbps, self.fps)


class RDModelCodec:
    """A calibrated literature method behind the codec-registry surface.

    Not an executable codec: there are no network weights and no
    bitstream, only the published RD behaviour (Table I BDBR anchored
    to H.265).  ``simulate`` returns the rate/quality the method would
    produce on a clip, which the :class:`~repro.pipeline.Pipeline`
    facade turns into an ordinary ``EncodeReport`` — so literature
    methods sweep through ``run_many`` grids next to measured codecs.

    The byte-level API (``encode_sequence`` / streaming sessions)
    raises :class:`NotImplementedError` with a pointer here, rather
    than fabricating bits that never existed.
    """

    def __init__(self, config: RDModelConfig | None = None):
        self.config = config or RDModelConfig()

    def simulate(
        self,
        num_frames: int,
        height: int,
        width: int,
        *,
        compute_msssim: bool = False,
    ) -> dict:
        """Rate/quality of this operating point on a clip.

        Returns a dict shaped like the measurable core of an
        ``EncodeReport``: ``stream_bytes``/``bpp`` from the PSNR-metric
        curve, per-frame quality constant at the curve point (the model
        is a sequence-level calibration, not a per-frame one).
        """
        cfg = self.config
        curve = model_curve(cfg.method, cfg.dataset, "psnr", cfg.num_points)
        bpp, quality = self._operating_point(curve, height, width)
        stream_bytes = int(round(bpp * height * width * num_frames / 8))
        total_bits = 8 * stream_bytes
        result = {
            "stream_bytes": stream_bytes,
            "bpp": float(bpp),
            "psnr_per_frame": [float(quality)] * num_frames,
            "mean_psnr": float(quality),
            "msssim_per_frame": [],
            "mean_msssim": None,
            "frame_bits": self._split_bits(total_bits, num_frames),
            "achieved_kbps": total_bits * cfg.fps / (num_frames * 1000.0),
        }
        if compute_msssim:
            ms_curve = model_curve(
                cfg.method, cfg.dataset, "ms-ssim", cfg.num_points
            )
            # the ms-ssim curve has its own bpp geometry: read the same
            # fixed point off it, and only interpolate when a rate
            # target moved this encode off the published points
            if self._rate_targeted():
                ms = self._quality_at(ms_curve, bpp)
            else:
                ms = ms_curve.points[cfg.point].quality
            result["msssim_per_frame"] = [float(ms)] * num_frames
            result["mean_msssim"] = float(ms)
        return result

    def _rate_targeted(self) -> bool:
        """True when an adaptive controller steers toward a target."""
        cfg = self.config
        return (
            cfg.rate_control is not None
            and cfg.target_kbps is not None
            and rate_controller_spec(cfg.rate_control).adaptive
        )

    def _operating_point(
        self, curve: RDCurve, height: int, width: int
    ) -> tuple[float, float]:
        """(bpp, quality) this config operates at on ``curve``.

        With an adaptive rate controller and a target, the calibrated
        curve is inverted at the target rate (clamped to the curve's
        published range — the model cannot extrapolate beyond it);
        otherwise the fixed ``point`` index is read off, and a ``"cqp"``
        controller deliberately ignores any target it carries.
        """
        cfg = self.config
        if not self._rate_targeted():
            point = curve.points[cfg.point]
            return float(point.bpp), float(point.quality)
        target_bpp = cfg.target_kbps * 1000.0 / (cfg.fps * height * width)
        bpps = [p.bpp for p in curve.points]
        bpp = min(max(target_bpp, min(bpps)), max(bpps))
        return bpp, self._quality_at(curve, bpp)

    @staticmethod
    def _quality_at(curve: RDCurve, bpp: float) -> float:
        """Quality at ``bpp``, log-rate interpolated along the curve
        (the same ln(rate) law the anchors are built from)."""
        points = sorted(curve.points, key=lambda p: p.bpp)
        bpps = np.array([p.bpp for p in points])
        quals = np.array([p.quality for p in points])
        bpp = float(min(max(bpp, bpps[0]), bpps[-1]))
        return float(np.interp(np.log(bpp), np.log(bpps), quals))

    @staticmethod
    def _split_bits(total_bits: int, num_frames: int) -> list[int]:
        """Per-frame bit counts summing exactly to ``total_bits``."""
        base, extra = divmod(total_bits, num_frames)
        return [base + (1 if i < extra else 0) for i in range(num_frames)]

    # -- the executable-codec surface deliberately refuses ----------------
    def _refuse(self, api: str):
        raise NotImplementedError(
            f"rd-model codec {self.config.method!r} is a calibrated RD model "
            f"of a literature method — it has no weights and produces no "
            f"bitstream, so {api} is not available; use Pipeline/run_many "
            f"(which report its calibrated rate/quality) or model_curve()."
        )

    def encode_sequence(self, frames):
        self._refuse("encode_sequence")

    def decode_sequence(self, stream):
        self._refuse("decode_sequence")

    def open_encoder(self):
        self._refuse("the streaming session API (open_encoder)")

    def open_decoder(self, header=None, version=2):
        self._refuse("the streaming session API (open_decoder)")
