"""Gate-count / area model (Table II: 5.01 M gates, 373 KB SRAM).

A component-level roll-up in NAND2-equivalent gates at 28 nm, the way
Design Compiler reports are summarized.  Unit gate counts are standard
synthesis figures: a 12x16 fixed-point multiplier is ~700 gates, a
16-bit adder ~90, plus per-SCU index/selector logic, the PreU/PostU
1-D transform datapaths, the DCC MAC array with its scatter/gather
front end, and global control/DMA.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .arch import NVCAConfig

__all__ = ["GateUnits", "AreaReport", "area_report"]


@dataclass(frozen=True)
class GateUnits:
    """NAND2-equivalent gate counts of datapath primitives."""

    mult_12x16: int = 700
    adder_16b: int = 90
    scu_selector: int = 2600  # non-zero element selector + index decode
    preu_1d: int = 320  # 1D transform datapath (adds/shifts + regs)
    postu_1d: int = 380
    psum_regfile_per_scu: int = 500
    dcc_mac: int = 620
    dcc_gather_per_lane: int = 1200
    control_dma: int = 400_000  # global controller, DMA, SoC interface


@dataclass
class AreaReport:
    """Component gate counts and totals."""

    components: dict[str, float] = field(default_factory=dict)

    @property
    def total_gates(self) -> float:
        return sum(self.components.values())

    @property
    def total_mgates(self) -> float:
        return self.total_gates / 1e6

    def __str__(self) -> str:
        lines = [f"AreaReport({self.total_mgates:.2f} M gates)"]
        for name, gates in sorted(self.components.items()):
            lines.append(f"  {name:22s} {gates / 1e6:6.3f} M")
        return "\n".join(lines)


def area_report(config: NVCAConfig | None = None, units: GateUnits | None = None) -> AreaReport:
    """Roll up the NVCA gate count from the architecture config."""
    config = config or NVCAConfig()
    units = units or GateUnits()
    report = AreaReport()

    scus = config.num_scus
    report.components["scu_multipliers"] = (
        scus * config.multipliers_per_scu * units.mult_12x16
    )
    report.components["scu_selectors"] = scus * units.scu_selector
    report.components["adder_trees"] = (
        # One reduction tree per SCU column: pif-1 adders per lane.
        config.pof * (config.pif - 1) * config.multipliers_per_scu * units.adder_16b / 8
    )
    report.components["psum_regfiles"] = scus * units.psum_regfile_per_scu
    report.components["preu_array"] = (
        config.pif * config.preu_1d_units * units.preu_1d
    )
    report.components["postu_array"] = (
        config.pof * config.postu_1d_units * units.postu_1d
    )
    gather_lanes = config.dcc_macs_per_cycle // 9  # 9 taps per lane
    report.components["dcc"] = (
        config.dcc_macs_per_cycle * units.dcc_mac
        + gather_lanes * units.dcc_gather_per_lane
    )
    report.components["control_dma"] = units.control_dma
    return report
