"""Shifted-window multi-head self-attention (SwinAtten).

Implements the attention primitive inside the paper's Swin-AM (Fig. 3):
``SwinAttn(C, R, Shf, P)`` — multi-head self-attention confined to
non-overlapping R x R windows, with an optional cyclic shift ``Shf``
that bridges features across window boundaries when consecutive
Swin-AMs alternate Shf = 0 and Shf = R - 1 (the paper uses R = 3 with
shifts 0 and 2).  A learned relative-position bias per head follows the
original Swin Transformer formulation.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .init import xavier_uniform
from .layers import Module, Parameter

__all__ = ["window_partition", "window_merge", "SwinAttention"]


def window_partition(x: np.ndarray, window: int) -> tuple[np.ndarray, tuple[int, int]]:
    """Split (C, H, W) into (num_windows, window*window, C) tokens.

    H and W are zero-padded up to multiples of ``window``; the padded
    size is returned so :func:`window_merge` can crop back.
    """
    c, h, w = x.shape
    pad_h = (-h) % window
    pad_w = (-w) % window
    padded = np.pad(x, ((0, 0), (0, pad_h), (0, pad_w)))
    hp, wp = h + pad_h, w + pad_w
    tiles = padded.reshape(c, hp // window, window, wp // window, window)
    tiles = tiles.transpose(1, 3, 2, 4, 0)  # (nH, nW, R, R, C)
    tokens = tiles.reshape(-1, window * window, c)
    return tokens, (hp, wp)


def window_merge(
    tokens: np.ndarray, window: int, padded: tuple[int, int], out_hw: tuple[int, int]
) -> np.ndarray:
    """Inverse of :func:`window_partition`."""
    hp, wp = padded
    h, w = out_hw
    c = tokens.shape[-1]
    tiles = tokens.reshape(hp // window, wp // window, window, window, c)
    tiles = tiles.transpose(4, 0, 2, 1, 3)
    planes = tiles.reshape(c, hp, wp)
    return planes[:, :h, :w]


def _relative_index(window: int) -> np.ndarray:
    """Map each (query, key) token pair to a relative-position slot."""
    coords = np.stack(
        np.meshgrid(np.arange(window), np.arange(window), indexing="ij")
    ).reshape(2, -1)
    rel = coords[:, :, None] - coords[:, None, :]  # (2, T, T)
    rel = rel + (window - 1)
    return rel[0] * (2 * window - 1) + rel[1]


class SwinAttention(Module):
    """Window-based multi-head self-attention with optional cyclic shift.

    Parameters mirror the paper's ``SwinAttn(C, R, Shf, P)`` tuple:
    ``channels`` (2N in the compression auto-encoders), ``window`` R,
    ``shift`` Shf, and ``heads`` P.
    """

    op_kind = "attention"

    def __init__(
        self,
        channels: int,
        window: int = 3,
        shift: int = 0,
        heads: int = 4,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if channels % heads:
            raise ValueError(f"{channels} channels not divisible by {heads} heads")
        if not 0 <= shift < window:
            raise ValueError(f"shift {shift} must lie in [0, window)")
        self.channels = channels
        self.window = window
        self.shift = shift
        self.heads = heads
        self.head_dim = channels // heads
        rng = rng or np.random.default_rng(0)
        self.w_q = Parameter(xavier_uniform(rng, (channels, channels)))
        self.w_k = Parameter(xavier_uniform(rng, (channels, channels)))
        self.w_v = Parameter(xavier_uniform(rng, (channels, channels)))
        self.w_o = Parameter(xavier_uniform(rng, (channels, channels)))
        self.position_bias = Parameter(
            np.zeros((heads, (2 * window - 1) ** 2))
        )
        self._rel_index = _relative_index(window)
        self.activation_quant = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        c, h, w = x.shape
        if c != self.channels:
            raise ValueError(f"expected {self.channels} channels, got {c}")
        shifted = (
            np.roll(x, (-self.shift, -self.shift), axis=(1, 2)) if self.shift else x
        )
        tokens, padded = window_partition(shifted, self.window)
        n_windows, t, _ = tokens.shape

        q = tokens @ self.w_q.data.T
        k = tokens @ self.w_k.data.T
        v = tokens @ self.w_v.data.T
        # (nW, P, T, d)
        def split_heads(m: np.ndarray) -> np.ndarray:
            return m.reshape(n_windows, t, self.heads, self.head_dim).transpose(
                0, 2, 1, 3
            )

        qh, kh, vh = split_heads(q), split_heads(k), split_heads(v)
        scale = 1.0 / np.sqrt(self.head_dim)
        logits = np.einsum("wptd,wpsd->wpts", qh, kh) * scale
        bias = self.position_bias.data[:, self._rel_index]  # (P, T, T)
        logits = logits + bias[None]
        attn = F.softmax(logits, axis=-1)
        mixed = np.einsum("wpts,wpsd->wptd", attn, vh)
        merged = mixed.transpose(0, 2, 1, 3).reshape(n_windows, t, self.channels)
        out_tokens = merged @ self.w_o.data.T
        out = window_merge(out_tokens, self.window, padded, (h, w))
        if self.shift:
            out = np.roll(out, (self.shift, self.shift), axis=(1, 2))
        if self.activation_quant is not None:
            out = self.activation_quant.fake_quant(out)
        return out

    def attention_macs(self, h: int, w: int) -> int:
        """Multiply count for one forward pass at spatial size (h, w),
        used by the hardware mapper for workload accounting."""
        hp = h + ((-h) % self.window)
        wp = w + ((-w) % self.window)
        tokens = hp * wp
        t = self.window * self.window
        proj = 4 * tokens * self.channels * self.channels
        attn = 2 * tokens * t * self.channels
        return int(proj + attn)
