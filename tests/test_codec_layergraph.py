"""Tests for the decoder/encoder layer graphs (paper Fig. 2 topology)."""

import pytest

from repro.codec import decoder_graph, encoder_graph
from repro.core import LayerSpec


@pytest.fixture(scope="module")
def graph():
    return decoder_graph(1080, 1920, 36)


class TestDecoderGraph:
    def test_five_modules_in_order(self, graph):
        assert graph.modules() == [
            "feature_extraction",
            "motion_synthesis",
            "deformable_compensation",
            "residual_synthesis",
            "frame_reconstruction",
        ]

    def test_feature_grid_resolutions(self, graph):
        fe_layers = graph.by_module("feature_extraction")
        assert fe_layers[0].in_h == 1080 and fe_layers[0].in_w == 1920
        assert fe_layers[-1].out_h == 540 and fe_layers[-1].out_w == 960

    def test_synthesis_upsamples_8x(self, graph):
        synth = graph.by_module("motion_synthesis")
        assert synth[0].in_h == 68  # ceil(1080/16)
        assert synth[-1].out_h == 544
        deconvs = [l for l in synth if l.kind == "deconv"]
        assert len(deconvs) == 3
        assert all(l.kernel == 4 and l.stride == 2 for l in deconvs)

    def test_dfconv_present_once(self, graph):
        dfconvs = [l for l in graph if l.kind == "dfconv"]
        assert len(dfconvs) == 1
        assert dfconvs[0].module == "deformable_compensation"

    def test_frame_reconstruction_outputs_pixels(self, graph):
        fr = graph.by_module("frame_reconstruction")
        assert fr[-1].kind == "deconv"
        assert fr[-1].out_channels == 3
        assert fr[-1].out_h == 1080 and fr[-1].out_w == 1920

    def test_total_macs_magnitude(self, graph):
        """~115 GMACs/frame at 1080p for N=36 — the workload scale the
        paper's 25 FPS / 3525 GOPS operating point implies."""
        gmacs = graph.total_macs() / 1e9
        assert 90 < gmacs < 140

    def test_every_conv_is_fast_supported(self, graph):
        """The decoder was designed so the SFTC fast path covers all
        conv/deconv layers (3x3 s1 convs, 4x4 s2 deconvs)."""
        for layer in graph:
            if layer.kind in ("conv", "deconv"):
                assert layer.fast_supported, layer.name

    def test_chains_are_at_most_conv_conv_deconv(self, graph):
        chains = {}
        for layer in graph:
            if layer.chain_id >= 0:
                chains.setdefault(layer.chain_id, []).append(layer)
        assert chains
        for members in chains.values():
            kernel_layers = [l for l in members if l.kind in ("conv", "deconv")]
            assert len(kernel_layers) <= 3
            deconvs = [l for l in kernel_layers if l.kind == "deconv"]
            assert len(deconvs) <= 1
            if deconvs:
                assert kernel_layers[-1].kind == "deconv"

    def test_dfconv_unchained(self, graph):
        dfconv = next(l for l in graph if l.kind == "dfconv")
        assert dfconv.chain_id == -1

    def test_synthesis_stages_are_paper_chains(self, graph):
        """Each synthesis stage = ResBlock + DeConv sharing a chain."""
        synth = [
            l
            for l in graph.by_module("motion_synthesis")
            if l.kind in ("conv", "deconv")
        ]
        by_chain = {}
        for layer in synth:
            by_chain.setdefault(layer.chain_id, []).append(layer.kind)
        assert sorted(by_chain.values()) == [["conv", "conv", "deconv"]] * 3

    def test_scales_with_resolution(self):
        small = decoder_graph(270, 480, 36)
        assert small.total_macs() < graph_macs_1080() / 10


def graph_macs_1080():
    return decoder_graph(1080, 1920, 36).total_macs()


class TestEncoderGraph:
    def test_has_motion_estimation_and_analyses(self):
        graph = encoder_graph(1080, 1920, 36)
        modules = graph.modules()
        assert "motion_estimation" in modules
        assert "motion_analysis" in modules
        assert "residual_analysis" in modules

    def test_attention_workload_present(self):
        graph = encoder_graph(1080, 1920, 36)
        attention = [l for l in graph if l.kind == "attention"]
        assert len(attention) == 4  # 2 Swin-AMs per analysis transform
        assert all(l.macs() > 0 for l in attention)

    def test_analysis_downsamples_to_latent(self):
        graph = encoder_graph(1080, 1920, 36)
        latent = [l for l in graph if l.name.endswith(".latent")]
        assert len(latent) == 2
        assert latent[0].out_h == 68 and latent[0].out_w == 120
        assert latent[0].out_channels == 36


class TestLayerSpec:
    def test_conv_macs_formula(self):
        layer = LayerSpec(
            name="x",
            module="m",
            kind="conv",
            in_channels=4,
            out_channels=8,
            kernel=3,
            stride=1,
            in_h=16,
            in_w=16,
            out_h=16,
            out_w=16,
        )
        assert layer.macs() == 16 * 16 * 8 * 4 * 9
        assert layer.ops() == 2 * layer.macs()

    def test_deconv_macs_use_subkernel_taps(self):
        layer = LayerSpec(
            name="x",
            module="m",
            kind="deconv",
            in_channels=4,
            out_channels=4,
            kernel=4,
            stride=2,
            in_h=8,
            in_w=8,
            out_h=16,
            out_w=16,
        )
        # ceil(4/2)^2 = 4 taps per output element.
        assert layer.macs() == 16 * 16 * 4 * 4 * 4

    def test_pool_has_no_macs(self):
        layer = LayerSpec(
            name="p",
            module="m",
            kind="pool",
            in_channels=4,
            out_channels=4,
            kernel=2,
            stride=2,
            in_h=8,
            in_w=8,
            out_h=4,
            out_w=4,
        )
        assert layer.macs() == 0
        assert layer.weight_elements() == 0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            LayerSpec(
                name="x",
                module="m",
                kind="fft",
                in_channels=1,
                out_channels=1,
                kernel=1,
                stride=1,
                in_h=1,
                in_w=1,
                out_h=1,
                out_w=1,
            )

    def test_fast_supported_rules(self):
        def make(kind, kernel, stride):
            return LayerSpec(
                name="x",
                module="m",
                kind=kind,
                in_channels=1,
                out_channels=1,
                kernel=kernel,
                stride=stride,
                in_h=8,
                in_w=8,
                out_h=8,
                out_w=8,
            )

        assert make("conv", 3, 1).fast_supported
        assert make("deconv", 4, 2).fast_supported
        assert not make("conv", 3, 2).fast_supported
        assert not make("conv", 1, 1).fast_supported
        assert not make("dfconv", 3, 1).fast_supported
