"""Sweep orchestration: submit a grid, babysit workers, aggregate RD.

:class:`QueueRunner` is the generic driver: submit job specs with
content-derived ids to a
:class:`~repro.pipeline.dist.queues.JobQueue`, run a worker fleet
(inline, threads, or processes — chosen by the queue type and
``workers``), requeue expired leases while waiting, and hand the
terminal payloads to a subclass's ``_aggregate``.  Two aggregations
ship: :class:`SweepRunner` here (RD curves + BD-rate, behind
``run_many(backend="queue")`` and ``repro sweep``) and
:class:`~repro.pipeline.dse.DSERunner` (design-point tables + Pareto
fronts, behind ``repro dse``).

:class:`SweepRunner` expands a (codec, config, scene) grid — or any
explicit list of task-typed job specs — and folds the surviving
encode reports into :class:`~repro.metrics.RDCurve` objects per
(codec, scene) with BD-rate deltas against an anchor codec; results
of other task kinds (``"hardware"``, ``"dse-point"``) hydrate to
their own report types and ride along in ``reports`` untouched by the
RD aggregation.

Determinism: job results depend only on their specs, never on which
worker ran them or in what order, so a sweep's aggregated
:class:`SweepResult` — reports in submission order, curves, BD-rate
table — is byte-identical between ``workers=0`` (serial) and any
worker count.  The CI distributed smoke step pins exactly that.

Failure tolerance: a worker that dies mid-job loses its lease and the
job is retried elsewhere (``max_attempts`` total tries); a job whose
spec itself is broken dead-letters with its traceback into
``SweepResult.failures`` instead of sinking the sweep.  Dead workers
— processes *or* threads — are respawned while work remains.

Integrity and poison handling (this runner is the last line of
defense before aggregation):

* every drained result's CRC32 (attached worker-side by
  :func:`~repro.pipeline.dist.worker.attach_result_checksum`) is
  verified and stripped; a mismatch lands in ``failures`` as a
  checksum error instead of poisoning the curves.
* a **poison job** — one that kills every worker that claims it, so
  it never fails cleanly, just leaves a trail of expired leases — is
  quarantined by a circuit breaker once it has burned
  ``poison_threshold`` attempts (the queue's own monotonic per-job
  counter, bumped by every reap no matter who reaps).  A job that
  dead-letters by lease-expiry exhaustion first is upgraded to
  quarantined retroactively (same diagnosis, different race winner).
  Either way
  ``repro failures`` shows it flagged and ``repro retry`` can
  resubmit it once the underlying cause is fixed.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import threading
import time
from dataclasses import dataclass, field

from repro.metrics import RDCurve, bd_rate_table, curves_from_reports
from repro.obs.metrics import get_registry
from repro.obs.tracing import span

from .chaos import InjectedCrash
from .net import HttpJobQueue, HttpQueueError, http_worker_entry
from .queues import DirectoryJobQueue, JobQueue, MemoryJobQueue, QueueStats
from .worker import run_worker, verify_result_checksum, worker_entry

__all__ = [
    "QueueRunner",
    "SweepResult",
    "SweepRunner",
    "auto_bundle",
    "job_id_for_spec",
]

#: hard cap on crashed-worker replacements, so a fleet whose workers
#: die on arrival (bad interpreter, OOM box) fails instead of flapping.
_MAX_RESPAWNS = 16


def job_id_for_spec(index: int, spec: dict) -> str:
    """Deterministic job id: submission index + content digest.

    The digest makes resubmission idempotent (``--resume`` replays the
    grid and the queue skips ids it already finished); the zero-padded
    index keeps duplicate specs distinct and makes lexicographic id
    order equal submission order, which is how results are re-ordered
    after out-of-order completion.  Transport annotations
    (``frames_shm``) never reach the digest, so how frames travel can
    change between runs without invalidating ``--resume`` state.
    """
    from repro.pipeline.tasks import strip_transport_fields

    canonical = json.dumps(
        strip_transport_fields(spec), sort_keys=True, separators=(",", ":")
    )
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:10]
    return f"{index:05d}-{digest}"


def auto_bundle(num_jobs: int, workers: int) -> int:
    """Bundle-size heuristic: big enough to amortize queue round-trips,
    small enough that the fleet stays load-balanced (roughly two claims
    per worker over the run, capped at 16 jobs per claim).  Serial
    drains take everything in one claim."""
    if num_jobs < 1:
        return 1
    if workers <= 0:
        return max(1, num_jobs)
    return max(1, min(16, num_jobs // (workers * 2) or 1))


@dataclass
class SweepResult:
    """Aggregated outcome of one sweep.

    ``reports`` hold the completed jobs in submission order (failures
    are absent — see ``failures``); ``curves`` and ``bd_rate`` are the
    RD aggregation over those reports, keyed as
    :func:`repro.metrics.curves_from_reports` and
    :func:`repro.metrics.bd_rate_table` document.
    """

    job_ids: list[str]
    reports: list  # list[EncodeReport]
    failures: dict[str, str]
    curves: dict[tuple[str, str], RDCurve]
    bd_rate: dict[str, dict[str, float | None]] | None
    anchor: str | None
    metric: str
    elapsed_seconds: float
    workers: int

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        """JSON document (the ``repro sweep --json`` payload).

        ``curves`` and ``bd_rate`` depend only on the job specs, so
        they compare byte-identically across worker counts; ``reports``
        carry per-run timings and do not.
        """
        return {
            "jobs": len(self.job_ids),
            "completed": len(self.reports),
            "failed": dict(self.failures),
            "workers": self.workers,
            "elapsed_seconds": self.elapsed_seconds,
            "metric": self.metric,
            "anchor": self.anchor,
            "reports": [report.to_dict() for report in self.reports],
            "curves": [
                {"codec": codec, "scene": scene, **curve.to_dict()}
                for (codec, scene), curve in sorted(self.curves.items())
            ],
            "bd_rate": self.bd_rate,
        }

    def render(self) -> str:
        """Human summary: per-job table, curves, BD-rate deltas."""
        lines = [
            f"sweep: {len(self.job_ids)} jobs, {len(self.reports)} completed, "
            f"{len(self.failures)} failed in {self.elapsed_seconds:.1f}s "
            f"({self.workers} workers)"
        ]
        from repro.metrics import scene_label
        from repro.pipeline.reports import EncodeReport

        for report in self.reports:
            if isinstance(report, EncodeReport):
                lines.append(
                    f"  {report.codec:10s} {scene_label(report.scene):14s} "
                    f"{report.bpp:7.3f} bpp  {report.mean_psnr:6.2f} dB"
                )
            else:
                # hardware / dse-point jobs riding in a mixed sweep
                lines.append("  " + report.render().splitlines()[0])
        if self.curves:
            lines.append(f"RD curves ({self.metric}):")
            for (codec, scene), curve in sorted(self.curves.items()):
                first, last = curve.points[0], curve.points[-1]
                lines.append(
                    f"  {curve.name}: {first.bpp:.3f} bpp/{first.quality:.2f}"
                    f" -> {last.bpp:.3f} bpp/{last.quality:.2f}"
                    f" ({len(curve)} points)"
                )
        if self.bd_rate:
            lines.append(f"BD-rate vs {self.anchor} (negative = bits saved):")
            for scene, row in sorted(self.bd_rate.items()):
                cells = ", ".join(
                    f"{codec} {value:+.2f}%" if value is not None
                    else f"{codec} n/a"
                    for codec, value in sorted(row.items())
                )
                lines.append(f"  {scene}: {cells}")
        for job_id, error in sorted(self.failures.items()):
            lines.append(f"  FAILED {job_id}: {error.strip().splitlines()[-1]}")
        return "\n".join(lines)


class QueueRunner:
    """Run a list of job specs on a queue to completion.

    The fleet-orchestration core every sharded grid shares: submission
    with idempotent content-derived ids, worker babysitting (lease
    reaping, crash respawns), and the drain loop.  Subclasses supply
    the normalized job specs and an ``_aggregate(results, failures,
    elapsed)`` that folds terminal payloads into their result type.

    Execution backend, chosen by ``queue``/``queue_dir``/``workers``:

    * ``workers=0`` — serial: this process drains the queue inline
      (deterministic scheduling; the parity baseline).
    * ``MemoryJobQueue`` (default) — ``workers`` threads of this
      process.
    * ``DirectoryJobQueue`` (pass ``queue_dir`` or a queue instance) —
      ``workers`` local child processes; additional processes on other
      hosts may attach to the same directory with
      :func:`~repro.pipeline.dist.worker.worker_entry` and the runner
      simply sees jobs complete faster.
    * ``HttpJobQueue`` (pass a client pointed at a ``repro serve``
      daemon) — ``workers`` local child processes talking to the
      server over the wire; remote hosts join the same fleet with
      ``repro worker --queue-url``.  Results drain incrementally
      through the paginated ``results`` endpoint as jobs finish.

    ``lease_seconds`` must comfortably exceed the slowest single job:
    an expired lease is treated as a dead worker and the job re-runs
    (at-least-once semantics; results are idempotent because jobs are
    pure functions of their spec).

    ``bundle`` sizes the workers' batched claims: ``N`` claims up to N
    jobs per queue round-trip under one lease (size ``lease_seconds``
    for a whole bundle), ``"auto"`` picks :func:`auto_bundle` from the
    grid and fleet size, ``1`` (default) keeps classic per-job claims.
    ``share_frames`` publishes each distinct scene once through
    :mod:`repro.pipeline.dist.shm` and annotates submitted specs with
    the segment handle; the default (``None``) enables it exactly when
    workers live in other processes.  Both knobs change *transport
    only* — results stay byte-identical (the distributed parity tests
    pin this across bundle sizes, backends, and worker counts).

    ``poison_threshold`` arms the poison-job circuit breaker: a job
    that burns that many attempts without finishing — a job that
    *kills* workers instead of failing, so no traceback is ever
    recorded, just lease expiry after lease expiry — is quarantined
    rather than allowed to grind through the rest of the fleet.  The
    evidence is the queue's own per-job attempt counter
    (``queue.attempts``), which rises on every reap no matter who
    performs it.  Keep the threshold above the attempt churn a
    *recoverable* job can accumulate (worker crashes plus injected
    faults under chaos testing reach three).  ``job_timeout_seconds`` arms the per-job
    watchdog in every worker this runner spawns; ``checkpoint`` is the
    fault-injection seam passed to thread workers and the serial
    worker (a :class:`~repro.pipeline.dist.chaos.CrashPlan` hook —
    not picklable, so process fleets ignore it).
    """

    def __init__(
        self,
        specs: list[dict],
        *,
        queue: JobQueue | None = None,
        queue_dir: str | os.PathLike | None = None,
        workers: int = 2,
        lease_seconds: float = 120.0,
        max_attempts: int = 3,
        poison_threshold: int = 5,
        job_timeout_seconds: float | None = None,
        checkpoint=None,
        bundle: int | str = 1,
        share_frames: bool | None = None,
    ):
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if queue is not None and queue_dir is not None:
            raise ValueError("pass queue or queue_dir, not both")
        self.specs = list(specs)
        if bundle == "auto":
            bundle = auto_bundle(len(self.specs), workers)
        if not isinstance(bundle, int) or isinstance(bundle, bool) or bundle < 1:
            raise ValueError(
                f"bundle must be a positive int or 'auto', got {bundle!r}"
            )
        self.bundle = bundle
        if queue is None:
            queue = (
                DirectoryJobQueue(queue_dir, max_attempts=max_attempts)
                if queue_dir is not None
                else MemoryJobQueue(max_attempts=max_attempts)
            )
        self.queue = queue
        self.workers = workers
        self.lease_seconds = lease_seconds
        self.poison_threshold = poison_threshold
        self.job_timeout_seconds = job_timeout_seconds
        self.checkpoint = checkpoint
        if share_frames is None:
            # Auto: worth a segment only when workers live in *other*
            # processes (thread fleets and serial drains already share
            # this process's warm cache).
            share_frames = workers > 0 and isinstance(
                self.queue, (DirectoryJobQueue, HttpJobQueue)
            )
        self.share_frames = bool(share_frames)
        #: segment names this runner published (reclaimed in run()).
        self._shm_names: list[str] = []
        self.job_ids: list[str] = []
        # incremental result drain state (results_page cursor + cache)
        self._drained: dict[str, dict] = {}
        self._results_cursor: str | None = None
        # robustness ledgers: lease expiries seen per job (the poison
        # breaker's evidence), checksum-failed drains, quarantined ids
        self._lease_expiries: dict[str, int] = {}
        self._checksum_failures: dict[str, str] = {}
        self.quarantined: list[str] = []

    def submit(self) -> list[str]:
        """Submit every spec (idempotent: ids derive from content, so a
        resumed sweep re-submits and the queue keeps finished work).

        With ``share_frames`` on, each distinct scene is rendered once
        here and published as a shared-memory segment; submitted specs
        carry a ``frames_shm`` transport annotation pointing at it.
        Ids ignore the annotation (see :func:`job_id_for_spec`), so
        shared-frames and plain runs are resume-compatible."""
        with span("runner.submit", jobs=len(self.specs)):
            specs = self._annotated_specs() if self.share_frames else self.specs
            self.job_ids = [
                self.queue.submit(spec, job_id=job_id_for_spec(index, spec))
                for index, spec in enumerate(specs)
            ]
        get_registry().counter(
            "repro_runner_submitted_total", "job specs submitted by runners"
        ).inc(len(self.job_ids))
        return self.job_ids

    def _annotated_specs(self) -> list[dict]:
        """Job specs with ``frames_shm`` annotations, one published
        segment per distinct scene.  Anything that goes wrong — no
        shared-memory filesystem, an unrenderable scene — degrades to
        the clean spec: the annotation is an optimization, never a
        requirement."""
        from repro.pipeline.tasks import spec_kind
        from repro.pipeline.registry import codec_spec
        from repro.video import SceneConfig, generate_sequence

        try:
            from .shm import publish_frames
        except Exception:  # numpy-less or shm-less build: ship clean
            return self.specs

        descriptors: dict[str, dict | None] = {}
        annotated: list[dict] = []
        for spec in self.specs:
            scene = spec.get("scene")
            try:
                framed = (
                    isinstance(scene, dict)
                    and spec_kind(spec) in ("encode", "ladder-rendition")
                    # simulated codecs never touch frames; skip the render
                    and not hasattr(
                        codec_spec(str(spec.get("codec"))).factory, "simulate"
                    )
                )
            except Exception:
                framed = False
            if not framed:
                annotated.append(spec)
                continue
            key = json.dumps(scene, sort_keys=True, separators=(",", ":"))
            if key not in descriptors:
                try:
                    frames = generate_sequence(SceneConfig.from_dict(scene))
                    descriptor = publish_frames(frames)
                    self._shm_names.append(descriptor["name"])
                except Exception:
                    descriptor = None  # cannot publish here: ship clean
                descriptors[key] = descriptor
            descriptor = descriptors[key]
            annotated.append(
                {**spec, "frames_shm": descriptor} if descriptor else spec
            )
        return annotated

    def release_shared_frames(self) -> int:
        """Unlink every segment this runner published (idempotent;
        ``run()`` calls it in its ``finally``)."""
        from .shm import unlink_segments

        names, self._shm_names = self._shm_names, []
        return unlink_segments(names)

    # -- worker fleet -------------------------------------------------
    def _spawn_process(self, index: int):
        if isinstance(self.queue, HttpJobQueue):
            target = http_worker_entry
            args = (self.queue.url,)
            kwargs = {
                "worker_id": f"sweep-w{index}-{os.getpid()}",
                "lease_seconds": self.lease_seconds,
                "job_timeout_seconds": self.job_timeout_seconds,
                "bundle": self.bundle,
            }
        else:
            assert isinstance(self.queue, DirectoryJobQueue)
            target = worker_entry
            args = (self.queue.root,)
            kwargs = {
                "worker_id": f"sweep-w{index}-{os.getpid()}",
                "max_attempts": self.queue.max_attempts,
                "lease_seconds": self.lease_seconds,
                "job_timeout_seconds": self.job_timeout_seconds,
                "bundle": self.bundle,
            }
        process = multiprocessing.Process(
            target=target, args=args, kwargs=kwargs, daemon=True
        )
        process.start()
        return process

    def _thread_body(self, index: int) -> None:
        """One thread worker, with simulated deaths contained.

        An :class:`~repro.pipeline.dist.chaos.InjectedCrash` (from a
        crash plan's checkpoint or a poison job) and a transport error
        that escapes the worker loop both mean the same thing a dead
        process means — this worker is gone, its lease will expire,
        the respawn loop owns replacement.  Containing them here keeps
        a *simulated* death from spraying a traceback over the run.
        """
        try:
            run_worker(
                self.queue,
                f"sweep-t{index}",
                lease_seconds=self.lease_seconds,
                checkpoint=self.checkpoint,
                job_timeout_seconds=self.job_timeout_seconds,
                bundle=self.bundle,
            )
        except (InjectedCrash, HttpQueueError):
            pass  # worker died; lease recovery + respawn take over

    def _spawn_thread(self, index: int):
        thread = threading.Thread(
            target=self._thread_body, args=(index,), daemon=True
        )
        thread.start()
        return thread

    def _admit(self, job_id: str, doc: dict) -> None:
        """Verify one drained result's checksum; admit the stripped
        payload to the local cache, or dead-letter the job locally.

        A result corrupted between the worker's ack and this drain —
        on disk, over the wire, by a buggy proxy — is recorded as a
        failure instead of flowing into the aggregation.  Documents
        without a checksum (pre-integrity workers) verify trivially.
        """
        payload, ok = verify_result_checksum(doc)
        if ok:
            if job_id not in self._drained:
                get_registry().counter(
                    "repro_runner_results_drained_total",
                    "verified results admitted to the runner cache",
                ).inc()
            self._drained[job_id] = payload
        else:
            get_registry().counter(
                "repro_runner_checksum_failures_total",
                "drained results rejected by checksum verification",
            ).inc()
            self._checksum_failures[job_id] = (
                "result checksum mismatch: the acked document was "
                "corrupted in transit or at rest; discarded before "
                "aggregation"
            )

    def _drain_results(self, page_size: int = 100) -> None:
        """Pull any newly finished result pages into the local cache.

        Runs every poll, so results cross the queue boundary (one page
        of jobs at a time) as they finish — a server never has to
        buffer a whole sweep's reports into a single response, and by
        the time the grid completes the aggregation inputs are already
        local.

        Pages are id-ordered but jobs *finish* out of order, so the
        durable cursor is a low-water mark: it only advances across
        the contiguous prefix of submitted ids that are already
        drained.  Everything past the mark is re-scanned next poll —
        a small window bounded by how far completion order strays
        from submission order — so a job that finishes late but sorts
        early is never skipped.
        """
        if not hasattr(self.queue, "results_page"):
            return  # custom queue predating pagination: full read later
        cursor = self._results_cursor
        while True:
            page, last = self.queue.results_page(
                after=cursor, limit=page_size
            )
            if not page:
                break
            for job_id, doc in page.items():
                self._admit(job_id, doc)
            cursor = last
        watermark = self._results_cursor
        for job_id in sorted(set(self.job_ids)):
            if watermark is not None and job_id <= watermark:
                continue
            if job_id not in self._drained:
                break  # pending, in flight, or failed: re-scan from here
            watermark = job_id
        self._results_cursor = watermark

    def _load_finished(self) -> tuple[dict[str, dict], dict[str, str]]:
        """Terminal payloads for this sweep's jobs (final drain of the
        incremental cache, or a one-time full read for queues without
        ``results_page``)."""
        wanted = set(self.job_ids)
        if hasattr(self.queue, "results_page"):
            self._drain_results()
        else:
            for job_id, doc in self.queue.results().items():
                if job_id in wanted:
                    self._admit(job_id, doc)
        results = {
            k: v for k, v in self._drained.items() if k in wanted
        }
        failures = {
            k: v for k, v in self.queue.failures().items() if k in wanted
        }
        for job_id, error in self._checksum_failures.items():
            if job_id in wanted:
                failures.setdefault(job_id, error)
        return results, failures

    def _poison_attempts(self, job_id: str) -> int:
        """The breaker's evidence for one job: the queue's monotonic
        attempt counter when the queue exposes it, else the runner's
        own count of reaps it happened to win.

        The queue-side counter is the reliable source — idle workers
        race the runner for ``reap_expired`` and systematically win it
        (a worker's reap restarts the lease on the worker's own poll
        cadence, phase-locking every expiry to a worker poll), so a
        runner that only counts its *own* reaps can watch a poison job
        kill the entire fleet while observing zero expiries.
        """
        if hasattr(self.queue, "attempts"):
            return max(
                self.queue.attempts(job_id),
                self._lease_expiries.get(job_id, 0),
            )
        return self._lease_expiries.get(job_id, 0)

    def _break_poison_jobs(self) -> None:
        """The poison-job circuit breaker.

        A poison job kills every worker that claims it, so it never
        ``fail()``s with a traceback — its only trace is lease expiry
        after lease expiry, each one bumping the job's attempt counter.
        Proactively: once a still-unfinished job has burned
        ``poison_threshold`` attempts (read from the queue itself — see
        :meth:`_poison_attempts` for why runner-observed reaps are not
        trustworthy evidence), it is quarantined (terminal, excluded
        from claiming) before it can grind through more of the fleet.
        Retroactively: a poison job can exhaust the queue's
        ``max_attempts`` and dead-letter as a plain lease-expiry
        failure before the threshold is reached — any of this sweep's
        jobs that dead-lettered purely by lease expiry (the poison
        signature: workers died, no traceback was ever recorded) is
        upgraded to quarantined, so the diagnosis reads the same
        whichever race was won.
        """
        if not hasattr(self.queue, "quarantine"):
            return
        wanted = set(self.job_ids)
        unfinished = sorted(wanted - self.queue.finished_ids())
        counts: dict[str, int] | None = None
        if hasattr(self.queue, "attempts_map"):
            # One bulk read instead of a per-job query — over HTTP the
            # per-job form is a round-trip per unfinished job per check.
            counts = self.queue.attempts_map(unfinished)
        for job_id in unfinished:
            if job_id in self.quarantined:
                continue
            if counts is not None:
                count = max(
                    counts.get(job_id, 0),
                    self._lease_expiries.get(job_id, 0),
                )
            else:
                count = self._poison_attempts(job_id)
            if count < self.poison_threshold:
                continue
            reason = (
                f"poison job: burned {count} attempts with no result and "
                "no failure ever recorded — it keeps killing its workers; "
                "quarantined by the runner's circuit breaker"
            )
            if self.queue.quarantine(job_id, reason):
                self.quarantined.append(job_id)
        for job_id, error in self.queue.failures().items():
            if job_id not in wanted or job_id in self.quarantined:
                continue
            if not error.startswith("lease expired"):
                continue  # a real traceback: broken spec, not poison
            reason = (
                f"poison job: {error.strip()}, no failure ever recorded "
                "— its workers died instead; quarantined by the "
                "runner's circuit breaker"
            )
            if self.queue.quarantine(job_id, reason):
                self.quarantined.append(job_id)

    def _quarantine_unrunnable(self, wanted: set[str]) -> None:
        """Terminal-state the jobs a dead fleet can never run (the
        circuit breaker's backstop — reachable only when every worker
        died *and* the respawn budget is spent, i.e. something is
        systematically killing workers faster than one poison job)."""
        if not hasattr(self.queue, "quarantine"):
            return
        finished = self.queue.finished_ids()
        for job_id in sorted(wanted - finished):
            if job_id in self.quarantined:
                continue
            attempts = self._poison_attempts(job_id)
            if self.queue.quarantine(
                job_id,
                "worker fleet exhausted: all workers dead and the "
                f"respawn budget spent with this job unfinished "
                f"({attempts} attempts burned)",
            ):
                self.quarantined.append(job_id)

    def run(self, progress=None, *, poll_seconds: float = 0.05) -> SweepResult:
        """Run the sweep to completion and aggregate.

        ``progress(stats)`` fires with a
        :class:`~repro.pipeline.dist.queues.QueueStats` snapshot each
        poll.  Returns a :class:`SweepResult`; job failures land in
        ``result.failures`` rather than raising, so partial sweeps
        still aggregate what completed.
        """
        if not self.job_ids:
            self.submit()
        start = time.monotonic()
        use_processes = isinstance(
            self.queue, (DirectoryJobQueue, HttpJobQueue)
        )
        fleet: list = []
        spawned = 0
        spawn = self._spawn_process if use_processes else self._spawn_thread
        if self.workers == 0:
            run_worker(
                self.queue,
                "sweep-serial",
                lease_seconds=self.lease_seconds,
                checkpoint=self.checkpoint,
                job_timeout_seconds=self.job_timeout_seconds,
                bundle=self.bundle,
            )
        else:
            fleet = [spawn(i) for i in range(self.workers)]
            spawned = self.workers
        wanted = set(self.job_ids)
        # Poison evidence only changes on lease-expiry/claim timescales,
        # so the breaker runs on its own (slower) cadence — polling it
        # every drain tick is pure queue chatter, and over HTTP that
        # chatter competes with the workers for CPU.  A reap won by the
        # runner is fresh evidence, so it re-arms the breaker at once.
        breaker_seconds = max(poll_seconds, min(self.lease_seconds, 4.0) / 4)
        next_breaker = time.monotonic()
        try:
            while True:
                reaped_now = False
                for job_id in self.queue.reap_expired():
                    reaped_now = True
                    get_registry().counter(
                        "repro_runner_lease_reaps_total",
                        "expired leases reaped by the runner poll loop",
                    ).inc()
                    if job_id in wanted:
                        self._lease_expiries[job_id] = (
                            self._lease_expiries.get(job_id, 0) + 1
                        )
                now = time.monotonic()
                if reaped_now or now >= next_breaker:
                    self._break_poison_jobs()
                    next_breaker = now + breaker_seconds
                self._drain_results()
                if progress is not None:
                    progress(self.queue.stats())
                if wanted <= self.queue.finished_ids():
                    break
                if self.workers > 0:
                    # Babysit the fleet: join the dead, respawn while
                    # work remains and the respawn budget holds (threads
                    # die too now — injected crashes, poison jobs).
                    stats = self.queue.stats()
                    alive = 0
                    for i, worker in enumerate(fleet):
                        if worker.is_alive():
                            alive += 1
                            continue
                        worker.join()
                        if (
                            stats.pending + stats.claimed > 0
                            and spawned < self.workers + _MAX_RESPAWNS
                        ):
                            fleet[i] = spawn(spawned)
                            spawned += 1
                            alive += 1
                            get_registry().counter(
                                "repro_runner_respawns_total",
                                "dead workers replaced by the babysitter",
                            ).inc()
                    if (
                        alive == 0
                        and stats.pending + stats.claimed > 0
                        and spawned >= self.workers + _MAX_RESPAWNS
                    ):
                        # Fleet exhausted: every worker is dead and the
                        # respawn budget is spent, so the remaining jobs
                        # can never run.  Quarantine them (terminal) so
                        # the sweep ends with an honest dead-letter
                        # record instead of spinning forever.
                        self._quarantine_unrunnable(wanted)
                time.sleep(poll_seconds)
        finally:
            for worker in fleet:
                worker.join(timeout=max(self.lease_seconds, 10.0))
            # Reclaim shared frame segments whatever happened above —
            # including killed workers and raised exceptions.  Workers
            # copy frames out at attach time, so a straggler never
            # holds a reference into a segment we unlink.
            self.release_shared_frames()
        elapsed = time.monotonic() - start
        results, failures = self._load_finished()
        return self._aggregate(results, failures, elapsed)

    def _hydrated_reports(self, results: dict[str, dict]) -> list:
        """Completed results in submission order, hydrated to the
        typed report each job's task kind produces (submission order ==
        lexicographic id order, thanks to the id's index prefix)."""
        from repro.pipeline.tasks import hydrate_result

        spec_by_id = dict(zip(self.job_ids, self.specs))
        return [
            hydrate_result(spec_by_id[job_id], results[job_id])
            for job_id in sorted(set(self.job_ids))
            if job_id in results
        ]

    def _aggregate(
        self, results: dict[str, dict], failures: dict[str, str], elapsed: float
    ):
        raise NotImplementedError  # subclasses fold into their result type


class SweepRunner(QueueRunner):
    """Submit a grid of jobs to a queue and aggregate RD curves.

    Job sources (same two styles as :func:`repro.pipeline.run_many`):
    explicit ``jobs`` (``Pipeline`` objects or task-typed spec dicts —
    encode, hardware, and dse-point jobs can mix in one sweep), or a
    ``codecs``/``codec_configs``/``scenes`` encode grid /
    ``platforms``/``platform_configs``/``resolutions`` hardware grid.
    Execution semantics (``workers``/``queue_dir``/``lease_seconds``)
    are :class:`QueueRunner`'s; the RD aggregation
    (:class:`~repro.metrics.RDCurve` per (codec, scene) + BD-rate vs
    ``anchor``) folds over the encode reports only — other kinds pass
    through in ``SweepResult.reports`` as their own report types.
    """

    def __init__(
        self,
        jobs=None,
        *,
        codecs=None,
        codec_configs=None,
        scenes=None,
        compute_msssim: bool = False,
        platforms=None,
        platform_configs=None,
        resolutions=None,
        queue: JobQueue | None = None,
        queue_dir: str | os.PathLike | None = None,
        workers: int = 2,
        lease_seconds: float = 120.0,
        max_attempts: int = 3,
        poison_threshold: int = 5,
        job_timeout_seconds: float | None = None,
        checkpoint=None,
        bundle: int | str = 1,
        share_frames: bool | None = None,
        metric: str = "psnr",
        anchor: str | None = None,
    ):
        from repro.pipeline.facade import build_jobs

        specs = build_jobs(
            jobs,
            codecs=codecs,
            codec_configs=codec_configs,
            scenes=scenes,
            compute_msssim=compute_msssim,
            platforms=platforms,
            platform_configs=platform_configs,
            resolutions=resolutions,
        )
        super().__init__(
            specs,
            queue=queue,
            queue_dir=queue_dir,
            workers=workers,
            lease_seconds=lease_seconds,
            max_attempts=max_attempts,
            poison_threshold=poison_threshold,
            job_timeout_seconds=job_timeout_seconds,
            checkpoint=checkpoint,
            bundle=bundle,
            share_frames=share_frames,
        )
        self.metric = metric
        self.anchor = anchor

    def _aggregate(
        self, results: dict[str, dict], failures: dict[str, str], elapsed: float
    ) -> SweepResult:
        from repro.pipeline.reports import EncodeReport

        reports = self._hydrated_reports(results)
        curves = curves_from_reports(
            [r for r in reports if isinstance(r, EncodeReport)],
            metric=self.metric,
        )
        table = None
        if self.anchor is not None:
            if all(codec != self.anchor for codec, _ in curves):
                raise ValueError(
                    f"anchor codec {self.anchor!r} produced no curve in "
                    f"this sweep; curves: "
                    f"{', '.join(sorted(c for c, _ in curves))}"
                )
            table = bd_rate_table(curves, self.anchor)
        return SweepResult(
            job_ids=list(self.job_ids),
            reports=reports,
            failures=failures,
            curves=curves,
            bd_rate=table,
            anchor=self.anchor,
            metric=self.metric,
            elapsed_seconds=elapsed,
            workers=self.workers,
        )
