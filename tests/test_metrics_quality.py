"""Tests for PSNR / SSIM / MS-SSIM."""

import numpy as np
import pytest

from repro.metrics import MS_SSIM_WEIGHTS, ms_ssim, mse, psnr, ssim


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestMSE:
    def test_identical_is_zero(self, rng):
        img = rng.uniform(0, 255, (3, 32, 32))
        assert mse(img, img) == 0.0

    def test_known_value(self):
        a = np.zeros((4, 4))
        b = np.full((4, 4), 2.0)
        assert mse(a, b) == pytest.approx(4.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            mse(np.zeros((4, 4)), np.zeros((4, 5)))


class TestPSNR:
    def test_identical_is_inf(self, rng):
        img = rng.uniform(0, 255, (16, 16))
        assert psnr(img, img) == float("inf")

    def test_known_value(self):
        # MSE = 1 at data range 255 -> PSNR = 20*log10(255) ~ 48.13 dB.
        a = np.zeros((8, 8))
        b = np.ones((8, 8))
        assert psnr(a, b) == pytest.approx(48.1308, abs=1e-3)

    def test_monotone_in_noise(self, rng):
        img = rng.uniform(0, 255, (32, 32))
        noisy_small = img + rng.normal(0, 1, img.shape)
        noisy_large = img + rng.normal(0, 8, img.shape)
        assert psnr(img, noisy_small) > psnr(img, noisy_large)

    def test_data_range_scaling(self, rng):
        img = rng.uniform(0, 1, (16, 16))
        noisy = np.clip(img + 0.01, 0, 1)
        # Same relative error at range 1.0.
        value = psnr(img, noisy, data_range=1.0)
        assert 30.0 < value < 50.0

    def test_multichannel(self, rng):
        img = rng.uniform(0, 255, (3, 16, 16))
        assert psnr(img, img + 1.0) == pytest.approx(48.1308, abs=1e-3)


class TestSSIM:
    def test_identical_is_one(self, rng):
        img = rng.uniform(0, 255, (32, 32))
        assert ssim(img, img) == pytest.approx(1.0)

    def test_bounded(self, rng):
        a = rng.uniform(0, 255, (32, 32))
        b = rng.uniform(0, 255, (32, 32))
        assert -1.0 <= ssim(a, b) <= 1.0

    def test_noise_degrades(self, rng):
        img = rng.uniform(0, 255, (48, 48))
        light = np.clip(img + rng.normal(0, 2, img.shape), 0, 255)
        heavy = np.clip(img + rng.normal(0, 25, img.shape), 0, 255)
        assert ssim(img, light) > ssim(img, heavy)

    def test_constant_shift_high_similarity(self, rng):
        # SSIM is robust to small luminance shifts relative to MSE.
        img = rng.uniform(80, 170, (32, 32))
        assert ssim(img, img + 2.0) > 0.9


class TestMSSSIM:
    def test_weights_sum_to_one(self):
        assert MS_SSIM_WEIGHTS.sum() == pytest.approx(1.0, abs=1e-3)

    def test_identical_is_one(self, rng):
        img = rng.uniform(0, 255, (3, 192, 192))
        assert ms_ssim(img, img) == pytest.approx(1.0, abs=1e-6)

    def test_noise_degrades(self, rng):
        img = rng.uniform(0, 255, (192, 192))
        light = np.clip(img + rng.normal(0, 3, img.shape), 0, 255)
        heavy = np.clip(img + rng.normal(0, 30, img.shape), 0, 255)
        assert ms_ssim(img, light) > ms_ssim(img, heavy)

    def test_small_image_truncates_scales(self, rng):
        # 32x32 cannot support 5 scales with an 11-tap window; the
        # metric must still return a sane value rather than fail.
        img = rng.uniform(0, 255, (32, 32))
        value = ms_ssim(img, np.clip(img + rng.normal(0, 5, img.shape), 0, 255))
        assert 0.0 < value <= 1.0

    def test_multichannel_matches_mean_of_planes(self, rng):
        img = rng.uniform(0, 255, (3, 96, 96))
        noisy = np.clip(img + rng.normal(0, 4, img.shape), 0, 255)
        per_plane = [ms_ssim(img[c], noisy[c]) for c in range(3)]
        assert ms_ssim(img, noisy) == pytest.approx(np.mean(per_plane), abs=1e-9)

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            ms_ssim(rng.uniform(0, 255, (3, 64, 64)), rng.uniform(0, 255, (64, 64)))
