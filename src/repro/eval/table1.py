"""Table I — BDBR(%) comparisons with H.265 as the anchor.

Two regeneration modes:

* ``calibrated`` (default, fast): every method's RD curve comes from
  :mod:`repro.codec.rd_models` and the real Bjøntegaard machinery
  recomputes the table.  The H.265 rows are exactly 0 by construction;
  other rows land within the tilt-induced tolerance of the published
  values.

* ``hybrid``: the CTVC-Net FXP and Sparse rows are derived from
  *measured* degradation of this repository's real pipeline — encode a
  synthetic sequence with the FP, FXP, and sparse variants, convert the
  PSNR deltas at matched rate into BDBR deltas via the anchor curve's
  RD slope, and add them to the calibrated FP row.  This is the honest
  re-test of the paper's claim that quantization and 50 % sparsity cost
  almost nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.codec.rd_models import (
    DATASETS,
    LITERATURE_BDBR,
    METHODS,
    all_method_curves,
    anchor_curve,
)
from repro.metrics import bd_rate, psnr
from repro.video import SceneConfig, generate_sequence

from .tables import render_table

__all__ = ["Table1Result", "measured_variant_deltas", "generate_table1"]

_METRICS = ("psnr", "ms-ssim")


@dataclass
class Table1Result:
    """The regenerated Table I plus the paper's values for comparison."""

    mode: str
    #: computed[(method, dataset, metric)] -> BDBR %
    computed: dict[tuple[str, str, str], float] = field(default_factory=dict)
    measured_deltas: dict[str, float] = field(default_factory=dict)

    def paper_value(self, method: str, dataset: str, metric: str) -> float:
        return LITERATURE_BDBR[(method, dataset, metric)]

    def max_abs_deviation(self) -> float:
        return max(
            abs(value - self.paper_value(*key)) for key, value in self.computed.items()
        )

    def render(self) -> str:
        headers = ["Method"]
        for metric in _METRICS:
            for dataset in DATASETS:
                headers.append(f"{metric}:{dataset}")
        rows = []
        for method in METHODS:
            row: list = [method]
            for metric in _METRICS:
                for dataset in DATASETS:
                    row.append(self.computed[(method, dataset, metric)])
            rows.append(row)
        return render_table(
            headers,
            rows,
            title=f"Table I — BDBR(%) vs H.265 anchor (mode={self.mode})",
        )


def _rd_slope_db_per_decade(dataset: str, metric: str) -> float:
    """Anchor quality gain per decade of rate (for delta conversion)."""
    curve = anchor_curve(dataset, metric)
    quality = curve.quality_axis_db()
    log_rate = np.log10(curve.rates)
    return float((quality[-1] - quality[0]) / (log_rate[-1] - log_rate[0]))


def measured_variant_deltas(
    channels: int = 12,
    qstep: float = 8.0,
    frames: int = 3,
    size: tuple[int, int] = (64, 96),
    seed: int = 7,
) -> dict[str, float]:
    """Measure the FP -> FXP -> Sparse PSNR drop of the real pipeline.

    Returns quality deltas in dB at matched rate for the "fxp" and
    "sparse" variants (non-negative values = quality loss).
    """
    sequence = generate_sequence(
        SceneConfig(height=size[0], width=size[1], frames=frames, seed=seed)
    )

    from repro.pipeline import create_codec

    def run(variant: str) -> float:
        net = create_codec("ctvc", channels=channels, qstep=qstep, seed=1)
        if variant == "fxp":
            net.apply_fxp()
        elif variant == "sparse":
            net.apply_sparse(rho=0.5)
        stream = net.encode_sequence(sequence)
        decoded = net.decode_sequence(stream)
        return float(
            np.mean([psnr(a, b) for a, b in zip(sequence, decoded)])
        )

    fp = run("fp")
    return {"fxp": max(0.0, fp - run("fxp")), "sparse": max(0.0, fp - run("sparse"))}


def _delta_psnr_to_delta_bdbr(delta_db: float, slope_db_per_decade: float) -> float:
    """A quality drop at equal rate equals a rate increase at equal
    quality of ``10**(delta/slope) - 1`` (first-order Bjøntegaard)."""
    return float((10.0 ** (delta_db / slope_db_per_decade) - 1.0) * 100.0)


def generate_table1(
    mode: str = "calibrated",
    num_points: int = 5,
    measured_kwargs: dict | None = None,
) -> Table1Result:
    """Regenerate Table I.  See module docstring for the modes."""
    if mode not in ("calibrated", "hybrid"):
        raise ValueError(f"unknown mode {mode!r}")
    result = Table1Result(mode=mode)

    deltas: dict[str, float] = {}
    if mode == "hybrid":
        deltas = measured_variant_deltas(**(measured_kwargs or {}))
        result.measured_deltas = deltas

    for metric in _METRICS:
        for dataset in DATASETS:
            curves = all_method_curves(dataset, metric, num_points)
            anchor = curves["h265"]
            for method in METHODS:
                key = (method, dataset, metric)
                if mode == "hybrid" and method in ("ctvc-fxp", "ctvc-sparse"):
                    base = bd_rate(anchor, curves["ctvc-fp"])
                    variant = "fxp" if method == "ctvc-fxp" else "sparse"
                    slope = _rd_slope_db_per_decade(dataset, metric)
                    result.computed[key] = base + _delta_psnr_to_delta_bdbr(
                        deltas[variant], slope
                    )
                else:
                    result.computed[key] = bd_rate(anchor, curves[method])
    return result
