"""Tests for the compressed Weight/Index buffer representation."""

import numpy as np
import pytest

from repro.core import (
    PAPER_F23,
    PAPER_T3_64,
    compress_kernel,
    prune_transform_weights,
)


@pytest.fixture
def rng():
    return np.random.default_rng(41)


class TestCompressedKernel:
    def test_roundtrip_balanced(self, rng):
        w = rng.standard_normal((5, 4, 3, 3))
        pruned = prune_transform_weights(w, PAPER_F23, rho=0.5)
        packed = compress_kernel(pruned)
        assert np.allclose(packed.to_dense(), pruned.values)

    def test_roundtrip_global(self, rng):
        w = rng.standard_normal((5, 4, 4, 4))
        pruned = prune_transform_weights(w, PAPER_T3_64, rho=0.6, mode="global")
        packed = compress_kernel(pruned)
        assert np.allclose(packed.to_dense(), pruned.values)

    def test_balanced_flag(self, rng):
        w = rng.standard_normal((3, 3, 3, 3))
        balanced = compress_kernel(prune_transform_weights(w, PAPER_F23, rho=0.5))
        assert balanced.is_balanced

    def test_nonzero_count_matches_mask(self, rng):
        w = rng.standard_normal((4, 2, 3, 3))
        pruned = prune_transform_weights(w, PAPER_F23, rho=0.25)
        packed = compress_kernel(pruned)
        assert packed.num_nonzeros == int(pruned.mask.sum())

    def test_index_bits(self, rng):
        w_conv = rng.standard_normal((2, 2, 3, 3))
        w_deconv = rng.standard_normal((2, 2, 4, 4))
        conv_packed = compress_kernel(prune_transform_weights(w_conv, PAPER_F23, 0.5))
        deconv_packed = compress_kernel(
            prune_transform_weights(w_deconv, PAPER_T3_64, 0.5)
        )
        # 16 positions -> 4 bits; 64 positions -> 6 bits.
        assert conv_packed.index_bits == 4
        assert deconv_packed.index_bits == 6

    def test_buffer_footprints(self, rng):
        w = rng.standard_normal((4, 4, 3, 3))
        packed = compress_kernel(prune_transform_weights(w, PAPER_F23, 0.5), 16)
        nnz = 4 * 4 * 8  # 8 survivors per patch at rho=0.5
        assert packed.num_nonzeros == nnz
        assert packed.weight_buffer_bits() == nnz * 16
        assert packed.index_buffer_bits() == nnz * 4

    def test_patch_accessor(self, rng):
        w = rng.standard_normal((3, 2, 3, 3))
        pruned = prune_transform_weights(w, PAPER_F23, rho=0.5)
        packed = compress_kernel(pruned)
        vals, idx = packed.patch(1, 1)
        dense_patch = pruned.values[1, 1].ravel()
        assert np.allclose(dense_patch[idx], vals)
        assert np.count_nonzero(dense_patch) == len(vals)

    def test_indices_sorted_within_patch(self, rng):
        """The hardware index buffer streams positions in order."""
        w = rng.standard_normal((2, 2, 3, 3))
        packed = compress_kernel(prune_transform_weights(w, PAPER_F23, 0.5))
        for oc in range(2):
            for ic in range(2):
                _, idx = packed.patch(oc, ic)
                assert np.all(np.diff(idx) > 0)

    def test_sparsity_halves_weight_buffer(self, rng):
        w = rng.standard_normal((4, 4, 3, 3))
        dense = compress_kernel(prune_transform_weights(w, PAPER_F23, 0.0))
        half = compress_kernel(prune_transform_weights(w, PAPER_F23, 0.5))
        assert half.weight_buffer_bits() == dense.weight_buffer_bits() // 2
