"""Design-space exploration over the NVCA architecture.

The paper picks one operating point (Pif = Pof = 12, rho = 50%,
400 MHz).  This module sweeps the axes around it and reports the
quality/cost frontier — the analysis a designer would run to justify
that choice: SCU array geometry (Pif x Pof), sparsity, and clock
frequency, each evaluated through the same performance / energy / area
models that reproduce Table II.

:func:`evaluate_point` is the unit of work: one ``(graph, config)``
roll-up to a :class:`DesignPoint`.  The ``sweep_*`` helpers evaluate a
whole axis inline; at scale the same points travel as ``"dse-point"``
job specs through the task-typed work queue instead
(:mod:`repro.pipeline.dse` builds the grids, ``repro dse`` runs them —
see ``docs/hardware.md``).  Both paths call :func:`evaluate_point`, so
inline and distributed sweeps are byte-identical by construction.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.core.layerspec import LayerGraph

from .arch import NVCAConfig
from .area import area_report
from .dataflow import compare_traffic
from .energy import energy_report
from .perf import analyze_graph

__all__ = [
    "DEFAULT_FREQUENCIES",
    "DEFAULT_GEOMETRIES",
    "DEFAULT_RHOS",
    "DesignPoint",
    "evaluate_point",
    "pareto_front",
    "sweep_array_geometry",
    "sweep_frequency",
    "sweep_sparsity",
]

#: SCU array geometries (Pif, Pof) bracketing the paper's 12x12 point.
DEFAULT_GEOMETRIES: tuple[tuple[int, int], ...] = (
    (6, 6), (12, 6), (12, 12), (18, 12), (18, 18),
)
#: pruning levels around the paper's rho = 50% point.
DEFAULT_RHOS: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75)
#: clock frequencies (MHz) around the paper's 400 MHz point.
DEFAULT_FREQUENCIES: tuple[float, ...] = (200.0, 400.0, 600.0, 800.0)


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated configuration.

    A plain-scalar record, so it round-trips through dict/JSON and can
    travel back from distributed ``"dse-point"`` workers the way
    :class:`~repro.pipeline.EncodeReport` documents do.
    """

    label: str
    pif: int
    pof: int
    rho: float
    frequency_mhz: float
    fps: float
    sustained_gops: float
    chip_power_w: float
    gate_count_m: float
    energy_efficiency: float

    @property
    def area_efficiency(self) -> float:
        """GOPS per million gates."""
        return self.sustained_gops / self.gate_count_m

    def to_dict(self) -> dict:
        """JSON-ready document (pure fields; derived properties are
        recomputed on the hydrating side)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "DesignPoint":
        if not isinstance(data, dict):
            raise ValueError(
                f"DesignPoint.from_dict expects a mapping, "
                f"got {type(data).__name__}"
            )
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - fields)
        if unknown:
            raise ValueError(
                f"DesignPoint: unknown field(s) {', '.join(unknown)}; "
                f"valid fields: {', '.join(sorted(fields))}"
            )
        return cls(**data)

    def render(self) -> str:
        """One-line human summary (the row format of ``repro dse``)."""
        return (
            f"{self.label:>14s}  {self.fps:7.1f} FPS  "
            f"{self.sustained_gops:7.0f} GOPS  {self.chip_power_w:6.2f} W  "
            f"{self.gate_count_m:5.2f} Mgates  "
            f"{self.energy_efficiency:7.0f} GOPS/W"
        )


def evaluate_point(
    graph: LayerGraph, config: NVCAConfig, label: str
) -> DesignPoint:
    """Roll one configuration through the perf/energy/area models."""
    performance = analyze_graph(graph, config)
    traffic = compare_traffic(graph, config)
    energy = energy_report(performance.schedule, traffic, config=config)
    area = area_report(config)
    return DesignPoint(
        label=label,
        pif=config.pif,
        pof=config.pof,
        rho=config.rho,
        frequency_mhz=config.frequency_mhz,
        fps=performance.fps,
        sustained_gops=performance.sustained_gops,
        chip_power_w=energy.chip_power_w,
        gate_count_m=area.total_mgates,
        energy_efficiency=energy.energy_efficiency_gops_per_w(
            performance.sustained_gops
        ),
    )


def sweep_array_geometry(
    graph: LayerGraph,
    geometries: tuple[tuple[int, int], ...] = DEFAULT_GEOMETRIES,
    base: NVCAConfig | None = None,
) -> list[DesignPoint]:
    """Sweep the SCU array's channel unrolling (Pif x Pof)."""
    base = base or NVCAConfig()
    points = []
    for pif, pof in geometries:
        config = dataclasses.replace(base, pif=pif, pof=pof)
        points.append(evaluate_point(graph, config, f"{pif}x{pof}"))
    return points


def sweep_sparsity(
    graph: LayerGraph,
    rhos: tuple[float, ...] = DEFAULT_RHOS,
    base: NVCAConfig | None = None,
) -> list[DesignPoint]:
    """Sweep the pruning level the SCUs are provisioned for."""
    base = base or NVCAConfig()
    return [
        evaluate_point(graph, dataclasses.replace(base, rho=rho), f"rho={rho:.2f}")
        for rho in rhos
    ]


def sweep_frequency(
    graph: LayerGraph,
    frequencies: tuple[float, ...] = DEFAULT_FREQUENCIES,
    base: NVCAConfig | None = None,
) -> list[DesignPoint]:
    """Sweep the core clock around the paper's 400 MHz point."""
    base = base or NVCAConfig()
    return [
        evaluate_point(
            graph,
            dataclasses.replace(base, frequency_mhz=float(freq)),
            f"{float(freq):g}MHz",
        )
        for freq in frequencies
    ]


def pareto_front(
    points: list[DesignPoint],
    maximize: tuple[str, ...] = ("fps", "energy_efficiency"),
) -> list[DesignPoint]:
    """Non-dominated subset under the given maximization objectives.

    Input order is preserved and exact ties are all kept (a point never
    dominates its own duplicate), so the frontier of a distributed
    sweep is byte-identical to the serial one as long as the points
    arrive in submission order.
    """
    front = []
    for candidate in points:
        dominated = False
        for other in points:
            if other is candidate:
                continue
            better_or_equal = all(
                getattr(other, axis) >= getattr(candidate, axis)
                for axis in maximize
            )
            strictly_better = any(
                getattr(other, axis) > getattr(candidate, axis)
                for axis in maximize
            )
            if better_or_equal and strictly_better:
                dominated = True
                break
        if not dominated:
            front.append(candidate)
    return front
