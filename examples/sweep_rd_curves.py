"""Sharded RD sweeps: the work-queue executor end to end.

A sweep is a (codec, config, scene) grid of JSON job specs.  This
example runs the same grid three ways — serially, on thread workers
over the in-memory queue, and on process workers over a
directory-backed queue that survives worker death and host restarts —
and shows that the aggregated RD curves are identical regardless of
how the work was sharded.  See docs/distributed.md for the protocol.

Run:  python examples/sweep_rd_curves.py
"""

import json
import tempfile

from repro.metrics import curves_from_reports
from repro.pipeline import SweepRunner, run_many

GRID = dict(
    codecs=["classical", "ctvc"],
    codec_configs=[
        # one document per operating point: keys a codec's config does
        # not define are skipped, so qp drives classical and qstep CTVC
        {"qp": q, "qstep": q, "channels": 12, "seed": 1}
        for q in (4.0, 8.0, 32.0)
    ],
    scenes=[{"height": 48, "width": 64, "frames": 3, "seed": 7}],
)


def canonical_curves(curves) -> str:
    return json.dumps(
        [curve.to_dict() for _, curve in sorted(curves.items())], indent=2
    )


def main():
    print("Serial baseline (run_many, inline backend):")
    serial = run_many(**GRID)
    for report in serial:
        print(f"  {report.render()}")

    print("\nSame grid on 3 worker threads (in-memory queue):")
    result = SweepRunner(**GRID, workers=3, anchor="classical").run()
    print("  " + result.render().replace("\n", "\n  "))

    print("\nSame grid on 2 worker processes (directory-backed queue):")
    with tempfile.TemporaryDirectory() as queue_dir:
        dir_result = SweepRunner(**GRID, queue_dir=queue_dir, workers=2).run()
        print(
            f"  {len(dir_result.reports)} jobs completed in "
            f"{dir_result.elapsed_seconds:.2f}s; queue state lived in "
            f"{queue_dir} (pending/claimed/done/failed)"
        )

    serial_curves = canonical_curves(curves_from_reports(serial))
    assert canonical_curves(result.curves) == serial_curves
    assert canonical_curves(dir_result.curves) == serial_curves
    print(
        "\nAggregated RD curves are byte-identical across all three "
        "execution backends:"
    )
    print("  " + serial_curves.replace("\n", "\n  "))

    if result.bd_rate:
        print("BD-rate vs the classical anchor (negative = bits saved):")
        for scene, row in sorted(result.bd_rate.items()):
            for codec, value in sorted(row.items()):
                shown = f"{value:+.2f}%" if value is not None else "n/a"
                print(f"  {scene}: {codec} {shown}")


if __name__ == "__main__":
    main()
