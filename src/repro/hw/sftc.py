"""Sparse Fast Transform Core (SFTC) performance model (Section IV-B).

The SFTC executes sparse fast convolutions and deconvolutions through a
three-stage pipeline: the PreU array maps input tiles to the transform
domain (B^T X B), the united SCU array gathers non-zero transform
weights by index and performs the Hadamard products with input-channel
reduction, and the PostU array applies the inverse transform (A^T U A).

Cycle model
-----------
Spatial tiles are issued as *slots*: one T3(6x6, 4x4) deconvolution tile
or ``conv_tiles_per_slot`` (= 4) F(2x2, 3x3) convolution tiles occupy
one slot (both are 64 dense products, 64*rho after pruning — exactly
one SCU-cycle).  The SCU array unrolls Pif input channels by Pof output
channels, so a layer costs

    cycles = slots * ceil(Cin / Pif) * ceil(Cout / Pof) + pipeline fill

Layers outside the fast path (strided convolutions, 1x1) fall back to
direct MAC execution on the same multipliers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.layerspec import LayerSpec
from repro.core.transforms import PAPER_F23, PAPER_T3_64

from .arch import NVCAConfig

__all__ = ["SFTCLayerCost", "sftc_layer_cost"]


@dataclass(frozen=True)
class SFTCLayerCost:
    """Cycle/operation accounting for one layer on the SFTC."""

    layer_name: str
    mode: str  # "fast-conv", "fast-deconv", or "direct"
    spatial_tiles: int
    slots: int
    cycles: int
    #: transform-domain multiplications actually performed (sparse)
    sparse_mults: int
    #: multiplications a dense fast algorithm would perform
    fast_mults: int
    #: MACs of a direct dense implementation (the workload's size)
    direct_macs: int
    #: multiplier-cycles provisioned while this layer occupied the core
    provisioned_mult_cycles: int = 0

    @property
    def utilization(self) -> float:
        """Useful sparse multiplies over provisioned multiplier-cycles."""
        if self.provisioned_mult_cycles == 0:
            return 0.0
        return self.sparse_mults / self.provisioned_mult_cycles

    def effective_ops(self) -> int:
        """Dense-equivalent operations delivered (2 ops per MAC)."""
        return 2 * self.direct_macs


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def _pass_prefetch_cycles(layer: LayerSpec, config: NVCAConfig) -> int:
    """DMA cycles to load one (Pif x Pof) block of compressed weights
    (non-zero values + indices) — see also repro.hw.simulator."""
    density = 1.0 - config.rho
    if layer.kind == "conv":
        positions, index_bits = 16, 4
    else:
        positions, index_bits = 64, 6
    per_pair = positions * density * (config.weight_bits + index_bits) / 8.0
    block_bytes = per_pair * config.pif * config.pof
    return int(block_bytes / config.dram_bytes_per_cycle)


def sftc_layer_cost(layer: LayerSpec, config: NVCAConfig) -> SFTCLayerCost:
    """Cycle count of one conv/deconv layer on the SFTC."""
    if layer.kind not in ("conv", "deconv"):
        raise ValueError(f"SFTC does not execute {layer.kind!r} layers")
    density = 1.0 - config.rho
    direct_macs = layer.macs()

    if layer.fast_supported:
        spec = PAPER_F23 if layer.kind == "conv" else PAPER_T3_64
        tiles = _ceil_div(layer.out_h, spec.m) * _ceil_div(layer.out_w, spec.m)
        if layer.kind == "conv":
            slots = _ceil_div(tiles, config.conv_tiles_per_slot)
            mode = "fast-conv"
        else:
            slots = tiles
            mode = "fast-deconv"
        passes = _ceil_div(layer.in_channels, config.pif) * _ceil_div(
            layer.out_channels, config.pof
        )
        # Weight blocks are double buffered: the first block preloads
        # during the previous layer's tail, and each later block's
        # prefetch overlaps the previous block's compute, so a
        # DMA-bound pass costs max(slots, prefetch) cycles.
        prefetch = _pass_prefetch_cycles(layer, config)
        cycles = slots + (passes - 1) * max(slots, prefetch) + config.pipeline_depth
        provisioned = cycles * config.total_multipliers
        fast_mults = (
            tiles
            * spec.multiplications_per_tile
            * layer.in_channels
            * layer.out_channels
        )
        sparse_mults = int(round(fast_mults * density))
        return SFTCLayerCost(
            layer_name=layer.name,
            mode=mode,
            spatial_tiles=tiles,
            slots=slots,
            cycles=cycles,
            sparse_mults=sparse_mults,
            fast_mults=fast_mults,
            direct_macs=direct_macs,
            provisioned_mult_cycles=provisioned,
        )

    # Direct fallback: dense MACs spread over all multipliers.
    cycles = _ceil_div(direct_macs, config.total_multipliers) + config.pipeline_depth
    return SFTCLayerCost(
        layer_name=layer.name,
        mode="direct",
        spatial_tiles=0,
        slots=0,
        cycles=cycles,
        sparse_mults=direct_macs,
        fast_mults=direct_macs,
        direct_macs=direct_macs,
        provisioned_mult_cycles=cycles * config.total_multipliers,
    )
