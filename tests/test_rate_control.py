"""Rate-control subsystem: budget ledger, the three built-in
controllers, the registry, config/grid validation, byte-identity of
``"cqp"``, overshoot behaviour, and per-frame QP side info."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec import (
    ABRController,
    BudgetState,
    CalibratedController,
    CQPController,
    QPBitsTable,
    RateControlError,
    available_rate_controllers,
    calibrate_tables,
    create_rate_controller,
    rate_controller_spec,
    register_rate_controller,
    unregister_rate_controller,
    validate_rate_fields,
)
from repro.pipeline import Pipeline, build_jobs, create_codec, run_many
from repro.serialization import ConfigError
from repro.video import SceneConfig, generate_sequence

SCENE = {"height": 32, "width": 48, "frames": 4}


def _frames(scene=None):
    return generate_sequence(SceneConfig.from_dict({**SCENE, **(scene or {})}))


def _stream(codec_name, config, frames):
    """(header, packet bytes) of one streaming encode."""
    codec = create_codec(codec_name, config)
    session = codec.open_encoder()
    payload = b"".join(p.serialize() for p in session.encode_iter(frames))
    return dict(session.header), payload


class TestBudgetState:
    def test_ledger_accounting(self):
        state = BudgetState(target_kbps=30.0, fps=10.0)
        assert state.target_bits_per_frame == 3000.0
        assert state.budget_bits == 0.0
        state.record("I", 5000)
        state.record("P", 2000)
        assert state.frames_coded == 2
        assert state.bits_spent == 7000
        assert state.budget_bits == 6000.0
        assert state.balance == -1000.0
        assert state.bits_by_type == {"I": [5000], "P": [2000]}

    def test_no_target_means_zero_allowance(self):
        state = BudgetState()
        assert state.target_bits_per_frame == 0.0
        assert state.balance == 0.0


class TestCQPController:
    def test_constant_and_non_adaptive(self):
        rc = CQPController(8.0)
        assert rc.adaptive is False
        state = rc.new_state()
        for _ in range(3):
            assert rc.frame_qp("I", state) == 8.0
            state.record("I", 10_000)

    def test_target_is_optional_reporting_goal(self):
        rc = CQPController(8.0, target_kbps=100.0)
        assert rc.frame_qp("P", rc.new_state()) == 8.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(RateControlError, match="base_qp"):
            CQPController(0.0)
        with pytest.raises(RateControlError, match="fps"):
            CQPController(8.0, fps=0.0)
        with pytest.raises(RateControlError, match="target_kbps"):
            CQPController(8.0, target_kbps=-5.0)


class TestABRController:
    def test_needs_target(self):
        with pytest.raises(RateControlError, match="target_kbps"):
            ABRController(8.0)

    def test_first_frame_holds_base_qp(self):
        rc = ABRController(8.0, target_kbps=100.0)
        assert rc.frame_qp("I", rc.new_state()) == 8.0

    def test_overshoot_raises_qp_and_undershoot_lowers_it(self):
        rc = ABRController(8.0, target_kbps=100.0, fps=10.0)
        state = rc.new_state()
        state.record("I", int(state.target_bits_per_frame * 3))
        assert rc.frame_qp("P", state) > 8.0

        rc = ABRController(8.0, target_kbps=100.0, fps=10.0)
        state = rc.new_state()
        state.record("I", int(state.target_bits_per_frame * 0.2))
        assert rc.frame_qp("P", state) < 8.0

    def test_step_clamp_bounds_one_frame_correction(self):
        rc = ABRController(8.0, target_kbps=100.0, fps=10.0, max_step=1.5)
        state = rc.new_state()
        state.record("I", int(state.target_bits_per_frame * 1000))
        assert rc.frame_qp("P", state) == pytest.approx(8.0 * 1.5)

    def test_rejects_bad_gain_and_step(self):
        with pytest.raises(RateControlError, match="gain"):
            ABRController(8.0, target_kbps=10.0, gain=0.0)
        with pytest.raises(RateControlError, match="max_step"):
            ABRController(8.0, target_kbps=10.0, max_step=1.0)


class TestQPBitsTable:
    def test_power_law_round_trip(self):
        # bits = 1e6 * qp**-1.5, sampled at several QPs: the log-log
        # fit must recover the curve and invert it exactly.
        table = QPBitsTable([(q, 1e6 * q**-1.5) for q in (4.0, 8.0, 16.0)])
        assert table.bits_for_qp(10.0) == pytest.approx(1e6 * 10.0**-1.5)
        assert table.qp_for_bits(1e6 * 12.0**-1.5) == pytest.approx(12.0)

    def test_single_qp_uses_default_slope(self):
        table = QPBitsTable([(8.0, 50_000.0)])
        assert table.bits_for_qp(8.0) == pytest.approx(50_000.0)
        # extrapolation through the assumed slope: higher QP, fewer bits
        assert table.bits_for_qp(16.0) < 50_000.0

    def test_unfitted_and_degenerate(self):
        table = QPBitsTable()
        assert table.qp_for_bits(1000.0) is None
        table.observe(-1.0, 100.0)  # ignored
        table.observe(8.0, 0.0)  # ignored
        assert table.bits_for_qp(8.0) is None

    def test_degenerate_fit_slope_is_bounded(self):
        # probes where bits *grow* with QP would invert backwards;
        # the slope clamp keeps the inversion direction sane.
        table = QPBitsTable([(4.0, 100.0), (16.0, 200.0)])
        assert table.bits_for_qp(4.0) > table.bits_for_qp(16.0)


class TestCalibratedController:
    def test_probe_seeded_inversion_hits_frame_target(self):
        probes = {"I": [(q, 1e6 * q**-1.5) for q in (4.0, 8.0, 16.0)]}
        rc = CalibratedController(
            8.0, target_kbps=300.0, fps=10.0, probes=probes
        )
        qp = rc.frame_qp("I", rc.new_state())
        # per-frame allowance is 30000 bits; the power law says QP
        # (1e6/30000)**(1/1.5)
        assert qp == pytest.approx((1e6 / 30_000.0) ** (1 / 1.5), rel=1e-6)

    def test_cold_start_falls_back_to_base_qp(self):
        rc = CalibratedController(8.0, target_kbps=100.0)
        assert rc.frame_qp("I", rc.new_state()) == 8.0

    def test_online_fit_from_observe(self):
        rc = CalibratedController(8.0, target_kbps=300.0, fps=10.0)
        rc.observe("I", 8.0, 60_000)
        state = rc.new_state()
        # one observation: default-slope extrapolation still steers
        # toward the 30000-bit allowance (less than 60000 -> raise QP)
        assert rc.frame_qp("I", state) > 8.0

    def test_step_clamp_between_frames(self):
        probes = {"I": [(q, 1e6 * q**-1.5) for q in (4.0, 8.0, 16.0)]}
        rc = CalibratedController(
            8.0, target_kbps=300.0, fps=10.0, probes=probes, max_step=2.0
        )
        state = rc.new_state()
        first = rc.frame_qp("I", state)
        state.record("I", 1)  # wildly under budget: huge balance credit
        second = rc.frame_qp("I", state)
        assert first / 2.0 <= second <= first * 2.0

    def test_rejects_bad_horizon(self):
        with pytest.raises(RateControlError, match="horizon"):
            CalibratedController(8.0, target_kbps=10.0, horizon=0)


class TestRegistry:
    def test_builtins_available(self):
        assert available_rate_controllers() == ["abr", "calibrated", "cqp"]

    def test_spec_flags(self):
        assert rate_controller_spec("cqp").adaptive is False
        assert rate_controller_spec("cqp").requires_target is False
        assert rate_controller_spec("abr").adaptive is True
        assert rate_controller_spec("calibrated").requires_target is True

    def test_unknown_name_lists_available(self):
        with pytest.raises(RateControlError, match="abr"):
            rate_controller_spec("vbv")

    def test_duplicate_needs_overwrite(self):
        with pytest.raises(RateControlError, match="already registered"):
            register_rate_controller("cqp", CQPController)

    def test_register_create_unregister_custom(self):
        class Doubler(CQPController):
            name = "doubler"

            def frame_qp(self, frame_type, state):
                return self.base_qp * 2

        try:
            register_rate_controller("doubler", Doubler, description="x2")
            assert "doubler" in available_rate_controllers()
            # flags default from the factory's class attributes
            assert rate_controller_spec("doubler").adaptive is False
            rc = create_rate_controller("doubler", base_qp=4.0)
            assert rc.frame_qp("I", rc.new_state()) == 8.0
        finally:
            unregister_rate_controller("doubler")
        assert "doubler" not in available_rate_controllers()


class TestValidation:
    def test_target_without_controller(self):
        with pytest.raises(RateControlError, match="rate_control"):
            validate_rate_fields(None, 100.0, 30.0)

    def test_budget_controller_without_target(self):
        with pytest.raises(RateControlError, match="target_kbps"):
            validate_rate_fields("abr", None, 30.0)
        with pytest.raises(RateControlError, match="target_kbps"):
            validate_rate_fields("calibrated", None, 30.0)

    def test_cqp_with_and_without_target(self):
        validate_rate_fields("cqp", None, 30.0)
        validate_rate_fields("cqp", 100.0, 30.0)  # reporting goal

    def test_bad_scalars(self):
        with pytest.raises(RateControlError, match="fps"):
            validate_rate_fields("abr", 100.0, 0.0)
        with pytest.raises(RateControlError, match="target_kbps"):
            validate_rate_fields("abr", -1.0, 30.0)

    @pytest.mark.parametrize("codec", ["classical", "ctvc", "rd-model"])
    def test_config_classes_validate_up_front(self, codec):
        from repro.pipeline import codec_spec

        config_cls = codec_spec(codec).config_cls
        with pytest.raises(ValueError, match="rate_control"):
            config_cls.from_dict({"target_kbps": 100.0})
        with pytest.raises(ValueError, match="target_kbps"):
            config_cls.from_dict({"rate_control": "abr"})
        with pytest.raises(ValueError, match="unknown rate controller"):
            config_cls.from_dict(
                {"rate_control": "vbv", "target_kbps": 100.0}
            )

    def test_run_many_grid_rejects_before_any_job(self, tmp_path):
        grid = dict(
            codecs=["classical"],
            codec_configs=[{"qp": 8.0, "target_kbps": 100.0}],
            scenes=[SCENE],
        )
        with pytest.raises(ValueError, match="rate_control"):
            build_jobs(**grid)
        with pytest.raises(ValueError, match="rate_control"):
            run_many(**grid)
        # the queue backend must fail the same way, with nothing
        # submitted to the queue directory
        with pytest.raises(ValueError, match="rate_control"):
            run_many(
                **grid, backend="queue", queue_dir=tmp_path / "q", workers=1
            )
        assert not (tmp_path / "q" / "pending").exists()


class TestCQPByteIdentity:
    @settings(max_examples=6, deadline=None)
    @given(
        codec_name=st.sampled_from(["classical", "ctvc"]),
        backend=st.sampled_from(["rans", "cacm"]),
        seed=st.integers(0, 50),
    )
    def test_cqp_equals_no_controller(self, codec_name, backend, seed):
        """The flagship invariant: ``rate_control="cqp"`` never touches
        the coded bytes, across both codecs and both entropy backends."""
        frames = _frames({"frames": 3, "seed": seed})
        base = {"entropy_backend": backend}
        if codec_name == "ctvc":
            base["channels"] = 8
        plain_header, plain = _stream(codec_name, dict(base), frames)
        cqp_header, cqp = _stream(
            codec_name, {**base, "rate_control": "cqp"}, frames
        )
        assert plain == cqp
        # headers agree too: no controller is recorded as "cqp"
        assert plain_header["rate_control"] == "cqp"
        plain_header.pop("config", None), cqp_header.pop("config", None)
        assert plain_header == cqp_header


class TestHeaderRecording:
    def test_controller_and_target_recorded(self):
        codec = create_codec(
            "classical",
            {"rate_control": "abr", "target_kbps": 120.0, "fps": 24.0},
        )
        session = codec.open_encoder()
        session.push(_frames({"frames": 1})[0])
        assert session.header["rate_control"] == "abr"
        assert session.header["target_kbps"] == 120.0
        assert session.header["fps"] == 24.0

    def test_plain_config_records_cqp_without_rate_fields(self):
        session = create_codec("classical", {}).open_encoder()
        session.push(_frames({"frames": 1})[0])
        assert session.header["rate_control"] == "cqp"
        assert "target_kbps" not in session.header


class TestAdaptiveEncodes:
    def _achieved(self, codec_name, config, scene):
        report = Pipeline(codec_name, config, scene=scene).run()
        assert report.achieved_kbps is not None
        return report

    @pytest.mark.parametrize("controller", ["abr", "calibrated"])
    def test_controller_moves_rate_toward_target(self, controller):
        scene = {**SCENE, "frames": 10}
        natural = self._achieved("classical", {"qp": 8.0}, scene)
        target = natural.achieved_kbps / 1.6
        controlled = self._achieved(
            "classical",
            {
                "qp": 8.0,
                "rate_control": controller,
                "target_kbps": target,
            },
            scene,
        )
        # self-calibrated bound: the controller must shed a meaningful
        # part of the overshoot without collapsing below target range
        assert controlled.achieved_kbps < natural.achieved_kbps * 0.95
        assert controlled.achieved_kbps > target * 0.5

    def test_abr_decodes_on_differently_configured_instance(self):
        """Per-frame QP rides in packet meta ("rq"), so decode follows
        the stream even when the local config disagrees."""
        frames = _frames()
        encoder = create_codec(
            "classical",
            {"qp": 8.0, "rate_control": "abr", "target_kbps": 60.0},
        )
        session = encoder.open_encoder()
        packets = list(session.encode_iter(frames))
        header = dict(session.header)

        same = create_codec(
            "classical",
            {"qp": 8.0, "rate_control": "abr", "target_kbps": 60.0},
        )
        other = create_codec("classical", {"qp": 32.0})
        ref = list(same.open_decoder(header).decode_iter(iter(packets)))
        got = list(other.open_decoder(header).decode_iter(iter(packets)))
        for a, b in zip(ref, got):
            assert np.array_equal(a, b)

    def test_ctvc_adaptive_round_trips(self):
        scene = {**SCENE, "frames": 4}
        report = Pipeline(
            "ctvc",
            {
                "channels": 8,
                "rate_control": "abr",
                "target_kbps": 60.0,
            },
            scene=scene,
        ).run()
        assert report.achieved_kbps is not None
        assert report.mean_psnr > 20.0


class TestRDModelRateControl:
    CFG = {"method": "h265", "dataset": "uvg"}

    def test_calibrated_hits_target_exactly(self):
        scene = {"height": 64, "width": 96, "frames": 4}
        report = Pipeline(
            "rd-model",
            {**self.CFG, "rate_control": "calibrated", "target_kbps": 30.0},
            scene=scene,
        ).run()
        # the pseudo-codec inverts its calibrated RD curve: byte
        # rounding is the only error source
        assert report.achieved_kbps == pytest.approx(30.0, rel=0.01)
        assert sum(report.frame_bits) == 8 * report.stream_bytes

    def test_target_clamps_to_curve_range(self):
        scene = {"height": 32, "width": 48, "frames": 2}
        report = Pipeline(
            "rd-model",
            {**self.CFG, "rate_control": "calibrated", "target_kbps": 500.0},
            scene=scene,
        ).run()
        # 500 kbps is beyond the curve's top bpp at this resolution:
        # the operating point clamps and the overshoot is visible
        assert report.achieved_kbps < 500.0

    def test_cqp_ignores_target(self):
        scene = {"height": 64, "width": 96, "frames": 2}
        plain = Pipeline("rd-model", dict(self.CFG), scene=scene).run()
        goal = Pipeline(
            "rd-model",
            {**self.CFG, "rate_control": "cqp", "target_kbps": 10.0},
            scene=scene,
        ).run()
        assert goal.stream_bytes == plain.stream_bytes
        assert goal.bpp == plain.bpp


class TestCalibrateTables:
    def test_tables_are_monotone_and_typed(self):
        tables = calibrate_tables(
            "classical", qps=(4.0, 8.0, 16.0), scene={"frames": 4}
        )
        assert set(tables) == {"I", "P"}
        for points in tables.values():
            qps = [q for q, _ in points]
            bits = [b for _, b in points]
            assert qps == sorted(qps)
            # more quantization, fewer bits
            assert bits == sorted(bits, reverse=True)

    def test_probe_tables_feed_the_controller(self):
        tables = calibrate_tables("classical", qps=(4.0, 16.0))
        rc = CalibratedController(
            8.0, target_kbps=100.0, fps=30.0, probes=tables
        )
        assert rc.frame_qp("I", rc.new_state()) > 0

    def test_bad_probe_qp_rejected(self):
        with pytest.raises(RateControlError, match="probe qps"):
            calibrate_tables("classical", qps=(4.0, -1.0))


class TestEncodeReportRateFields:
    def test_plain_encode_still_reports_rate(self):
        report = Pipeline("classical", {"qp": 8.0}, scene=SCENE).run()
        assert report.achieved_kbps is not None
        assert len(report.frame_bits) == report.frames
        # frame_bits counts serialized packets; stream_bytes adds the
        # container header on top
        assert 0 < sum(report.frame_bits) <= 8 * report.stream_bytes
        fps = report.codec_config["fps"]
        assert report.achieved_kbps == pytest.approx(
            sum(report.frame_bits) * fps / (report.frames * 1000.0)
        )
        # ... but the legacy render line does not grow
        assert "kbps" not in report.render()
        assert report.to_dict()["achieved_kbps"] == report.achieved_kbps

    def test_targeted_encode_renders_rate(self):
        report = Pipeline(
            "classical",
            {"qp": 8.0, "rate_control": "abr", "target_kbps": 100.0},
            scene=SCENE,
        ).run()
        assert "kbps (target 100)" in report.render()

    def test_streamed_encode_reports_rate(self, tmp_path):
        pipeline = Pipeline("classical", {"qp": 8.0}, scene=SCENE)
        report = pipeline.session().run(output=str(tmp_path / "a.bin"))
        assert report.achieved_kbps is not None
        assert 0 < sum(report.frame_bits) <= 8 * report.stream_bytes
        # batch and streamed accounting agree
        batch = pipeline.run()
        assert report.frame_bits == batch.frame_bits
        assert report.achieved_kbps == pytest.approx(batch.achieved_kbps)
