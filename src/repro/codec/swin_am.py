"""Swin-Transformer-based Attention Module (Swin-AM), Fig. 3.

Three branches over the input feature x:

* Branch 3 — the residual (identity) connection;
* Branch 2 — stacked ResBlocks producing intermediate features;
* Branch 1 — SwinAtten followed by ResBlocks, a 1x1 convolution and a
  sigmoid, producing a window-based spatial-channel attention mask.

Output: ``x + mask ⊙ branch2(x)`` — the mask gates how much refined
feature is injected, which is how the module "guides adaptive bit
allocations".  Consecutive Swin-AMs alternate the attention shift
(Shf = 0 and Shf = R - 1) to bridge cross-window connections.

Structured initialization: the 1x1 convolution's bias starts strongly
negative so the mask opens near zero and the whole module is
near-identity — an untrained Swin-AM must not corrupt the codec
(DESIGN.md §2); training would learn to open it.
"""

from __future__ import annotations

import numpy as np

from repro.nn import Conv2d, Module, ModuleList, ResBlock, Sigmoid, SwinAttention

__all__ = ["SwinAM"]


class SwinAM(Module):
    """The paper's Swin-AM attention block.

    Parameters mirror Fig. 3: ``channels`` (2N inside the compression
    auto-encoders), window size R, shift Shf, and head count P.
    """

    def __init__(
        self,
        channels: int,
        window: int = 3,
        shift: int = 0,
        heads: int = 4,
        branch1_resblocks: int = 2,
        branch2_resblocks: int = 3,
        mask_bias: float = -4.0,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.channels = channels
        self.window = window
        self.shift = shift
        self.attention = SwinAttention(
            channels, window=window, shift=shift, heads=heads, rng=rng
        )
        self.branch1_blocks = ModuleList(
            [ResBlock(channels, 3, rng=rng) for _ in range(branch1_resblocks)]
        )
        self.mask_conv = Conv2d(channels, channels, 1, rng=rng)
        # Structured init: small weights keep the sigmoid logit pinned
        # near ``mask_bias`` whatever the feature magnitudes, so the
        # mask opens gently instead of saturating at random locations.
        self.mask_conv.weight.data *= 0.01
        self.mask_conv.bias.data[:] = mask_bias
        self.sigmoid = Sigmoid()
        self.branch2_blocks = ModuleList(
            [ResBlock(channels, 3, rng=rng) for _ in range(branch2_resblocks)]
        )

    def attention_mask(self, x: np.ndarray) -> np.ndarray:
        """Branch 1: the window-based spatial-channel attention mask."""
        features = self.attention(x)
        for block in self.branch1_blocks:
            features = block(features)
        return self.sigmoid(self.mask_conv(features))

    def forward(self, x: np.ndarray) -> np.ndarray:
        mask = self.attention_mask(x)
        features = x
        for block in self.branch2_blocks:
            features = block(features)
        return x + mask * features
