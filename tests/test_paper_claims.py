"""Every headline claim of the paper, regression-tested in one place.

Each test quotes the paper's text and asserts this reproduction's
machinery re-derives the number (within the documented tolerance).
EXPERIMENTS.md narrates the same comparisons.
"""

import numpy as np
import pytest

from repro.codec import decoder_graph
from repro.core import PAPER_F23, PAPER_T3_64
from repro.eval import (
    generate_fig8,
    generate_fig9a,
    generate_fig9b,
    generate_table1,
    generate_table2,
)
from repro.hw import NVCAConfig, simulate_graph


@pytest.fixture(scope="module")
def table1():
    return generate_table1(mode="calibrated")


@pytest.fixture(scope="module")
def table2():
    return generate_table2()


class TestSectionIIIClaims:
    def test_16_multiplications_claim(self):
        """'given a 4x4 input patch, a 3x3 Conv producing a 2x2 output
        patch requires 16 multiplications, whereas a standard Conv
        needs 36 multiplications.'"""
        assert PAPER_F23.p == 4
        assert PAPER_F23.multiplications_per_tile == 16
        assert PAPER_F23.direct_multiplications_per_tile() == 36

    def test_t3_geometry_claims(self):
        """'for T3(6x6, 4x4) with a stride of s = 2' with
        'p = ceil((k + r*s - 1)/s)' and 'mu = (k + (r-1)*s)'."""
        assert PAPER_T3_64.m == 6
        assert PAPER_T3_64.k == 4
        assert PAPER_T3_64.stride == 2
        assert PAPER_T3_64.p == 5  # ceil((4 + 6 - 1)/2)
        assert PAPER_T3_64.mu == 8  # 4 + 2*2

    def test_sftc_operation_counts(self):
        """'we apply F(2x2, 3x3) for 3x3 Conv, which carry out 16
        multiplications and T3(6x6, 4x4) for 4x4 DeConv which involves
        64 multiplications.'"""
        assert PAPER_F23.mu**2 == 16
        assert PAPER_T3_64.mu**2 == 64


class TestSectionVAClaims:
    def test_hyperparameters(self):
        """'we set hyper-parameters like N = 36, Pif = Pof = 12, and
        maintain a consistent sparsity level of rho = 50%. We quantize
        ... 16 and 12 bits.'"""
        config = NVCAConfig()
        assert config.channels == 36
        assert config.pif == 12 and config.pof == 12
        assert config.rho == 0.5
        assert config.weight_bits == 16
        assert config.activation_bits == 12

    def test_simulator_verified(self):
        """'we verify the simulator against RTL implementation to
        ensure correctness' — here: event-driven sim vs analytical
        model on the full decoder, within 5%."""
        result = simulate_graph(decoder_graph(1080, 1920, 36), NVCAConfig())
        assert result.mismatch < 0.05


class TestTableIClaims:
    def test_uvg_headline(self, table1):
        """'under 50% sparsity, our design achieves 35.19% and 51.30%
        bit rate savings over the H.265 standard in terms of the PSNR
        and MS-SSIM on the UVG dataset.'"""
        assert table1.computed[("ctvc-sparse", "uvg", "psnr")] == pytest.approx(
            -35.19, abs=1.0
        )
        assert table1.computed[("ctvc-sparse", "uvg", "ms-ssim")] == pytest.approx(
            -51.30, abs=1.0
        )

    def test_sparse_maintains_efficiency(self, table1):
        """'the sparse CTVC-Net maintains excellent video compression
        efficiency compared to the dense version' — within 1.5 BDBR
        points everywhere."""
        for dataset in ("uvg", "hevcb", "mcljcv"):
            for metric in ("psnr", "ms-ssim"):
                gap = table1.computed[
                    ("ctvc-sparse", dataset, metric)
                ] - table1.computed[("ctvc-fp", dataset, metric)]
                assert 0 <= gap < 2.5

    def test_beats_all_baselines(self, table1):
        """CTVC-Net(FP) posts the most negative BDBR in every column."""
        for dataset in ("uvg", "hevcb", "mcljcv"):
            for metric in ("psnr", "ms-ssim"):
                fp = table1.computed[("ctvc-fp", dataset, metric)]
                for method in ("h264", "dvc", "h265", "lu-eccv20", "fvc", "dcvc"):
                    assert fp < table1.computed[(method, dataset, metric)]


class TestTableIIClaims:
    def test_gpu_ratios(self, table2):
        """'2.4x higher throughput and 799.7x better energy efficiency
        than the GPU'."""
        assert table2.ratios["throughput_vs_gpu"] == pytest.approx(2.4, abs=0.15)
        assert table2.ratios["efficiency_vs_gpu"] == pytest.approx(799.7, rel=0.08)

    def test_cpu_ratios(self, table2):
        """'11.1x higher throughput and 1783.9x better energy
        efficiency than the CPU'."""
        assert table2.ratios["throughput_vs_cpu"] == pytest.approx(11.1, rel=0.06)
        assert table2.ratios["efficiency_vs_cpu"] == pytest.approx(1783.9, rel=0.08)

    def test_asic_ratios(self, table2):
        """'we surpass [25], [26] with up to 8.7x higher throughput and
        2.2x better energy efficiency improvement.'"""
        assert table2.ratios["throughput_vs_shao"] == pytest.approx(8.7, rel=0.06)
        assert table2.ratios["efficiency_vs_shao"] == pytest.approx(2.2, rel=0.1)

    def test_nvca_column(self, table2):
        """Technology 28 nm, 400 MHz, FXP 12-16, 5.01 M gates, 373 KB,
        0.76 W, 3525 GOPS, 4638.2 GOPS/W."""
        nvca = table2.nvca
        assert nvca.technology_nm == 28
        assert nvca.frequency_mhz == 400.0
        assert nvca.precision == "FXP 12-16"
        assert nvca.gate_count_m == pytest.approx(5.01, rel=0.03)
        assert nvca.on_chip_kb == 373.0
        assert nvca.power_w == pytest.approx(0.76, rel=0.05)
        assert nvca.throughput_gops == pytest.approx(3525.0, rel=0.05)
        assert nvca.energy_efficiency == pytest.approx(4638.2, rel=0.07)


class TestFigureClaims:
    def test_fig8_lowest_bit_consumption(self):
        """'Our design achieves the lowest bit consumption at the same
        compression quality' (Fig. 8, all four panels)."""
        for panel in generate_fig8():
            assert panel.best_method_at_low_rate() == "ctvc-fp"

    def test_fig9a_frame_rate(self):
        """'NVCA achieves a frame rate of 25 FPS'."""
        assert generate_fig9a().nvca_fps == pytest.approx(25.0, rel=0.05)

    def test_fig9a_dcvc_speedup(self):
        """'outperforming DCVC by up to 22.7x in decoding speed'."""
        assert generate_fig9a().speedup_vs_dcvc == pytest.approx(22.7, rel=0.06)

    def test_fig9b_overall_reduction(self):
        """'an overall 40.7% reduction in off-chip interaction compared
        to the baseline' — ours lands at 47%, same band, and the
        per-module ordering matches."""
        result = generate_fig9b()
        assert 0.35 <= result.traffic.overall_reduction <= 0.55
        reductions = {m.module: m.reduction for m in result.traffic.modules}
        # Paper ordering: DC (22.2%) < FE (37.5%) < synth (44.4%) < FR (75%).
        assert reductions["deformable_compensation"] < reductions["motion_synthesis"]
        assert reductions["motion_synthesis"] < reductions["frame_reconstruction"]


class TestAbstractClaims:
    def test_up_to_22_7x_decoding_speed(self):
        """Abstract: 'up to 22.7x decoding speed improvements over
        other video compression designs.'"""
        result = generate_fig9a()
        speedups = [
            result.decode_ms[m] / result.decode_ms["nvca"]
            for m in ("elf-vc", "fvc", "vct", "dcvc")
        ]
        assert max(speedups) == pytest.approx(22.7, rel=0.06)

    def test_up_to_2_2x_energy_efficiency(self, table2):
        """Abstract: 'up to 2.2x improvements in energy efficiency
        compared to prior accelerators.'"""
        best = max(
            table2.ratios["efficiency_vs_shao"],
            table2.ratios["efficiency_vs_alchemist"],
        )
        assert best == pytest.approx(2.2, rel=0.1)

    def test_sparse_strategy_4_5x_complexity(self):
        """'sufficiently reducing computational complexity': 2.25x from
        the fast algorithms x 2 from 50% sparsity = 4.5x fewer
        multiplications on every fast-path layer."""
        from repro.eval import fast_algorithm_ablation

        result = fast_algorithm_ablation()
        assert result["sparse_reduction"] == pytest.approx(4.5, abs=0.1)
