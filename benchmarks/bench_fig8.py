"""Benchmark + regeneration of Fig. 8 (RD curves, four panels).

Run: pytest benchmarks/bench_fig8.py --benchmark-only -s
"""

from repro.eval import generate_fig8, measured_rd_curve


def test_fig8_calibrated_panels(benchmark):
    """All four panels from the calibrated RD models."""
    panels = benchmark(generate_fig8)
    for panel in panels:
        print("\n" + panel.render())
        assert panel.best_method_at_low_rate() == "ctvc-fp"


def test_fig8_measured_overlay(benchmark):
    """Measured RD curve of the real classical codec on the UVG
    stand-in (the slow, honest overlay)."""
    curve = benchmark.pedantic(
        measured_rd_curve,
        kwargs={
            "codec": "classical",
            "dataset": "uvg-sim",
            "metric": "psnr",
            "qps": (4.0, 16.0, 64.0),
        },
        rounds=1,
        iterations=1,
    )
    print("\nmeasured classical codec on uvg-sim:")
    for point in curve.points:
        print(f"  bpp={point.bpp:.3f} PSNR={point.quality:.2f} dB")
    assert curve.validate_monotone()
    assert len(curve) == 3


def test_fig8_measured_ctvc(benchmark):
    """Measured RD curve of the real CTVC pipeline (structured init)."""
    curve = benchmark.pedantic(
        measured_rd_curve,
        kwargs={
            "codec": "ctvc",
            "dataset": "uvg-sim",
            "metric": "psnr",
            "qps": (2.0, 8.0, 32.0),
            "channels": 12,
            "frames": 3,
        },
        rounds=1,
        iterations=1,
    )
    print("\nmeasured CTVC pipeline on uvg-sim:")
    for point in curve.points:
        print(f"  bpp={point.bpp:.3f} PSNR={point.quality:.2f} dB")
    assert curve.validate_monotone()
