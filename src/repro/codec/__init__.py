"""CTVC-Net and the NVC pipeline: modules, entropy coding, bitstreams,
the classical baseline codec, calibrated literature RD models, and the
decoder layer graph consumed by the hardware model."""

from .bitstream import (
    FramePacket,
    SequenceBitstream,
    as_f32,
    f16_bits,
    f16_from_bits,
    f32_bits,
    f32_from_bits,
)
from .classical import ClassicalCodec, ClassicalCodecConfig, zigzag_indices
from .ctvc import CTVCConfig, CTVCNet
from .entropy import (
    ArithmeticDecoder,
    ArithmeticEncoder,
    LaplacianModel,
    SymbolModel,
    decode_symbols,
    encode_symbols,
    estimate_bits,
)
from .layergraph import analysis_layers, decoder_graph, encoder_graph, synthesis_layers
from .modules import (
    CompressionAE,
    DeformableCompensation,
    FeatureExtraction,
    FrameReconstruction,
    MotionEstimation,
    block_match,
    dense_motion_field,
)
from .rd_models import (
    DATASETS,
    LITERATURE_BDBR,
    METHODS,
    all_method_curves,
    anchor_curve,
    model_curve,
)
from .swin_am import SwinAM

__all__ = [
    "ArithmeticDecoder",
    "ArithmeticEncoder",
    "CTVCConfig",
    "CTVCNet",
    "ClassicalCodec",
    "ClassicalCodecConfig",
    "CompressionAE",
    "DATASETS",
    "DeformableCompensation",
    "FeatureExtraction",
    "FramePacket",
    "FrameReconstruction",
    "LITERATURE_BDBR",
    "LaplacianModel",
    "METHODS",
    "MotionEstimation",
    "SequenceBitstream",
    "SwinAM",
    "SymbolModel",
    "all_method_curves",
    "analysis_layers",
    "anchor_curve",
    "as_f32",
    "block_match",
    "decode_symbols",
    "decoder_graph",
    "dense_motion_field",
    "encode_symbols",
    "encoder_graph",
    "estimate_bits",
    "f16_bits",
    "f16_from_bits",
    "f32_bits",
    "f32_from_bits",
    "model_curve",
    "synthesis_layers",
    "zigzag_indices",
]
