"""Tests for RD curves and Bjøntegaard delta metrics."""

import numpy as np
import pytest

from repro.metrics import RDCurve, RDPoint, bd_quality, bd_rate


def make_curve(name, rates, qualities, metric="psnr"):
    curve = RDCurve(name=name, metric=metric)
    for r, q in zip(rates, qualities):
        curve.add(r, q)
    return curve


class TestRDCurve:
    def test_points_sorted_by_rate(self):
        curve = RDCurve("x").add(0.3, 36.0).add(0.1, 32.0).add(0.2, 34.0)
        assert list(curve.rates) == [0.1, 0.2, 0.3]

    def test_nonpositive_bpp_rejected(self):
        with pytest.raises(ValueError):
            RDPoint(0.0, 30.0)

    def test_monotone_check(self):
        good = make_curve("g", [0.1, 0.2, 0.3], [30, 33, 35])
        bad = make_curve("b", [0.1, 0.2, 0.3], [30, 29, 35])
        assert good.validate_monotone()
        assert not bad.validate_monotone()

    def test_msssim_db_mapping(self):
        curve = make_curve("m", [0.1], [0.99], metric="ms-ssim")
        assert curve.quality_axis_db()[0] == pytest.approx(20.0, abs=1e-9)

    def test_unknown_metric_raises(self):
        curve = make_curve("m", [0.1, 0.2], [1.0, 2.0], metric="vmaf")
        with pytest.raises(ValueError):
            curve.quality_axis_db()


class TestBDRate:
    def test_identical_curves_zero(self):
        rates = [0.1, 0.2, 0.4, 0.8]
        quals = [32.0, 35.0, 38.0, 41.0]
        a = make_curve("a", rates, quals)
        b = make_curve("b", rates, quals)
        assert bd_rate(a, b) == pytest.approx(0.0, abs=1e-9)
        assert bd_rate(a, b, method="pchip") == pytest.approx(0.0, abs=1e-9)

    def test_half_rate_is_minus_fifty_percent(self):
        # Same qualities at exactly half the bits => BD-rate = -50 %.
        rates = np.array([0.1, 0.2, 0.4, 0.8])
        quals = [32.0, 35.0, 38.0, 41.0]
        anchor = make_curve("anchor", rates, quals)
        test = make_curve("test", rates / 2, quals)
        assert bd_rate(anchor, test) == pytest.approx(-50.0, abs=1e-6)
        assert bd_rate(anchor, test, method="pchip") == pytest.approx(-50.0, abs=1e-6)

    def test_double_rate_is_plus_hundred_percent(self):
        rates = np.array([0.1, 0.2, 0.4, 0.8])
        quals = [32.0, 35.0, 38.0, 41.0]
        anchor = make_curve("anchor", rates, quals)
        test = make_curve("test", rates * 2, quals)
        assert bd_rate(anchor, test) == pytest.approx(100.0, abs=1e-6)

    def test_sign_convention_better_codec_negative(self):
        # The better codec reaches each quality with fewer bits.
        anchor = make_curve("h265", [0.1, 0.2, 0.4, 0.8], [32, 35, 38, 41])
        better = make_curve("ours", [0.08, 0.15, 0.3, 0.6], [32, 35, 38, 41])
        assert bd_rate(anchor, better) < 0

    def test_msssim_metric_supported(self):
        anchor = make_curve(
            "a", [0.1, 0.2, 0.4], [0.95, 0.97, 0.985], metric="ms-ssim"
        )
        test = make_curve(
            "t", [0.05, 0.1, 0.2], [0.95, 0.97, 0.985], metric="ms-ssim"
        )
        assert bd_rate(anchor, test) == pytest.approx(-50.0, abs=1e-6)

    def test_metric_mismatch_raises(self):
        a = make_curve("a", [0.1, 0.2, 0.3], [30, 33, 35])
        b = make_curve("b", [0.1, 0.2, 0.3], [0.9, 0.95, 0.97], metric="ms-ssim")
        with pytest.raises(ValueError):
            bd_rate(a, b)

    def test_no_overlap_raises(self):
        a = make_curve("a", [0.1, 0.2], [30, 31])
        b = make_curve("b", [0.1, 0.2], [40, 41])
        with pytest.raises(ValueError):
            bd_rate(a, b)

    def test_needs_two_points(self):
        a = make_curve("a", [0.1], [30])
        b = make_curve("b", [0.1, 0.2], [30, 31])
        with pytest.raises(ValueError):
            bd_rate(a, b)

    def test_unknown_method_raises(self):
        a = make_curve("a", [0.1, 0.2, 0.4], [30, 33, 35])
        b = make_curve("b", [0.1, 0.2, 0.4], [30, 33, 35])
        with pytest.raises(ValueError):
            bd_rate(a, b, method="spline9000")

    def test_cubic_and_pchip_agree_on_smooth_curves(self):
        anchor = make_curve("a", [0.1, 0.2, 0.4, 0.8], [32.0, 35.0, 38.0, 41.0])
        test = make_curve("t", [0.09, 0.17, 0.33, 0.64], [32.5, 35.4, 38.3, 41.2])
        cubic = bd_rate(anchor, test, method="cubic")
        pchip = bd_rate(anchor, test, method="pchip")
        assert cubic == pytest.approx(pchip, abs=3.0)


class TestBDQuality:
    def test_identical_curves_zero(self):
        a = make_curve("a", [0.1, 0.2, 0.4, 0.8], [32, 35, 38, 41])
        b = make_curve("b", [0.1, 0.2, 0.4, 0.8], [32, 35, 38, 41])
        assert bd_quality(a, b) == pytest.approx(0.0, abs=1e-9)

    def test_uniform_gain(self):
        rates = [0.1, 0.2, 0.4, 0.8]
        a = make_curve("a", rates, [32.0, 35.0, 38.0, 41.0])
        b = make_curve("b", rates, [33.0, 36.0, 39.0, 42.0])
        assert bd_quality(a, b) == pytest.approx(1.0, abs=1e-6)
        assert bd_quality(a, b, method="pchip") == pytest.approx(1.0, abs=1e-6)

    def test_better_codec_positive(self):
        anchor = make_curve("h265", [0.1, 0.2, 0.4, 0.8], [32, 35, 38, 41])
        better = make_curve("ours", [0.1, 0.2, 0.4, 0.8], [33.1, 36.0, 38.9, 41.8])
        assert bd_quality(anchor, better) > 0
