"""Ablation studies of the design choices DESIGN.md calls out.

Not table/figure reproductions — these probe *why* the design works:

* sparsity sweep — compression quality (measured on the real pipeline)
  against accelerator cost (multipliers, power, area) as rho varies;
* fast-algorithm ablation — multiplication counts of the decoder under
  direct / Winograd-FTA / sparse-fast execution (the 2.25x and 4.5x
  claims at layer granularity);
* dataflow ablation — DRAM traffic and DRAM energy with chaining on
  and off;
* attention ablation — Swin-AM's workload cost, plus its measured
  effect on the structured-initialization pipeline (near zero without
  training — the compression benefit in Table I comes from the trained
  model, via the calibrated CTVC-vs-FVC gap).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.codec.bitstream import SequenceBitstream
from repro.pipeline.registry import create_codec
from repro.codec.layergraph import decoder_graph, encoder_graph
from repro.core.ops import multiplications
from repro.core.transforms import PAPER_F23, PAPER_T3_64
from repro.hw.arch import NVCAConfig
from repro.hw.area import area_report
from repro.hw.dataflow import compare_traffic
from repro.hw.energy import EnergyUnits, energy_report
from repro.hw.perf import analyze_graph
from repro.metrics import psnr
from repro.video import SceneConfig, generate_sequence

from .tables import render_table

__all__ = [
    "SparsityPoint",
    "sparsity_sweep",
    "fast_algorithm_ablation",
    "dataflow_ablation",
    "attention_ablation",
    "tile_size_exploration",
    "resolution_sweep",
    "gop_size_ablation",
]

import dataclasses


@dataclass
class SparsityPoint:
    """One operating point of the sparsity sweep."""

    rho: float
    psnr_db: float
    bpp: float
    multipliers_per_scu: int
    chip_power_w: float
    gate_count_m: float
    fps: float


def sparsity_sweep(
    rhos: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75),
    channels: int = 12,
    qstep: float = 8.0,
    frames: int = 3,
    seed: int = 7,
) -> list[SparsityPoint]:
    """Quality vs hardware cost across sparsity levels.

    Quality is measured on the real pipeline (small configuration);
    hardware metrics come from re-instantiating the accelerator with
    each rho (the SCU multiplier budget is 64*(1-sparsity density)...
    i.e. sized to the surviving weights, as the paper's design is).
    """
    sequence = generate_sequence(
        SceneConfig(height=64, width=96, frames=frames, seed=seed)
    )
    points = []
    for rho in rhos:
        net = create_codec("ctvc", channels=channels, qstep=qstep, seed=1)
        if rho > 0:
            net.apply_sparse(rho=rho)
        else:
            net.apply_fxp()
        stream = net.encode_sequence(sequence)
        decoded = net.decode_sequence(SequenceBitstream.parse(stream.serialize()))
        quality = float(np.mean([psnr(a, b) for a, b in zip(sequence, decoded)]))
        bpp = stream.num_bits() / (len(sequence) * 64 * 96)

        config = dataclasses.replace(NVCAConfig(), rho=rho)
        graph = decoder_graph(1080, 1920, config.channels)
        performance = analyze_graph(graph, config)
        traffic = compare_traffic(graph, config)
        energy = energy_report(performance.schedule, traffic, config=config)
        area = area_report(config)
        points.append(
            SparsityPoint(
                rho=rho,
                psnr_db=quality,
                bpp=bpp,
                multipliers_per_scu=config.multipliers_per_scu,
                chip_power_w=energy.chip_power_w,
                gate_count_m=area.total_mgates,
                fps=performance.fps,
            )
        )
    return points


def fast_algorithm_ablation(
    height: int = 1080, width: int = 1920, n: int = 36, rho: float = 0.5
) -> dict:
    """Multiplication counts of the decoder's fast-path layers under
    direct, fast (Winograd/FTA), and sparse-fast execution."""
    graph = decoder_graph(height, width, n)
    totals = {"direct": 0.0, "fast": 0.0, "sparse": 0.0}
    per_layer = []
    for layer in graph:
        if not layer.fast_supported:
            continue
        spec = PAPER_F23 if layer.kind == "conv" else PAPER_T3_64
        counts = multiplications(
            spec,
            layer.out_channels,
            layer.in_channels,
            layer.out_h,
            layer.out_w,
            density=1.0 - rho,
        )
        per_layer.append((layer.name, counts))
        for key in totals:
            totals[key] += counts[key]
    return {
        "totals": totals,
        "per_layer": per_layer,
        "fast_reduction": totals["direct"] / totals["fast"],
        "sparse_reduction": totals["direct"] / totals["sparse"],
    }


def dataflow_ablation(config: NVCAConfig | None = None) -> dict:
    """Chaining on/off: DRAM traffic and DRAM energy per frame."""
    config = config or NVCAConfig()
    graph = decoder_graph(1080, 1920, config.channels)
    traffic = compare_traffic(graph, config)
    units = EnergyUnits.scaled(config.technology_nm)
    baseline_j = traffic.baseline_total * units.dram_byte_pj * 1e-12
    chained_j = traffic.chained_total * units.dram_byte_pj * 1e-12
    return {
        "baseline_gb": traffic.baseline_total / 1e9,
        "chained_gb": traffic.chained_total / 1e9,
        "reduction": traffic.overall_reduction,
        "baseline_dram_mj": baseline_j * 1e3,
        "chained_dram_mj": chained_j * 1e3,
        "report": traffic,
    }


def attention_ablation(
    channels: int = 12, qstep: float = 8.0, frames: int = 3, seed: int = 7
) -> dict:
    """Swin-AM cost (encoder MACs) and measured pipeline effect.

    The structured-initialization Swin-AMs start near identity, so the
    measured RD effect is ~0 by design; the MAC overhead quantifies
    what the accelerator would pay to run them, and the calibrated
    CTVC-vs-FVC BDBR gap carries the trained benefit (Table I).
    """
    with_attn = encoder_graph(1080, 1920, 36)
    attn_macs = sum(
        layer.macs() for layer in with_attn if layer.kind == "attention"
    )
    swin_am_macs = sum(
        layer.macs() for layer in with_attn if ".swinam" in layer.name
    )

    sequence = generate_sequence(
        SceneConfig(height=64, width=96, frames=frames, seed=seed)
    )

    def run(disable_attention: bool) -> float:
        net = create_codec("ctvc", channels=channels, qstep=qstep, seed=1)
        if disable_attention:
            for ae in (net.motion_compression, net.residual_compression):
                for am in (ae.ana_attn1, ae.ana_attn2):
                    # Slam the mask shut: branch 2 contributes nothing.
                    am.mask_conv.weight.data[:] = 0.0
                    am.mask_conv.bias.data[:] = -1e3
        stream = net.encode_sequence(sequence)
        decoded = net.decode_sequence(SequenceBitstream.parse(stream.serialize()))
        return float(np.mean([psnr(a, b) for a, b in zip(sequence, decoded)]))

    return {
        "swinatten_gmacs": attn_macs / 1e9,
        "swin_am_total_gmacs": swin_am_macs / 1e9,
        "psnr_with_attention": run(False),
        "psnr_without_attention": run(True),
    }


def render_sparsity_sweep(points: list[SparsityPoint]) -> str:
    headers = ["rho", "PSNR (dB)", "bpp", "mults/SCU", "power (W)", "gates (M)", "FPS"]
    rows = [
        [p.rho, p.psnr_db, p.bpp, p.multipliers_per_scu, p.chip_power_w, p.gate_count_m, p.fps]
        for p in points
    ]
    return render_table(headers, rows, title="Sparsity sweep (quality vs hardware cost)")


def _fxp_fast_conv(x, weight, spec, activation_bits=12, weight_bits=16):
    """Fast convolution with fixed-point transform-domain arithmetic.

    Replicates repro.core.ops.fast_conv2d with fake quantization after
    every stage — the numerical regime the SFTC datapath lives in.
    Used to compare tile-size conditioning (bigger Winograd tiles have
    larger transform dynamic range, hence more quantization damage).
    """
    from repro.core.ops import _assemble_tiles, _hadamard_reduce, extract_tiles
    from repro.nn.quant import QuantSpec

    act_q = QuantSpec(bits=activation_bits)
    w_q = QuantSpec(bits=weight_bits)
    oc, ic, k, _ = weight.shape
    _, h, w = x.shape
    ho, wo = h, w  # padding=1 "same"
    tiles_y = -(-ho // spec.m)
    tiles_x = -(-wo // spec.m)
    need_h = (tiles_y - 1) * spec.m + spec.p
    need_w = (tiles_x - 1) * spec.m + spec.p
    padded = np.pad(x, ((0, 0), (1, need_h - h - 1), (1, need_w - w - 1)))
    xt = spec.transform_input_2d(
        extract_tiles(padded, spec.p, spec.m, tiles_y, tiles_x)
    )
    xt = act_q.fake_quant(xt)
    e = w_q.fake_quant(spec.transform_kernel_2d(weight))
    u = act_q.fake_quant(_hadamard_reduce(e, xt))
    out_tiles = spec.inverse_transform_2d(u)
    return _assemble_tiles(out_tiles)[:, :ho, :wo]


def tile_size_exploration(
    tile_sizes: tuple[int, ...] = (2, 4, 6),
    activation_bits: int = 12,
    seed: int = 5,
) -> list[dict]:
    """Why F(2x2, 3x3)?  Larger Winograd tiles multiply less but
    condition worse in fixed point.

    For each F(m, 3) this measures the multiplication reduction, the
    transform-domain size the hardware would need per patch (mu^2 —
    the SCU provision), and the output SNR under the paper's A12
    datapath.  The paper's F(2,3) choice trades some reduction for
    fixed-point robustness and the 64-product patch pairing with T3.
    """
    from repro.core.ops import fast_conv2d
    from repro.core.transforms import cook_toom_conv

    rng = np.random.default_rng(seed)
    x = rng.standard_normal((8, 24, 24))
    weight = rng.standard_normal((8, 8, 3, 3)) / 3.0
    results = []
    for m in tile_sizes:
        spec = cook_toom_conv(m, 3)
        exact = fast_conv2d(x, weight, None, spec, padding=1)
        fxp = _fxp_fast_conv(x, weight, spec, activation_bits=activation_bits)
        noise = float(np.linalg.norm(fxp - exact))
        signal = float(np.linalg.norm(exact))
        snr_db = 20.0 * np.log10(signal / noise) if noise > 0 else float("inf")
        results.append(
            {
                "tile": f"F({m}x{m},3x3)",
                "m": m,
                "mu2": spec.mu * spec.mu,
                "speedup": spec.speedup,
                "fxp_snr_db": snr_db,
            }
        )
    return results


def resolution_sweep(
    resolutions: tuple[tuple[int, int], ...] = ((540, 960), (1080, 1920), (2160, 3840)),
    config: NVCAConfig | None = None,
) -> list[dict]:
    """Accelerator scaling across frame sizes (UVG is natively 4K).

    Reports per-resolution decode performance and DRAM traffic; the
    paper evaluates at 1080p (25 FPS) — this shows where the design
    lands for 540p and 4K streams with the same silicon.
    """
    config = config or NVCAConfig()
    results = []
    for height, width in resolutions:
        graph = decoder_graph(height, width, config.channels)
        performance = analyze_graph(graph, config)
        traffic = compare_traffic(graph, config)
        results.append(
            {
                "resolution": f"{width}x{height}",
                "pixels": height * width,
                "gmacs": graph.total_macs() / 1e9,
                "fps": performance.fps,
                "frame_ms": performance.frame_time_s * 1e3,
                "dram_gb": traffic.chained_total / 1e9,
                "reduction": traffic.overall_reduction,
            }
        )
    return results


def gop_size_ablation(
    gops: tuple[int, ...] = (2, 4, 8),
    channels: int = 12,
    qstep: float = 8.0,
    frames: int = 8,
    seed: int = 7,
) -> list[dict]:
    """Measured GOP-length trade-off on the real pipeline.

    Longer GOPs amortize the expensive I-frame over more cheap
    P-frames (lower rate) at some quality drift risk — the classic
    structure choice every deployment makes.
    """
    sequence = generate_sequence(
        SceneConfig(height=64, width=96, frames=frames, seed=seed)
    )
    results = []
    for gop in gops:
        net = create_codec("ctvc", channels=channels, qstep=qstep, gop=gop, seed=1)
        stream = net.encode_sequence(sequence)
        decoded = net.decode_sequence(SequenceBitstream.parse(stream.serialize()))
        results.append(
            {
                "gop": gop,
                "bpp": stream.bits_per_pixel(64, 96),
                "psnr_db": float(
                    np.mean([psnr(a, b) for a, b in zip(sequence, decoded)])
                ),
                "i_frames": sum(1 for p in stream.packets if p.frame_type == "I"),
            }
        )
    return results
