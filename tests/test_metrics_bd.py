"""Tests for RD curves and Bjøntegaard delta metrics."""

import numpy as np
import pytest

from repro.metrics import RDCurve, RDPoint, bd_quality, bd_rate


def make_curve(name, rates, qualities, metric="psnr"):
    curve = RDCurve(name=name, metric=metric)
    for r, q in zip(rates, qualities):
        curve.add(r, q)
    return curve


class TestRDCurve:
    def test_points_sorted_by_rate(self):
        curve = RDCurve("x").add(0.3, 36.0).add(0.1, 32.0).add(0.2, 34.0)
        assert list(curve.rates) == [0.1, 0.2, 0.3]

    def test_nonpositive_bpp_rejected(self):
        with pytest.raises(ValueError):
            RDPoint(0.0, 30.0)

    def test_monotone_check(self):
        good = make_curve("g", [0.1, 0.2, 0.3], [30, 33, 35])
        bad = make_curve("b", [0.1, 0.2, 0.3], [30, 29, 35])
        assert good.validate_monotone()
        assert not bad.validate_monotone()

    def test_msssim_db_mapping(self):
        curve = make_curve("m", [0.1], [0.99], metric="ms-ssim")
        assert curve.quality_axis_db()[0] == pytest.approx(20.0, abs=1e-9)

    def test_unknown_metric_raises(self):
        curve = make_curve("m", [0.1, 0.2], [1.0, 2.0], metric="vmaf")
        with pytest.raises(ValueError):
            curve.quality_axis_db()


class TestBDRate:
    def test_identical_curves_zero(self):
        rates = [0.1, 0.2, 0.4, 0.8]
        quals = [32.0, 35.0, 38.0, 41.0]
        a = make_curve("a", rates, quals)
        b = make_curve("b", rates, quals)
        assert bd_rate(a, b) == pytest.approx(0.0, abs=1e-9)
        assert bd_rate(a, b, method="pchip") == pytest.approx(0.0, abs=1e-9)

    def test_half_rate_is_minus_fifty_percent(self):
        # Same qualities at exactly half the bits => BD-rate = -50 %.
        rates = np.array([0.1, 0.2, 0.4, 0.8])
        quals = [32.0, 35.0, 38.0, 41.0]
        anchor = make_curve("anchor", rates, quals)
        test = make_curve("test", rates / 2, quals)
        assert bd_rate(anchor, test) == pytest.approx(-50.0, abs=1e-6)
        assert bd_rate(anchor, test, method="pchip") == pytest.approx(-50.0, abs=1e-6)

    def test_double_rate_is_plus_hundred_percent(self):
        rates = np.array([0.1, 0.2, 0.4, 0.8])
        quals = [32.0, 35.0, 38.0, 41.0]
        anchor = make_curve("anchor", rates, quals)
        test = make_curve("test", rates * 2, quals)
        assert bd_rate(anchor, test) == pytest.approx(100.0, abs=1e-6)

    def test_sign_convention_better_codec_negative(self):
        # The better codec reaches each quality with fewer bits.
        anchor = make_curve("h265", [0.1, 0.2, 0.4, 0.8], [32, 35, 38, 41])
        better = make_curve("ours", [0.08, 0.15, 0.3, 0.6], [32, 35, 38, 41])
        assert bd_rate(anchor, better) < 0

    def test_msssim_metric_supported(self):
        anchor = make_curve(
            "a", [0.1, 0.2, 0.4], [0.95, 0.97, 0.985], metric="ms-ssim"
        )
        test = make_curve(
            "t", [0.05, 0.1, 0.2], [0.95, 0.97, 0.985], metric="ms-ssim"
        )
        assert bd_rate(anchor, test) == pytest.approx(-50.0, abs=1e-6)

    def test_metric_mismatch_raises(self):
        a = make_curve("a", [0.1, 0.2, 0.3], [30, 33, 35])
        b = make_curve("b", [0.1, 0.2, 0.3], [0.9, 0.95, 0.97], metric="ms-ssim")
        with pytest.raises(ValueError):
            bd_rate(a, b)

    def test_no_overlap_raises(self):
        a = make_curve("a", [0.1, 0.2], [30, 31])
        b = make_curve("b", [0.1, 0.2], [40, 41])
        with pytest.raises(ValueError):
            bd_rate(a, b)

    def test_needs_two_points(self):
        a = make_curve("a", [0.1], [30])
        b = make_curve("b", [0.1, 0.2], [30, 31])
        with pytest.raises(ValueError):
            bd_rate(a, b)

    def test_unknown_method_raises(self):
        a = make_curve("a", [0.1, 0.2, 0.4], [30, 33, 35])
        b = make_curve("b", [0.1, 0.2, 0.4], [30, 33, 35])
        with pytest.raises(ValueError):
            bd_rate(a, b, method="spline9000")

    def test_cubic_and_pchip_agree_on_smooth_curves(self):
        anchor = make_curve("a", [0.1, 0.2, 0.4, 0.8], [32.0, 35.0, 38.0, 41.0])
        test = make_curve("t", [0.09, 0.17, 0.33, 0.64], [32.5, 35.4, 38.3, 41.2])
        cubic = bd_rate(anchor, test, method="cubic")
        pchip = bd_rate(anchor, test, method="pchip")
        assert cubic == pytest.approx(pchip, abs=3.0)


class TestBDQuality:
    def test_identical_curves_zero(self):
        a = make_curve("a", [0.1, 0.2, 0.4, 0.8], [32, 35, 38, 41])
        b = make_curve("b", [0.1, 0.2, 0.4, 0.8], [32, 35, 38, 41])
        assert bd_quality(a, b) == pytest.approx(0.0, abs=1e-9)

    def test_uniform_gain(self):
        rates = [0.1, 0.2, 0.4, 0.8]
        a = make_curve("a", rates, [32.0, 35.0, 38.0, 41.0])
        b = make_curve("b", rates, [33.0, 36.0, 39.0, 42.0])
        assert bd_quality(a, b) == pytest.approx(1.0, abs=1e-6)
        assert bd_quality(a, b, method="pchip") == pytest.approx(1.0, abs=1e-6)

    def test_better_codec_positive(self):
        anchor = make_curve("h265", [0.1, 0.2, 0.4, 0.8], [32, 35, 38, 41])
        better = make_curve("ours", [0.1, 0.2, 0.4, 0.8], [33.1, 36.0, 38.9, 41.8])
        assert bd_quality(anchor, better) > 0


class TestCurveSerialization:
    def test_round_trip(self):
        curve = make_curve("c@48x64x2", [0.1, 0.4, 0.2], [30, 36, 33])
        curve.dataset = "48x64x2"
        restored = RDCurve.from_dict(curve.to_dict())
        assert restored.to_dict() == curve.to_dict()
        assert list(restored.rates) == [0.1, 0.2, 0.4]
        assert restored.metric == "psnr" and restored.dataset == "48x64x2"

    def test_points_stay_rate_sorted(self):
        data = {"name": "x", "points": [[0.4, 36.0], [0.1, 30.0]]}
        curve = RDCurve.from_dict(data)
        assert list(curve.rates) == [0.1, 0.4]


def _report(codec, bpp, psnr_db, scene=None, msssim=None):
    scene = dict(scene or {"height": 48, "width": 64, "frames": 2})
    return {
        "codec": codec,
        "scene": scene,
        "bpp": bpp,
        "mean_psnr": psnr_db,
        "mean_msssim": msssim,
    }


class TestCurvesFromReports:
    def test_groups_by_codec_and_scene(self):
        from repro.metrics import curves_from_reports

        scene_b = {"height": 48, "width": 64, "frames": 2, "seed": 3}
        reports = [
            _report("classical", 0.4, 34.0),
            _report("classical", 0.2, 31.0),
            _report("ctvc", 0.3, 33.0),
            _report("classical", 0.25, 30.5, scene=scene_b),
        ]
        curves = curves_from_reports(reports)
        assert set(curves) == {
            ("classical", "48x64x2"),
            ("ctvc", "48x64x2"),
            ("classical", "48x64x2/s3"),
        }
        # config sweep folds onto one curve, sorted by rate
        curve = curves[("classical", "48x64x2")]
        assert list(curve.rates) == [0.2, 0.4]
        assert curve.metric == "psnr"

    def test_same_label_distinct_scenes_stay_apart(self):
        from repro.metrics import curves_from_reports

        base = {"height": 48, "width": 64, "frames": 2}
        textured = {**base, "texture_contrast": 0.9}
        curves = curves_from_reports([
            _report("classical", 0.4, 34.0, scene=base),
            _report("classical", 0.4, 31.0, scene=textured),
        ])
        assert set(curves) == {
            ("classical", "48x64x2"),
            ("classical", "48x64x2#2"),
        }

    def test_msssim_metric(self):
        from repro.metrics import curves_from_reports

        curves = curves_from_reports(
            [_report("classical", 0.4, 34.0, msssim=0.97)], metric="ms-ssim"
        )
        assert curves[("classical", "48x64x2")].qualities[0] == 0.97

    def test_missing_metric_is_clear_error(self):
        from repro.metrics import curves_from_reports

        with pytest.raises(ValueError, match="compute_msssim"):
            curves_from_reports([_report("classical", 0.4, 34.0)],
                                metric="ms-ssim")

    def test_accepts_encode_report_objects(self):
        from repro.metrics import curves_from_reports
        from repro.pipeline import Pipeline

        report = Pipeline(
            "classical", {"qp": 16.0},
            scene={"height": 32, "width": 48, "frames": 2},
        ).run()
        curves = curves_from_reports([report])
        ((key, curve),) = curves.items()
        # facade scenes always carry a seed; 0 is labelled like any other
        assert key == ("classical", "32x48x2/s0")
        assert curve.qualities[0] == pytest.approx(report.mean_psnr)


class TestBdRateTable:
    def test_half_rate_scores_minus_fifty(self):
        from repro.metrics import bd_rate_table

        rates = [0.1, 0.2, 0.4, 0.8]
        quals = [32.0, 35.0, 38.0, 41.0]
        curves = {
            ("h265", "cif"): make_curve("h265@cif", rates, quals),
            ("ours", "cif"): make_curve(
                "ours@cif", [r / 2 for r in rates], quals
            ),
        }
        table = bd_rate_table(curves, "h265")
        assert table["cif"]["ours"] == pytest.approx(-50.0, abs=1e-6)

    def test_degenerate_cell_maps_to_none(self):
        from repro.metrics import bd_rate_table

        curves = {
            ("h265", "cif"): make_curve(
                "h265@cif", [0.1, 0.2, 0.4], [32.0, 35.0, 38.0]
            ),
            # no quality overlap with the anchor: unscorable, not fatal
            ("ours", "cif"): make_curve("ours@cif", [0.1, 0.2], [50.0, 55.0]),
        }
        table = bd_rate_table(curves, "h265")
        assert table["cif"]["ours"] is None

    def test_scene_without_anchor_is_skipped(self):
        from repro.metrics import bd_rate_table

        curves = {
            ("ours", "cif"): make_curve(
                "ours@cif", [0.1, 0.2, 0.4], [32.0, 35.0, 38.0]
            ),
        }
        assert bd_rate_table(curves, "h265") == {}
