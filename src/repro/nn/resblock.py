"""Residual block, Fig. 2(f) of the paper.

``ResBlock(N, k)``: ReLU -> Conv(N, k, 1) -> ReLU -> Conv(N, k, 1) with
an identity skip connection.  The two stacked stride-1 convolutions are
exactly what the heterogeneous layer chaining dataflow (Fig. 7) treats
as the "two Convs" prefix of a Conv-Conv-DeConv chain.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from .layers import Conv2d, Module

__all__ = ["ResBlock"]


class ResBlock(Module):
    """Pre-activation residual block with two same-channel convolutions."""

    def __init__(
        self,
        channels: int,
        kernel_size: int = 3,
        rng: np.random.Generator | None = None,
        residual_scale: float = 0.1,
    ):
        super().__init__()
        self.channels = channels
        self.kernel_size = kernel_size
        #: Scaling of the residual branch.  Untrained He-initialized
        #: branches would otherwise inject O(1) noise; a small scale
        #: keeps the block near-identity so the structured-initialization
        #: codec remains functional (DESIGN.md §2) while every
        #: convolution still executes (and is pruned/accelerated).
        self.residual_scale = residual_scale
        self.conv1 = Conv2d(channels, channels, kernel_size, stride=1, rng=rng)
        self.conv2 = Conv2d(channels, channels, kernel_size, stride=1, rng=rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        branch = self.conv1(F.relu(x))
        branch = self.conv2(F.relu(branch))
        return x + self.residual_scale * branch
