"""ABR ladder builds: spec validation, the ladder-rendition task kind,
fleet execution parity across backends, the ±10% calibrated-accuracy
acceptance pin, and the CLI."""

import json

import pytest

from repro.pipeline import (
    LadderReport,
    LadderRunner,
    LadderSpec,
    Rendition,
    RenditionReport,
    hydrate_result,
    normalize_spec,
    run_many,
    run_task,
)
from repro.serialization import ConfigError

RD_CFG = {"method": "h265", "dataset": "uvg"}


def _acceptance_spec(**overrides):
    # 2 resolutions x 3 in-curve-range bitrates: h265/uvg spans
    # 0.05-0.45 bpp, i.e. 9.2-82.9 kbps at 96x64 and 2.3-20.7 kbps at
    # 48x32 at 30 fps — every target below is invertible, not clamped.
    renditions = [
        Rendition(height=64, width=96, target_kbps=k) for k in (15, 30, 60)
    ] + [
        Rendition(height=32, width=48, target_kbps=k) for k in (4, 8, 16)
    ]
    options = dict(
        codec="rd-model",
        codec_config=dict(RD_CFG),
        scene={"frames": 2},
        rate_control="calibrated",
    )
    options.update(overrides)
    return LadderSpec(renditions, **options)


class TestRendition:
    def test_derived_label(self):
        assert Rendition(height=64, width=96, target_kbps=30.0).name == (
            "96x64@30k"
        )
        assert Rendition(label="hd").name == "hd"

    def test_validation(self):
        with pytest.raises(ValueError, match="height"):
            Rendition(height=0)
        with pytest.raises(ValueError, match="width"):
            Rendition(width=-4)
        with pytest.raises(ValueError, match="target_kbps"):
            Rendition(target_kbps=0.0)

    def test_round_trip(self):
        r = Rendition(height=32, width=48, target_kbps=8.0)
        assert Rendition.from_dict(r.to_dict()) == r


class TestLadderSpec:
    def test_grid_expands_cross_product(self):
        spec = LadderSpec.grid(
            resolutions=[(64, 96), (32, 48)],
            bitrates_kbps=[15.0, 30.0, 60.0],
            codec="rd-model",
            codec_config=dict(RD_CFG),
        )
        assert len(spec.renditions) == 6
        assert spec.renditions[0].name == "96x64@15k"

    def test_rendition_specs_merge_rate_and_geometry(self):
        spec = _acceptance_spec()
        jobs = spec.rendition_specs()
        assert len(jobs) == 6
        first = jobs[0]
        assert first["kind"] == "ladder-rendition"
        assert first["codec_config"]["rate_control"] == "calibrated"
        assert first["codec_config"]["target_kbps"] == 15.0
        assert first["scene"]["height"] == 64
        assert first["scene"]["width"] == 96
        # the base scene's non-geometry fields survive per rung
        assert first["scene"]["frames"] == 2

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown codec"):
            _acceptance_spec(codec="h264")
        with pytest.raises(ValueError, match="unknown rate controller"):
            _acceptance_spec(rate_control="vbv")
        with pytest.raises(ValueError, match="at least one"):
            LadderSpec([], codec="rd-model")
        with pytest.raises(ValueError, match="duplicate"):
            LadderSpec([Rendition(), Rendition()])
        with pytest.raises(ValueError, match="fps"):
            _acceptance_spec(fps=0.0)
        with pytest.raises(TypeError, match="Rendition or dict"):
            LadderSpec(["48x32:8"])

    def test_round_trip(self):
        spec = _acceptance_spec()
        clone = LadderSpec.from_dict(spec.to_dict())
        assert clone.to_dict() == spec.to_dict()

    def test_from_dict_rejects_unknowns(self):
        with pytest.raises(ConfigError, match="rungs"):
            LadderSpec.from_dict({"renditions": [{}], "rungs": 3})
        with pytest.raises(ConfigError, match="renditions"):
            LadderSpec.from_dict({"codec": "rd-model"})


class TestLadderRenditionTask:
    def test_normalize_execute_hydrate(self):
        spec = normalize_spec(_acceptance_spec().rendition_specs()[0])
        assert spec["kind"] == "ladder-rendition"
        report = hydrate_result(spec, run_task(spec))
        assert isinstance(report, RenditionReport)
        assert report.label == "96x64@15k"
        assert report.target_kbps == 15.0
        assert report.overshoot_pct == pytest.approx(0.0, abs=2.0)
        assert report.encode.codec == "rd-model"

    def test_missing_rendition_rejected(self):
        job = _acceptance_spec().rendition_specs()[0]
        job.pop("rendition")
        with pytest.raises(ConfigError, match="rendition"):
            normalize_spec(job)

    def test_geometry_mismatch_rejected(self):
        job = _acceptance_spec().rendition_specs()[0]
        job["scene"]["height"] = 128
        with pytest.raises(ConfigError, match="rendition says"):
            normalize_spec(job)

    def test_target_mismatch_rejected(self):
        job = _acceptance_spec().rendition_specs()[0]
        job["codec_config"]["target_kbps"] = 99.0
        with pytest.raises(ConfigError, match="target_kbps"):
            normalize_spec(job)

    def test_unknown_field_rejected(self):
        job = _acceptance_spec().rendition_specs()[0]
        job["bitrate"] = 100
        with pytest.raises(ConfigError, match="bitrate"):
            normalize_spec(job)

    def test_run_many_accepts_ladder_jobs(self):
        reports = run_many(_acceptance_spec().rendition_specs()[:2])
        assert [type(r) for r in reports] == [RenditionReport] * 2


class TestBudgetViolations:
    def _result(self, frame_bits):
        rendition = Rendition(height=32, width=48, target_kbps=3.0)
        return {
            "rendition": rendition.to_dict(),
            "encode": {
                "codec": "classical",
                "codec_config": {"fps": 30.0},
                "scene": {},
                "frames": len(frame_bits),
                "height": 32,
                "width": 48,
                "stream_bytes": sum(frame_bits) // 8,
                "bpp": 1.0,
                "psnr_per_frame": [30.0] * len(frame_bits),
                "mean_psnr": 30.0,
                "frame_bits": frame_bits,
                "achieved_kbps": sum(frame_bits)
                * 30.0
                / (len(frame_bits) * 1000.0),
            },
        }

    def test_counts_cumulative_overshoot_frames(self):
        # allowance is 100 bits/frame; 20% slack makes the threshold a
        # cumulative 120*n bits after n frames
        report = RenditionReport.from_result(
            self._result([500, 100, 100, 100])
        )
        # cumulative 500, 600, 700, 800 vs thresholds 120, 240, 360, 480
        assert report.budget_violations == 4

    def test_within_budget_has_no_violations(self):
        report = RenditionReport.from_result(self._result([100, 100, 100]))
        assert report.budget_violations == 0
        assert report.overshoot_pct == pytest.approx(0.0)


class TestLadderRunner:
    def test_acceptance_six_rungs_within_ten_percent(self, tmp_path):
        """The PR's acceptance pin: a 2-resolution x 3-bitrate ladder
        through the queue backend lands every rendition within ±10% of
        its target under the calibrated controller."""
        runner = LadderRunner(
            _acceptance_spec(), queue_dir=tmp_path / "q", workers=2
        )
        report = runner.run()
        assert report.ok
        assert len(report.renditions) == 6
        assert report.max_abs_overshoot_pct() <= 10.0
        for rendition in report.renditions:
            assert abs(rendition.overshoot_pct) <= 10.0

    def test_serial_matches_sharded_and_directory_queue(self, tmp_path):
        spec = _acceptance_spec()
        serial = LadderRunner(spec, workers=0).run()
        threaded = LadderRunner(spec, workers=3).run()
        directory = LadderRunner(
            spec, queue_dir=tmp_path / "q", workers=2
        ).run()
        baseline = json.dumps(serial.table(), sort_keys=True)
        assert json.dumps(threaded.table(), sort_keys=True) == baseline
        assert json.dumps(directory.table(), sort_keys=True) == baseline
        assert serial.workers == 0 and directory.workers == 2

    def test_dict_spec_and_report_round_trip(self):
        report = LadderRunner(_acceptance_spec().to_dict(), workers=0).run()
        payload = report.to_dict()
        assert payload["completed"] == 6
        assert len(payload["table"]) == 6
        assert payload["table"][0]["label"] == "96x64@15k"
        rendered = report.render()
        assert "96x64@15k" in rendered and "overshoot" in rendered

    def test_real_codec_ladder_round_trips(self):
        spec = LadderSpec(
            [Rendition(height=32, width=48, target_kbps=120.0)],
            codec="classical",
            codec_config={"qp": 8.0},
            scene={"frames": 3},
            rate_control="abr",
        )
        report = LadderRunner(spec, workers=0).run()
        assert report.ok
        (rung,) = report.renditions
        assert rung.achieved_kbps is not None
        assert rung.mean_psnr > 20.0

    def test_rejects_wrong_spec_type(self):
        with pytest.raises(TypeError, match="LadderSpec"):
            LadderRunner([Rendition()])


class TestLadderCLI:
    def _run(self, argv, capsys):
        from repro.__main__ import main

        code = main(argv)
        return code, capsys.readouterr().out

    def test_json_ladder(self, capsys):
        code, out = self._run(
            [
                "ladder",
                "--codec", "rd-model",
                "--config", json.dumps(RD_CFG),
                "--renditions", "96x64:15,96x64:30,48x32:8",
                "--frames", "2",
                "--workers", "0",
                "--json",
            ],
            capsys,
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["completed"] == 3
        labels = [row["label"] for row in payload["table"]]
        assert labels == ["96x64@15k", "96x64@30k", "48x32@8k"]

    def test_csv_output(self, capsys, tmp_path):
        csv_path = tmp_path / "ladder.csv"
        code, _ = self._run(
            [
                "ladder",
                "--codec", "rd-model",
                "--config", json.dumps(RD_CFG),
                "--renditions", "96x64:15,48x32:8",
                "--frames", "2",
                "--workers", "0",
                "--csv", str(csv_path),
            ],
            capsys,
        )
        assert code == 0
        lines = csv_path.read_text().strip().splitlines()
        assert lines[0].startswith("label,width,height,target_kbps")
        assert len(lines) == 3
        assert lines[1].startswith("96x64@15k,96,64,15.0")

    def test_bad_renditions_flag(self, capsys):
        code, _ = self._run(
            ["ladder", "--renditions", "96x64"], capsys
        )
        assert code == 2

    def test_encode_target_kbps_flag(self, capsys):
        code, out = self._run(
            [
                "encode",
                "--codec", "classical",
                "--height", "32", "--width", "48", "--frames", "3",
                "--target-kbps", "120",
                "--json",
            ],
            capsys,
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["codec_config"]["rate_control"] == "abr"
        assert payload["codec_config"]["target_kbps"] == 120.0
        assert payload["achieved_kbps"] is not None
        assert len(payload["frame_bits"]) == 3
