"""Codec registry: lookup, registration rules, error quality."""

import pytest

from repro.codec import ClassicalCodec, ClassicalCodecConfig, CTVCConfig, CTVCNet
from repro.pipeline import (
    CodecRegistryError,
    VideoCodec,
    available_codecs,
    codec_spec,
    create_codec,
    register_codec,
    unregister_codec,
)


class TestLookup:
    def test_builtins_registered(self):
        assert available_codecs() == ["classical", "ctvc", "rd-model"]

    def test_codec_spec_fields(self):
        spec = codec_spec("ctvc")
        assert spec.factory is CTVCNet
        assert spec.config_cls is CTVCConfig
        assert spec.description

    def test_create_default_config(self):
        codec = create_codec("classical")
        assert isinstance(codec, ClassicalCodec)
        assert codec.config == ClassicalCodecConfig()

    def test_create_with_kwargs(self):
        codec = create_codec("ctvc", channels=8, qstep=16.0)
        assert isinstance(codec, CTVCNet)
        assert codec.config.channels == 8
        assert codec.config.qstep == 16.0

    def test_create_with_dict_and_overrides(self):
        codec = create_codec("ctvc", {"channels": 8}, qstep=32.0)
        assert (codec.config.channels, codec.config.qstep) == (8, 32.0)

    def test_create_with_config_instance(self):
        cfg = ClassicalCodecConfig(qp=24.0)
        codec = create_codec("classical", cfg)
        assert codec.config is cfg

    def test_builtin_codecs_satisfy_protocol(self):
        assert isinstance(create_codec("ctvc", channels=4), VideoCodec)
        assert isinstance(create_codec("classical"), VideoCodec)


class TestErrors:
    def test_unknown_codec_lists_available(self):
        with pytest.raises(CodecRegistryError, match="classical, ctvc"):
            create_codec("h266")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(CodecRegistryError, match="already registered"):
            register_codec("ctvc", CTVCNet, CTVCConfig)

    def test_wrong_config_type(self):
        with pytest.raises(CodecRegistryError, match="CTVCConfig"):
            create_codec("ctvc", ClassicalCodecConfig())

    def test_empty_name_rejected(self):
        with pytest.raises(CodecRegistryError):
            register_codec("", CTVCNet, CTVCConfig)

    def test_bad_kwarg_gets_config_error(self):
        from repro.serialization import ConfigError

        # kwargs-only path validates like the dict path: helpful
        # ConfigError, not a raw TypeError.
        with pytest.raises(ConfigError, match="unknown field.*qstep"):
            create_codec("classical", qstep=2.0)


class TestPluggability:
    def test_register_overwrite_and_unregister(self):
        try:
            register_codec(
                "ctvc-lite",
                lambda cfg: CTVCNet(cfg),
                CTVCConfig,
                "half-size variant",
            )
            assert "ctvc-lite" in available_codecs()
            codec = create_codec("ctvc-lite", channels=4)
            assert codec.config.channels == 4
            # Overwrite is explicit, never silent.
            register_codec("ctvc-lite", CTVCNet, CTVCConfig, overwrite=True)
            assert codec_spec("ctvc-lite").factory is CTVCNet
        finally:
            unregister_codec("ctvc-lite")
        assert "ctvc-lite" not in available_codecs()
